"""Reference discrete Gaussian samplers over the integers.

Two samplers are provided:

* :func:`sample_dgauss` — straightforward rejection sampling from a
  uniform proposal on a +/- ``tail_cut`` * sigma window. Not constant time
  (this repo simulates leakage explicitly, so timing side channels of the
  host are irrelevant), but statistically exact up to the tail cut.
* :func:`sample_dgauss_karney`-style exactness is unnecessary here; the
  tail cut of 10 sigma keeps the truncation error below 2^-70.

FALCON's production SamplerZ (RCDT base sampler + BerExp rejection) lives
in :mod:`repro.falcon.samplerz`; the tests cross-check it against this
module with a chi-square goodness-of-fit test.
"""

from __future__ import annotations

import math

from repro.utils.rng import ChaCha20Prng, SystemRng

__all__ = ["sample_dgauss", "dgauss_pmf", "sample_poly_dgauss"]

TAIL_CUT = 10.0


def dgauss_pmf(z: int, mu: float, sigma: float, radius: int | None = None) -> float:
    """Probability of ``z`` under the discrete Gaussian D_{Z, mu, sigma}.

    Normalized over the +/- ``radius`` window around mu (default: the
    TAIL_CUT window used by :func:`sample_dgauss`).
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = int(math.ceil(TAIL_CUT * sigma))
    center = int(round(mu))
    zs = range(center - radius, center + radius + 1)
    weights = {k: math.exp(-((k - mu) ** 2) / (2 * sigma * sigma)) for k in zs}
    total = sum(weights.values())
    return weights.get(z, 0.0) / total


def sample_dgauss(mu: float, sigma: float, rng: ChaCha20Prng | SystemRng) -> int:
    """One sample from D_{Z, mu, sigma} by rejection from a uniform window."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    radius = int(math.ceil(TAIL_CUT * sigma))
    center = int(round(mu))
    lo, hi = center - radius, center + radius
    two_sigma_sq = 2 * sigma * sigma
    while True:
        z = rng.randint(lo, hi)
        accept_p = math.exp(-((z - mu) ** 2) / two_sigma_sq)
        if rng.uniform() < accept_p:
            return z


def sample_poly_dgauss(n: int, sigma: float, rng: ChaCha20Prng | SystemRng) -> list[int]:
    """n i.i.d. centered discrete Gaussian coefficients (keygen's f, g)."""
    return [sample_dgauss(0.0, sigma, rng) for _ in range(n)]
