"""Number-theoretic transform over Z_q[x]/(x^n + 1), q = 12289 by default.

FALCON verifies signatures with integer arithmetic mod q, and the paper's
Discussion V.C contrasts the side-channel behaviour of NTT-based schemes
with FALCON's floating-point FFT. Both uses are served here:

* :func:`ntt` / :func:`intt` — negacyclic NTT and inverse, used by
  verification (`s1 = c - s2 h mod q`) and by fast mod-q polynomial ops.
* :func:`ntt_with_trace` — the same forward transform, additionally
  returning every butterfly output in execution order so the leakage
  simulator can synthesize NTT traces for the NTT-vs-FFT ablation.

q - 1 = 2^12 * 3, so primitive 2n-th roots of unity exist for all
n <= 2048, which covers FALCON-1024.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "Q",
    "find_primitive_root",
    "psi_table",
    "ntt",
    "intt",
    "ntt_with_trace",
    "mul_ntt",
]

Q = 12289


def _factorize(n: int) -> list[int]:
    """Distinct prime factors by trial division (q is small)."""
    out = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


@lru_cache(maxsize=8)
def find_primitive_root(q: int) -> int:
    """Smallest generator of the multiplicative group of Z_q (q prime)."""
    factors = _factorize(q - 1)
    for g in range(2, q):
        if all(pow(g, (q - 1) // p, q) != 1 for p in factors):
            return g
    raise ValueError(f"no primitive root found for q={q}")


@lru_cache(maxsize=32)
def psi_table(n: int, q: int = Q) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Powers of a primitive 2n-th root psi and its inverse, mod q."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    if (q - 1) % (2 * n) != 0:
        raise ValueError(f"no 2n-th roots of unity mod {q} for n={n}")
    g = find_primitive_root(q)
    psi = pow(g, (q - 1) // (2 * n), q)
    inv_psi = pow(psi, q - 2, q)
    fwd = [1] * n
    inv = [1] * n
    for i in range(1, n):
        fwd[i] = fwd[i - 1] * psi % q
        inv[i] = inv[i - 1] * inv_psi % q
    return tuple(fwd), tuple(inv)


def _cyclic_ntt(a: list[int], q: int, omega: int, trace: list[int] | None) -> list[int]:
    """Iterative radix-2 DIT cyclic NTT of power-of-two length."""
    n = len(a)
    a = list(a)
    # bit-reversal permutation
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            a[i], a[j] = a[j], a[i]
    length = 2
    while length <= n:
        w_len = pow(omega, n // length, q)
        for start in range(0, n, length):
            w = 1
            half = length // 2
            for k in range(start, start + half):
                u = a[k]
                v = a[k + half] * w % q
                a[k] = (u + v) % q
                a[k + half] = (u - v) % q
                if trace is not None:
                    trace.append(a[k])
                    trace.append(a[k + half])
                w = w * w_len % q
        length <<= 1
    return a


def ntt(f: list[int], q: int = Q) -> list[int]:
    """Negacyclic NTT: evaluations of f at the odd powers of psi."""
    n = len(f)
    fwd, _ = psi_table(n, q)
    weighted = [f[i] % q * fwd[i] % q for i in range(n)]
    omega = fwd[2 % n] if n > 1 else 1  # omega = psi^2
    if n == 1:
        return [f[0] % q]
    return _cyclic_ntt(weighted, q, omega, None)


def ntt_with_trace(f: list[int], q: int = Q) -> tuple[list[int], list[int]]:
    """Forward NTT plus every butterfly output value, in execution order.

    The returned trace values are the architectural intermediates a
    power/EM probe would see on a sequential implementation; the leakage
    simulator maps them through a Hamming-weight model.
    """
    n = len(f)
    fwd, _ = psi_table(n, q)
    trace: list[int] = []
    weighted = []
    for i in range(n):
        w = f[i] % q * fwd[i] % q
        weighted.append(w)
        trace.append(w)
    if n == 1:
        return [f[0] % q], trace
    omega = fwd[2 % n]
    out = _cyclic_ntt(weighted, q, omega, trace)
    return out, trace


def intt(f_ntt: list[int], q: int = Q) -> list[int]:
    """Inverse negacyclic NTT."""
    n = len(f_ntt)
    if n == 1:
        return [f_ntt[0] % q]
    fwd, inv = psi_table(n, q)
    inv_omega = inv[2 % n]
    a = _cyclic_ntt(list(f_ntt), q, inv_omega, None)
    inv_n = pow(n, q - 2, q)
    return [a[i] * inv_n % q * inv[i] % q for i in range(n)]


def mul_ntt(f: list[int], g: list[int], q: int = Q) -> list[int]:
    """Negacyclic polynomial product via the NTT."""
    if len(f) != len(g):
        raise ValueError(f"degree mismatch: {len(f)} vs {len(g)}")
    fe = ntt(f, q)
    ge = ntt(g, q)
    return intt([a * b % q for a, b in zip(fe, ge)], q)
