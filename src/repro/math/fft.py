"""FALCON's FFT representation over the ring R[x]/(x^n + 1).

A real polynomial f of (power-of-two) length n >= 2 is represented in the
FFT domain by the n/2 complex values f(zeta_k), where

    zeta_k = exp(i * pi * (2k + 1) / n),   k = 0 .. n/2 - 1

are the roots of x^n + 1 in the upper half plane. The conjugate roots are
implied because f is real: f(conj z) = conj f(z). This is exactly the
layout of the reference implementation and of the FALCON specification,
and it is what ffLDL* / ffSampling recurse over via split/merge.

All arrays are ``numpy.complex128``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "roots",
    "fft",
    "ifft",
    "split_fft",
    "merge_fft",
    "add_fft",
    "sub_fft",
    "mul_fft",
    "div_fft",
    "adj_fft",
    "fft_ring_size",
]


@lru_cache(maxsize=32)
def roots(n: int) -> np.ndarray:
    """The stored roots zeta_k of x^n + 1, k = 0 .. n/2 - 1."""
    if n < 2 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    k = np.arange(n // 2)
    return np.exp(1j * np.pi * (2 * k + 1) / n)


def fft_ring_size(f_fft: np.ndarray) -> int:
    """Ring degree n for an FFT-domain array (n = 2 * len)."""
    return 2 * len(f_fft)


def fft(f) -> np.ndarray:
    """Transform coefficients (length n >= 2) to the FFT domain."""
    f = np.asarray(f, dtype=np.float64)
    n = len(f)
    if n < 2 or n & (n - 1):
        raise ValueError(f"length must be a power of two >= 2, got {n}")
    if n == 2:
        return np.array([f[0] + 1j * f[1]], dtype=np.complex128)
    f0 = fft(f[0::2])
    f1 = fft(f[1::2])
    return merge_fft(f0, f1)


def ifft(f_fft: np.ndarray) -> np.ndarray:
    """Inverse transform back to real coefficients (length n)."""
    f_fft = np.asarray(f_fft, dtype=np.complex128)
    m = len(f_fft)
    if m == 1:
        return np.array([f_fft[0].real, f_fft[0].imag], dtype=np.float64)
    f0, f1 = split_fft(f_fft)
    c0 = ifft(f0)
    c1 = ifft(f1)
    out = np.empty(2 * m, dtype=np.float64)
    out[0::2] = c0
    out[1::2] = c1
    return out


def merge_fft(f0_fft: np.ndarray, f1_fft: np.ndarray) -> np.ndarray:
    """Combine FFTs of the even/odd halves into the FFT of the parent.

    If f(x) = f0(x^2) + x f1(x^2) with f0, f1 of ring size n/2, then for
    each stored root zeta of x^n + 1:

        f(zeta)  = f0(zeta^2) + zeta * f1(zeta^2)
        f(-zeta) = f0(zeta^2) - zeta * f1(zeta^2)

    and f(-zeta_k) = conj(f(zeta_{n/2-1-k})) because -zeta_k is the
    conjugate of a stored root.
    """
    f0_fft = np.asarray(f0_fft, dtype=np.complex128)
    f1_fft = np.asarray(f1_fft, dtype=np.complex128)
    m = len(f0_fft)
    if len(f1_fft) != m:
        raise ValueError(f"half-size mismatch: {m} vs {len(f1_fft)}")
    n = 4 * m
    w = roots(n)[:m]
    hi = f0_fft + w * f1_fft
    lo = f0_fft - w * f1_fft
    out = np.empty(2 * m, dtype=np.complex128)
    out[:m] = hi
    out[m:] = np.conj(lo[::-1])
    return out


def split_fft(f_fft: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`merge_fft` (FALCON's splitfft)."""
    f_fft = np.asarray(f_fft, dtype=np.complex128)
    m2 = len(f_fft)
    if m2 < 2:
        raise ValueError("cannot split below one complex slot")
    m = m2 // 2
    n = 2 * m2
    w = roots(n)[:m]
    u = f_fft[:m]
    v = np.conj(f_fft[m:][::-1])
    f0 = (u + v) / 2
    f1 = (u - v) / (2 * w)
    return f0, f1


def add_fft(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.complex128) + np.asarray(b, dtype=np.complex128)


def sub_fft(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.complex128) - np.asarray(b, dtype=np.complex128)


def mul_fft(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pointwise product — polynomial multiplication in the ring."""
    return np.asarray(a, dtype=np.complex128) * np.asarray(b, dtype=np.complex128)


def div_fft(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pointwise quotient (caller guarantees b has no zero slot)."""
    return np.asarray(a, dtype=np.complex128) / np.asarray(b, dtype=np.complex128)


def adj_fft(a: np.ndarray) -> np.ndarray:
    """Hermitian adjoint: complex conjugation in the FFT domain."""
    return np.conj(np.asarray(a, dtype=np.complex128))
