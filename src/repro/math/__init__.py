"""Mathematical substrate: polynomial rings, FFT, NTT, discrete Gaussians.

Everything FALCON needs that is not floating-point emulation lives here:

* :mod:`repro.math.poly` — exact integer arithmetic in Z[x]/(x^n + 1),
  including the field norm and Galois conjugate used by NTRUSolve.
* :mod:`repro.math.fft` — FALCON's FFT representation (n/2 complex slots)
  with split/merge, as required by ffLDL*/ffSampling.
* :mod:`repro.math.ntt` — number-theoretic transform mod q = 12289 used by
  signature verification and by the NTT-vs-FFT leakage ablation.
* :mod:`repro.math.gaussian` — discrete Gaussian reference samplers.
"""

from repro.math import fft, gaussian, ntt, poly

__all__ = ["poly", "fft", "ntt", "gaussian"]
