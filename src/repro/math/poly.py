"""Exact integer arithmetic in the ring Z[x]/(x^n + 1).

Polynomials are plain Python lists of ints (index = degree), length n with
n a power of two. Coefficients are arbitrary precision: NTRUSolve's tower
descent produces intermediate values thousands of bits wide, which is why
this module does not use numpy.
"""

from __future__ import annotations

__all__ = [
    "check_ring",
    "add",
    "sub",
    "neg",
    "mul",
    "scalar_mul",
    "adjoint",
    "galois_conjugate",
    "field_norm",
    "lift",
    "sqnorm",
    "split",
    "merge",
    "mod_q",
    "mul_mod_q",
    "inverse_mod_q",
    "constant",
]


def check_ring(f: list[int]) -> int:
    """Validate that ``f`` lives in a power-of-two ring; return n."""
    n = len(f)
    if n < 1 or n & (n - 1):
        raise ValueError(f"ring degree must be a power of two, got {n}")
    return n


def constant(c: int, n: int) -> list[int]:
    """The constant polynomial c in a ring of degree n."""
    out = [0] * n
    out[0] = c
    return out


def add(f: list[int], g: list[int]) -> list[int]:
    if len(f) != len(g):
        raise ValueError(f"degree mismatch: {len(f)} vs {len(g)}")
    return [a + b for a, b in zip(f, g)]


def sub(f: list[int], g: list[int]) -> list[int]:
    if len(f) != len(g):
        raise ValueError(f"degree mismatch: {len(f)} vs {len(g)}")
    return [a - b for a, b in zip(f, g)]


def neg(f: list[int]) -> list[int]:
    return [-a for a in f]


def scalar_mul(f: list[int], c: int) -> list[int]:
    return [c * a for a in f]


def mul(f: list[int], g: list[int]) -> list[int]:
    """Negacyclic product f*g mod (x^n + 1), schoolbook.

    O(n^2) big-int multiplications; n <= 1024 in practice and NTRUSolve
    halves n at each level, so this dominates only at the top of the tower.
    """
    n = check_ring(f)
    if len(g) != n:
        raise ValueError(f"degree mismatch: {n} vs {len(g)}")
    out = [0] * n
    for i, fi in enumerate(f):
        if fi == 0:
            continue
        for j, gj in enumerate(g):
            if gj == 0:
                continue
            k = i + j
            if k < n:
                out[k] += fi * gj
            else:
                out[k - n] -= fi * gj
    return out


def adjoint(f: list[int]) -> list[int]:
    """Hermitian adjoint f*(x) = f(1/x) mod (x^n + 1).

    In coefficients: f*_0 = f_0 and f*_i = -f_{n-i} for i > 0. In the FFT
    domain this is complex conjugation.
    """
    n = check_ring(f)
    if n == 1:
        return list(f)
    return [f[0]] + [-f[n - i] for i in range(1, n)]


def galois_conjugate(f: list[int]) -> list[int]:
    """f(-x): negate odd-degree coefficients."""
    return [c if i % 2 == 0 else -c for i, c in enumerate(f)]


def split(f: list[int]) -> tuple[list[int], list[int]]:
    """Even/odd split: f(x) = f0(x^2) + x f1(x^2)."""
    n = check_ring(f)
    if n < 2:
        raise ValueError("cannot split a degree-1 ring element")
    return f[0::2], f[1::2]


def merge(f0: list[int], f1: list[int]) -> list[int]:
    """Inverse of :func:`split`."""
    if len(f0) != len(f1):
        raise ValueError(f"half-size mismatch: {len(f0)} vs {len(f1)}")
    out = [0] * (2 * len(f0))
    out[0::2] = f0
    out[1::2] = f1
    return out


def field_norm(f: list[int]) -> list[int]:
    """Field norm N(f) = f(x) f(-x) folded into Z[x]/(x^{n/2} + 1).

    With f = fe(x^2) + x fo(x^2): N(f)(x) = fe(x)^2 - x fo(x)^2.
    This is the descent map of NTRUSolve's tower of rings.
    """
    fe, fo = split(f)
    fe2 = mul(fe, fe)
    fo2 = mul(fo, fo)
    m = len(fe)
    out = list(fe2)
    # subtract x * fo2 (negacyclic shift by one)
    out[0] += fo2[m - 1]
    for i in range(1, m):
        out[i] -= fo2[i - 1]
    return out


def lift(f: list[int]) -> list[int]:
    """Map f(x) in Z[x]/(x^{n/2}+1) to f(x^2) in Z[x]/(x^n + 1)."""
    out = [0] * (2 * len(f))
    out[0::2] = f
    return out


def sqnorm(*polys: list[int]) -> int:
    """Squared Euclidean norm of the concatenation of coefficient vectors."""
    return sum(c * c for f in polys for c in f)


def mod_q(f: list[int], q: int) -> list[int]:
    return [c % q for c in f]


def mul_mod_q(f: list[int], g: list[int], q: int) -> list[int]:
    return [c % q for c in mul(f, g)]


def inverse_mod_q(f: list[int], q: int) -> list[int]:
    """Inverse of f in Z_q[x]/(x^n + 1) for prime q, or raise ValueError.

    Uses the FFT-like tower: f is invertible iff all its NTT evaluations
    are nonzero. Implemented via evaluation at the 2n-th roots of unity
    mod q (delegates to :mod:`repro.math.ntt`).
    """
    from repro.math import ntt  # local import to avoid a cycle at import time

    n = check_ring(f)
    evals = ntt.ntt(mod_q(f, q), q)
    if any(e == 0 for e in evals):
        raise ValueError("polynomial is not invertible mod q")
    inv_evals = [pow(e, q - 2, q) for e in evals]
    return ntt.intt(inv_evals, q)
