"""Dynamic taint oracle: differential replay of the attack workloads.

The static passes in :mod:`repro.sast.taint` prove *may*-flow claims;
this module checks them against runtime evidence. A seeded workload
(keygen → sign → verify → secret-key codec round-trip → fpr op sweep
with key-derived operands) runs once per secret-key seed under line
tracing — ``sys.monitoring`` on 3.12+, ``sys.settrace`` on 3.11 — and
every watched source line accumulates a rolling digest of the scalar
locals it touches. Comparing digests *across keys* (messages and sign
randomness held fixed) classifies each static finding:

* ``CONFIRMED`` — the site executed and its operand stream differs
  between secret keys: the leak chain is live.
* ``UNREACHED`` — the site never executed under any seed; the static
  claim has no runtime witness (stale code, dead declassify, or a
  workload gap — all of which the contract gate must surface).
* ``REFUTED`` — the site executed under every seed with *identical*
  operand streams: the observed computation is secret-independent.

Declassify annotations get the same treatment: a ``# sast: declassify``
scope whose code never runs is reported so annotations cannot outlive
the code they excuse.

The workload runs in a subprocess with the analyzed tree first on
``sys.path``, so a fixture copy of ``repro`` (e.g. one with a planted
leak) is exercised instead of the installed package. The parent side
is stdlib-only; the workload itself needs numpy, so oracle runs are
gated out of the no-install CI lint job and live in ``make verify``.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.sast.findings import Finding
from repro.sast.project import Project

__all__ = [
    "CONFIRMED",
    "UNREACHED",
    "REFUTED",
    "LIVE",
    "OracleError",
    "OracleReport",
    "SiteResult",
    "declassify_watch_sites",
    "finding_sites",
    "run_oracle",
]

CONFIRMED = "CONFIRMED"
UNREACHED = "UNREACHED"
REFUTED = "REFUTED"
LIVE = "LIVE"

#: default secret-key seeds; the workload derives everything else
#: (messages, sign randomness) deterministically and identically per seed
DEFAULT_SEEDS = ("alpha", "bravo", "charlie")
DEFAULT_N = 8


class OracleError(RuntimeError):
    """The oracle worker failed to produce a report."""


@dataclass(frozen=True)
class SiteResult:
    """Verdict for one watched source location.

    Beyond the verdict, a site carries operand-value statistics gathered
    during the same replay: how many distinct operand tuples the line
    saw (a value-cardinality witness), the observed integer range of its
    locals, and a between-key/within-key variance ratio that serves as a
    dynamic SNR proxy for exploitability triage — a site whose operands
    swing widely across keys but are stable within one key is easy to
    template; a site drowned in per-key churn is not.
    """

    site: str                    # "relative/path.py:line"
    status: str                  # CONFIRMED / UNREACHED / REFUTED / LIVE
    hits: int                    # total line executions across seeds
    seeds_hit: int               # seeds under which the site executed
    distinct_values: int = 0     # max distinct operand tuples in any one seed
    value_min: int | None = None  # smallest int local observed on the line
    value_max: int | None = None  # largest int local observed on the line
    snr_proxy: float = 0.0       # between-seed variance / within-seed variance


@dataclass
class OracleReport:
    """Everything one oracle run learned."""

    backend: str                 # "monitoring" or "settrace"
    python: str
    n: int
    seeds: tuple[str, ...]
    sites: dict[str, SiteResult] = field(default_factory=dict)
    declassify: dict[str, SiteResult] = field(default_factory=dict)

    def verdict(self, site: str) -> str:
        result = self.sites.get(site)
        return result.status if result is not None else UNREACHED


# -- watch-list construction (parent side) ---------------------------------


def _relpath(project: Project, path: str) -> str:
    return os.path.relpath(path, project.root).replace(os.sep, "/")


def finding_sites(project: Project, findings: Iterable[Finding]) -> list[str]:
    """Deduplicated ``rel/path.py:line`` keys for a set of findings."""
    sites = set()
    for f in findings:
        sites.add(f"{os.path.relpath(f.path, project.root).replace(os.sep, '/')}:{f.line}")
    return sorted(sites)


def declassify_watch_sites(project: Project) -> dict[str, dict[str, Any]]:
    """Watchable locations for every declassify annotation.

    A function-scoped declassify (annotation on the ``def`` line) is
    considered live when the function body's first statement executes;
    an inline declassify is live when its own line executes.
    """
    out: dict[str, dict[str, Any]] = {}
    for mod in project.modules.values():
        rel = _relpath(project, mod.path)
        def_lines: set[int] = set()
        for info in mod.functions:
            if info.declassify is not None and info.node.body:
                def_lines.add(info.node.lineno)
                out[f"{rel}:{info.node.lineno}"] = {
                    "rel": rel,
                    "watch_line": info.node.body[0].lineno,
                    "scope": "function",
                    "name": info.qualname,
                }
        for lineno, ann in mod.annotations.items():
            if ann.kind == "declassify" and lineno not in def_lines:
                out[f"{rel}:{lineno}"] = {
                    "rel": rel,
                    "watch_line": lineno,
                    "scope": "inline",
                    "name": "",
                }
    return out


# -- subprocess orchestration (parent side) --------------------------------


_BOOTSTRAP = (
    "import sys; sys.path.insert(0, sys.argv[1]); "
    "from repro.sast.oracle import _worker_main; "
    "_worker_main(sys.argv[2])"
)


def run_oracle(
    root: str,
    package: str = "repro",
    sites: Sequence[str] = (),
    declassify: Mapping[str, Mapping[str, Any]] | None = None,
    seeds: Sequence[str] = DEFAULT_SEEDS,
    n: int = DEFAULT_N,
    timeout: float = 600.0,
    workload: Mapping[str, str] | None = None,
) -> OracleReport:
    """Run the seeded workload under tracing and classify every site.

    ``root`` is the analyzed package directory (e.g. ``src/repro`` or a
    fixture copy); its *parent* goes first on the worker's ``sys.path``
    so the analyzed tree — not the ambient install — executes.

    ``workload`` optionally dispatches to a different traced driver —
    ``{"module": "repro.countermeasures.workload", "func":
    "run_masked_workload"}`` — with the same ``(seed, n)`` signature as
    the default :func:`_run_workload`. Used by ``verify --variant`` to
    replay one countermeasure per key seed.
    """
    if package != "repro":
        raise OracleError(
            f"oracle workload drives the 'repro' package, not {package!r}"
        )
    root = os.path.abspath(root)
    job = {
        "root": root,
        "n": int(n),
        "seeds": list(seeds),
        "sites": [
            [site.rsplit(":", 1)[0], int(site.rsplit(":", 1)[1])]
            for site in sites
        ],
        "declassify": [
            [key, spec["rel"], int(spec["watch_line"])]
            for key, spec in sorted((declassify or {}).items())
        ],
    }
    if workload is not None:
        job["workload"] = {
            "module": str(workload["module"]),
            "func": str(workload["func"]),
        }
    from repro.utils.io import atomic_write_text

    with tempfile.TemporaryDirectory(prefix="sast-oracle-") as tmp:
        job_path = os.path.join(tmp, "job.json")
        atomic_write_text(job_path, json.dumps(job))
        proc = subprocess.run(
            [sys.executable, "-c", _BOOTSTRAP, os.path.dirname(root), job_path],
            capture_output=True,
            text=True,
            timeout=timeout,
        )
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-8:]
        raise OracleError(
            "oracle worker failed (exit %d):\n%s" % (proc.returncode, "\n".join(tail))
        )
    try:
        raw = json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        raise OracleError(f"oracle worker produced unparseable output: {exc}") from exc
    return _build_report(raw, sites, declassify or {}, list(seeds), n)


def _build_report(
    raw: Mapping[str, Any],
    sites: Sequence[str],
    declassify: Mapping[str, Mapping[str, Any]],
    seeds: list[str],
    n: int,
) -> OracleReport:
    report = OracleReport(
        backend=str(raw.get("backend", "?")),
        python=str(raw.get("python", "?")),
        n=n,
        seeds=tuple(seeds),
    )
    observed: Mapping[str, Any] = raw.get("sites", {})
    for site in sites:
        report.sites[site] = _classify(site, observed.get(site), seeds)
    for key, spec in declassify.items():
        watch_key = f"{spec['rel']}:{spec['watch_line']}"
        result = _classify(watch_key, observed.get(watch_key), seeds)
        status = LIVE if result.hits > 0 else UNREACHED
        report.declassify[key] = SiteResult(
            site=key, status=status, hits=result.hits, seeds_hit=result.seeds_hit
        )
    return report


def _classify(site: str, per_seed: Mapping[str, Any] | None, seeds: list[str]) -> SiteResult:
    if not per_seed:
        return SiteResult(site=site, status=UNREACHED, hits=0, seeds_hit=0)
    hits = sum(int(rec.get("hits", 0)) for rec in per_seed.values())
    seeds_hit = sum(1 for rec in per_seed.values() if rec.get("hits", 0))
    if hits == 0:
        return SiteResult(site=site, status=UNREACHED, hits=0, seeds_hit=0)
    digests = {str(per_seed.get(seed, {}).get("digest", "")) for seed in seeds}
    status = REFUTED if len(digests) == 1 and seeds_hit == len(seeds) else CONFIRMED
    distinct = max(int(rec.get("distinct", 0)) for rec in per_seed.values())
    value_min: int | None = None
    value_max: int | None = None
    means: list[float] = []
    within: list[float] = []
    for rec in per_seed.values():
        values = rec.get("values")
        if not values or not values.get("count"):
            continue
        count = int(values["count"])
        if value_min is None or int(values["min"]) < value_min:
            value_min = int(values["min"])
        if value_max is None or int(values["max"]) > value_max:
            value_max = int(values["max"])
        means.append(float(values["mean"]))
        within.append(float(values["m2"]) / count)
    snr = 0.0
    if len(means) >= 2:
        grand = sum(means) / len(means)
        between = sum((m - grand) ** 2 for m in means) / len(means)
        noise = sum(within) / len(within)
        if noise > 0.0:
            snr = between / noise
        elif between > 0.0:
            snr = float(10 ** 6)   # noiseless but key-dependent: clamp
        snr = round(min(snr, float(10 ** 6)), 6)
    return SiteResult(
        site=site, status=status, hits=hits, seeds_hit=seeds_hit,
        distinct_values=distinct, value_min=value_min, value_max=value_max,
        snr_proxy=snr,
    )


# -- the traced workload (worker side) -------------------------------------


def _run_workload(seed: str, n: int) -> None:  # sast: declassify(reason=oracle driver: replays production flows under tracing; its call sites are harness plumbing, not product data flow)
    """One full pass over the attack surface for a single key seed.

    Everything except the secret key derivation is held fixed across
    seeds so digest differences isolate key dependence.
    """
    from repro.falcon import codec
    from repro.falcon.keygen import keygen
    from repro.falcon.ntru_solve import reduce_fg
    from repro.falcon.params import FalconParams
    from repro.falcon.sign import sign
    from repro.falcon.verify import verify
    from repro.fpr import emu
    from repro.fpr import trace as fpr_trace
    from repro.math import ntt

    from repro.countermeasures.workload import run_ct_workload, run_masked_workload

    params = FalconParams.get(n)
    sk, pk = keygen(params, seed=f"oracle-key-{seed}")
    message = b"falcon-down oracle workload"
    sig = sign(sk, message, seed="oracle-sign")
    if not verify(pk, message, sig):
        raise RuntimeError("oracle workload: signature failed to verify")
    if codec.decode_secret_key(codec.encode_secret_key(sk)).f != sk.f:
        raise RuntimeError("oracle workload: secret-key codec round-trip drifted")

    # degree-1 NTT base cases and the Babai underflow branch (extra < 0,
    # hit when (F, G) is already shorter than the scaled-up (f, g))
    ntt.intt(ntt.ntt([sk.f[0] % params.q], params.q), params.q)
    wide = [c * (1 << 60) + 1 for c in sk.f]
    reduce_fg(wide, [c * (1 << 60) for c in sk.g], list(sk.f), list(sk.g))

    # fpr sweep over key-derived doubles: covers the emulator paths the
    # numpy-based signing flow never enters
    floats: list[float] = []
    for arr in sk.b_hat:
        for value in arr[:4]:
            floats.extend((float(value.real), float(value.imag)))
    floats = [x for x in floats if x == x][:10]
    bits = [emu.fpr_from_float(x) for x in floats]
    bits += [emu.fpr_of(c) for c in sk.f[:4]]
    bits = [b for b in bits if not emu.is_zero(b)] or [emu.fpr_of(1)]
    pos_zero, neg_zero = emu.fpr_of(0), emu.fpr_neg(emu.fpr_of(0))
    # key-dependent zero-path traffic: one both-zero add per zero coeff
    for _ in range(1 + sum(1 for c in sk.f if c == 0)):
        emu.fpr_add(pos_zero, neg_zero)
        emu.fpr_add(pos_zero, pos_zero)
        emu.fpr_add(pos_zero, bits[0])
        emu.fpr_add(bits[0], neg_zero)
    for i, a in enumerate(bits):
        b = bits[(i + 1) % len(bits)]
        emu.fpr_add(a, b)
        emu.fpr_sub(a, b)
        emu.fpr_add(a, emu.fpr_neg(a))          # exact cancellation path
        emu.fpr_mul(a, b)
        emu.fpr_div(a, b)
        emu.fpr_sqrt(emu.fpr_abs(a))
        try:
            emu.fpr_sqrt(a)                     # negative inputs raise
        except ValueError:
            pass
        emu.fpr_rint(a)
        emu.fpr_floor(a)
        emu.fpr_trunc(a)
        emu.fpr_half(a)
        emu.fpr_double(a)
        s, be, mant = emu.decompose(a)
        emu.compose(s, be, mant)
        fpr_trace.fpr_add_trace(a, b)
        fpr_trace.fpr_mul_trace(a, b)
        # magnitude extremes: integer-exact and deep-subnormal floor/rint
        x = emu.fpr_to_float(a)
        emu.fpr_floor(emu.fpr_from_float(x * 2.0**60))
        emu.fpr_rint(emu.fpr_from_float(x * 2.0**60))
        emu.fpr_floor(emu.fpr_from_float(x * 2.0**-120))
        emu.fpr_trunc(emu.fpr_from_float(x * 2.0**-120))

    # countermeasure variants over the same key: keeps their residual
    # contract entries (e.g. the masked zero branch) reachable here too
    run_masked_workload(seed, n)
    run_ct_workload(seed, n)


# -- tracing backends (worker side) ----------------------------------------


def _encode_value(value: Any, depth: int = 0) -> str:
    """Stable, address-free text for digesting a sampled local."""
    if value is None or isinstance(value, (bool, int)):
        return repr(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (str, bytes)):
        return repr(value[:48])
    if isinstance(value, (list, tuple)) and depth < 2:
        head = ",".join(_encode_value(v, depth + 1) for v in value[:6])
        return f"[{head}]#{len(value)}"
    text = repr(value)
    if " at 0x" in text or "object at" in text:
        return f"<{type(value).__name__}>"
    return text[:160]


#: distinct operand tuples tracked per site before the counter saturates
#: (a lower bound past this point; keeps worker memory bounded)
_DISTINCT_CAP = 4096


class _Recorder:
    """Per-site hit counts, value-stream digests, and operand statistics.

    The rolling digest byte-stream is unchanged from the verdict-only
    recorder so recorded CONFIRMED/REFUTED classifications stay stable;
    the per-hit buffer it consumes is additionally hashed into a
    distinct-tuple set (value cardinality) and every integer local on
    the line feeds a Welford mean/variance accumulator plus a running
    min/max (operand range) — the raw material of the dynamic SNR proxy.
    """

    def __init__(self, watch: Mapping[str, Mapping[int, str]]) -> None:
        # realpath file -> line -> site key
        self.watch = {k: dict(v) for k, v in watch.items()}
        self.names: dict[str, dict[int, tuple[str, ...]]] = {}
        self.results: dict[str, dict[str, dict[str, Any]]] = {}
        self._seed = ""
        self._hashes: dict[str, "hashlib._Hash"] = {}
        self._hits: dict[str, int] = {}
        self._tuples: dict[str, set[bytes]] = {}
        # site -> [count, mean, m2, min, max] over int locals on the line
        self._stats: dict[str, list[Any]] = {}
        for path in self.watch:
            self.names[path] = _names_by_line(path, set(self.watch[path]))

    def begin_seed(self, seed: str) -> None:
        self._flush()
        self._seed = seed
        self._hashes = {}
        self._hits = {}
        self._tuples = {}
        self._stats = {}

    def _flush(self) -> None:
        if not self._seed:
            return
        for site, count in self._hits.items():
            rec: dict[str, Any] = {
                "hits": count,
                "digest": self._hashes[site].hexdigest(),
                "distinct": len(self._tuples.get(site, ())),
            }
            stats = self._stats.get(site)
            if stats is not None and stats[0]:
                rec["values"] = {
                    "count": stats[0],
                    "mean": stats[1],
                    "m2": stats[2],
                    "min": stats[3],
                    "max": stats[4],
                }
            self.results.setdefault(site, {})[self._seed] = rec
        self._seed = ""

    def finish(self) -> dict[str, Any]:
        self._flush()
        return self.results

    def visit(self, filename: str, lineno: int, frame: Any) -> None:
        lines = self.watch.get(filename)
        if lines is None:
            return
        site = lines.get(lineno)
        if site is None:
            return
        digest = self._hashes.get(site)
        if digest is None:
            digest = self._hashes[site] = hashlib.sha256()
            self._hits[site] = 0
            self._tuples[site] = set()
            self._stats[site] = [0, 0.0, 0.0, None, None]
        self._hits[site] += 1
        digest.update(b"\x1e")
        local_vars = frame.f_locals
        buffer = bytearray()
        stats = self._stats[site]
        for name in self.names.get(filename, {}).get(lineno, ()):
            if name in local_vars:
                value = local_vars[name]
                buffer += _encode_value(value).encode("utf-8", "replace")
                buffer += b"\x1f"
                if isinstance(value, int) and not isinstance(value, bool):
                    try:
                        as_float = float(value)
                    except OverflowError:
                        continue       # keygen bigints beyond double range
                    stats[0] += 1
                    delta = as_float - stats[1]
                    stats[1] += delta / stats[0]
                    stats[2] += delta * (as_float - stats[1])
                    if stats[3] is None or value < stats[3]:
                        stats[3] = value
                    if stats[4] is None or value > stats[4]:
                        stats[4] = value
        digest.update(buffer)
        tuples = self._tuples[site]
        if len(tuples) < _DISTINCT_CAP:
            tuples.add(hashlib.sha256(bytes(buffer)).digest()[:16])


def _names_by_line(path: str, lines: set[int]) -> dict[int, tuple[str, ...]]:
    """Identifiers appearing on each watched line (sampled from locals)."""
    try:
        with open(path, encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
    except (OSError, SyntaxError):
        return {}
    by_line: dict[int, set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.lineno in lines:
            by_line.setdefault(node.lineno, set()).add(node.id)
    return {line: tuple(sorted(names)) for line, names in by_line.items()}


def _trace_settrace(recorder: _Recorder, workload: Any) -> None:
    watched_files = set(recorder.watch)

    def local_trace(frame: Any, event: str, arg: Any) -> Any:
        if event == "line":
            recorder.visit(frame.f_code.co_filename, frame.f_lineno, frame)
        return local_trace

    def global_trace(frame: Any, event: str, arg: Any) -> Any:
        if event == "call" and frame.f_code.co_filename in watched_files:
            return local_trace
        return None

    sys.settrace(global_trace)
    try:
        workload()
    finally:
        sys.settrace(None)


def _trace_monitoring(recorder: _Recorder, workload: Any) -> None:
    mon = sys.monitoring
    tool_id = mon.PROFILER_ID
    mon.use_tool_id(tool_id, "repro-sast-oracle")
    disable = mon.DISABLE

    def on_line(code: Any, lineno: int) -> Any:
        lines = recorder.watch.get(code.co_filename)
        if lines is None or lineno not in lines:
            return disable
        recorder.visit(code.co_filename, lineno, sys._getframe(1))
        return None

    mon.register_callback(tool_id, mon.events.LINE, on_line)
    mon.set_events(tool_id, mon.events.LINE)
    try:
        workload()
    finally:
        mon.set_events(tool_id, 0)
        mon.register_callback(tool_id, mon.events.LINE, None)
        mon.free_tool_id(tool_id)


def _backend_name() -> str:
    return "monitoring" if hasattr(sys, "monitoring") else "settrace"


# -- worker entry point ----------------------------------------------------


def _worker_main(job_path: str) -> None:
    with open(job_path, encoding="utf-8") as fh:
        job = json.load(fh)
    root = job["root"]
    watch: dict[str, dict[int, str]] = {}

    def add(rel: str, line: int, site: str, overwrite: bool) -> None:
        # key the watch map by both the joined path and its realpath so
        # co_filename matches regardless of symlinked temp directories
        joined = os.path.abspath(os.path.join(root, rel))
        for path in {joined, os.path.realpath(joined)}:
            lines = watch.setdefault(path, {})
            if overwrite or line not in lines:
                lines[line] = site

    for rel, line in job["sites"]:
        add(rel, int(line), f"{rel}:{line}", overwrite=True)
    for _key, rel, line in job["declassify"]:
        add(rel, int(line), f"{rel}:{line}", overwrite=False)
    recorder = _Recorder(watch)
    backend = _backend_name()
    trace = _trace_monitoring if backend == "monitoring" else _trace_settrace
    workload_fn = _run_workload
    spec = job.get("workload")
    if spec:
        # import outside tracing so module-level lines (constants, class
        # bodies) never enter the digests: only per-seed execution counts
        import importlib

        workload_fn = getattr(
            importlib.import_module(str(spec["module"])), str(spec["func"])
        )
    for seed in job["seeds"]:
        recorder.begin_seed(seed)
        trace(recorder, lambda: workload_fn(seed, int(job["n"])))
        if backend == "monitoring":
            sys.monitoring.restart_events()
    payload = {
        "backend": backend,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "sites": recorder.finish(),
    }
    json.dump(payload, sys.stdout)
    sys.stdout.write("\n")


if __name__ == "__main__":  # pragma: no cover - debugging convenience
    _worker_main(sys.argv[1])
