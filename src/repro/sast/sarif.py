"""SARIF 2.1.0 renderer for ``repro.sast`` (``--format sarif``).

One ``run`` per invocation: the tool driver carries the full rule
catalog, each finding becomes a ``result`` with a physical location
(root-relative URI against the ``SRCROOT`` base), and taint chains are
exported as ``codeFlows``/``threadFlows`` so SARIF viewers can step
through the propagation evidence hop by hop. Findings accepted by the
leakage contract are emitted with a ``suppressions`` entry (kind
``external``, the reviewed reason as justification) instead of being
dropped, which is the SARIF-native way to say "known and triaged".

Only the subset of SARIF the repo needs is produced; the structural
invariants are pinned by ``tests/test_sast_sarif.py`` against the
2.1.0 specification (schema-validated shape, hand-checked — the
``jsonschema`` package is deliberately not a dependency).
"""

from __future__ import annotations

import json
import os
import re
from typing import TYPE_CHECKING, Any, Iterable

from repro.sast.findings import RULES, Finding, sort_findings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sast.contract import Contract

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: rule id -> SARIF level; contract violations and malformed annotations
#: block the gate outright, everything else is a warning to triage
_ERROR_RULES = ("CT", "AN", "BL")

#: taint-chain hops end in "(path:line)" when the evidence is located
_HOP_LOCATION = re.compile(r"\((?P<path>[^()]+\.py):(?P<line>\d+)\)\s*$")


def _level(rule: str) -> str:
    return "error" if rule.startswith(_ERROR_RULES) else "warning"


def _rel_uri(path: str, root: str) -> str:
    rel = os.path.relpath(path, root) if os.path.isabs(path) else path
    return rel.replace(os.sep, "/")


def _location(uri: str, line: int, col: int = 0) -> dict[str, Any]:
    region: dict[str, Any] = {"startLine": max(line, 1)}
    if col:
        region["startColumn"] = col
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri, "uriBaseId": "SRCROOT"},
            "region": region,
        }
    }


def _code_flow(finding: Finding, root: str) -> dict[str, Any]:
    locations: list[dict[str, Any]] = []
    for i, hop in enumerate(finding.taint_chain):
        kinds = ["taint"]
        kinds.append("source" if i == 0 else
                     "sink" if i == len(finding.taint_chain) - 1 else "call")
        entry: dict[str, Any] = {
            "importance": "essential",
            "location": {"message": {"text": hop}},
            "kinds": kinds,
        }
        m = _HOP_LOCATION.search(hop)
        if m:
            entry["location"].update(
                _location(_rel_uri(m.group("path"), root), int(m.group("line")))
            )
        locations.append(entry)
    return {"threadFlows": [{"locations": locations}]}


def render_sarif(
    findings: Iterable[Finding],
    root: str,
    contract: "Contract | None" = None,
    suppressed: Iterable[tuple[Finding, str]] = (),
) -> str:
    """SARIF 2.1.0 log for a finding set.

    ``suppressed`` pairs each contract-accepted finding with its reviewed
    justification; those results carry a ``suppressions`` entry so SARIF
    consumers show them as triaged instead of outstanding. When the
    contract carries exploitability blocks (schema v2), each matching
    result additionally gets the GitHub code-scanning
    ``properties.security-severity`` decimal (the triage score, 0-10)
    so scanning UIs sort findings by attackability.
    """
    severity: dict[tuple, float] = {}
    if contract is not None:
        from repro.sast.baseline import fingerprint

        for entry in contract.entries:
            if entry.exploitability is not None:
                severity[entry.fingerprint] = entry.exploitability.score

    rule_ids = sorted(RULES)
    rule_index = {rule: i for i, rule in enumerate(rule_ids)}

    results: list[dict[str, Any]] = []
    ordered = [(f, None) for f in sort_findings(list(findings))]
    ordered += [(f, why) for f, why in suppressed]
    for finding, justification in ordered:
        uri = _rel_uri(finding.path, root)
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": _level(finding.rule),
            "message": {"text": finding.message},
            "locations": [_location(uri, finding.line, finding.col)],
        }
        if finding.function:
            result["properties"] = {"function": finding.function}
        if severity:
            score = severity.get(fingerprint(finding, root))
            if score is not None:
                result.setdefault("properties", {})[
                    "security-severity"
                ] = f"{score:.2f}"
        if finding.taint_chain:
            result["codeFlows"] = [_code_flow(finding, root)]
        if justification is not None:
            result["suppressions"] = [
                {"kind": "external", "justification": justification}
            ]
        results.append(result)

    driver: dict[str, Any] = {
        "name": "repro-sast",
        "informationUri": "https://example.invalid/repro-sast",
        "semanticVersion": "1.0.0",
        "rules": [
            {
                "id": rule,
                "shortDescription": {"text": RULES[rule]},
                "defaultConfiguration": {"level": _level(rule)},
            }
            for rule in rule_ids
        ],
    }
    run: dict[str, Any] = {
        "tool": {"driver": driver},
        "columnKind": "unicodeCodePoints",
        "originalUriBaseIds": {
            "SRCROOT": {"uri": "file://" + os.path.abspath(root).rstrip("/") + "/"}
        },
        "results": results,
    }
    if contract is not None:
        run["properties"] = {
            "leakageContract": {
                "entries": len(contract.entries),
                "refuted": len(contract.refuted),
                "coverage_prefixes": list(contract.coverage_prefixes),
            }
        }
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(log, indent=1, sort_keys=True)
