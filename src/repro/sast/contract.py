"""Leakage contract: the machine-verified successor to the baseline.

``sast-baseline.json`` accepted findings on free-text rationale alone.
The contract (``leakage-contract.json``) is stricter — every accepted
finding must carry:

* a **leak class** tying it to the paper's taxonomy (``sign``,
  ``exponent``, ``mantissa-mul``, ``mantissa-add`` of the
  ``FFT(c) ⊙ FFT(f)`` product, or ``ancillary`` for supporting
  arithmetic such as keygen-time NTRU solving and NTT reductions);
* a **reviewed reason** explaining why the flow is accepted;
* an **oracle verdict** from :mod:`repro.sast.oracle` — ``CONFIRMED``
  entries are live leak chains the repro intentionally models, a
  ``refuted`` section records findings whose operand streams were
  proven secret-independent at runtime.

``repro-sast verify`` enforces the contract (rules CT001–CT007): new
findings must be triaged in, stale entries must be removed, recorded
leak classes must agree with the dataflow-inferred class when the
taint engine produced one (CT006), countermeasure variants must honor
their recorded ``classes_absent``/``residual`` claims (CT007), and —
when the dynamic oracle runs — recorded verdicts must still hold and
declassify scopes inside the declared coverage must still execute.
Entries are matched by the same drift-tolerant fingerprint the
baseline used: ``(rule, path, function, normalized line, occurrence)``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sast.project import Project

from repro.sast.baseline import assign_occurrences, fingerprint
from repro.sast.exploit import Exploitability, score_contract
from repro.sast.findings import Finding
from repro.sast.oracle import CONFIRMED, LIVE, REFUTED, UNREACHED, OracleReport
from repro.sast.variants import (
    VariantSpec,
    check_variants_static,
    normalize_line,
    parse_variants,
    render_variants,
)

__all__ = [
    "LEAK_CLASSES",
    "DEFAULT_COVERAGE",
    "HEURISTIC_FALLBACK_RULES",
    "Contract",
    "ContractEntry",
    "build_contract",
    "infer_leak_class",
    "load_contract",
    "render_contract",
    "verify_contract",
]

#: schema v2 adds per-entry ``exploitability`` blocks (score, guess
#: space, hypothesis computability, oracle operand statistics); v1
#: files still load — their entries simply carry no block yet
_FORMAT_VERSION = 2
_ACCEPTED_VERSIONS = (1, 2)

#: the paper's leak taxonomy plus the bucket for supporting arithmetic
LEAK_CLASSES = ("sign", "exponent", "mantissa-mul", "mantissa-add", "ancillary")

#: oracle verdicts a contract entry may record; ``N/A`` is reserved for
#: non-secret-flow rules (DT/CC/AN), where differential replay proves nothing
_ENTRY_VERDICTS = (CONFIRMED, UNREACHED, REFUTED, "N/A")

#: path prefixes the oracle workload exercises — declassify liveness and
#: verdict enforcement apply only inside this boundary
DEFAULT_COVERAGE = ("falcon/", "fpr/", "math/")

Fingerprint = tuple[str, str, str, str, int]


@dataclass(frozen=True)
class ContractEntry:
    """One accepted (or refuted) finding."""

    rule: str
    path: str                # root-relative, forward slashes
    function: str
    line_text: str           # whitespace-normalized source line
    occurrence: int
    leak_class: str
    reason: str
    verdict: str
    #: how the leak class was derived: "dataflow" entries are machine-
    #: checked against the taint component lattice on every verify
    #: (CT006); "heuristic" entries came from the keyword fallback.
    leak_class_source: str = "heuristic"
    #: schema v2 triage block (None for v1 files and refuted entries);
    #: deliberately NOT part of the fingerprint, so score drift never
    #: reads as a stale entry
    exploitability: Exploitability | None = None

    @property
    def fingerprint(self) -> Fingerprint:
        return (self.rule, self.path, self.function, self.line_text, self.occurrence)

    def describe(self) -> str:
        where = f" in {self.function}()" if self.function else ""
        return f"{self.rule} at {self.path}{where} ({self.line_text!r})"


@dataclass
class Contract:
    """Parsed ``leakage-contract.json``."""

    entries: list[ContractEntry] = field(default_factory=list)
    refuted: list[ContractEntry] = field(default_factory=list)
    coverage_prefixes: tuple[str, ...] = DEFAULT_COVERAGE
    oracle_meta: dict[str, Any] = field(default_factory=dict)
    variants: dict[str, VariantSpec] = field(default_factory=dict)

    def entry_map(self) -> dict[Fingerprint, ContractEntry]:
        return {e.fingerprint: e for e in self.entries}

    def refuted_map(self) -> dict[Fingerprint, ContractEntry]:
        return {e.fingerprint: e for e in self.refuted}

    def covers(self, rel_path: str) -> bool:
        return any(rel_path.startswith(p) for p in self.coverage_prefixes)


# -- (de)serialization -----------------------------------------------------


def _parse_entry(raw: Any, path: str, section: str) -> ContractEntry:
    if not isinstance(raw, dict):
        raise ValueError(f"contract {path!r}: non-object entry in {section!r}")
    block = raw.get("exploitability")
    if block is not None and not isinstance(block, dict):
        raise ValueError(
            f"contract {path!r}: 'exploitability' must be an object in {section!r}"
        )
    entry = ContractEntry(
        rule=str(raw.get("rule", "")),
        path=str(raw.get("path", "")),
        function=str(raw.get("function", "")),
        line_text=str(raw.get("line_text", "")),
        occurrence=int(raw.get("occurrence", 0)),
        leak_class=str(raw.get("leak_class", "")),
        reason=str(raw.get("reason", "")),
        verdict=str(raw.get("verdict", "")),
        leak_class_source=str(raw.get("leak_class_source", "heuristic")),
        exploitability=(
            Exploitability.from_jsonable(block) if block is not None else None
        ),
    )
    if not entry.rule or not entry.path:
        raise ValueError(f"contract {path!r}: entry missing rule/path in {section!r}")
    if entry.leak_class not in LEAK_CLASSES:
        raise ValueError(
            f"contract {path!r}: {entry.describe()} has leak_class "
            f"{entry.leak_class!r}; expected one of {', '.join(LEAK_CLASSES)}"
        )
    if not entry.reason.strip():
        raise ValueError(f"contract {path!r}: {entry.describe()} has no reason")
    if entry.leak_class_source not in ("dataflow", "heuristic"):
        raise ValueError(
            f"contract {path!r}: {entry.describe()} has leak_class_source "
            f"{entry.leak_class_source!r}; expected 'dataflow' or 'heuristic'"
        )
    expected = (REFUTED,) if section == "refuted" else _ENTRY_VERDICTS
    if entry.verdict not in expected:
        raise ValueError(
            f"contract {path!r}: {entry.describe()} has verdict "
            f"{entry.verdict!r}; expected one of {', '.join(expected)}"
        )
    return entry


def load_contract(path: str) -> Contract:
    """Read and validate a contract file (ValueError when malformed)."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") not in _ACCEPTED_VERSIONS:
        raise ValueError(f"unsupported contract format in {path!r}")
    if not isinstance(data.get("entries"), list):
        raise ValueError(f"contract {path!r} has no 'entries' list")
    coverage = data.get("coverage_prefixes", list(DEFAULT_COVERAGE))
    if not isinstance(coverage, list) or not all(isinstance(c, str) for c in coverage):
        raise ValueError(f"contract {path!r}: 'coverage_prefixes' must be strings")
    contract = Contract(
        coverage_prefixes=tuple(coverage),
        oracle_meta=dict(data.get("oracle", {})),
    )
    for raw in data["entries"]:
        contract.entries.append(_parse_entry(raw, path, "entries"))
    for raw in data.get("refuted", []):
        contract.refuted.append(_parse_entry(raw, path, "refuted"))
    contract.variants = parse_variants(data.get("variants", {}), path, LEAK_CLASSES)
    return contract


def render_contract(contract: Contract) -> str:
    def encode(entry: ContractEntry) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": entry.rule,
            "path": entry.path,
            "function": entry.function,
            "line_text": entry.line_text,
            "leak_class": entry.leak_class,
            "leak_class_source": entry.leak_class_source,
            "reason": entry.reason,
            "verdict": entry.verdict,
        }
        if entry.occurrence:
            out["occurrence"] = entry.occurrence
        if entry.exploitability is not None:
            out["exploitability"] = entry.exploitability.to_jsonable()
        return out

    def order(entry: ContractEntry) -> tuple[str, str, str, str, int]:
        return (entry.path, entry.rule, entry.function, entry.line_text, entry.occurrence)

    doc: dict[str, Any] = {
        "version": _FORMAT_VERSION,
        "coverage_prefixes": list(contract.coverage_prefixes),
        "entries": [encode(e) for e in sorted(contract.entries, key=order)],
    }
    if contract.refuted:
        doc["refuted"] = [encode(e) for e in sorted(contract.refuted, key=order)]
    if contract.oracle_meta:
        doc["oracle"] = contract.oracle_meta
    if contract.variants:
        doc["variants"] = render_variants(contract.variants)
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


# -- leak-class inference --------------------------------------------------

_SIGN_TOKENS = ("sx", "sy", "s_b", "s_s", "sign", "coeff < 0")
_EXP_TOKENS = ("be", "exp", "drop", "shift", "e >= 0", "e & 1", "e // 2", "extra")

#: rules the keyword fallback still serves. The component lattice fully
#: covers the other SF rules — SF002/SF005 findings carry lattice- or
#: masking-derived evidence by construction, SF004/SF006 fire on
#: annotated/pragma'd lines whose class the annotation review settles —
#: so the keyword heuristic is retired for them: a new finding there
#: defaults straight to ``ancillary`` until the lattice or review
#: refines it, instead of guessing from line tokens.
HEURISTIC_FALLBACK_RULES = frozenset({"SF001", "SF003"})


def infer_leak_class(rule: str, rel_path: str, function: str, line_text: str) -> str:
    """Default paper leak class for a finding (review can override)."""
    if rule not in HEURISTIC_FALLBACK_RULES:
        return "ancillary"
    short = function.rsplit(".", 1)[-1]
    if rel_path.startswith("fpr/"):
        tokens = f"{line_text} {short}"
        if any(t in line_text for t in _SIGN_TOKENS) or line_text.strip() in ("if s:", "s,"):
            return "sign"
        if short in ("decompose", "_unpack_normal", "compose"):
            return "exponent"
        if any(t in tokens for t in _EXP_TOKENS):
            return "exponent"
        if "mul" in short:
            return "mantissa-mul"
        if short in ("fpr_add", "fpr_sub", "fpr_add_trace"):
            return "mantissa-add"
        return "ancillary"
    if rel_path == "falcon/sign.py" and short == "sign_target":
        return "mantissa-mul"      # the FFT(c) ⊙ FFT(f) product itself
    if rel_path == "falcon/compress.py" and "coeff < 0" in line_text:
        return "sign"
    return "ancillary"


_REASON_TEMPLATES: tuple[tuple[str, str], ...] = (
    ("fpr/", "faithful model of the leaky double-precision path the paper attacks"),
    ("falcon/ntru_solve.py", "keygen-time NTRU solving on secret (f, g); out of the signing-time threat model but kept as honest inventory"),
    ("falcon/keygen.py", "keygen-time arithmetic on freshly sampled secrets; reached once per key"),
    ("math/ntt.py", "modular reduction on secret polynomial coefficients; Python % is variable-time"),
    ("math/poly.py", "polynomial arithmetic over secret coefficients during keygen"),
    ("math/fft.py", "FFT butterflies over secret-derived floats"),
    ("falcon/", "signing-path arithmetic over secret-derived values; the leakage the repro intentionally models"),
    ("", "accepted secret-dependent flow in the modeled attack surface"),
)


def _default_reason(rel_path: str) -> str:
    for prefix, reason in _REASON_TEMPLATES:
        if rel_path.startswith(prefix):
            return reason
    return _REASON_TEMPLATES[-1][1]


# -- construction ----------------------------------------------------------


def build_contract(
    findings: Iterable[Finding],
    root: str,
    report: OracleReport | None = None,
    previous: Contract | None = None,
    coverage_prefixes: tuple[str, ...] = DEFAULT_COVERAGE,
    project: "Project | None" = None,
) -> Contract:
    """Triaged contract for the current findings.

    Leak classes and reasons are carried over from ``previous`` when the
    fingerprint still matches, otherwise inferred (and meant to be
    reviewed). With an oracle ``report``, REFUTED findings move to the
    ``refuted`` section; UNREACHED ones stay in ``entries`` with their
    failing verdict so ``verify`` flags them until triaged.

    With a ``project``, every SF entry additionally gets a schema-v2
    ``exploitability`` block from :func:`repro.sast.exploit.score_contract`
    — oracle operand statistics come from ``report`` when present, else
    from the entry carried over from ``previous``, so a static-only
    rebuild re-scores without losing the recorded dynamics.
    """
    prev_entries: dict[Fingerprint, ContractEntry] = {}
    if previous is not None:
        prev_entries.update(previous.entry_map())
        prev_entries.update(previous.refuted_map())
    contract = Contract(coverage_prefixes=tuple(coverage_prefixes))
    if previous is not None:
        # variant claims are hand-authored; a rebuild must not drop them
        contract.variants = dict(previous.variants)
    if report is not None:
        contract.oracle_meta = {
            "backend": report.backend,
            "python": report.python,
            "n": report.n,
            "seeds": list(report.seeds),
        }
    for f in assign_occurrences(list(findings)):
        fp = fingerprint(f, root)
        rule, rel, function, line_text, occurrence = fp
        prev = prev_entries.get(fp)
        if report is not None and rule.startswith("SF"):
            site = f"{rel}:{f.line}"
            verdict = report.verdict(site)
        elif rule.startswith("SF"):
            # static-only refresh: carry the recorded verdict (a rebuild
            # without the oracle must not resurrect a refuted chain as
            # CONFIRMED), default to CONFIRMED only for new findings
            verdict = prev.verdict if prev is not None else CONFIRMED
        else:
            verdict = "N/A"
        if f.leak_class:
            leak_class, leak_source = f.leak_class, "dataflow"
        elif prev is not None:
            leak_class, leak_source = prev.leak_class, "heuristic"
        else:
            leak_class = infer_leak_class(rule, rel, function, line_text)
            leak_source = "heuristic"
        entry = ContractEntry(
            rule=rule,
            path=rel,
            function=function,
            line_text=line_text,
            occurrence=occurrence,
            leak_class=leak_class,
            reason=prev.reason if prev else _default_reason(rel),
            verdict=verdict,
            leak_class_source=leak_source,
            exploitability=prev.exploitability if prev else None,
        )
        if verdict == REFUTED:
            contract.refuted.append(entry)
        else:
            contract.entries.append(entry)
    if project is not None:
        blocks = score_contract(contract.entries, findings, project, report)
        contract.entries = [
            replace(e, exploitability=blocks.get(e.fingerprint, e.exploitability))
            for e in contract.entries
        ]
        # refuted chains are not attack targets: no triage block
        contract.refuted = [
            replace(e, exploitability=None) for e in contract.refuted
        ]
    return contract


# -- enforcement -----------------------------------------------------------


def _violation(rule: str, path: str, message: str, line: int = 0) -> Finding:
    return Finding(rule=rule, path=path, line=line, col=0, message=message)


def verify_contract(
    findings: Iterable[Finding],
    contract: Contract,
    root: str,
    contract_path: str = "leakage-contract.json",
    report: OracleReport | None = None,
) -> list[Finding]:
    """Contract violations (CT001–CT007) for the current findings.

    Without an oracle ``report`` the recorded verdicts are enforced;
    with one, fresh verdicts override recorded ones and declassify
    liveness inside the coverage boundary is checked too.
    """
    violations: list[Finding] = []
    entry_map = contract.entry_map()
    refuted_map = contract.refuted_map()
    matched: set[Fingerprint] = set()
    numbered = assign_occurrences(list(findings))

    def check_leak_class(entry: ContractEntry, f: Finding) -> None:
        """CT006: the recorded class must match the inferred one."""
        if not f.rule.startswith("SF"):
            return
        inferred = f.leak_class or infer_leak_class(
            entry.rule, entry.path, entry.function, entry.line_text
        )
        source = "dataflow" if f.leak_class else "heuristic"
        if inferred and entry.leak_class != inferred:
            violations.append(_violation(
                "CT006", f.path, line=f.line,
                message=f"{entry.describe()}: recorded leak_class "
                f"{entry.leak_class!r} disagrees with the {source}-inferred "
                f"class {inferred!r} — fix the entry or document the lattice "
                "refinement",
            ))
        elif entry.leak_class_source == "dataflow" and not f.leak_class:
            violations.append(_violation(
                "CT006", f.path, line=f.line,
                message=f"{entry.describe()}: recorded as dataflow-derived but "
                "the taint lattice no longer resolves a component for it — "
                "re-derive the entry (leak_class_source: heuristic) or fix the "
                "lattice regression",
            ))

    for f in numbered:
        fp = fingerprint(f, root)
        rel = fp[1]
        site = f"{rel}:{f.line}"
        fresh = None
        if report is not None and f.rule.startswith("SF"):
            fresh = report.verdict(site)
        if fp in entry_map:
            matched.add(fp)
            entry = entry_map[fp]
            check_leak_class(entry, f)
            verdict = fresh if fresh is not None else entry.verdict
            if verdict in (UNREACHED, REFUTED):
                qualifier = "fresh oracle" if fresh is not None else "recorded"
                violations.append(_violation(
                    "CT003", f.path, line=f.line,
                    message=f"{entry.describe()}: {qualifier} verdict is {verdict}; "
                    "re-triage the entry (fix the workload gap or move it to 'refuted')",
                ))
        elif fp in refuted_map:
            matched.add(fp)
            check_leak_class(refuted_map[fp], f)
            if fresh == CONFIRMED:
                violations.append(_violation(
                    "CT004", f.path, line=f.line,
                    message=f"{refuted_map[fp].describe()} is listed as refuted but "
                    "the fresh oracle verdict is CONFIRMED — the chain is live",
                ))
        else:
            suffix = f" (oracle verdict: {fresh})" if fresh is not None else ""
            violations.append(_violation(
                "CT001", f.path, line=f.line,
                message=f"finding not covered by the leakage contract: {f.rule} "
                f"{f.message}{suffix} — triage it into {contract_path}",
            ))

    for fp, entry in sorted({**entry_map, **refuted_map}.items()):
        if fp not in matched:
            violations.append(_violation(
                "CT002", contract_path,
                message=f"stale contract entry: {entry.describe()} matches no "
                "current finding — remove it",
            ))

    if report is not None:
        for key, result in sorted(report.declassify.items()):
            rel = key.rsplit(":", 1)[0]
            if contract.covers(rel) and result.status != LIVE:
                violations.append(_violation(
                    "CT005", os.path.join(root, rel),
                    line=int(key.rsplit(":", 1)[1]),
                    message=f"dead declassify at {key}: the annotated scope never "
                    "executed under the oracle workload — remove the annotation "
                    "or extend the workload",
                ))

    def classify(f: Finding) -> str:
        if f.leak_class:
            return f.leak_class
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        return infer_leak_class(
            f.rule, rel, f.function or "", normalize_line(f.source_line or "")
        )

    violations.extend(
        check_variants_static(numbered, contract.variants, root, classify)
    )
    return violations
