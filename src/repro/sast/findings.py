"""Finding model, rule catalog, and renderers for ``repro.sast``.

Every pass emits :class:`Finding` dataclasses; the runner sorts, applies
the baseline, and renders them either as ruff-style text
(``path:line:col: RULE message``) or as JSON (one object per finding
with the full ``taint_chain``). Exit codes are part of the contract so
CI and shell scripts can tell outcomes apart:

* ``EXIT_CLEAN`` (0) — analysis ran, no unsuppressed findings;
* ``EXIT_FINDINGS`` (1) — analysis ran, at least one finding (including
  stale-baseline entries under ``--check-baseline``);
* ``EXIT_ERROR`` (2) — usage or internal error (bad flags, unreadable
  root, malformed baseline file).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "RULES",
    "Finding",
    "render_text",
    "render_json",
    "sort_findings",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Rule catalog: id -> one-line description (documented in
#: ``docs/static-analysis.md``).
RULES: dict[str, str] = {
    # -- secret-flow taint (SF) -------------------------------------------
    "SF001": "secret-dependent branch (if/while/ternary/assert condition is tainted)",
    "SF002": "secret-indexed subscript (a tainted value selects the element)",
    "SF003": "secret operand reaches a variable-time operation (div/mod/pow/exp/log/sqrt)",
    "SF004": "tainted value reaches a '# sast: sink' annotated line",
    "SF005": "masking violation (mask reuse across values, or share recombination "
    "that re-exposes a secret)",
    "SF006": "secret-bounded loop in a '# sast: constant-time' module (iteration "
    "count depends on a secret)",
    # -- determinism (DT) -------------------------------------------------
    "DT001": "unseeded randomness outside repro.utils.rng (random module, legacy "
    "np.random, seedless default_rng, os.urandom)",
    "DT002": "wall-clock time in a result-bearing path (time.time/datetime.now "
    "outside the telemetry layer)",
    "DT003": "iteration order of a set/dict/filesystem listing flows into a "
    "digest, manifest, or fingerprint without sorted()",
    # -- concurrency / durability (CC) ------------------------------------
    "CC001": "mutation of module-level state in code reachable from "
    "ProcessPoolExecutor workers",
    "CC002": "file write bypasses repro.utils.io atomic_write_* (raw open/Path "
    "write modes, non-atomic np.save)",
    # -- annotations / baseline (meta) ------------------------------------
    "AN001": "malformed sast annotation (unknown kind, declassify without a "
    "reason, or a bad rule list)",
    "BL001": "stale baseline entry (matches no current finding)",
    # -- leakage contract (CT) --------------------------------------------
    "CT001": "finding not covered by the leakage contract (new leak chain)",
    "CT002": "stale contract entry (matches no current finding)",
    "CT003": "contract entry whose oracle verdict is UNREACHED or REFUTED",
    "CT004": "refuted contract entry contradicted by a fresh CONFIRMED verdict",
    "CT005": "dead declassify scope (annotated code never ran under the oracle workload)",
    "CT006": "contract entry whose recorded leak class disagrees with the "
    "dataflow-inferred class",
    "CT007": "countermeasure variant drift (a claimed leak-class reduction no "
    "longer holds statically or dynamically)",
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which rule, why, and how taint got there."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Propagation evidence, source first, sink last. Empty for the
    #: determinism / concurrency / meta rules.
    taint_chain: tuple[str, ...] = ()
    #: Qualified name of the enclosing function ("" at module level);
    #: part of the baseline fingerprint so entries survive line drift.
    function: str = ""
    #: Normalized source text of the flagged line (fingerprint component).
    source_line: str = ""
    #: Disambiguates identical (rule, path, function, source_line) tuples.
    occurrence: int = 0
    #: Dataflow-inferred leak class ("" when the taint component lattice
    #: could not resolve one; the keyword heuristic is the fallback then).
    #: Not part of the fingerprint: class drift is surfaced as CT006, not
    #: as a stale entry.
    leak_class: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_jsonable(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.taint_chain:
            out["taint_chain"] = list(self.taint_chain)
        if self.function:
            out["function"] = self.function
        if self.leak_class:
            out["leak_class"] = self.leak_class
        return out


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable presentation order: path, then line/col, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.message))


def render_text(findings: list[Finding], verbose_chains: bool = True) -> str:
    """Ruff-style text: one line per finding, taint chains indented."""
    lines: list[str] = []
    for f in sort_findings(findings):
        lines.append(f"{f.location()}: {f.rule} {f.message}")
        if verbose_chains and f.taint_chain:
            for i, hop in enumerate(f.taint_chain):
                marker = "source" if i == 0 else ("sink" if i == len(f.taint_chain) - 1 else "via")
                lines.append(f"    {marker:>6}: {hop}")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable report: ``{"findings": [...], "count": N}``."""
    payload = {
        "findings": [f.to_jsonable() for f in sort_findings(findings)],
        "count": len(findings),
    }
    return json.dumps(payload, indent=1, sort_keys=True)
