"""Incremental summary cache for ``repro.sast`` (opt-in via ``--cache``).

The taint pass is interprocedural, so per-file reuse has to respect the
call graph: a finding in module M depends on M's own source *and* on
every module M is connected to through imports (callees feed summaries
upward, callers feed argument taint downward). The cache therefore
works at two granularities:

* **full-tree fast path** — when every file's content hash matches the
  cached run (and the analyzer itself is unchanged), the cached
  findings are returned without running any pass;
* **component re-analysis** — when some files changed, only the
  import-graph components containing a changed (or added/removed)
  module are re-analyzed, as a restricted sub-project; findings for
  untouched components are replayed from the cache.

Taint can launder through any function in either direction (callees
feed summaries upward, callers feed argument taint downward, and one
caller's taint can reach another caller through a shared helper's
return), so the reuse unit is the *undirected* closure over import
edges. Pure re-export hubs — modules whose body is nothing but
imports, a docstring, and ``__all__`` — are the exception: they define
no functions and execute no code, so taint cannot launder through
them. Edges through a hub are resolved to the defining module instead,
and the hub itself only *invalidates* its importers directionally
(editing a hub redirects name resolution, so its dependents re-run;
editing a leaf never re-runs the hub). Without this, every package
``__init__`` glues the whole tree into one component and the cache
degenerates to all-or-nothing.

The analyzer digest covers the source of ``repro.sast`` itself, so
editing any pass invalidates the cache instead of replaying stale
results. The cache file is plain JSON, written atomically, and safe to
delete at any time.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.sast.findings import Finding, sort_findings
from repro.sast.project import Project

__all__ = [
    "CacheStats",
    "analyzer_digest",
    "contract_digest",
    "file_digests",
    "run_with_cache",
]

#: v2 adds the leakage-contract digest to the key: replayed findings
#: must not survive a re-triage of the contract they were checked against
_FORMAT_VERSION = 2


@dataclass
class CacheStats:
    """What the cached run actually did (surfaced in the CLI summary)."""

    total_modules: int = 0
    reanalyzed: list[str] = field(default_factory=list)   # module qualnames
    reused: list[str] = field(default_factory=list)
    fast_path: bool = False

    def describe(self) -> str:
        if self.fast_path:
            return f"cache hot: all {self.total_modules} modules reused"
        if not self.reused:
            return f"cache cold: analyzed all {self.total_modules} modules"
        return (
            f"cache warm: re-analyzed {len(self.reanalyzed)}/"
            f"{self.total_modules} modules, reused {len(self.reused)}"
        )


def analyzer_digest() -> str:
    """Content hash of the ``repro.sast`` package itself."""
    pkg_dir = os.path.dirname(os.path.abspath(__file__))
    h = hashlib.sha256()
    for name in sorted(os.listdir(pkg_dir)):
        if name.endswith(".py"):
            with open(os.path.join(pkg_dir, name), "rb") as fh:
                h.update(name.encode())
                h.update(b"\x00")
                h.update(fh.read())
                h.update(b"\x00")
    return h.hexdigest()


def contract_digest(path: str | None) -> str:
    """Content hash of the leakage contract ("" when there is none)."""
    if not path:
        return ""
    try:
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        return ""


def file_digests(project: Project) -> dict[str, str]:
    """Module qualname -> sha256 of its source text."""
    return {
        qualname: hashlib.sha256(info.source.encode("utf-8")).hexdigest()
        for qualname, info in sorted(project.modules.items())
    }


# -- import graph ----------------------------------------------------------


def _module_of(qualified: str, modules: dict[str, Any]) -> str | None:
    """Longest project-module prefix of a qualified name (or None)."""
    parts = qualified.split(".")
    for i in range(len(parts), 0, -1):
        candidate = ".".join(parts[:i])
        if candidate in modules:
            return candidate
    return None


def _is_reexport_hub(info: Any) -> bool:
    """Module body is only imports, a docstring, and ``__all__``."""
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        if isinstance(stmt, ast.Assign) and all(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            continue
        return False
    return True


def _defining_module(
    target: str, modules: dict[str, Any], hubs: set[str], depth: int = 0
) -> str | None:
    """The module that actually defines ``target``, seen through hubs."""
    mod = _module_of(target, modules)
    if mod is None or mod not in hubs or mod == target or depth > 8:
        return mod
    rest = target[len(mod) + 1 :]
    head = rest.split(".")[0]
    reexport = modules[mod].bindings.get(head)
    if not reexport or reexport == target:
        return mod
    tail = rest[len(head):]
    return _defining_module(reexport + tail, modules, hubs, depth + 1)


def _dependency_graph(
    project: Project,
) -> tuple[dict[str, frozenset[str]], set[str], dict[str, set[str]]]:
    """``(component of each non-hub module, hubs, hub -> dependents)``.

    Components are undirected closures over taint-interaction edges
    (import edges resolved through re-export hubs to the defining
    module). ``hub -> dependents`` is the directed invalidation set: a
    hub edit re-runs every module that resolves names through it.
    """
    hubs = {q for q, info in project.modules.items() if _is_reexport_hub(info)}
    adjacency: dict[str, set[str]] = {q: set() for q in project.modules if q not in hubs}
    hub_dependents: dict[str, set[str]] = {h: set() for h in hubs}
    for qualname, info in project.modules.items():
        for target in info.bindings.values():
            direct = _module_of(target, project.modules)
            if direct is None or direct == qualname:
                continue
            if direct in hubs:
                hub_dependents[direct].add(qualname)
            if qualname in hubs:
                continue       # a hub executes nothing: no taint edges out
            defining = _defining_module(target, project.modules, hubs)
            if defining is None or defining == qualname or defining in hubs:
                continue
            adjacency[qualname].add(defining)
            adjacency[defining].add(qualname)
    components: dict[str, frozenset[str]] = {}
    seen: set[str] = set()
    for start in sorted(adjacency):
        if start in seen:
            continue
        component: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(adjacency[node] - component)
        frozen = frozenset(component)
        for member in component:
            components[member] = frozen
        seen |= component
    return components, hubs, hub_dependents


def _restrict(project: Project, keep: set[str]) -> Project:
    """A sub-project containing only the given modules (and their functions)."""
    sub = Project(project.root, project.package)
    sub.modules = {q: m for q, m in project.modules.items() if q in keep}
    sub.functions = {
        q: f for q, f in project.functions.items() if f.module in keep
    }
    sub.classes = {
        c: m for c, m in project.classes.items() if m in keep
    }
    return sub


# -- finding (de)serialization ---------------------------------------------


def _encode_finding(f: Finding, root: str) -> dict[str, Any]:
    return {
        "rule": f.rule,
        "path": os.path.relpath(f.path, root).replace(os.sep, "/"),
        "line": f.line,
        "col": f.col,
        "message": f.message,
        "taint_chain": list(f.taint_chain),
        "function": f.function,
        "source_line": f.source_line,
        "leak_class": f.leak_class,
    }


def _decode_finding(raw: dict[str, Any], root: str) -> Finding:
    return Finding(
        rule=str(raw["rule"]),
        path=os.path.join(root, str(raw["path"]).replace("/", os.sep)),
        line=int(raw["line"]),
        col=int(raw["col"]),
        message=str(raw["message"]),
        taint_chain=tuple(raw.get("taint_chain", ())),
        function=str(raw.get("function", "")),
        source_line=str(raw.get("source_line", "")),
        leak_class=str(raw.get("leak_class", "")),
    )


# -- the cached runner -----------------------------------------------------


def _load(path: str, analyzer: str, contract: str) -> dict[str, Any] | None:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
        return None
    if data.get("analyzer") != analyzer:
        return None
    if data.get("contract", "") != contract:
        return None
    if not isinstance(data.get("files"), dict) or not isinstance(
        data.get("findings"), dict
    ):
        return None
    return data


def run_with_cache(
    project: Project, cache_path: str, contract_digest: str = ""
) -> tuple[list[Finding], CacheStats]:
    """``collect_findings`` with content-hash reuse (see module docstring).

    ``contract_digest`` joins the analyzer digest in the cache key: a
    re-triaged contract invalidates the whole cache rather than letting
    results checked against the old contract replay silently.
    """
    from repro.sast.cli import collect_findings
    from repro.utils.io import atomic_write_text

    analyzer = analyzer_digest()
    digests = file_digests(project)
    stats = CacheStats(total_modules=len(project.modules))
    cached = _load(cache_path, analyzer, contract_digest)

    def persist(findings_by_module: dict[str, list[dict[str, Any]]]) -> None:
        atomic_write_text(cache_path, json.dumps({
            "version": _FORMAT_VERSION,
            "analyzer": analyzer,
            "contract": contract_digest,
            "files": digests,
            "findings": findings_by_module,
        }, indent=1, sort_keys=True) + "\n")

    def group(findings: list[Finding]) -> dict[str, list[dict[str, Any]]]:
        rel_to_qual = {
            os.path.relpath(info.path, project.root).replace(os.sep, "/"): q
            for q, info in project.modules.items()
        }
        out: dict[str, list[dict[str, Any]]] = {q: [] for q in project.modules}
        for f in findings:
            rel = os.path.relpath(f.path, project.root).replace(os.sep, "/")
            qual = rel_to_qual.get(rel)
            if qual is not None:
                out[qual].append(_encode_finding(f, project.root))
        return out

    if cached is not None and cached["files"] == digests:
        stats.fast_path = True
        stats.reused = sorted(project.modules)
        findings = sort_findings([
            _decode_finding(raw, project.root)
            for per_module in cached["findings"].values()
            for raw in per_module
        ])
        return findings, stats

    if cached is None:
        findings = collect_findings(project)
        stats.reanalyzed = sorted(project.modules)
        persist(group(findings))
        return findings, stats

    components, hubs, hub_dependents = _dependency_graph(project)
    old_files: dict[str, str] = cached["files"]
    changed = {
        q for q in project.modules
        if old_files.get(q) != digests[q]
    }
    vanished = set(old_files) - set(project.modules)
    # a removed module invalidates the components it used to import into;
    # without its parse we cannot place it, so dirty everything it might
    # have touched — conservatively, any component sharing its package dir
    dirty = set(changed)
    for q in vanished:
        prefix = q.rsplit(".", 1)[0]
        dirty |= {m for m in project.modules if m.startswith(prefix)}
    # close the dirty set: a hub edit re-runs its dependents, and any
    # dirty non-hub module drags in its whole taint component
    dirty_components: set[str] = set()
    queue = sorted(dirty)
    while queue:
        q = queue.pop()
        if q in dirty_components:
            continue
        dirty_components.add(q)
        if q in hubs:
            queue.extend(hub_dependents[q] - dirty_components)
        else:
            queue.extend(components.get(q, frozenset({q})) - dirty_components)

    clean = set(project.modules) - dirty_components
    if not clean:
        findings = collect_findings(project)
        stats.reanalyzed = sorted(project.modules)
        persist(group(findings))
        return findings, stats

    sub = _restrict(project, dirty_components)
    fresh = collect_findings(sub)
    stats.reanalyzed = sorted(dirty_components)
    stats.reused = sorted(clean)

    findings = list(fresh)
    for qual in sorted(clean):
        for raw in cached["findings"].get(qual, []):
            findings.append(_decode_finding(raw, project.root))
    findings = sort_findings(findings)

    persist(group(findings))
    return findings, stats
