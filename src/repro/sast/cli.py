"""``repro-sast`` command-line entry point.

Exit codes (stable contract, see ``docs/static-analysis.md``):

* ``0`` — analysis ran and produced no unsuppressed findings;
* ``1`` — at least one finding (new finding, or stale baseline entry
  under ``--check-baseline``);
* ``2`` — usage or internal error (bad flags, unreadable root,
  malformed baseline).

Typical invocations::

    repro-sast src/repro --baseline sast-baseline.json --check-baseline
    repro-sast src/repro --write-baseline       # refresh the baseline
    repro-sast path/to/pkg --format json        # machine-readable report
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.sast.baseline import apply_baseline, load_baseline, render_baseline
from repro.sast.concurrency import run_concurrency
from repro.sast.determinism import run_determinism
from repro.sast.findings import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    RULES,
    Finding,
    render_json,
    render_text,
    sort_findings,
)
from repro.sast.project import Project, load_project
from repro.sast.taint import run_taint

__all__ = ["main", "collect_findings"]

_DEFAULT_BASELINE = "sast-baseline.json"


def collect_findings(project: Project) -> list[Finding]:
    """Run every pass over a loaded project (annotation errors included)."""
    findings: list[Finding] = []
    for qualname in sorted(project.modules):
        findings.extend(project.modules[qualname].annotation_errors)
    findings.extend(run_taint(project))
    findings.extend(run_determinism(project))
    findings.extend(run_concurrency(project))
    return sort_findings(findings)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sast",
        description="Secret-flow taint + determinism + concurrency lint "
        "for the FALCON reproduction (zero dependencies, pure AST).",
    )
    parser.add_argument(
        "root", nargs="?", default="src/repro",
        help="package directory to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--package", default=None,
        help="import name of the root (default: the directory's basename)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file of accepted findings (default: ./{_DEFAULT_BASELINE} "
        "when it exists)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="also fail (exit 1) on stale baseline entries (BL001)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="restrict the report to a comma-separated rule subset",
    )
    parser.add_argument(
        "--no-chains", action="store_true",
        help="omit taint chains from the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # stdout reader went away (e.g. `repro-sast ... | head`); exit
        # quietly instead of tracebacking, without claiming a clean run
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_ERROR


def _run(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return EXIT_ERROR if exc.code not in (0, None) else EXIT_CLEAN

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return EXIT_CLEAN

    try:
        project = load_project(args.root, package=args.package)
    except (FileNotFoundError, NotADirectoryError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    findings = collect_findings(project)

    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - set(RULES)
        if unknown:
            print(
                f"repro-sast: error: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        findings = [f for f in findings if f.rule in wanted]

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(_DEFAULT_BASELINE):
        baseline_path = _DEFAULT_BASELINE

    if args.write_baseline:
        path = baseline_path or _DEFAULT_BASELINE
        from repro.utils.io import atomic_write_text

        atomic_write_text(path, render_baseline(findings, project.root))
        print(f"repro-sast: wrote {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} to {path}")
        return EXIT_CLEAN

    stale: list[Finding] = []
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            print(
                f"repro-sast: error: baseline not found: {baseline_path}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        except (ValueError, OSError) as exc:
            print(f"repro-sast: error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        findings, stale = apply_baseline(
            findings, baseline, project.root, baseline_path
        )

    report = findings + (stale if args.check_baseline else [])
    if args.format == "json":
        print(render_json(report))
    elif report:
        print(render_text(report, verbose_chains=not args.no_chains))
    if report:
        n_new = len(findings)
        n_stale = len(stale) if args.check_baseline else 0
        summary = f"repro-sast: {n_new} finding{'s' if n_new != 1 else ''}"
        if n_stale:
            summary += f", {n_stale} stale baseline entr{'y' if n_stale == 1 else 'ies'}"
        print(summary, file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    raise SystemExit(main())
