"""``repro-sast`` command-line entry point.

Exit codes (stable contract, see ``docs/static-analysis.md``):

* ``0`` — analysis ran and produced no unsuppressed findings;
* ``1`` — at least one finding (new finding, or stale baseline entry
  under ``--check-baseline``);
* ``2`` — usage or internal error (bad flags, unreadable root,
  malformed baseline).

Typical invocations::

    repro-sast src/repro --baseline sast-baseline.json --check-baseline
    repro-sast src/repro --write-baseline       # refresh the baseline
    repro-sast path/to/pkg --format json        # machine-readable report
    repro-sast rank --top 10                    # exploitability triage
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.sast.baseline import apply_baseline, load_baseline, render_baseline
from repro.sast.concurrency import run_concurrency
from repro.sast.determinism import run_determinism
from repro.sast.findings import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    RULES,
    Finding,
    render_json,
    render_text,
    sort_findings,
)
from repro.sast.project import Project, load_project
from repro.sast.taint import run_taint

__all__ = ["main", "collect_findings"]

_DEFAULT_BASELINE = "sast-baseline.json"
_DEFAULT_CONTRACT = "leakage-contract.json"


def collect_findings(project: Project) -> list[Finding]:
    """Run every pass over a loaded project (annotation errors included)."""
    findings: list[Finding] = []
    for qualname in sorted(project.modules):
        findings.extend(project.modules[qualname].annotation_errors)
    findings.extend(run_taint(project))
    findings.extend(run_determinism(project))
    findings.extend(run_concurrency(project))
    return sort_findings(findings)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sast",
        description="Secret-flow taint + determinism + concurrency lint "
        "for the FALCON reproduction (zero dependencies, pure AST).",
    )
    parser.add_argument(
        "root", nargs="?", default="src/repro",
        help="package directory to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--package", default=None,
        help="import name of the root (default: the directory's basename)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental summary cache file; unchanged import-graph "
        "components are replayed instead of re-analyzed",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file of accepted findings (default: ./{_DEFAULT_BASELINE} "
        "when it exists)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="also fail (exit 1) on stale baseline entries (BL001)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="restrict the report to a comma-separated rule subset",
    )
    parser.add_argument(
        "--no-chains", action="store_true",
        help="omit taint chains from the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _collect_maybe_cached(
    project: Project,
    cache_path: str | None,
    contract_path: str | None = None,
) -> list[Finding]:
    """All findings, through the incremental cache when one is configured.

    The cache key covers the contract digest as well as source content,
    so editing the contract (re-triage, fresh oracle stats) invalidates
    replayed results. Modes without an explicit ``--contract`` flag fall
    back to the default contract path when the file exists, keeping the
    analyze/verify/rank modes on a single shared cache entry.
    """
    if cache_path is None:
        return collect_findings(project)
    from repro.sast.cache import contract_digest, run_with_cache

    if contract_path is None and os.path.exists(_DEFAULT_CONTRACT):
        contract_path = _DEFAULT_CONTRACT
    digest = contract_digest(contract_path) if contract_path else ""
    findings, stats = run_with_cache(project, cache_path, contract_digest=digest)
    print(f"repro-sast: {stats.describe()}", file=sys.stderr)
    return findings


def _build_verify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sast verify",
        description="Enforce the leakage contract: static findings must be "
        "triaged, recorded oracle verdicts must hold, and (with --oracle) "
        "declassify scopes inside the coverage boundary must execute.",
    )
    parser.add_argument(
        "root", nargs="?", default="src/repro",
        help="package directory to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--package", default=None,
        help="import name of the root (default: the directory's basename)",
    )
    parser.add_argument(
        "--contract", default=_DEFAULT_CONTRACT, metavar="PATH",
        help=f"leakage contract file (default: {_DEFAULT_CONTRACT})",
    )
    parser.add_argument(
        "--oracle", action="store_true",
        help="run the dynamic taint oracle (needs numpy) and enforce fresh "
        "verdicts instead of the recorded ones",
    )
    parser.add_argument(
        "--write-contract", action="store_true",
        help="regenerate the contract from current findings (runs the oracle), "
        "carrying over reviewed classes/reasons by fingerprint",
    )
    parser.add_argument(
        "--variant", default=None, metavar="NAME",
        help="focus one countermeasure variant from the contract's 'variants' "
        "section: run the static gate, then (with --oracle) replay the "
        "variant's workload with every line of its module watched and "
        "enforce the recorded dynamic claims (CT007)",
    )
    parser.add_argument(
        "--seeds", default=None, metavar="S1,S2",
        help="comma-separated oracle key seeds (default: three fixed seeds)",
    )
    parser.add_argument(
        "--n", type=int, default=None, metavar="N",
        help="ring degree for the oracle workload (default: 8)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="violation report format (default: text)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental summary cache file (see the analyze mode)",
    )
    return parser


def _run_verify(argv: list[str]) -> int:
    from repro.sast.contract import (
        build_contract,
        load_contract,
        render_contract,
        verify_contract,
    )
    from repro.sast.oracle import (
        OracleError,
        declassify_watch_sites,
        finding_sites,
        run_oracle,
    )

    parser = _build_verify_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_ERROR if exc.code not in (0, None) else EXIT_CLEAN

    try:
        project = load_project(args.root, package=args.package)
    except (FileNotFoundError, NotADirectoryError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    findings = _collect_maybe_cached(project, args.cache, args.contract)

    if args.variant is not None:
        if args.write_contract:
            print("repro-sast: error: --variant cannot be combined with "
                  "--write-contract", file=sys.stderr)
            return EXIT_ERROR
        return _run_variant(args, project, findings)

    report = None
    if args.oracle or args.write_contract:
        oracle_kwargs: dict[str, object] = {}
        if args.seeds:
            oracle_kwargs["seeds"] = [s.strip() for s in args.seeds.split(",") if s.strip()]
        if args.n is not None:
            oracle_kwargs["n"] = args.n
        try:
            report = run_oracle(
                project.root,
                package=project.package,
                sites=finding_sites(project, findings),
                declassify=declassify_watch_sites(project),
                **oracle_kwargs,  # type: ignore[arg-type]
            )
        except OracleError as exc:
            print(f"repro-sast: error: {exc}", file=sys.stderr)
            return EXIT_ERROR

    if args.write_contract:
        from repro.utils.io import atomic_write_text

        previous = None
        if os.path.exists(args.contract):
            try:
                previous = load_contract(args.contract)
            except (ValueError, OSError) as exc:
                print(f"repro-sast: warning: ignoring previous contract: {exc}",
                      file=sys.stderr)
        contract = build_contract(
            findings, project.root, report, previous, project=project
        )
        atomic_write_text(args.contract, render_contract(contract))
        unreached = [e for e in contract.entries if e.verdict == "UNREACHED"]
        print(
            f"repro-sast: wrote {len(contract.entries)} entries "
            f"(+{len(contract.refuted)} refuted) to {args.contract}"
        )
        for entry in unreached:
            print(f"repro-sast: warning: UNREACHED entry needs triage: "
                  f"{entry.describe()}", file=sys.stderr)
        return EXIT_CLEAN

    try:
        contract = load_contract(args.contract)
    except FileNotFoundError:
        print(f"repro-sast: error: contract not found: {args.contract}",
              file=sys.stderr)
        return EXIT_ERROR
    except (ValueError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    violations = verify_contract(
        findings, contract, project.root, contract_path=args.contract, report=report,
    )
    mode = "fresh oracle verdicts" if report is not None else "recorded verdicts"
    return _finish_verify(args, project, contract, findings, violations, mode)


def _finish_verify(args, project, contract, findings, violations, mode) -> int:
    if args.format == "sarif":
        from repro.sast.baseline import assign_occurrences, fingerprint
        from repro.sast.sarif import render_sarif

        accepted = {**contract.entry_map(), **contract.refuted_map()}
        suppressed = []
        for f in assign_occurrences(list(findings)):
            entry = accepted.get(fingerprint(f, project.root))
            if entry is not None:
                suppressed.append((f, entry.reason))
        print(render_sarif(violations, project.root, contract=contract,
                           suppressed=suppressed))
    elif args.format == "json":
        print(render_json(violations))
    elif violations:
        print(render_text(violations))
    if violations:
        print(
            f"repro-sast: {len(violations)} contract violation"
            f"{'s' if len(violations) != 1 else ''}",
            file=sys.stderr,
        )
        return EXIT_FINDINGS
    print(
        f"repro-sast: contract holds ({len(contract.entries)} entries, "
        f"{len(contract.refuted)} refuted; {mode})",
        file=sys.stdout if args.format == "text" else sys.stderr,
    )
    return EXIT_CLEAN


def _run_variant(args, project, findings) -> int:
    """``verify --variant NAME``: one countermeasure's claims, end to end.

    Static CT007 checks already run inside every ``verify_contract``
    call; this mode additionally replays the variant's own workload
    under the oracle (``--oracle``) with *every* line of the variant
    module watched, enforcing the contract's recorded dynamic claims.
    """
    from repro.sast.contract import load_contract, verify_contract
    from repro.sast.oracle import OracleError, run_oracle
    from repro.sast.variants import check_variant_dynamic, variant_module_sites

    try:
        contract = load_contract(args.contract)
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    spec = contract.variants.get(args.variant)
    if spec is None:
        known = ", ".join(sorted(contract.variants)) or "none"
        print(
            f"repro-sast: error: unknown variant {args.variant!r} "
            f"(contract defines: {known})",
            file=sys.stderr,
        )
        return EXIT_ERROR

    violations = verify_contract(
        findings, contract, project.root, contract_path=args.contract,
    )
    mode = f"variant {spec.name!r}, recorded verdicts"
    if args.oracle:
        oracle_kwargs: dict[str, object] = {}
        if args.seeds:
            oracle_kwargs["seeds"] = [
                s.strip() for s in args.seeds.split(",") if s.strip()
            ]
        if args.n is not None:
            oracle_kwargs["n"] = args.n
        try:
            report = run_oracle(
                project.root,
                package=project.package,
                sites=variant_module_sites(project.root, spec),
                workload=spec.workload(),
                **oracle_kwargs,  # type: ignore[arg-type]
            )
        except OracleError as exc:
            print(f"repro-sast: error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        violations.extend(check_variant_dynamic(spec, report, project.root))
        executed = [r for r in report.sites.values() if r.hits > 0]
        confirmed = sum(1 for r in executed if r.status == "CONFIRMED")
        mode = (
            f"variant {spec.name!r}, {spec.dynamic_mode}: {len(executed)} lines "
            f"executed, {confirmed} key-dependent, "
            f"{len(executed) - confirmed} key-independent"
        )
    return _finish_verify(args, project, contract, findings, violations, mode)


def _build_rank_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sast rank",
        description="Exploitability triage: score every contract entry by "
        "secret source, operand range, hypothesis computability and the "
        "recorded oracle statistics, most attackable first.",
    )
    parser.add_argument(
        "root", nargs="?", default="src/repro",
        help="package directory to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--package", default=None,
        help="import name of the root (default: the directory's basename)",
    )
    parser.add_argument(
        "--contract", default=_DEFAULT_CONTRACT, metavar="PATH",
        help=f"leakage contract file (default: {_DEFAULT_CONTRACT})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="only show the N highest-ranked entries",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="also report the dataflow-vs-heuristic leak_class "
        "disagreements CT006 tolerates for heuristic-sourced entries",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental summary cache file (see the analyze mode)",
    )
    return parser


def _explain_rows(contract, findings, project) -> list[dict[str, object]]:
    """Heuristic-sourced entries: recorded vs keyword vs dataflow class.

    These are exactly the classifications CT006 cannot cross-check
    against the component lattice — the dataflow pass produced no
    component for them, so the recorded class rests on the keyword
    fallback (or a manual review that overrode it).
    """
    from repro.sast.baseline import assign_occurrences, fingerprint
    from repro.sast.contract import infer_leak_class

    by_fp = {
        fingerprint(f, project.root): f
        for f in assign_occurrences(list(findings))
    }
    rows: list[dict[str, object]] = []
    for entry in contract.entries + contract.refuted:
        if not entry.rule.startswith("SF"):
            continue
        if entry.leak_class_source != "heuristic":
            continue
        finding = by_fp.get(entry.fingerprint)
        keyword = infer_leak_class(
            entry.rule, entry.path, entry.function, entry.line_text
        )
        rows.append({
            "entry": entry.describe(),
            "recorded": entry.leak_class,
            "keyword": keyword,
            "dataflow": (finding.leak_class or None) if finding else None,
            "agrees": entry.leak_class == keyword,
        })
    return rows


def _run_rank(argv: list[str]) -> int:
    from dataclasses import replace

    from repro.sast.contract import load_contract
    from repro.sast.exploit import rank_entries, score_contract

    parser = _build_rank_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_ERROR if exc.code not in (0, None) else EXIT_CLEAN

    try:
        project = load_project(args.root, package=args.package)
    except (FileNotFoundError, NotADirectoryError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        contract = load_contract(args.contract)
    except FileNotFoundError:
        print(f"repro-sast: error: contract not found: {args.contract}",
              file=sys.stderr)
        return EXIT_ERROR
    except (ValueError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    findings = _collect_maybe_cached(project, args.cache, args.contract)
    # re-derive every block from static facts + the recorded oracle
    # statistics: the rank never silently trusts a stale score
    blocks = score_contract(contract.entries, findings, project)
    contract.entries = [
        replace(e, exploitability=blocks.get(e.fingerprint, e.exploitability))
        for e in contract.entries
    ]
    ranked = rank_entries(contract)
    shown = ranked if args.top is None else ranked[: max(args.top, 0)]

    if args.format == "json":
        import json as _json

        doc: dict[str, object] = {
            "contract": args.contract,
            "ranked": [
                {
                    "rank": i + 1,
                    "rule": e.rule,
                    "path": e.path,
                    "function": e.function,
                    "line_text": e.line_text,
                    "occurrence": e.occurrence,
                    "leak_class": e.leak_class,
                    "leak_class_source": e.leak_class_source,
                    "exploitability": e.exploitability.to_jsonable(),
                }
                for i, e in enumerate(shown)
                if e.exploitability is not None
            ],
        }
        if args.explain:
            doc["heuristic_disagreements"] = _explain_rows(
                contract, findings, project
            )
        print(_json.dumps(doc, indent=1, sort_keys=True))
        return EXIT_CLEAN

    print(f"{'#':>3} {'score':>7} {'id':12} {'class':12} "
          f"{'comp':4} {'bits':>6} {'snr':>10}  where")
    for i, e in enumerate(shown):
        x = e.exploitability
        assert x is not None
        bits = f"{x.guess_space_bits:.2f}" if x.guess_space_bits is not None else "-"
        print(
            f"{i + 1:>3} {x.score:>7.4f} {x.entry_id:12} {e.leak_class:12} "
            f"{'yes' if x.hypothesis_computable else 'no':4} {bits:>6} "
            f"{x.oracle.snr_proxy:>10.3g}  {e.rule} {e.path}::{e.function}"
        )
        print(f"{'':25}'{e.line_text}'")
    print(
        f"repro-sast: ranked {len(ranked)} CONFIRMED entr"
        f"{'y' if len(ranked) == 1 else 'ies'}"
        + (f" (showing {len(shown)})" if len(shown) != len(ranked) else ""),
        file=sys.stderr,
    )

    if args.explain:
        rows = _explain_rows(contract, findings, project)
        disagreeing = [r for r in rows if not r["agrees"]]
        print()
        print(
            f"heuristic-sourced leak classes (CT006 cannot lattice-check "
            f"these): {len(rows)} entries, {len(disagreeing)} where the "
            f"recorded class overrides the keyword fallback"
        )
        for r in rows:
            mark = "  " if r["agrees"] else "! "
            dataflow = r["dataflow"] or "none"
            print(
                f"{mark}recorded={r['recorded']} keyword={r['keyword']} "
                f"dataflow={dataflow}  {r['entry']}"
            )
    return EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    try:
        if argv is None:
            argv = sys.argv[1:]
        if argv and argv[0] == "verify":
            return _run_verify(argv[1:])
        if argv and argv[0] == "rank":
            return _run_rank(argv[1:])
        return _run(argv)
    except BrokenPipeError:
        # stdout reader went away (e.g. `repro-sast ... | head`); exit
        # quietly instead of tracebacking, without claiming a clean run
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_ERROR


def _run(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return EXIT_ERROR if exc.code not in (0, None) else EXIT_CLEAN

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return EXIT_CLEAN

    try:
        project = load_project(args.root, package=args.package)
    except (FileNotFoundError, NotADirectoryError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    findings = _collect_maybe_cached(project, args.cache)

    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - set(RULES)
        if unknown:
            print(
                f"repro-sast: error: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        findings = [f for f in findings if f.rule in wanted]

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(_DEFAULT_BASELINE):
        baseline_path = _DEFAULT_BASELINE

    if args.write_baseline:
        path = baseline_path or _DEFAULT_BASELINE
        from repro.utils.io import atomic_write_text

        atomic_write_text(path, render_baseline(findings, project.root))
        print(f"repro-sast: wrote {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} to {path}")
        return EXIT_CLEAN

    stale: list[Finding] = []
    before_baseline = findings
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            print(
                f"repro-sast: error: baseline not found: {baseline_path}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        except (ValueError, OSError) as exc:
            print(f"repro-sast: error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        findings, stale = apply_baseline(
            findings, baseline, project.root, baseline_path
        )

    report = findings + (stale if args.check_baseline else [])
    if args.format == "sarif":
        from repro.sast.sarif import render_sarif

        fresh = set(findings)
        suppressed = [
            (f, "accepted by the committed baseline")
            for f in before_baseline if f not in fresh
        ]
        print(render_sarif(report, project.root, suppressed=suppressed))
    elif args.format == "json":
        print(render_json(report))
    elif report:
        print(render_text(report, verbose_chains=not args.no_chains))
    if report:
        n_new = len(findings)
        n_stale = len(stale) if args.check_baseline else 0
        summary = f"repro-sast: {n_new} finding{'s' if n_new != 1 else ''}"
        if n_stale:
            summary += f", {n_stale} stale baseline entr{'y' if n_stale == 1 else 'ies'}"
        print(summary, file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    raise SystemExit(main())
