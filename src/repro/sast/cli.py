"""``repro-sast`` command-line entry point.

Exit codes (stable contract, see ``docs/static-analysis.md``):

* ``0`` — analysis ran and produced no unsuppressed findings;
* ``1`` — at least one finding (new finding, or stale baseline entry
  under ``--check-baseline``);
* ``2`` — usage or internal error (bad flags, unreadable root,
  malformed baseline).

Typical invocations::

    repro-sast src/repro --baseline sast-baseline.json --check-baseline
    repro-sast src/repro --write-baseline       # refresh the baseline
    repro-sast path/to/pkg --format json        # machine-readable report
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.sast.baseline import apply_baseline, load_baseline, render_baseline
from repro.sast.concurrency import run_concurrency
from repro.sast.determinism import run_determinism
from repro.sast.findings import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    RULES,
    Finding,
    render_json,
    render_text,
    sort_findings,
)
from repro.sast.project import Project, load_project
from repro.sast.taint import run_taint

__all__ = ["main", "collect_findings"]

_DEFAULT_BASELINE = "sast-baseline.json"
_DEFAULT_CONTRACT = "leakage-contract.json"


def collect_findings(project: Project) -> list[Finding]:
    """Run every pass over a loaded project (annotation errors included)."""
    findings: list[Finding] = []
    for qualname in sorted(project.modules):
        findings.extend(project.modules[qualname].annotation_errors)
    findings.extend(run_taint(project))
    findings.extend(run_determinism(project))
    findings.extend(run_concurrency(project))
    return sort_findings(findings)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sast",
        description="Secret-flow taint + determinism + concurrency lint "
        "for the FALCON reproduction (zero dependencies, pure AST).",
    )
    parser.add_argument(
        "root", nargs="?", default="src/repro",
        help="package directory to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--package", default=None,
        help="import name of the root (default: the directory's basename)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental summary cache file; unchanged import-graph "
        "components are replayed instead of re-analyzed",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file of accepted findings (default: ./{_DEFAULT_BASELINE} "
        "when it exists)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="also fail (exit 1) on stale baseline entries (BL001)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="restrict the report to a comma-separated rule subset",
    )
    parser.add_argument(
        "--no-chains", action="store_true",
        help="omit taint chains from the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _collect_maybe_cached(project: Project, cache_path: str | None) -> list[Finding]:
    """All findings, through the incremental cache when one is configured."""
    if cache_path is None:
        return collect_findings(project)
    from repro.sast.cache import run_with_cache

    findings, stats = run_with_cache(project, cache_path)
    print(f"repro-sast: {stats.describe()}", file=sys.stderr)
    return findings


def _build_verify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sast verify",
        description="Enforce the leakage contract: static findings must be "
        "triaged, recorded oracle verdicts must hold, and (with --oracle) "
        "declassify scopes inside the coverage boundary must execute.",
    )
    parser.add_argument(
        "root", nargs="?", default="src/repro",
        help="package directory to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--package", default=None,
        help="import name of the root (default: the directory's basename)",
    )
    parser.add_argument(
        "--contract", default=_DEFAULT_CONTRACT, metavar="PATH",
        help=f"leakage contract file (default: {_DEFAULT_CONTRACT})",
    )
    parser.add_argument(
        "--oracle", action="store_true",
        help="run the dynamic taint oracle (needs numpy) and enforce fresh "
        "verdicts instead of the recorded ones",
    )
    parser.add_argument(
        "--write-contract", action="store_true",
        help="regenerate the contract from current findings (runs the oracle), "
        "carrying over reviewed classes/reasons by fingerprint",
    )
    parser.add_argument(
        "--variant", default=None, metavar="NAME",
        help="focus one countermeasure variant from the contract's 'variants' "
        "section: run the static gate, then (with --oracle) replay the "
        "variant's workload with every line of its module watched and "
        "enforce the recorded dynamic claims (CT007)",
    )
    parser.add_argument(
        "--seeds", default=None, metavar="S1,S2",
        help="comma-separated oracle key seeds (default: three fixed seeds)",
    )
    parser.add_argument(
        "--n", type=int, default=None, metavar="N",
        help="ring degree for the oracle workload (default: 8)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="violation report format (default: text)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental summary cache file (see the analyze mode)",
    )
    return parser


def _run_verify(argv: list[str]) -> int:
    from repro.sast.contract import (
        build_contract,
        load_contract,
        render_contract,
        verify_contract,
    )
    from repro.sast.oracle import (
        OracleError,
        declassify_watch_sites,
        finding_sites,
        run_oracle,
    )

    parser = _build_verify_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_ERROR if exc.code not in (0, None) else EXIT_CLEAN

    try:
        project = load_project(args.root, package=args.package)
    except (FileNotFoundError, NotADirectoryError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    findings = _collect_maybe_cached(project, args.cache)

    if args.variant is not None:
        if args.write_contract:
            print("repro-sast: error: --variant cannot be combined with "
                  "--write-contract", file=sys.stderr)
            return EXIT_ERROR
        return _run_variant(args, project, findings)

    report = None
    if args.oracle or args.write_contract:
        oracle_kwargs: dict[str, object] = {}
        if args.seeds:
            oracle_kwargs["seeds"] = [s.strip() for s in args.seeds.split(",") if s.strip()]
        if args.n is not None:
            oracle_kwargs["n"] = args.n
        try:
            report = run_oracle(
                project.root,
                package=project.package,
                sites=finding_sites(project, findings),
                declassify=declassify_watch_sites(project),
                **oracle_kwargs,  # type: ignore[arg-type]
            )
        except OracleError as exc:
            print(f"repro-sast: error: {exc}", file=sys.stderr)
            return EXIT_ERROR

    if args.write_contract:
        from repro.utils.io import atomic_write_text

        previous = None
        if os.path.exists(args.contract):
            try:
                previous = load_contract(args.contract)
            except (ValueError, OSError) as exc:
                print(f"repro-sast: warning: ignoring previous contract: {exc}",
                      file=sys.stderr)
        contract = build_contract(findings, project.root, report, previous)
        atomic_write_text(args.contract, render_contract(contract))
        unreached = [e for e in contract.entries if e.verdict == "UNREACHED"]
        print(
            f"repro-sast: wrote {len(contract.entries)} entries "
            f"(+{len(contract.refuted)} refuted) to {args.contract}"
        )
        for entry in unreached:
            print(f"repro-sast: warning: UNREACHED entry needs triage: "
                  f"{entry.describe()}", file=sys.stderr)
        return EXIT_CLEAN

    try:
        contract = load_contract(args.contract)
    except FileNotFoundError:
        print(f"repro-sast: error: contract not found: {args.contract}",
              file=sys.stderr)
        return EXIT_ERROR
    except (ValueError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    violations = verify_contract(
        findings, contract, project.root, contract_path=args.contract, report=report,
    )
    mode = "fresh oracle verdicts" if report is not None else "recorded verdicts"
    return _finish_verify(args, project, contract, findings, violations, mode)


def _finish_verify(args, project, contract, findings, violations, mode) -> int:
    if args.format == "sarif":
        from repro.sast.baseline import assign_occurrences, fingerprint
        from repro.sast.sarif import render_sarif

        accepted = {**contract.entry_map(), **contract.refuted_map()}
        suppressed = []
        for f in assign_occurrences(list(findings)):
            entry = accepted.get(fingerprint(f, project.root))
            if entry is not None:
                suppressed.append((f, entry.reason))
        print(render_sarif(violations, project.root, contract=contract,
                           suppressed=suppressed))
    elif args.format == "json":
        print(render_json(violations))
    elif violations:
        print(render_text(violations))
    if violations:
        print(
            f"repro-sast: {len(violations)} contract violation"
            f"{'s' if len(violations) != 1 else ''}",
            file=sys.stderr,
        )
        return EXIT_FINDINGS
    print(
        f"repro-sast: contract holds ({len(contract.entries)} entries, "
        f"{len(contract.refuted)} refuted; {mode})",
        file=sys.stdout if args.format == "text" else sys.stderr,
    )
    return EXIT_CLEAN


def _run_variant(args, project, findings) -> int:
    """``verify --variant NAME``: one countermeasure's claims, end to end.

    Static CT007 checks already run inside every ``verify_contract``
    call; this mode additionally replays the variant's own workload
    under the oracle (``--oracle``) with *every* line of the variant
    module watched, enforcing the contract's recorded dynamic claims.
    """
    from repro.sast.contract import load_contract, verify_contract
    from repro.sast.oracle import OracleError, run_oracle
    from repro.sast.variants import check_variant_dynamic, variant_module_sites

    try:
        contract = load_contract(args.contract)
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    spec = contract.variants.get(args.variant)
    if spec is None:
        known = ", ".join(sorted(contract.variants)) or "none"
        print(
            f"repro-sast: error: unknown variant {args.variant!r} "
            f"(contract defines: {known})",
            file=sys.stderr,
        )
        return EXIT_ERROR

    violations = verify_contract(
        findings, contract, project.root, contract_path=args.contract,
    )
    mode = f"variant {spec.name!r}, recorded verdicts"
    if args.oracle:
        oracle_kwargs: dict[str, object] = {}
        if args.seeds:
            oracle_kwargs["seeds"] = [
                s.strip() for s in args.seeds.split(",") if s.strip()
            ]
        if args.n is not None:
            oracle_kwargs["n"] = args.n
        try:
            report = run_oracle(
                project.root,
                package=project.package,
                sites=variant_module_sites(project.root, spec),
                workload=spec.workload(),
                **oracle_kwargs,  # type: ignore[arg-type]
            )
        except OracleError as exc:
            print(f"repro-sast: error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        violations.extend(check_variant_dynamic(spec, report, project.root))
        executed = [r for r in report.sites.values() if r.hits > 0]
        confirmed = sum(1 for r in executed if r.status == "CONFIRMED")
        mode = (
            f"variant {spec.name!r}, {spec.dynamic_mode}: {len(executed)} lines "
            f"executed, {confirmed} key-dependent, "
            f"{len(executed) - confirmed} key-independent"
        )
    return _finish_verify(args, project, contract, findings, violations, mode)


def main(argv: list[str] | None = None) -> int:
    try:
        if argv is None:
            argv = sys.argv[1:]
        if argv and argv[0] == "verify":
            return _run_verify(argv[1:])
        return _run(argv)
    except BrokenPipeError:
        # stdout reader went away (e.g. `repro-sast ... | head`); exit
        # quietly instead of tracebacking, without claiming a clean run
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_ERROR


def _run(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return EXIT_ERROR if exc.code not in (0, None) else EXIT_CLEAN

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return EXIT_CLEAN

    try:
        project = load_project(args.root, package=args.package)
    except (FileNotFoundError, NotADirectoryError, OSError) as exc:
        print(f"repro-sast: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    findings = _collect_maybe_cached(project, args.cache)

    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - set(RULES)
        if unknown:
            print(
                f"repro-sast: error: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        findings = [f for f in findings if f.rule in wanted]

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(_DEFAULT_BASELINE):
        baseline_path = _DEFAULT_BASELINE

    if args.write_baseline:
        path = baseline_path or _DEFAULT_BASELINE
        from repro.utils.io import atomic_write_text

        atomic_write_text(path, render_baseline(findings, project.root))
        print(f"repro-sast: wrote {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} to {path}")
        return EXIT_CLEAN

    stale: list[Finding] = []
    before_baseline = findings
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            print(
                f"repro-sast: error: baseline not found: {baseline_path}",
                file=sys.stderr,
            )
            return EXIT_ERROR
        except (ValueError, OSError) as exc:
            print(f"repro-sast: error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        findings, stale = apply_baseline(
            findings, baseline, project.root, baseline_path
        )

    report = findings + (stale if args.check_baseline else [])
    if args.format == "sarif":
        from repro.sast.sarif import render_sarif

        fresh = set(findings)
        suppressed = [
            (f, "accepted by the committed baseline")
            for f in before_baseline if f not in fresh
        ]
        print(render_sarif(report, project.root, suppressed=suppressed))
    elif args.format == "json":
        print(render_json(report))
    elif report:
        print(render_text(report, verbose_chains=not args.no_chains))
    if report:
        n_new = len(findings)
        n_stale = len(stale) if args.check_baseline else 0
        summary = f"repro-sast: {n_new} finding{'s' if n_new != 1 else ''}"
        if n_stale:
            summary += f", {n_stale} stale baseline entr{'y' if n_stale == 1 else 'ies'}"
        print(summary, file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    raise SystemExit(main())
