"""Countermeasure variant specs and the CT007 drift checks.

A *variant* is an alternative implementation of a contract-covered
primitive (today: ``repro.countermeasures.masked_mul`` and
``repro.countermeasures.ct_mul`` re-implementing ``fpr_mul``) whose
point is to *remove* leak chains the baseline contract records. The
contract's ``variants`` section freezes that claim per variant:

* ``classes_absent`` — leak classes the variant must not exhibit: a
  static finding in the variant module carrying one of these classes is
  a broken claim.
* ``residual`` — the accepted findings that remain (e.g. the masked
  multiplier's clear zero test). Findings outside this list are drift;
  residual records matching no finding are stale.
* ``dynamic`` — what the differential-replay oracle must observe when
  the variant's workload runs with every module line watched:
  ``refuted-except-residual`` (masking: every executed line digests
  key-independently except the listed clear-boundary lines) or
  ``confirmed`` (constant-time code whose *values* stay key-dependent —
  the GALACTICS caveat made checkable).

Static checks run on every ``repro-sast verify``; dynamic checks run
under ``verify --variant <name> --oracle``. Both report rule CT007, so
a countermeasure silently losing its property fails the same gate as a
new leak in the baseline.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.sast.findings import Finding
from repro.sast.oracle import CONFIRMED, OracleReport

__all__ = [
    "DYNAMIC_MODES",
    "ResidualRecord",
    "VariantSpec",
    "check_variant_dynamic",
    "check_variants_static",
    "normalize_line",
    "parse_variants",
    "render_variants",
    "variant_module_sites",
]

DYNAMIC_MODES = ("refuted-except-residual", "confirmed")


def normalize_line(text: str) -> str:
    """Whitespace-insensitive form used to match source lines."""
    return " ".join(text.split())


@dataclass(frozen=True)
class ResidualRecord:
    """One accepted static finding that survives in a variant."""

    rule: str
    function: str
    line_text: str

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.function, normalize_line(self.line_text))


@dataclass
class VariantSpec:
    """Frozen claims for one countermeasure variant."""

    name: str
    module: str                          # contract-relative path of the variant
    entry: str                           # qualname of the reimplemented primitive
    workload_module: str                 # dotted module of the oracle driver
    workload_func: str                   # (seed, n) callable in workload_module
    classes_absent: tuple[str, ...] = ()
    residual: tuple[ResidualRecord, ...] = ()
    dynamic_mode: str = "refuted-except-residual"
    dynamic_residual: tuple[str, ...] = field(default=())

    def workload(self) -> dict[str, str]:
        return {"module": self.workload_module, "func": self.workload_func}


# -- contract (de)serialization --------------------------------------------


def parse_variants(
    data: Any, contract_path: str, leak_classes: Iterable[str]
) -> dict[str, VariantSpec]:
    """Validated ``variants`` section of a contract document."""
    if not isinstance(data, Mapping):
        raise ValueError(f"contract {contract_path!r}: 'variants' must be an object")
    known = set(leak_classes)
    out: dict[str, VariantSpec] = {}
    for name, raw in sorted(data.items()):
        where = f"contract {contract_path!r}: variant {name!r}"
        if not isinstance(raw, Mapping):
            raise ValueError(f"{where}: must be an object")
        for req in ("module", "entry", "workload"):
            if req not in raw:
                raise ValueError(f"{where}: missing {req!r}")
        workload = raw["workload"]
        if (
            not isinstance(workload, Mapping)
            or not isinstance(workload.get("module"), str)
            or not isinstance(workload.get("func"), str)
        ):
            raise ValueError(f"{where}: 'workload' needs string module/func")
        classes = tuple(raw.get("classes_absent", ()))
        bad = [c for c in classes if c not in known]
        if bad:
            raise ValueError(f"{where}: unknown leak class in classes_absent: {bad}")
        residual = []
        for rec in raw.get("residual", ()):
            if not isinstance(rec, Mapping) or not all(
                isinstance(rec.get(k), str) for k in ("rule", "function", "line_text")
            ):
                raise ValueError(
                    f"{where}: residual records need string rule/function/line_text"
                )
            residual.append(
                ResidualRecord(
                    rule=rec["rule"],
                    function=rec["function"],
                    line_text=rec["line_text"],
                )
            )
        dynamic = raw.get("dynamic", {})
        if not isinstance(dynamic, Mapping):
            raise ValueError(f"{where}: 'dynamic' must be an object")
        mode = dynamic.get("mode", "refuted-except-residual")
        if mode not in DYNAMIC_MODES:
            raise ValueError(
                f"{where}: dynamic mode must be one of {DYNAMIC_MODES}, got {mode!r}"
            )
        dyn_residual = tuple(
            normalize_line(str(t)) for t in dynamic.get("residual_lines", ())
        )
        out[name] = VariantSpec(
            name=name,
            module=str(raw["module"]),
            entry=str(raw["entry"]),
            workload_module=str(workload["module"]),
            workload_func=str(workload["func"]),
            classes_absent=classes,
            residual=tuple(residual),
            dynamic_mode=str(mode),
            dynamic_residual=dyn_residual,
        )
    return out


def render_variants(variants: Mapping[str, VariantSpec]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for name, spec in sorted(variants.items()):
        out[name] = {
            "module": spec.module,
            "entry": spec.entry,
            "workload": spec.workload(),
            "classes_absent": list(spec.classes_absent),
            "residual": [
                {"rule": r.rule, "function": r.function, "line_text": r.line_text}
                for r in spec.residual
            ],
            "dynamic": {
                "mode": spec.dynamic_mode,
                "residual_lines": list(spec.dynamic_residual),
            },
        }
    return out


# -- static drift checks (CT007, run on every verify) ----------------------


def _violation(spec: VariantSpec, message: str, path: str, line: int = 0) -> Finding:
    return Finding(
        rule="CT007",
        path=path,
        line=line,
        col=0,
        message=f"variant {spec.name!r}: {message}",
    )


def check_variants_static(
    findings: Iterable[Finding],
    variants: Mapping[str, VariantSpec],
    root: str,
    classify: Callable[[Finding], str],
) -> list[Finding]:
    """CT007 violations from the current static findings.

    ``classify`` maps a finding to its leak class (dataflow-inferred
    when available, heuristic otherwise) — injected so this module does
    not depend on :mod:`repro.sast.contract`.
    """
    violations: list[Finding] = []
    by_module: dict[str, list[Finding]] = {}
    for f in findings:
        if not f.rule.startswith("SF"):
            continue
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        by_module.setdefault(rel, []).append(f)
    for _name, spec in sorted(variants.items()):
        module_findings = by_module.get(spec.module, [])
        expected = {r.key() for r in spec.residual}
        seen: set[tuple[str, str, str]] = set()
        for f in module_findings:
            key = (f.rule, f.function or "", normalize_line(f.source_line or ""))
            seen.add(key)
            if key not in expected:
                violations.append(
                    _violation(
                        spec,
                        f"unexpected {f.rule} finding not in the residual list "
                        f"({f.source_line or '?'}) — the countermeasure drifted",
                        f.path,
                        f.line,
                    )
                )
            leak_class = classify(f)
            if leak_class in spec.classes_absent:
                violations.append(
                    _violation(
                        spec,
                        f"finding carries leak class {leak_class!r} which the "
                        "variant claims absent",
                        f.path,
                        f.line,
                    )
                )
        for rec in spec.residual:
            if rec.key() not in seen:
                violations.append(
                    _violation(
                        spec,
                        f"stale residual record {rec.rule} ({rec.line_text!r}) "
                        "matches no current finding",
                        os.path.join(root, spec.module),
                    )
                )
    return violations


# -- dynamic replay checks (CT007, run under --variant --oracle) -----------


def variant_module_sites(root: str, spec: VariantSpec) -> list[str]:
    """Watch *every* source line of the variant module.

    The dynamic claim quantifies over the whole implementation, not just
    the lines the static pass flagged — a masked variant whose compute
    lines digest key-dependently has lost its property even if no
    static rule fires there.
    """
    path = os.path.join(root, spec.module)
    with open(path, encoding="utf-8") as fh:
        count = sum(1 for _ in fh)
    return [f"{spec.module}:{line}" for line in range(1, count + 1)]


def check_variant_dynamic(
    spec: VariantSpec, report: OracleReport, root: str
) -> list[Finding]:
    """CT007 violations from one variant oracle replay."""
    path = os.path.join(root, spec.module)
    with open(path, encoding="utf-8") as fh:
        source_lines = fh.read().splitlines()

    def text(line: int) -> str:
        if 1 <= line <= len(source_lines):
            return normalize_line(source_lines[line - 1])
        return ""

    violations: list[Finding] = []
    executed_confirmed: list[int] = []
    executed = 0
    for site, result in sorted(report.sites.items()):
        rel, _, lineno = site.rpartition(":")
        if rel != spec.module or result.hits == 0:
            continue
        executed += 1
        if result.status == CONFIRMED:
            executed_confirmed.append(int(lineno))
    if executed == 0:
        return [
            _violation(
                spec,
                f"workload {spec.workload_module}.{spec.workload_func} never "
                "executed the variant module",
                path,
            )
        ]
    if spec.dynamic_mode == "refuted-except-residual":
        residual = set(spec.dynamic_residual)
        confirmed_texts: set[str] = set()
        for lineno in executed_confirmed:
            line_text = text(lineno)
            confirmed_texts.add(line_text)
            if line_text not in residual:
                violations.append(
                    _violation(
                        spec,
                        "line digests key-dependently but is not an accepted "
                        f"clear-boundary line: {line_text!r}",
                        path,
                        lineno,
                    )
                )
        for line_text in sorted(residual - confirmed_texts):
            violations.append(
                _violation(
                    spec,
                    "recorded clear-boundary line no longer digests "
                    f"key-dependently (stale dynamic residual): {line_text!r}",
                    path,
                )
            )
    elif not executed_confirmed:
        # mode "confirmed": straight-line code is claimed, *not* value
        # independence — if every executed line digests identically the
        # recorded caveat (values remain key-dependent) is stale
        violations.append(
            _violation(
                spec,
                "every executed line digested key-independently; the variant's "
                "recorded CONFIRMED caveat no longer holds",
                path,
            )
        )
    return violations
