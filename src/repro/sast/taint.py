"""Secret-flow taint engine (rules SF001-SF006).

Taint is seeded at the declared sources of key material:

* attribute reads of ``SecretKey`` fields (``sk.f``, ``sk.big_f``,
  ``campaign.sk.g``, ``self.sk.f_fft``, ...);
* the outputs of the discrete Gaussian samplers
  (:func:`repro.falcon.samplerz.samplerz` and friends) and of
  ffSampling — every z they return is distributed around a
  secret-derived center;
* any line annotated ``# sast: source``.

Propagation is inter-procedural but context-insensitive: a fixpoint
over the call graph computes, for every project function, (a) whether
its return value carries taint introduced inside it, (b) which
parameters flow to its return value, and (c) which parameters receive
tainted arguments from any call site. A final reporting pass replays
each function with its computed parameter taint and flags the three
sink classes of the paper's threat model — secret-dependent branches
(SF001), secret-indexed subscripts (SF002), and secret operands
reaching variable-time operations (SF003: division, modulo, pow,
exp/log/sqrt, shifts by a secret amount, ``bit_length``) — plus
explicit ``# sast: sink`` lines (SF004).

Findings carry a ``taint_chain``: source first, then up to
``_MAX_HOPS`` propagation steps, then the sink.

Two refinements ride on the same fixpoint:

* **Leak-class components.** Taint values carry the architectural field
  of the fpr datapath they derive from (``sign`` / ``exponent`` /
  ``mantissa`` / ``sampler``), seeded by the declared field layout of
  ``decompose`` / ``_unpack_normal`` / ``mul_limbs`` and transformed by
  a small join lattice (mantissa ⊗ mantissa under ``*`` →
  ``mantissa-mul``, under ``+``/``-`` → ``mantissa-add``, an order
  comparison against zero extracts ``sign``, ``bit_length`` of a
  significand is ``exponent`` information). Every finding records the
  resulting class in ``Finding.leak_class`` so the leakage contract can
  machine-check its hand-reviewed taxonomy (rule CT006).

* **Masking awareness.** XORing a secret with fresh uniform randomness
  from a recognized mask source degrades it from ``secret`` to
  ``share``: shares are key-independent in isolation, so SF001–SF004
  stay quiet on them. Reusing one mask across distinct values or
  recombining shares blinded by the same mask re-exposes the secret and
  fires SF005. A module-level ``# sast: constant-time`` pragma enables
  a stricter dialect: interval-based discharging is disabled and
  secret-bounded ``range()`` loops fire SF006.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.sast.findings import Finding
from repro.sast.intervals import (
    IntervalAnalysis,
    IntervalEnv,
    block_terminates,
    build_interval_analysis,
)
from repro.sast.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_parts,
    unparse_short,
)

__all__ = ["COMPONENT_CLASSES", "TaintConfig", "run_taint"]

_MAX_HOPS = 6

#: the mantissa sub-family of the component lattice: a raw significand
#: limb and the two arithmetic structures the paper distinguishes
_MANTISSA_FAMILY = frozenset({"mantissa", "mantissa-mul", "mantissa-add"})

#: contract leak class per inferred component. A bare ``mantissa`` (a
#: significand limb not yet tied to a mul/add step) and the generic top
#: ``""`` map to no class — the keyword heuristic is the fallback there.
COMPONENT_CLASSES: dict[str, str] = {
    "sign": "sign",
    "exponent": "exponent",
    "mantissa-mul": "mantissa-mul",
    "mantissa-add": "mantissa-add",
    "sampler": "ancillary",
    "mantissa": "",
    "": "",
}

#: components whose order comparison against zero reveals the sign bit
#: of a signed magnitude. Exponent quantities keep their class (an
#: exponent's sign is exponent information) and sampler/generic values
#: stay put: a keygen bigint's transient sign is not the paper's sign
#: channel.
_SIGN_EXTRACTABLE = _MANTISSA_FAMILY

_KIND_ORDER = {"mask": 0, "share": 1, "secret": 2}


def _join_component(a: str, b: str) -> str:
    """Nearest common ancestor of two datapath components."""
    if a == b:
        return a
    if a in _MANTISSA_FAMILY and b in _MANTISSA_FAMILY:
        return "mantissa"
    return ""


def _join_kind(a: str, b: str) -> str:
    """secret > share > mask: a merge is as exposed as its worst input."""
    return a if _KIND_ORDER.get(a, 2) >= _KIND_ORDER.get(b, 2) else b


@dataclass(frozen=True)
class TaintConfig:
    """What counts as a source, a carrier, and a variable-time op."""

    #: SecretKey attribute -> human name of the field (the chain names it).
    secret_attrs: dict[str, str] = field(default_factory=lambda: {
        "f": "f",
        "g": "g",
        "big_f": "F",
        "big_g": "G",
        "f_fft": "f (FFT domain)",
        "b_hat": "B_hat basis",
        "tree": "ffLDL tree",
    })
    #: Names that denote a SecretKey-holding object even without a type
    #: annotation (``sk.f`` is a source wherever it appears).
    carrier_names: frozenset[str] = frozenset({"sk", "secret_key"})
    #: Qualified names of classes whose instances are secret carriers.
    secretkey_classes: frozenset[str] = frozenset({
        "repro.falcon.keygen.SecretKey",
    })
    #: Functions whose return value is secret by construction.
    source_functions: dict[str, str] = field(default_factory=lambda: {
        "repro.falcon.samplerz.samplerz": "samplerz output (secret Gaussian sample)",
        "repro.falcon.samplerz.samplerz_simple": "samplerz output (secret Gaussian sample)",
        "repro.falcon.samplerz.base_sampler": "base sampler output (secret half-Gaussian)",
        "repro.falcon.ffsampling.ffsampling": "ffSampling lattice point (secret-centered)",
        # keygen-time discrete Gaussians: the drawn polynomials *become*
        # sk.f / sk.g, so their values are secret from the first draw
        "repro.math.gaussian.sample_dgauss": "keygen Gaussian draw (becomes sk.f/sk.g)",
        "repro.math.gaussian.sample_poly_dgauss": "keygen Gaussian polynomial (becomes sk.f/sk.g)",
    })
    #: Carrier attributes that are *public* by construction (the public
    #: key and the parameter set): reading them off a SecretKey must not
    #: smear the object's taint onto public data.
    public_attrs: frozenset[str] = frozenset({"params", "h", "n", "q"})
    #: Calls that launder taint away (structure-only information).
    sanitizer_names: frozenset[str] = frozenset({
        "len", "range", "isinstance", "issubclass", "hasattr", "type", "id",
    })
    #: Resolved call targets that are variable-time in their operands.
    vartime_calls: frozenset[str] = frozenset({
        "math.exp", "math.expm1", "math.log", "math.log2", "math.log10",
        "math.sqrt", "math.isqrt", "math.pow",
    })
    #: Bare builtin call names that are variable-time.
    vartime_names: frozenset[str] = frozenset({"divmod", "pow"})
    #: Methods whose cost depends on the receiver's value.
    vartime_methods: frozenset[str] = frozenset({"bit_length", "bit_count"})
    #: Functions whose tuple return carries per-element datapath
    #: components (the declared fpr field layout the old keyword
    #: heuristic only guessed at from line text).
    component_sources: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        "repro.fpr.emu.decompose": ("sign", "exponent", "mantissa"),
        "repro.fpr.emu._unpack_normal": ("sign", "mantissa", "exponent"),
        "repro.fpr.trace.mul_limbs": ("mantissa", "mantissa"),
    })
    #: Whole-value component of configured source returns (sampler
    #: outputs are ``sampler``: ancillary until a later op refines them).
    source_components: dict[str, str] = field(default_factory=lambda: {
        "repro.falcon.samplerz.samplerz": "sampler",
        "repro.falcon.samplerz.samplerz_simple": "sampler",
        "repro.falcon.samplerz.base_sampler": "sampler",
        "repro.falcon.ffsampling.ffsampling": "sampler",
        "repro.math.gaussian.sample_dgauss": "sampler",
        "repro.math.gaussian.sample_poly_dgauss": "sampler",
    })
    #: Recognized mask sources: calls returning fresh uniform mask
    #: material. XORing a secret with one degrades it to a ``share``;
    #: each syntactic call site is one mask identity for SF005.
    mask_source_methods: frozenset[str] = frozenset({"fresh_mask"})
    mask_source_functions: frozenset[str] = frozenset({
        "repro.countermeasures.masked_mul.fresh_mask",
    })


@dataclass(frozen=True)
class Taint:
    """Taint value: a concrete origin and/or a dependence on parameters."""

    origin: str | None = None          # None = purely parameter-dependent
    source: str = ""                   # short source id for messages
    hops: tuple[str, ...] = ()
    params: frozenset[int] = frozenset()
    #: datapath component ("" = generic key material, the lattice top)
    component: str = ""
    #: per-element components of a tuple value (distributed on unpack)
    components: tuple[str, ...] | None = None
    #: "secret" | "share" (secret ^ fresh mask) | "mask" (the randomness)
    kind: str = "secret"
    #: mask identities: blinding masks of a share / ids of a mask value
    masks: frozenset[str] = frozenset()

    @property
    def real(self) -> bool:
        return self.origin is not None

    def hop(self, step: str) -> "Taint":
        if not self.real:
            return self
        if self.hops and self.hops[-1] == step:
            return self
        if len(self.hops) >= _MAX_HOPS:
            return self
        return replace(self, hops=self.hops + (step,))

    def chain(self, sink: str) -> tuple[str, ...]:
        head = (self.origin,) if self.origin else ()
        return head + self.hops + (sink,)


def _merge(a: Taint | None, b: Taint | None) -> Taint | None:
    if a is None:
        return b
    if b is None:
        return a
    origin, source, hops = a.origin, a.source, a.hops
    if origin is None and b.origin is not None:
        origin, source, hops = b.origin, b.source, b.hops
    if a.real and b.real:
        component = _join_component(a.component, b.component)
        kind = _join_kind(a.kind, b.kind)
    elif b.real:
        component, kind = b.component, b.kind
    else:
        component, kind = a.component, a.kind
    return Taint(
        origin=origin,
        source=source,
        hops=hops,
        params=a.params | b.params,
        component=component,
        components=a.components or b.components,
        kind=kind,
        masks=a.masks | b.masks,
    )


@dataclass
class _Summary:
    """What calling a function does, taint-wise."""

    param_to_return: set[int] = field(default_factory=set)
    source_return: Taint | None = None
    declassified: bool = False


class _Engine:
    """Shared fixpoint state across both analysis phases."""

    def __init__(self, project: Project, config: TaintConfig) -> None:
        self.project = project
        self.config = config
        self.intervals: IntervalAnalysis = build_interval_analysis(project)
        self.summaries: dict[str, _Summary] = {}
        self.param_taints: dict[str, dict[int, Taint]] = {}
        self.callers: dict[str, set[str]] = {}
        self.units: dict[str, _AnalysisUnit] = {}
        for info in project.iter_functions():
            # Only a blanket declassify is a data-flow boundary; a
            # rules-filtered one waives specific findings but must not
            # sanitize the values flowing through the function.
            summary = _Summary(
                declassified=info.declassify is not None and info.declassify.is_blanket
            )
            if info.qualname in config.source_functions:
                summary.source_return = Taint(
                    origin=config.source_functions[info.qualname],
                    source=info.node.name,
                    component=config.source_components.get(info.qualname, ""),
                    components=config.component_sources.get(info.qualname),
                )
            elif info.is_source:
                summary.source_return = Taint(
                    origin=f"annotated source {info.qualname}()",
                    source=info.node.name,
                    component=config.source_components.get(info.qualname, ""),
                    components=config.component_sources.get(info.qualname),
                )
            self.summaries[info.qualname] = summary
            self.param_taints[info.qualname] = {}
            self.units[info.qualname] = _AnalysisUnit(self, info)
        # external configured source functions get implicit summaries
        for qual, desc in config.source_functions.items():
            if qual not in self.summaries:
                self.summaries[qual] = _Summary(
                    source_return=Taint(
                        origin=desc,
                        source=qual.rsplit(".", 1)[-1],
                        component=config.source_components.get(qual, ""),
                        components=config.component_sources.get(qual),
                    )
                )

    # -- fixpoint ----------------------------------------------------------

    def solve(self) -> None:
        worklist = sorted(self.units)
        queued = set(worklist)
        rounds = 0
        while worklist and rounds < 50_000:
            rounds += 1
            qual = worklist.pop(0)
            queued.discard(qual)
            unit = self.units[qual]
            changed = unit.analyze(report=False)
            for dirty in changed:
                targets: Iterable[str]
                if dirty == qual:
                    targets = self.callers.get(qual, ())
                else:
                    targets = (dirty,)        # a callee's param taint changed
                for t in targets:
                    if t in self.units and t not in queued:
                        worklist.append(t)
                        queued.add(t)

    def report(self) -> list[Finding]:
        findings: list[Finding] = []
        for qual in sorted(self.units):
            findings.extend(self.units[qual].analyze(report=True))
        return findings

    # -- cross-unit updates ------------------------------------------------

    def feed_param(self, callee: str, index: int, taint: Taint) -> bool:
        """Record a real tainted argument; True if this is news.

        The first real taint pins the chain evidence; later call sites
        only *join* their datapath component and kind in, so a parameter
        fed ``mantissa-mul`` by one caller and ``mantissa-add`` by
        another settles on the family ancestor instead of whichever
        caller the fixpoint visited first.
        """
        if not taint.real:
            return False
        slot = self.param_taints.setdefault(callee, {})
        cur = slot.get(index)
        if cur is None:
            slot[index] = Taint(
                origin=taint.origin,
                source=taint.source,
                hops=taint.hops,
                component=taint.component,
                components=taint.components,
                kind=taint.kind,
                masks=taint.masks,
            )
            return True
        component = _join_component(cur.component, taint.component)
        kind = _join_kind(cur.kind, taint.kind)
        if component != cur.component or kind != cur.kind:
            slot[index] = replace(cur, component=component, kind=kind)
            return True
        return False


class _AnalysisUnit:
    """One function (or module body) analyzed against the engine state."""

    def __init__(self, engine: _Engine, info: FunctionInfo) -> None:
        self.engine = engine
        self.info = info
        self.module = engine.project.modules[info.module]

    # set up per-run state
    def analyze(self, report: bool) -> list[Finding]:
        ev = _Evaluator(self.engine, self.info, self.module, report=report)
        ev.run()
        if report:
            return ev.findings
        changed: list[str] = []
        summary = self.engine.summaries[self.info.qualname]
        ret = ev.return_taint
        if ret is not None:
            if ret.params - set(summary.param_to_return):
                summary.param_to_return |= ret.params
                changed.append(self.info.qualname)
            if ret.real and summary.source_return is None and not summary.declassified:
                summary.source_return = Taint(
                    origin=ret.origin,
                    source=ret.source,
                    hops=ret.hops,
                    component=ret.component,
                    components=ret.components,
                    kind=ret.kind,
                    masks=ret.masks,
                )
                changed.append(self.info.qualname)
        changed.extend(ev.dirty_callees)
        return changed


class _Evaluator(ast.NodeVisitor):
    """Abstract interpretation of one function body."""

    def __init__(
        self, engine: _Engine, info: FunctionInfo, module: ModuleInfo, report: bool
    ) -> None:
        self.engine = engine
        self.project = engine.project
        self.config = engine.config
        self.info = info
        self.module = module
        self.report = report
        self.env: dict[str, Taint] = {}
        self.carriers: set[str] = set()
        self.local_bindings: dict[str, str] = {}
        self.return_taint: Taint | None = None
        self.dirty_callees: list[str] = []
        self.findings: list[Finding] = []
        self._seen: set[tuple[str, int, int, str]] = set()
        self._sink_hit_lines: set[int] = set()
        self.intervals: IntervalAnalysis = engine.intervals
        self.ienv = IntervalEnv(engine.intervals, module, info)
        #: module-level `# sast: constant-time` pragma: stricter dialect
        #: (no interval discharging, secret-bounded loops fire SF006)
        self.strict_ct = any(
            a.kind == "constant-time" for a in module.annotations.values()
        )
        #: mask id -> syntactic site where it first blinded a value
        self._mask_uses: dict[str, str] = {}

    # -- driver ------------------------------------------------------------

    def run(self) -> None:
        node = self.info.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._seed_params()
            body = node.body
        else:                              # module body pseudo-function
            body = node.body
        # two passes so loop-carried taint stabilizes before reporting
        saved_report, self.report = self.report, False
        for stmt in body:
            self.exec_stmt(stmt)
        self.report = saved_report
        if self.report:
            self.findings = []
            self._seen.clear()
            self._sink_hit_lines.clear()
            self._mask_uses.clear()
            self.ienv = IntervalEnv(self.engine.intervals, self.module, self.info)
            for stmt in body:
                self.exec_stmt(stmt)

    def _seed_params(self) -> None:
        real = self.engine.param_taints.get(self.info.qualname, {})
        slots = list(enumerate(self.info.params))
        if self.info.vararg is not None:
            slots.append((self.info.vararg_slot, self.info.vararg))
        if self.info.kwarg is not None:
            slots.append((self.info.kwarg_slot, self.info.kwarg))
        for i, name in slots:
            taints: Taint | None = None
            if not self.report:
                taints = Taint(params=frozenset({i}))
            if i in real:
                hop = f"parameter {name} of {self.info.qualname}()"
                taints = _merge(taints, real[i].hop(hop))
            if taints is not None:
                self.env[name] = taints
            ann = self.info.param_annotations.get(name, "")
            if ann in self.config.secretkey_classes or ann.rsplit(".", 1)[-1] == "SecretKey":
                self.carriers.add(name)

    # -- helpers -----------------------------------------------------------

    def _loc(self, node: ast.AST) -> str:
        return f"{self.module.path}:{getattr(node, 'lineno', 0)}"

    def _is_carrier(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.carriers or node.id in self.config.carrier_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.config.carrier_names
        return False

    def _emit(
        self, rule: str, node: ast.AST, message: str, taint: Taint, sink: str
    ) -> None:
        if not self.report or not taint.real:
            return
        if rule != "SF005" and taint.kind != "secret":
            # shares and masks are key-independent in isolation: only a
            # masking violation (SF005) is reportable on them
            return
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        if self.project.suppressed(self.module, lineno, rule, self.info):
            return
        key = (rule, lineno, col, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.path,
                line=lineno,
                col=col + 1,
                message=message,
                taint_chain=taint.chain(f"{sink} at {self._loc(node)}"),
                function=self.info.qualname,
                source_line=self.module.source_line(lineno),
                leak_class=COMPONENT_CLASSES.get(taint.component, ""),
            )
        )

    def _check_sink_annotation(self, node: ast.AST, taint: Taint | None) -> None:
        if taint is None or not taint.real or not self.report:
            return
        lineno = getattr(node, "lineno", 0)
        ann = self.module.annotations.get(lineno)
        if ann is not None and ann.kind == "sink" and lineno not in self._sink_hit_lines:
            self._sink_hit_lines.add(lineno)
            self._emit(
                "SF004",
                node,
                f"tainted value ({taint.source}) reaches annotated sink",
                taint,
                "annotated sink",
            )

    # -- expression evaluation --------------------------------------------

    def eval(self, node: ast.AST | None) -> Taint | None:
        if node is None:
            return None
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        out = method(node) if method is not None else self._eval_generic(node)
        self._check_sink_annotation(node, out)
        return out

    def _eval_generic(self, node: ast.AST) -> Taint | None:
        out: Taint | None = None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword, ast.comprehension)):
                out = _merge(out, self.eval(child))
        return out

    def _eval_Constant(self, node: ast.Constant) -> None:
        return None

    def _eval_Name(self, node: ast.Name) -> Taint | None:
        return self.env.get(node.id)

    def _eval_Attribute(self, node: ast.Attribute) -> Taint | None:
        cfg = self.config
        if self._is_carrier(node.value):
            if node.attr in cfg.secret_attrs:
                name = cfg.secret_attrs[node.attr]
                return Taint(
                    origin=f"SecretKey.{name} ({unparse_short(node)} at {self._loc(node)})",
                    source=f"SecretKey.{name}",
                )
            if node.attr in cfg.public_attrs:
                # field-sensitive: the parameter set and the public key
                # are public even when the carrier object is tainted
                return None
        return self.eval(node.value)

    def _eval_Subscript(self, node: ast.Subscript) -> Taint | None:
        value = self.eval(node.value)
        index = self.eval(node.slice)
        if (
            index is not None
            and index.real
            and not isinstance(node.slice, ast.Constant)
            and not self.intervals.subscript_bounded(self.ienv.eval(node.slice))
        ):
            self._emit(
                "SF002",
                node,
                f"secret-indexed subscript: {unparse_short(node)} "
                f"(index derived from {index.source})",
                index,
                f"subscript index {unparse_short(node.slice)}",
            )
        return _merge(value, index)

    def _binop_component(
        self, node: ast.BinOp | ast.AugAssign,
        left: Taint | None, right: Taint | None, out: Taint | None,
    ) -> Taint | None:
        """Component lattice transitions for an arithmetic operator."""
        if out is None or not out.real:
            return out
        lc = left.component if left is not None and left.real else None
        rc = right.component if right is not None and right.real else None
        component = out.component
        if lc in _MANTISSA_FAMILY and rc in _MANTISSA_FAMILY:
            if isinstance(node.op, ast.Mult):
                component = "mantissa-mul"
            elif isinstance(node.op, (ast.Add, ast.Sub)):
                component = "mantissa-add"
        elif isinstance(node.op, ast.Mult) and (
            (lc in _MANTISSA_FAMILY and rc == "sign")
            or (rc in _MANTISSA_FAMILY and lc == "sign")
        ):
            # signed magnitude: multiplying a significand by (+/-1)
            # keeps the mantissa structure, it only applies the sign
            component = "mantissa"
        elif isinstance(node.op, (ast.LShift, ast.RShift)) and lc is not None:
            # a shifted significand is still the significand; the shift
            # amount (typically exponent-class) sets the *timing*, which
            # the SF003 check attributes to the amount operand instead
            component = lc
        if component != out.component:
            return replace(out, component=component)
        return out

    def _xor_taint(
        self, node: ast.BinOp | ast.AugAssign,
        left: Taint | None, right: Taint | None,
    ) -> Taint | None:
        """XOR: masking transitions (blind / reuse / recombine)."""
        out = _merge(left, right)
        if out is None or not out.real:
            return out
        lk = left.kind if left is not None and left.real else None
        rk = right.kind if right is not None and right.real else None
        mask: Taint | None = None
        val: Taint | None = None
        if lk == "mask" and rk in ("secret", "share"):
            mask, val = left, right
        elif rk == "mask" and lk in ("secret", "share"):
            mask, val = right, left
        if mask is not None and val is not None:
            if val.kind == "share" and (val.masks & mask.masks):
                self._emit(
                    "SF005", node,
                    f"share recombination: {unparse_short(node)} XORs a share "
                    "with a mask already blinding it, re-exposing the secret",
                    out, "share recombination",
                )
                return replace(
                    out, kind="secret", masks=frozenset(), component=val.component
                )
            site = f"{self.module.path}:{getattr(node, 'lineno', 0)}"
            for mid in sorted(mask.masks):
                prev = self._mask_uses.get(mid)
                if prev is not None and prev != site:
                    self._emit(
                        "SF005", node,
                        f"mask reuse: {unparse_short(node)} blinds a value with "
                        f"the mask drawn at {mid}, which already blinded a "
                        f"value at {prev}",
                        out, "mask reuse",
                    )
                else:
                    self._mask_uses[mid] = site
            return replace(
                out, kind="share", masks=val.masks | mask.masks,
                component=val.component,
            )
        if (
            lk == "share" and rk == "share"
            and left is not None and right is not None
            and left.masks & right.masks
        ):
            self._emit(
                "SF005", node,
                f"share recombination: {unparse_short(node)} XORs two shares "
                "blinded by the same mask, cancelling it",
                out, "share recombination",
            )
            return replace(out, kind="secret", masks=frozenset())
        return out

    def _eval_BinOp(self, node: ast.BinOp) -> Taint | None:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, ast.BitXor):
            out = self._xor_taint(node, left, right)
        else:
            out = self._binop_component(node, left, right, _merge(left, right))
        if self.report:
            vartime = isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod, ast.Pow))
            if vartime and out is not None and out.real:
                if self.strict_ct:
                    bounded = False
                elif isinstance(node.op, ast.Pow):
                    bounded = self.intervals.pow_exponent_bounded(
                        self.ienv.eval(node.right)
                    )
                else:
                    bounded = self.intervals.division_bounded(
                        self.ienv.eval(node.left),
                        self.ienv.eval(node.right),
                        node.right,
                    )
                if not bounded:
                    op = type(node.op).__name__.lower()
                    self._emit(
                        "SF003",
                        node,
                        f"secret operand in variable-time {op}: {unparse_short(node)}",
                        out,
                        f"variable-time {op}",
                    )
            elif (
                isinstance(node.op, (ast.LShift, ast.RShift))
                and right is not None
                and right.real
                and (
                    self.strict_ct
                    or not self.intervals.shift_amount_bounded(
                        self.ienv.eval(node.right)
                    )
                )
            ):
                self._emit(
                    "SF003",
                    node,
                    f"shift by secret-dependent amount: {unparse_short(node)}",
                    right,
                    "variable-width shift",
                )
        return out

    def _eval_Compare(self, node: ast.Compare) -> Taint | None:
        out = self.eval(node.left)
        for comp in node.comparators:
            out = _merge(out, self.eval(comp))
        if (
            out is not None
            and out.real
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
            and out.component in _SIGN_EXTRACTABLE
            and any(
                isinstance(side, ast.Constant)
                and type(side.value) in (int, float)
                and side.value == 0
                for side in (node.left, node.comparators[0])
            )
        ):
            # an order comparison against zero reveals exactly the sign
            # of a signed magnitude (`coeff < 0`, `v < 0`); exponent
            # quantities keep their class — an exponent's sign is still
            # exponent information
            out = replace(out, component="sign")
        return out

    def _eval_Tuple(self, node: ast.Tuple) -> Taint | None:
        elts = [self.eval(e) for e in node.elts]
        out: Taint | None = None
        for t in elts:
            out = _merge(out, t)
        if out is not None and out.real and len(node.elts) > 1:
            comps = tuple(
                (t.component if t is not None and t.real else "") for t in elts
            )
            if any(comps):
                out = replace(out, components=comps)
        return out

    _eval_List = _eval_Tuple

    def _eval_IfExp(self, node: ast.IfExp) -> Taint | None:
        test = self.eval(node.test)
        if test is not None and test.real:
            self._emit(
                "SF001",
                node,
                f"secret-dependent ternary: {unparse_short(node.test)} "
                f"(condition derived from {test.source})",
                test,
                f"ternary condition {unparse_short(node.test)}",
            )
        return _merge(test, _merge(self.eval(node.body), self.eval(node.orelse)))

    def _eval_Lambda(self, node: ast.Lambda) -> Taint | None:
        # analyze the body in a scope where the lambda's parameters
        # shadow outer names; closure taint still flows to sinks inside,
        # and the returned taint marks the lambda *value* as secret-
        # carrying (a later call of it propagates; see _eval_Call)
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            self.eval(default)
        saved = {n: self.env[n] for n in names if n in self.env}
        for n in names:
            self.env.pop(n, None)
        body_taint = self.eval(node.body)
        for n in names:
            self.env.pop(n, None)
        self.env.update(saved)
        if body_taint is not None:
            return body_taint.hop(f"captured by lambda at {self._loc(node)}")
        return None

    def _eval_Call(self, node: ast.Call) -> Taint | None:
        cfg = self.config
        arg_taints: list[Taint | None] = [self.eval(a) for a in node.args]
        kw_taints: dict[str, Taint | None] = {
            kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg is not None
        }
        star_kw = [self.eval(kw.value) for kw in node.keywords if kw.arg is None]
        receiver: Taint | None = None
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value)

        resolved = self._resolve_call(node)
        short = unparse_short(node.func, 32)
        loc = self._loc(node)
        any_taint: Taint | None = None
        for t in list(arg_taints) + list(kw_taints.values()) + star_kw + [receiver]:
            any_taint = _merge(any_taint, t)

        # recognized mask source: the return is fresh uniform mask
        # material, one identity per syntactic call site (a call in a
        # loop draws fresh randomness each iteration, so one site is
        # one mask family for the reuse check)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in cfg.mask_source_methods
        ) or (resolved is not None and resolved in cfg.mask_source_functions):
            site = (
                f"{self.module.path}:{getattr(node, 'lineno', 0)}"
                f":{getattr(node, 'col_offset', 0)}"
            )
            return Taint(
                origin=f"fresh mask at {loc}",
                source="fresh mask",
                kind="mask",
                masks=frozenset({site}),
            )

        # variable-time call checks (report phase only)
        if self.report:
            operand = any_taint if any_taint is not None else None
            if operand is not None and operand.real:
                is_pow_call = (
                    resolved == "math.pow"
                    or (isinstance(node.func, ast.Name) and node.func.id == "pow")
                )
                pow_bounded = (
                    is_pow_call
                    and len(node.args) == 2
                    and self.intervals.pow_exponent_bounded(
                        self.ienv.eval(node.args[1])
                    )
                )
                if not pow_bounded and (
                    (resolved in cfg.vartime_calls)
                    or (
                        isinstance(node.func, ast.Name)
                        and node.func.id in cfg.vartime_names
                    )
                ):
                    self._emit(
                        "SF003", node,
                        f"secret operand reaches variable-time call {short}()",
                        operand, f"variable-time call {short}()",
                    )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in cfg.vartime_methods
                and receiver is not None
                and receiver.real
                and not self.intervals.receiver_bounded(
                    self.ienv.eval(node.func.value)
                )
            ):
                self._emit(
                    "SF003", node,
                    f"operand-dependent {node.func.attr}() on secret value",
                    receiver, f"variable-time {node.func.attr}()",
                )

        if resolved is None:
            if isinstance(node.func, ast.Name) and node.func.id in cfg.sanitizer_names:
                return None
            if isinstance(node.func, ast.Name):
                # calling a local function value (e.g. a lambda closed
                # over a secret): the callable itself carries the taint
                any_taint = _merge(any_taint, self.env.get(node.func.id))
            out = any_taint
            if (
                out is not None
                and out.real
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in cfg.vartime_methods
                and receiver is not None
                and receiver.real
                and receiver.component in _MANTISSA_FAMILY
            ):
                # the bit width of a significand is its normalization
                # amount: exponent-class information, not mantissa
                out = replace(out, component="exponent")
            return out.hop(f"through {short}() at {loc}") if out is not None else None
        if resolved in cfg.sanitizer_names or resolved.rsplit(".", 1)[-1] in (
            cfg.sanitizer_names
        ):
            return None

        summary = self.engine.summaries.get(resolved)
        info = self.project.function_at(resolved)
        if summary is None:
            # external call (numpy, stdlib): conservative pass-through
            out = any_taint
            return out.hop(f"through {resolved}() at {loc}") if out is not None else None

        # map arguments onto callee parameter indices
        mapped: list[tuple[int, Taint]] = []
        offset = 0
        if info is not None and info.class_name and isinstance(node.func, ast.Attribute):
            base_resolved = self.project.resolve(self.module, node.func.value)
            class_qual = info.qualname.rsplit(".", 1)[0]
            if base_resolved != class_qual:
                offset = 1
                if receiver is not None:
                    mapped.append((0, receiver))
        for i, t in enumerate(arg_taints):
            if t is None:
                continue
            idx = i + offset
            if info is not None:
                overflow = idx >= info.n_positional
                starred = i < len(node.args) and isinstance(node.args[i], ast.Starred)
                if (overflow or starred) and info.vararg is not None:
                    idx = info.vararg_slot
            mapped.append((idx, t))
        if info is not None:
            for name, t in kw_taints.items():
                if t is None:
                    continue
                if name in info.params:
                    mapped.append((info.params.index(name), t))
                elif info.kwarg is not None:
                    mapped.append((info.kwarg_slot, t))
            if info.kwarg is not None:
                for t in star_kw:
                    if t is not None:
                        mapped.append((info.kwarg_slot, t))

        # feed real argument taint into the callee's parameter state —
        # unless this whole function is a blanket declassification
        # boundary, in which case its values are sanctioned and must not
        # re-taint the helpers it calls.
        blanket = self.info.declassify is not None and self.info.declassify.is_blanket
        self.engine.callers.setdefault(resolved, set()).add(self.info.qualname)
        for idx, t in mapped:
            if t.real and not blanket:
                pname = ""
                if info is not None and idx < len(info.params):
                    pname = info.params[idx]
                elif info is not None and idx == info.vararg_slot and info.vararg:
                    pname = f"*{info.vararg}"
                elif info is not None and idx == info.kwarg_slot and info.kwarg:
                    pname = f"**{info.kwarg}"
                fed = self.engine.feed_param(
                    resolved, idx,
                    t.hop(f"argument {pname or idx} to {short}() at {loc}"),
                )
                if fed:
                    self.dirty_callees.append(resolved)

        if summary.declassified:
            return None
        out: Taint | None = None
        if summary.source_return is not None:
            src = summary.source_return
            out = Taint(
                origin=src.origin,
                source=src.source,
                hops=src.hops,
                component=src.component,
                components=src.components,
                kind=src.kind,
                masks=src.masks,
            ).hop(f"returned by {short}() at {loc}")
        for idx, t in mapped:
            if idx in summary.param_to_return:
                out = _merge(out, t.hop(f"through {short}() at {loc}"))
        # constructor of a secret-key class: result carries the arguments
        if out is None and resolved in cfg.secretkey_classes:
            out = any_taint
        return out

    def _resolve_call(self, node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name) and node.func.id in self.local_bindings:
            return self.local_bindings[node.func.id]
        resolved = self.project.resolve(self.module, node.func)
        if resolved is not None:
            return resolved
        # method call on an expression we can't type — unresolved
        return None

    # -- comprehensions ----------------------------------------------------

    def _bind_loop_target(
        self, target: ast.AST, iter_node: ast.expr, taint: Taint | None
    ) -> None:
        # `for i, v in enumerate(xs)`: the index is public even when xs
        # is secret — only the element inherits the taint.
        if (
            taint is not None
            and isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "enumerate"
            and isinstance(target, (ast.Tuple, ast.List))
            and len(target.elts) == 2
        ):
            self._assign_target(target.elts[0], None)
            self._assign_target(target.elts[1], taint)
            return
        self._assign_target(target, taint)

    def _eval_comprehension(self, node: ast.comprehension) -> Taint | None:
        it = self.eval(node.iter)
        if it is not None:
            self._bind_loop_target(node.target, node.iter, it)
        for cond in node.ifs:
            t = self.eval(cond)
            if t is not None and t.real:
                self._emit(
                    "SF001", cond,
                    f"secret-dependent filter: {unparse_short(cond)}",
                    t, f"comprehension filter {unparse_short(cond)}",
                )
        return it

    def _comp_scope_enter(self, node: ast.AST) -> tuple[set[str], dict[str, Taint]]:
        """Comprehensions have their own scope: remember what their
        targets shadow so the outer bindings are restored afterwards."""
        names: set[str] = set()
        for gen in getattr(node, "generators", []):
            _collect_target_names(gen.target, names)
        saved = {n: self.env[n] for n in names if n in self.env}
        return names, saved

    def _comp_scope_exit(self, names: set[str], saved: dict[str, Taint]) -> None:
        for n in names:
            self.env.pop(n, None)
        self.env.update(saved)

    def _eval_ListComp(self, node: ast.ListComp) -> Taint | None:
        names, saved = self._comp_scope_enter(node)
        out: Taint | None = None
        for gen in node.generators:
            out = _merge(out, self._eval_comprehension(gen))
        out = _merge(out, self.eval(node.elt))
        self._comp_scope_exit(names, saved)
        return out

    _eval_SetComp = _eval_ListComp
    _eval_GeneratorExp = _eval_ListComp

    def _eval_DictComp(self, node: ast.DictComp) -> Taint | None:
        names, saved = self._comp_scope_enter(node)
        out: Taint | None = None
        for gen in node.generators:
            out = _merge(out, self._eval_comprehension(gen))
        out = _merge(out, _merge(self.eval(node.key), self.eval(node.value)))
        self._comp_scope_exit(names, saved)
        return out

    # -- statements --------------------------------------------------------

    def exec_stmt(self, node: ast.stmt) -> None:
        method = getattr(self, f"_exec_{type(node).__name__}", None)
        if method is not None:
            method(node)
        else:
            # default: evaluate embedded expressions, then recurse bodies
            for fname in ("test", "value", "exc", "msg", "iter", "context_expr"):
                child = getattr(node, fname, None)
                if isinstance(child, ast.expr):
                    self.eval(child)
            for bname in ("body", "orelse", "finalbody", "handlers"):
                block = getattr(node, bname, None)
                if isinstance(block, list):
                    for item in block:
                        if isinstance(item, ast.stmt):
                            self.exec_stmt(item)
                        elif isinstance(item, ast.ExceptHandler):
                            for sub in item.body:
                                self.exec_stmt(sub)

    def _assign_target(self, target: ast.AST, taint: Taint | None) -> None:
        if isinstance(target, ast.Name):
            if taint is None:
                self.env.pop(target.id, None)
            else:
                hop = f"assigned to {target.id} at {self._loc(target)}"
                self.env[target.id] = _merge(self.env.get(target.id), taint.hop(hop)) or taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            comps = taint.components if taint is not None else None
            if comps is not None and len(comps) == len(target.elts):
                # distribute per-element components positionally:
                # `s, be, m = decompose(x)` gives each field its class
                for elt, comp in zip(target.elts, comps):
                    self._assign_target(
                        elt, replace(taint, component=comp, components=None)
                    )
            else:
                for elt in target.elts:
                    self._assign_target(elt, taint)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, taint)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # storing into a container/attribute taints the container
            head = target
            while isinstance(head, (ast.Attribute, ast.Subscript)):
                head = head.value
            if isinstance(head, ast.Name) and taint is not None:
                hop = f"stored into {unparse_short(target)} at {self._loc(target)}"
                self.env[head.id] = _merge(self.env.get(head.id), taint.hop(hop)) or taint

    def _returns_secretkey(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        resolved = self._resolve_call(value)
        if resolved is None:
            return False
        if resolved in self.config.secretkey_classes:
            return True
        info = self.project.function_at(resolved)
        if info is None:
            return False
        ret = info.return_annotation
        return ret in self.config.secretkey_classes or ret.rsplit(".", 1)[-1] == "SecretKey"

    def _exec_Assign(self, node: ast.Assign) -> None:
        taint = self.eval(node.value)
        ann = self.module.annotations.get(node.lineno)
        if ann is not None and ann.kind == "source":
            taint = _merge(
                taint,
                Taint(
                    origin=f"annotated source at {self._loc(node)}",
                    source="annotated source",
                ),
            )
        carrier = self._returns_secretkey(node.value) or (
            isinstance(node.value, ast.Name) and node.value.id in self.carriers
        )
        self.ienv.assign(node.targets, node.value)
        for target in node.targets:
            self._assign_target(target, taint)
            if carrier and isinstance(target, ast.Name):
                self.carriers.add(target.id)

    def _exec_AnnAssign(self, node: ast.AnnAssign) -> None:
        taint = self.eval(node.value) if node.value is not None else None
        if node.value is not None:
            self.ienv.assign([node.target], node.value)
        self._assign_target(node.target, taint)
        ann = self.info.param_annotations  # noqa: F841  (annotation taint n/a)
        resolved = ""
        if node.annotation is not None:
            from repro.sast.project import _annotation_to_str

            resolved = _annotation_to_str(self.module, node.annotation)
        if resolved.rsplit(".", 1)[-1] == "SecretKey" and isinstance(node.target, ast.Name):
            self.carriers.add(node.target.id)

    def _exec_AugAssign(self, node: ast.AugAssign) -> None:
        taint = self.eval(node.value)
        existing = None
        if isinstance(node.target, ast.Name):
            existing = self.env.get(node.target.id)
        if isinstance(node.op, ast.BitXor):
            out = self._xor_taint(node, existing, taint)
        else:
            out = self._binop_component(node, existing, taint, _merge(existing, taint))
        # augmented assignments run the same variable-time operators as
        # BinOp and historically escaped the SF003 check entirely
        if self.report:
            target_iv = None
            if isinstance(node.target, ast.Name):
                target_iv = self.ienv.eval(node.target)
            value_iv = self.ienv.eval(node.value)
            vartime = isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod, ast.Pow))
            if vartime and out is not None and out.real:
                if self.strict_ct:
                    bounded = False
                elif isinstance(node.op, ast.Pow):
                    bounded = self.intervals.pow_exponent_bounded(value_iv)
                else:
                    bounded = self.intervals.division_bounded(
                        target_iv, value_iv, node.value
                    )
                if not bounded:
                    op = type(node.op).__name__.lower()
                    self._emit(
                        "SF003",
                        node,
                        f"secret operand in variable-time {op}: {unparse_short(node)}",
                        out,
                        f"variable-time {op}",
                    )
            elif (
                isinstance(node.op, (ast.LShift, ast.RShift))
                and taint is not None
                and taint.real
                and (
                    self.strict_ct
                    or not self.intervals.shift_amount_bounded(value_iv)
                )
            ):
                self._emit(
                    "SF003",
                    node,
                    f"shift by secret-dependent amount: {unparse_short(node)}",
                    taint,
                    "variable-width shift",
                )
        self.ienv.aug_assign(node)
        self._assign_target(node.target, out)

    def _exec_Return(self, node: ast.Return) -> None:
        taint = self.eval(node.value) if node.value is not None else None
        self.return_taint = _merge(self.return_taint, taint)

    def _exec_Expr(self, node: ast.Expr) -> None:
        self.eval(node.value)

    def _branch(self, test: ast.expr, kind: str) -> None:
        taint = self.eval(test)
        if taint is not None and taint.real:
            self._emit(
                "SF001",
                test,
                f"secret-dependent {kind}: `{unparse_short(test)}` "
                f"(condition derived from {taint.source})",
                taint,
                f"{kind} condition `{unparse_short(test)}`",
            )

    def _exec_If(self, node: ast.If) -> None:
        self._branch(node.test, "branch")
        before = self.ienv.snapshot()
        self.ienv.refine(node.test, True)
        for stmt in node.body:
            self.exec_stmt(stmt)
        body_env = self.ienv.snapshot()
        self.ienv.restore(before)
        self.ienv.refine(node.test, False)
        for stmt in node.orelse:
            self.exec_stmt(stmt)
        if block_terminates(node.body):
            pass                 # fall-through keeps the refined else env
        elif block_terminates(node.orelse):
            self.ienv.restore(body_env)
        else:
            self.ienv.join_into(body_env)

    def _exec_While(self, node: ast.While) -> None:
        self._branch(node.test, "loop condition")
        self.ienv.havoc_assigned(node.body)
        self.ienv.refine(node.test, True)
        for stmt in node.body:
            self.exec_stmt(stmt)
        for stmt in node.orelse:
            self.exec_stmt(stmt)
        self.ienv.havoc_assigned(node.body)

    def _exec_Assert(self, node: ast.Assert) -> None:
        self._branch(node.test, "assertion")
        if node.msg is not None:
            self.eval(node.msg)

    def _exec_For(self, node: ast.For) -> None:
        it = self.eval(node.iter)
        if self.strict_ct:
            # constant-time dialect: the iteration *count* must be
            # public. `range()` is a taint sanitizer, so re-examine its
            # arguments; a secret bound fires SF006 even though the
            # loop variable itself stays clean.
            bound = it
            if (
                isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"
            ):
                bound = None
                for arg in node.iter.args:
                    bound = _merge(bound, self.eval(arg))
            if bound is not None and bound.real and bound.kind == "secret":
                self._emit(
                    "SF006",
                    node.iter,
                    f"secret-bounded loop in constant-time module: "
                    f"{unparse_short(node.iter)}",
                    bound,
                    "loop bound",
                )
        self.ienv.havoc_assigned(node.body)
        self.ienv.bind_loop_target(node.target, node.iter)
        self._bind_loop_target(node.target, node.iter, it)
        for stmt in node.body:
            self.exec_stmt(stmt)
        for stmt in node.orelse:
            self.exec_stmt(stmt)
        self.ienv.havoc_assigned(node.body)

    def _exec_With(self, node: ast.With) -> None:
        for item in node.items:
            taint = self.eval(item.context_expr)
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, taint)
        for stmt in node.body:
            self.exec_stmt(stmt)

    def _exec_FunctionDef(self, node: ast.FunctionDef) -> None:
        qual = f"{self.info.qualname}.{node.name}"
        if qual in self.engine.summaries:
            self.local_bindings[node.name] = qual

    _exec_AsyncFunctionDef = _exec_FunctionDef

    def _exec_ClassDef(self, node: ast.ClassDef) -> None:
        pass                                  # methods are separate units

    def _exec_Raise(self, node: ast.Raise) -> None:
        if node.exc is not None:
            self.eval(node.exc)

    def _exec_Try(self, node: ast.Try) -> None:
        for stmt in node.body:
            self.exec_stmt(stmt)
        for stmt in node.orelse:
            self.exec_stmt(stmt)
        # any prefix of the try body may have run before a handler does
        self.ienv.havoc_assigned(node.body)
        for handler in node.handlers:
            for stmt in handler.body:
                self.exec_stmt(stmt)
        for stmt in node.finalbody:
            self.exec_stmt(stmt)

    _exec_TryStar = _exec_Try


def _collect_target_names(target: ast.AST, into: set[str]) -> None:
    if isinstance(target, ast.Name):
        into.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _collect_target_names(elt, into)
    elif isinstance(target, ast.Starred):
        _collect_target_names(target.value, into)


def run_taint(project: Project, config: TaintConfig | None = None) -> list[Finding]:
    """Run the secret-flow pass over a loaded project."""
    engine = _Engine(project, config or TaintConfig())
    engine.solve()
    return engine.report()
