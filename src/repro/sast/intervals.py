"""Interval abstract interpretation over Python ints for the taint pass.

The SF002/SF003 rules are about *value-dependent cost*: a shift is
variable-time when the amount can grow with the secret, a table lookup
leaks when the index can range over the table. Many flagged sites in
the ``fpr`` soft-float layer are provably bounded at compile time —
``(x >> EXP_SHIFT) & _EXP_MASK`` is an 11-bit field whatever ``x`` is,
an exponent difference clamped with ``min(d, 63)`` can never shift by
more than a word. This module proves those bounds so the taint pass can
drop the findings as false positives instead of baselining them.

Three layers, all derived statically (nothing is imported):

* :class:`Interval` — a classic ``[lo, hi]`` domain over ints with
  ``None`` as ±infinity; transfer functions for the arithmetic the
  ``fpr``/``falcon`` layers actually use (masks, shifts, ``min``/``max``,
  ``bit_length``, …).
* module-level constant resolution — ``_EXP_MASK = (1 << EXP_BITS) - 1``
  style definitions are folded project-wide, across imports.
* per-function **return-interval summaries** — a bounded fixpoint so
  ``decompose(x)``'s three return components come back as
  ``([0,1], [0,2047], [0,2^52-1])`` at every call site, tuple-aware.

Soundness posture: the evaluator walks each body linearly with
branch-join and early-exit refinement; every name assigned inside a
loop body is widened to ⊤ before the body is interpreted (loop targets
over ``range`` with bounded operands keep their range interval, which
is iteration-invariant). Anything not provably an int stays ⊤. The
consumer only ever uses the intervals to *suppress* findings, so ⊤
always degrades to the old behaviour, never hides a new flow.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.sast.project import FunctionInfo, ModuleInfo, Project, dotted_parts

__all__ = [
    "Interval",
    "IntervalAnalysis",
    "IntervalEnv",
    "TOP",
    "block_terminates",
    "build_interval_analysis",
]

_MAX_ROUNDS = 8
_POW_SUPPRESS_MAX_EXP = 4
_SUBSCRIPT_WINDOW = 64


@dataclass(frozen=True)
class Interval:
    """Integer interval ``[lo, hi]``; ``None`` bounds are unbounded."""

    lo: Optional[int]
    hi: Optional[int]

    # -- predicates --------------------------------------------------------

    @property
    def finite(self) -> bool:
        return self.lo is not None and self.hi is not None

    @property
    def const(self) -> Optional[int]:
        if self.lo is not None and self.lo == self.hi:
            return self.lo
        return None

    @property
    def nonneg(self) -> bool:
        return self.lo is not None and self.lo >= 0

    def width(self) -> Optional[int]:
        if not self.finite:
            return None
        assert self.lo is not None and self.hi is not None
        return self.hi - self.lo + 1

    def contains_zero(self) -> bool:
        lo_ok = self.lo is None or self.lo <= 0
        hi_ok = self.hi is None or self.hi >= 0
        return lo_ok and hi_ok

    # -- lattice -----------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        lo = other.lo if self.lo is None else (
            self.lo if other.lo is None else max(self.lo, other.lo)
        )
        hi = other.hi if self.hi is None else (
            self.hi if other.hi is None else min(self.hi, other.hi)
        )
        if lo is not None and hi is not None and lo > hi:
            # contradiction (dead branch): keep a point to stay harmless
            return Interval(lo, lo)
        return Interval(lo, hi)


TOP = Interval(None, None)

#: What an expression evaluates to: a scalar interval, a tuple of values
#: (tuple-returning functions / tuple literals), or ⊤-as-Interval.
Value = Union[Interval, tuple]


def _as_interval(value: Optional[Value]) -> Interval:
    return value if isinstance(value, Interval) else TOP


def _corners(
    a: Interval, b: Interval, op, clamp_b_nonneg: bool = False
) -> Interval:
    """Min/max over the four corners of two *finite* intervals."""
    if not a.finite or not b.finite:
        return TOP
    assert a.lo is not None and a.hi is not None
    assert b.lo is not None and b.hi is not None
    b_lo, b_hi = b.lo, b.hi
    if clamp_b_nonneg:
        b_lo, b_hi = max(b_lo, 0), max(b_hi, 0)
    vals = [op(x, y) for x in (a.lo, a.hi) for y in (b_lo, b_hi)]
    return Interval(min(vals), max(vals))


# -- transfer functions ----------------------------------------------------


def iv_add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def iv_neg(a: Interval) -> Interval:
    lo = None if a.hi is None else -a.hi
    hi = None if a.lo is None else -a.lo
    return Interval(lo, hi)


def iv_sub(a: Interval, b: Interval) -> Interval:
    return iv_add(a, iv_neg(b))


def iv_mul(a: Interval, b: Interval) -> Interval:
    return _corners(a, b, lambda x, y: x * y)


def iv_floordiv(a: Interval, b: Interval) -> Interval:
    if not b.finite or b.contains_zero():
        return TOP
    return _corners(a, b, lambda x, y: x // y)


def iv_mod(a: Interval, b: Interval) -> Interval:
    # Python's % takes the divisor's sign: x % d ∈ [0, d-1] for d > 0,
    # (d+1, 0] for d < 0 — independent of the dividend.
    if b.lo is not None and b.lo > 0 and b.hi is not None:
        return Interval(0, b.hi - 1)
    if b.hi is not None and b.hi < 0 and b.lo is not None:
        return Interval(b.lo + 1, 0)
    return TOP


def iv_pow(a: Interval, b: Interval) -> Interval:
    k = b.const
    if k is None or k < 0 or k > 64 or not a.finite:
        return TOP
    assert a.lo is not None and a.hi is not None
    if a.lo >= 0 or k % 2 == 1:
        return Interval(a.lo**k, a.hi**k)
    peak = max(abs(a.lo), abs(a.hi)) ** k
    return Interval(0, peak)


def iv_lshift(a: Interval, b: Interval) -> Interval:
    if b.finite and b.hi is not None and b.hi > 4096:
        return TOP      # keep the folded constants small
    return _corners(a, b, lambda x, y: x << y, clamp_b_nonneg=True)


def iv_rshift(a: Interval, b: Interval) -> Interval:
    return _corners(a, b, lambda x, y: x >> y, clamp_b_nonneg=True)


def iv_and(a: Interval, b: Interval) -> Interval:
    # x & y with y ≥ 0 keeps only bits of y: result ∈ [0, y] ⊆ [0, y.hi].
    bounds = [s.hi for s in (a, b) if s.nonneg and s.hi is not None]
    if bounds:
        return Interval(0, min(bounds))
    return TOP


def iv_or(a: Interval, b: Interval) -> Interval:
    if a.nonneg and b.nonneg and a.finite and b.finite:
        assert a.lo is not None and b.lo is not None
        assert a.hi is not None and b.hi is not None
        bits = max(a.hi.bit_length(), b.hi.bit_length())
        return Interval(max(a.lo, b.lo), (1 << bits) - 1)
    return TOP


def iv_xor(a: Interval, b: Interval) -> Interval:
    if a.nonneg and b.nonneg and a.finite and b.finite:
        assert a.hi is not None and b.hi is not None
        bits = max(a.hi.bit_length(), b.hi.bit_length())
        return Interval(0, (1 << bits) - 1)
    return TOP


def iv_invert(a: Interval) -> Interval:
    # ~x == -x - 1
    return iv_sub(iv_neg(a), Interval(1, 1))


def iv_abs(a: Interval) -> Interval:
    if not a.finite:
        if a.lo is not None and a.lo >= 0:
            return a
        return Interval(0, None)
    assert a.lo is not None and a.hi is not None
    if a.lo >= 0:
        return a
    if a.hi <= 0:
        return Interval(-a.hi, -a.lo)
    return Interval(0, max(-a.lo, a.hi))


def iv_min(values: Sequence[Interval]) -> Interval:
    los = [v.lo for v in values]
    lo = None if any(x is None for x in los) else min(x for x in los if x is not None)
    finite_his = [v.hi for v in values if v.hi is not None]
    hi = min(finite_his) if finite_his else None
    return Interval(lo, hi)


def iv_max(values: Sequence[Interval]) -> Interval:
    his = [v.hi for v in values]
    hi = None if any(x is None for x in his) else max(x for x in his if x is not None)
    finite_los = [v.lo for v in values if v.lo is not None]
    lo = max(finite_los) if finite_los else None
    return Interval(lo, hi)


def iv_bit_length(a: Interval) -> Interval:
    if not a.finite:
        return Interval(0, None)
    assert a.lo is not None and a.hi is not None
    if a.lo >= 0:
        return Interval(a.lo.bit_length(), a.hi.bit_length())
    peak = max(abs(a.lo), abs(a.hi))
    return Interval(0, peak.bit_length())


_BINOPS = {
    ast.Add: iv_add,
    ast.Sub: iv_sub,
    ast.Mult: iv_mul,
    ast.FloorDiv: iv_floordiv,
    ast.Mod: iv_mod,
    ast.Pow: iv_pow,
    ast.LShift: iv_lshift,
    ast.RShift: iv_rshift,
    ast.BitAnd: iv_and,
    ast.BitOr: iv_or,
    ast.BitXor: iv_xor,
}

_NEGATE = {
    ast.Lt: ast.GtE,
    ast.LtE: ast.Gt,
    ast.Gt: ast.LtE,
    ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
}


# -- project-wide analysis -------------------------------------------------


class IntervalAnalysis:
    """Folded module constants + per-function return-interval summaries."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: fully-qualified constant name -> value
        self.consts: dict[str, int] = {}
        #: function qualname -> return Value (Interval or tuple of Values)
        self.returns: dict[str, Value] = {}

    # constants ------------------------------------------------------------

    def _fold_constants(self) -> None:
        for _ in range(3):
            changed = False
            for qual in sorted(self.project.modules):
                module = self.project.modules[qual]
                env = _ModuleConstEnv(self, module)
                for stmt in module.tree.body:
                    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                        continue
                    target = stmt.targets[0]
                    if not isinstance(target, ast.Name):
                        continue
                    value = env.eval(stmt.value)
                    const = _as_interval(value).const
                    full = f"{qual}.{target.id}"
                    if const is not None and self.consts.get(full) != const:
                        self.consts[full] = const
                        changed = True
            if not changed:
                break

    def resolve_const(self, module: ModuleInfo, parts: list[str]) -> Optional[int]:
        """``MANT_BITS`` / ``emu.MANT_BITS`` -> folded value, if known."""
        local = f"{module.qualname}.{parts[0]}"
        if len(parts) == 1 and local in self.consts:
            return self.consts[local]
        target = module.bindings.get(parts[0])
        if target is None:
            return None
        full = ".".join([target] + parts[1:])
        return self.consts.get(full)

    # return summaries -----------------------------------------------------

    def _solve_returns(self) -> None:
        functions = sorted(self.project.functions)
        for rounds in range(_MAX_ROUNDS):
            changed: list[str] = []
            for qual in functions:
                info = self.project.functions[qual]
                module = self.project.modules[info.module]
                ret = _FunctionSummarizer(self, info, module).summarize()
                if ret is not None and self.returns.get(qual) != ret:
                    self.returns[qual] = ret
                    changed.append(qual)
            if not changed:
                return
        # did not converge: widen the still-moving summaries away
        for qual in functions:
            info = self.project.functions[qual]
            module = self.project.modules[info.module]
            ret = _FunctionSummarizer(self, info, module).summarize()
            if ret is not None and self.returns.get(qual) != ret:
                self.returns.pop(qual, None)

    # suppression predicates (what the taint pass consumes) ----------------

    def shift_amount_bounded(self, amount: Optional[Value]) -> bool:
        """Shift amounts with compile-time bounds map to fixed-width
        (barrel-shifter) shifts in the modeled C implementation."""
        return _as_interval(amount).finite

    def pow_exponent_bounded(self, exponent: Optional[Value]) -> bool:
        k = _as_interval(exponent).const
        return k is not None and 0 <= k <= _POW_SUPPRESS_MAX_EXP

    def division_bounded(
        self,
        dividend: Optional[Value],
        divisor: Optional[Value],
        divisor_node: ast.expr | None = None,
    ) -> bool:
        """Division is data-independent when the divisor is a power-of-two
        literal (exponent decrement / exact scaling) or a non-zero
        constant applied to a compile-time-bounded dividend."""
        if divisor_node is not None and isinstance(divisor_node, ast.Constant):
            value = divisor_node.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if value > 0 and math.frexp(float(value))[0] == 0.5:
                    return True
        c = _as_interval(divisor).const
        return c is not None and c != 0 and _as_interval(dividend).finite

    def subscript_bounded(self, index: Optional[Value]) -> bool:
        iv = _as_interval(index)
        w = iv.width()
        return w is not None and w <= _SUBSCRIPT_WINDOW

    def receiver_bounded(self, receiver: Optional[Value]) -> bool:
        return _as_interval(receiver).finite


def build_interval_analysis(project: Project) -> IntervalAnalysis:
    analysis = IntervalAnalysis(project)
    analysis._fold_constants()
    analysis._solve_returns()
    return analysis


# -- expression evaluation -------------------------------------------------


class IntervalEnv:
    """Per-function interval state driven by a statement walker.

    The taint evaluator owns control flow; it calls :meth:`assign` /
    :meth:`enter_branch` / :meth:`havoc_loop` at the matching points of
    its own walk and :meth:`eval` wherever it needs a bound.
    """

    def __init__(
        self, analysis: IntervalAnalysis, module: ModuleInfo,
        info: FunctionInfo | None = None,
    ) -> None:
        self.analysis = analysis
        self.module = module
        self.info = info
        self.env: dict[str, Value] = {}

    # -- environment -------------------------------------------------------

    def snapshot(self) -> dict[str, Value]:
        return dict(self.env)

    def restore(self, saved: Mapping[str, Value]) -> None:
        self.env = dict(saved)

    def join_into(self, other: Mapping[str, Value]) -> None:
        """Pointwise join of the current env with another branch's env."""
        merged: dict[str, Value] = {}
        for name in set(self.env) & set(other):
            a, b = self.env[name], other[name]
            if isinstance(a, Interval) and isinstance(b, Interval):
                merged[name] = a.join(b)
        self.env = merged

    def set(self, name: str, value: Optional[Value]) -> None:
        if value is None or (isinstance(value, Interval) and not value.finite
                             and value.lo is None and value.hi is None):
            self.env.pop(name, None)
        else:
            self.env[name] = value

    # -- statements --------------------------------------------------------

    def assign(self, targets: Iterable[ast.AST], value_node: ast.expr) -> None:
        value = self.eval(value_node)
        for target in targets:
            self._bind(target, value)

    def _bind(self, target: ast.AST, value: Optional[Value]) -> None:
        if isinstance(target, ast.Name):
            self.set(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems: Sequence[Optional[Value]]
            if isinstance(value, tuple) and len(value) == len(target.elts):
                elems = list(value)
            else:
                elems = [None] * len(target.elts)
            for elt, sub in zip(target.elts, elems):
                self._bind(elt, sub)
        # stores into attributes/subscripts don't affect name intervals

    def aug_assign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.target, ast.Name):
            return
        op = _BINOPS.get(type(node.op))
        current = _as_interval(self.env.get(node.target.id))
        value = _as_interval(self.eval(node.value))
        self.set(node.target.id, op(current, value) if op else TOP)

    def bind_loop_target(self, target: ast.AST, iter_node: ast.expr) -> None:
        """``for i in range(a, b)`` binds ``i`` to ``[a, b-1]``; everything
        else havocs the targets (element values are untracked)."""
        rng = self._range_interval(iter_node)
        if rng is not None and isinstance(target, ast.Name):
            self.set(target.id, rng)
            return
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "enumerate"
            and isinstance(target, (ast.Tuple, ast.List))
            and len(target.elts) == 2
        ):
            self._bind(target.elts[0], Interval(0, None))
            self._bind(target.elts[1], None)
            return
        self._bind(target, None)

    def _range_interval(self, iter_node: ast.expr) -> Optional[Interval]:
        if not (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
            and 1 <= len(iter_node.args) <= 3
            and not iter_node.keywords
        ):
            return None
        args = [_as_interval(self.eval(a)) for a in iter_node.args]
        if len(args) == 1:
            start, stop = Interval(0, 0), args[0]
        else:
            start, stop = args[0], args[1]
        if start.lo is None or stop.hi is None:
            return None
        return Interval(start.lo, stop.hi - 1)

    def havoc_assigned(self, body: Sequence[ast.stmt]) -> None:
        """Widen every name assigned inside a loop body to ⊤ before the
        body is interpreted once (iteration k's value may feed k+1's)."""
        for name in _assigned_names(body):
            self.env.pop(name, None)

    # -- branch refinement -------------------------------------------------

    def refine(self, test: ast.expr, assume: bool) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self.refine(test.operand, not assume)
            return
        if isinstance(test, ast.BoolOp):
            if assume and isinstance(test.op, ast.And):
                for value in test.values:
                    self.refine(value, True)
            elif not assume and isinstance(test.op, ast.Or):
                for value in test.values:
                    self.refine(value, False)
            return
        if not isinstance(test, ast.Compare):
            return
        operands = [test.left] + list(test.comparators)
        if not assume and len(test.ops) > 1:
            return                      # which link failed is unknown
        for op, left, right in zip(test.ops, operands, operands[1:]):
            kind = type(op)
            if not assume:
                neg = _NEGATE.get(kind)
                if neg is None:
                    return
                kind = neg
            self._refine_pair(kind, left, right)
            # a < b also means b > a: reuse the pair logic flipped
            flipped = {
                ast.Lt: ast.Gt, ast.LtE: ast.GtE,
                ast.Gt: ast.Lt, ast.GtE: ast.LtE,
                ast.Eq: ast.Eq, ast.NotEq: ast.NotEq,
            }.get(kind)
            if flipped is not None:
                self._refine_pair(flipped, right, left)

    def _refine_pair(self, kind: type, name_node: ast.expr, other: ast.expr) -> None:
        if not isinstance(name_node, ast.Name):
            return
        bound = _as_interval(self.eval(other))
        current = _as_interval(self.env.get(name_node.id))
        refined: Interval
        if kind is ast.Lt and bound.hi is not None:
            refined = current.meet(Interval(None, bound.hi - 1))
        elif kind is ast.LtE and bound.hi is not None:
            refined = current.meet(Interval(None, bound.hi))
        elif kind is ast.Gt and bound.lo is not None:
            refined = current.meet(Interval(bound.lo + 1, None))
        elif kind is ast.GtE and bound.lo is not None:
            refined = current.meet(Interval(bound.lo, None))
        elif kind is ast.Eq:
            refined = current.meet(bound)
        elif kind is ast.NotEq:
            # holes are unrepresentable, but excluding an endpoint is not
            c = bound.const
            if c is None:
                return
            if current.lo == c:
                refined = Interval(c + 1, current.hi)
            elif current.hi == c:
                refined = Interval(current.lo, c - 1)
            else:
                return
        else:
            return
        self.set(name_node.id, refined)

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr | None) -> Optional[Value]:
        if node is None:
            return None
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return TOP
        out = method(node)
        return out

    def _eval_Constant(self, node: ast.Constant) -> Value:
        if isinstance(node.value, bool):
            return Interval(int(node.value), int(node.value))
        if isinstance(node.value, int):
            return Interval(node.value, node.value)
        return TOP

    def _eval_Name(self, node: ast.Name) -> Value:
        if node.id in self.env:
            return self.env[node.id]
        const = self.analysis.resolve_const(self.module, [node.id])
        if const is not None:
            return Interval(const, const)
        return TOP

    def _eval_Attribute(self, node: ast.Attribute) -> Value:
        parts = dotted_parts(node)
        if parts is not None:
            const = self.analysis.resolve_const(self.module, parts)
            if const is not None:
                return Interval(const, const)
        return TOP

    def _eval_BinOp(self, node: ast.BinOp) -> Value:
        op = _BINOPS.get(type(node.op))
        if op is None:
            return TOP
        left = _as_interval(self.eval(node.left))
        right = _as_interval(self.eval(node.right))
        return op(left, right)

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> Value:
        operand = _as_interval(self.eval(node.operand))
        if isinstance(node.op, ast.USub):
            return iv_neg(operand)
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Invert):
            return iv_invert(operand)
        if isinstance(node.op, ast.Not):
            return Interval(0, 1)
        return TOP

    def _eval_Compare(self, node: ast.Compare) -> Value:
        return Interval(0, 1)

    def _eval_BoolOp(self, node: ast.BoolOp) -> Value:
        out: Optional[Interval] = None
        for value in node.values:
            iv = _as_interval(self.eval(value))
            out = iv if out is None else out.join(iv)
        return out if out is not None else TOP

    def _eval_IfExp(self, node: ast.IfExp) -> Value:
        body = _as_interval(self.eval(node.body))
        orelse = _as_interval(self.eval(node.orelse))
        return body.join(orelse)

    def _eval_Tuple(self, node: ast.Tuple) -> Value:
        return tuple(self.eval(elt) or TOP for elt in node.elts)

    def _eval_Call(self, node: ast.Call) -> Value:
        func = node.func
        if isinstance(func, ast.Name):
            args = [_as_interval(self.eval(a)) for a in node.args
                    if not isinstance(a, ast.Starred)]
            if len(args) == len(node.args) and args:
                if func.id == "min":
                    return iv_min(args)
                if func.id == "max":
                    return iv_max(args)
                if func.id == "abs" and len(args) == 1:
                    return iv_abs(args[0])
                if func.id == "int" and len(args) == 1:
                    # int() of a tracked int expression is the identity;
                    # floats were never tracked so they arrive as ⊤
                    return args[0]
                if func.id == "pow" and len(args) == 2:
                    return iv_pow(args[0], args[1])
            if func.id == "len":
                return Interval(0, None)
            if func.id in ("bool", "isinstance", "issubclass", "hasattr"):
                return Interval(0, 1)
        if isinstance(func, ast.Attribute) and not node.args and not node.keywords:
            if func.attr in ("bit_length", "bit_count"):
                return iv_bit_length(_as_interval(self.eval(func.value)))
        resolved = self.analysis.project.resolve(self.module, func)
        if resolved is not None and resolved in self.analysis.returns:
            return self.analysis.returns[resolved]
        return TOP


# -- function summaries ----------------------------------------------------


class _ModuleConstEnv(IntervalEnv):
    """Evaluator for module top-level constant folding (no local state)."""

    def __init__(self, analysis: IntervalAnalysis, module: ModuleInfo) -> None:
        super().__init__(analysis, module)

    def _eval_Call(self, node: ast.Call) -> Value:
        return TOP                       # no call folding at module level


def _assigned_names(body: Sequence[ast.stmt]) -> set[str]:
    names: set[str] = set()

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect_target(elt)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    collect_target(t)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
                collect_target(node.target)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
    return names


def block_terminates(body: Sequence[ast.stmt]) -> bool:
    return any(
        isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))
        for stmt in body
    )


class _FunctionSummarizer:
    """One linear walk of a function body collecting the return Value."""

    def __init__(
        self, analysis: IntervalAnalysis, info: FunctionInfo, module: ModuleInfo
    ) -> None:
        self.env = IntervalEnv(analysis, module, info)
        self.info = info
        self.ret: Optional[Value] = None

    def summarize(self) -> Optional[Value]:
        for stmt in self.info.node.body:
            self.exec_stmt(stmt)
        return self.ret

    def _join_return(self, value: Optional[Value]) -> None:
        value = value if value is not None else TOP
        if self.ret is None:
            self.ret = value
        elif isinstance(self.ret, tuple) and isinstance(value, tuple) and (
            len(self.ret) == len(value)
        ):
            self.ret = tuple(
                _as_interval(a).join(_as_interval(b))
                for a, b in zip(self.ret, value)
            )
        else:
            self.ret = _as_interval(self.ret).join(_as_interval(value))

    def exec_stmt(self, node: ast.stmt) -> None:
        env = self.env
        if isinstance(node, ast.Assign):
            env.assign(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                env.assign([node.target], node.value)
        elif isinstance(node, ast.AugAssign):
            env.aug_assign(node)
        elif isinstance(node, ast.Return):
            self._join_return(env.eval(node.value) if node.value else None)
        elif isinstance(node, ast.If):
            before = env.snapshot()
            env.refine(node.test, True)
            for stmt in node.body:
                self.exec_stmt(stmt)
            body_env = env.snapshot()
            env.restore(before)
            env.refine(node.test, False)
            for stmt in node.orelse:
                self.exec_stmt(stmt)
            if block_terminates(node.body):
                pass                    # fall-through env is the else env
            elif block_terminates(node.orelse):
                env.restore(body_env)
            else:
                env.join_into(body_env)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            env.havoc_assigned(node.body)
            env.bind_loop_target(node.target, node.iter)
            for stmt in node.body + node.orelse:
                self.exec_stmt(stmt)
        elif isinstance(node, ast.While):
            env.havoc_assigned(node.body)
            env.refine(node.test, True)
            for stmt in node.body + node.orelse:
                self.exec_stmt(stmt)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for stmt in node.body:
                self.exec_stmt(stmt)
        elif isinstance(node, ast.Try):
            for stmt in node.body:
                self.exec_stmt(stmt)
            # handler/else/final bodies may observe partial state: havoc
            for block in (node.handlers, node.orelse, node.finalbody):
                for item in block:
                    sub = item.body if isinstance(item, ast.ExceptHandler) else [item]
                    self.env.havoc_assigned(sub)
        # nested defs / classes don't touch the local env
