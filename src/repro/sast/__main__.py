"""``python -m repro.sast`` == the ``repro-sast`` console script."""

from repro.sast.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
