"""Baseline file: accepted findings that keep the gate green.

The committed baseline (``sast-baseline.json``) records findings that
are *known and intentional* — chiefly the secret-dependent arithmetic
inside ``repro.fpr.emu`` and ``repro.falcon``, which is the faithful
model of the leaky implementation the paper attacks. New findings fail
the gate; baselined ones are suppressed; baseline entries that no
longer match anything are **stale** and themselves become findings
(BL001) under ``--check-baseline``, so the file can only shrink in
step with the code.

Entries are matched by a fingerprint that survives line drift:
``(rule, root-relative path, enclosing function, normalized source
line, occurrence index)`` — moving a function around the file keeps
its entries valid, while editing the flagged line invalidates them.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.sast.findings import Finding

__all__ = [
    "fingerprint",
    "assign_occurrences",
    "load_baseline",
    "render_baseline",
    "apply_baseline",
]

_FORMAT_VERSION = 1


def _relpath(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:
        return path.replace(os.sep, "/")
    return rel.replace(os.sep, "/")


def fingerprint(finding: Finding, root: str) -> tuple[str, str, str, str, int]:
    return (
        finding.rule,
        _relpath(finding.path, root),
        finding.function,
        " ".join(finding.source_line.split()),
        finding.occurrence,
    )


def assign_occurrences(findings: list[Finding]) -> list[Finding]:
    """Number findings that share a fingerprint prefix, in line order."""
    from dataclasses import replace

    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    counts: dict[tuple[str, str, str, str], int] = {}
    out: list[Finding] = []
    for f in ordered:
        key = (f.rule, f.path, f.function, " ".join(f.source_line.split()))
        n = counts.get(key, 0)
        counts[key] = n + 1
        out.append(replace(f, occurrence=n))
    return out


def load_baseline(path: str) -> set[tuple[str, str, str, str, int]]:
    """Read a baseline file; raises ValueError on a malformed one."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported baseline format in {path!r}")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path!r} has no 'entries' list")
    out: set[tuple[str, str, str, str, int]] = set()
    for e in entries:
        if not isinstance(e, dict):
            raise ValueError(f"baseline {path!r} has a non-object entry")
        out.add(
            (
                str(e.get("rule", "")),
                str(e.get("path", "")),
                str(e.get("function", "")),
                str(e.get("line_text", "")),
                int(e.get("occurrence", 0)),
            )
        )
    return out


def render_baseline(findings: list[Finding], root: str) -> str:
    """Serialize current findings as a fresh baseline document."""
    entries: list[dict[str, Any]] = []
    for f in assign_occurrences(findings):
        rule, rel, function, line_text, occurrence = fingerprint(f, root)
        entry: dict[str, Any] = {
            "rule": rule,
            "path": rel,
            "function": function,
            "line_text": line_text,
        }
        if occurrence:
            entry["occurrence"] = occurrence
        entries.append(entry)
    entries.sort(key=lambda e: (e["path"], e["rule"], e["function"],
                                e["line_text"], e.get("occurrence", 0)))
    doc = {"version": _FORMAT_VERSION, "entries": entries}
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def apply_baseline(
    findings: list[Finding],
    baseline: set[tuple[str, str, str, str, int]],
    root: str,
    baseline_path: str = "",
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, stale-baseline-entry findings).

    Returns the findings not covered by the baseline, plus one BL001
    finding per baseline entry that matched nothing (stale).
    """
    matched: set[tuple[str, str, str, str, int]] = set()
    fresh: list[Finding] = []
    for f in assign_occurrences(findings):
        fp = fingerprint(f, root)
        if fp in baseline:
            matched.add(fp)
        else:
            fresh.append(f)
    stale: list[Finding] = []
    for fp in sorted(baseline - matched):
        rule, rel, function, line_text, occurrence = fp
        where = f" in {function}()" if function else ""
        stale.append(
            Finding(
                rule="BL001",
                path=baseline_path or "sast-baseline.json",
                line=0,
                col=0,
                message=(
                    f"stale baseline entry: {rule} at {rel}{where} "
                    f"({line_text!r}) matches no current finding — remove it"
                ),
            )
        )
    return fresh, stale
