"""Determinism pass (rules DT001-DT003).

The reproduction's scale guarantees (bit-identical results under
``--workers N`` and across resume, PRs 1-3) hold only if every random
draw is seeded, no result field depends on the wall clock, and nothing
hashed into a fingerprint depends on set/dict/filesystem iteration
order. This pass flags the three ways those guarantees silently break:

* **DT001** — unseeded randomness outside :mod:`repro.utils.rng`: any
  use of the ``random`` module, legacy ``np.random.*`` draws,
  ``np.random.default_rng()`` with no seed, or ``os.urandom``.
* **DT002** — wall-clock reads (``time.time``, ``datetime.now`` ...)
  outside the telemetry layer (``repro.obs`` owns timestamps; results
  must use ``perf_counter`` deltas or injected clocks).
* **DT003** — iterating a set, dict view, or directory listing without
  ``sorted()`` inside a digest/manifest/fingerprint context.
"""

from __future__ import annotations

import ast

from repro.sast.findings import Finding
from repro.sast.project import FunctionInfo, ModuleInfo, Project, unparse_short

__all__ = ["run_determinism"]

#: modules where nondeterministic primitives are the point
_RNG_EXEMPT_SUFFIXES = (".utils.rng",)
_CLOCK_EXEMPT_PARTS = (".obs.", ".obs")

_LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "choice", "shuffle", "permutation",
    "normal", "uniform", "seed", "bytes", "standard_normal",
}
_WALL_CLOCK = {
    "time.time", "time.time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
}
_DIGEST_NAME_PARTS = ("fingerprint", "manifest", "digest", "checksum")
_UNORDERED_ATTRS = {"keys", "values", "items", "glob", "iterdir", "rglob"}
_UNORDERED_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob", "set"}


def _function_spans(module: ModuleInfo) -> list[tuple[str, int, int, object]]:
    spans = []
    for info in module.functions:
        end = getattr(info.node, "end_lineno", info.node.lineno)
        spans.append((info.qualname, info.node.lineno, end, info))
    return spans


class _Visitor(ast.NodeVisitor):
    def __init__(self, project: Project, module: ModuleInfo) -> None:
        self.project = project
        self.module = module
        self.findings: list[Finding] = []
        self.spans = _function_spans(module)

    # -- shared helpers ----------------------------------------------------

    def _enclosing(self, lineno: int) -> tuple[str, int, FunctionInfo] | None:
        best: tuple[str, int, FunctionInfo] | None = None
        for qualname, start, end, info in self.spans:
            if start <= lineno <= end:
                if best is None or start > best[1]:
                    best = (qualname, start, info)
        return best

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        enclosing = self._enclosing(lineno)
        function = enclosing[0] if enclosing else ""
        info = enclosing[2] if enclosing else None
        if self.project.suppressed(self.module, lineno, rule, info):
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                function=function,
                source_line=self.module.source_line(lineno),
            )
        )

    # -- DT001 / DT002: call inspection ------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.project.resolve(self.module, node.func)
        qual = self.module.qualname
        rng_exempt = any(qual.endswith(s) for s in _RNG_EXEMPT_SUFFIXES)
        clock_exempt = f".obs." in f".{qual}." or qual.endswith(".obs")

        if resolved is not None and not rng_exempt:
            if resolved.startswith("random."):
                self._emit(
                    "DT001", node,
                    f"unseeded stdlib randomness: {unparse_short(node)} — use "
                    "repro.utils.rng (ChaCha20Prng) so runs are reproducible",
                )
            elif resolved == "os.urandom":
                self._emit(
                    "DT001", node,
                    "os.urandom outside repro.utils.rng breaks replayability — "
                    "take randomness from an injected Rng",
                )
            elif resolved.startswith("numpy.random."):
                tail = resolved.split(".")[-1]
                if tail in _LEGACY_NP_RANDOM:
                    self._emit(
                        "DT001", node,
                        f"legacy global np.random draw: {unparse_short(node)} — "
                        "use a seeded np.random.default_rng(seed) Generator",
                    )
                elif tail == "default_rng" and not _has_seed(node):
                    self._emit(
                        "DT001", node,
                        "np.random.default_rng() without a seed is entropy-seeded; "
                        "pass an explicit seed derived from the run config",
                    )
        if resolved in _WALL_CLOCK and not clock_exempt:
            self._emit(
                "DT002", node,
                f"wall-clock read {unparse_short(node)} in a result-bearing "
                "path — use time.perf_counter() deltas for durations and let "
                "repro.obs own timestamps",
            )
        self.generic_visit(node)

    # -- DT003: unordered iteration in digest contexts ---------------------

    def _in_digest_context(self, lineno: int) -> bool:
        enclosing = self._enclosing(lineno)
        if enclosing is None:
            return False
        info = enclosing[2]
        name = info.qualname.rsplit(".", 1)[-1].lower()
        if any(part in name for part in _DIGEST_NAME_PARTS):
            return True
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Call):
                r = self.project.resolve(self.module, sub.func)
                if r is not None and r.startswith("hashlib."):
                    return True
        return False

    def _unordered_iterable(self, node: ast.expr) -> str | None:
        """Short description if the expression iterates in unstable order."""
        if isinstance(node, ast.Call):
            resolved = self.project.resolve(self.module, node.func)
            if resolved in _UNORDERED_CALLS:
                return f"{resolved}(...)"
            if isinstance(node.func, ast.Name) and node.func.id == "set":
                return "set(...)"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _UNORDERED_ATTRS
            ):
                return f".{node.func.attr}()"
        if isinstance(node, ast.Set):
            return "set literal"
        return None

    def _check_iter(self, iter_node: ast.expr) -> None:
        desc = self._unordered_iterable(iter_node)
        if desc is None:
            return
        if not self._in_digest_context(getattr(iter_node, "lineno", 0)):
            return
        self._emit(
            "DT003", iter_node,
            f"iteration over {desc} feeds a digest/manifest/fingerprint — "
            "wrap in sorted() so hashes are order-stable",
        )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def _has_seed(node: ast.Call) -> bool:
    for a in node.args:
        if not (isinstance(a, ast.Constant) and a.value is None):
            return True
    for kw in node.keywords:
        if kw.arg in (None, "seed") and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return True
    return False


def run_determinism(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for qualname in sorted(project.modules):
        module = project.modules[qualname]
        visitor = _Visitor(project, module)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings
