"""Concurrency / durability pass (rules CC001-CC002).

* **CC001** — mutation of module-level state in code reachable from a
  ``ProcessPoolExecutor`` worker. Workers are separate processes: a
  mutated module global is silently per-process, so aggregation that
  relies on it loses data. The pass finds every ``executor.submit(fn,
  ...)`` / ``executor.map(fn, ...)`` whose callable resolves to a
  project function, walks the call graph from those roots, and flags
  ``global`` rebinding, stores through module globals, and mutating
  method calls (``.append`` etc.) on module globals inside the
  reachable set.

* **CC002** — file writes that bypass the crash-durable
  :func:`repro.utils.io.atomic_write_bytes` /
  :func:`~repro.utils.io.atomic_write_text` /
  :func:`~repro.utils.io.atomic_output_path` helpers: raw
  ``open(path, "w"/"wb"/"x")``, ``Path.write_text``/``write_bytes``,
  and direct ``np.save``/``np.savez*`` to a final path. Append-mode
  opens are allowed (the journal's append-fsync protocol is itself
  durable). ``repro/utils/io.py`` is exempt — it is the one place
  allowed to touch the filesystem directly.
"""

from __future__ import annotations

import ast

from repro.sast.findings import Finding
from repro.sast.project import FunctionInfo, ModuleInfo, Project, unparse_short

__all__ = ["run_concurrency"]

_MUTATORS = {
    "append", "add", "update", "extend", "insert", "pop", "popitem",
    "clear", "setdefault", "remove", "discard", "sort", "reverse",
}
_NP_SAVERS = {"numpy.save", "numpy.savez", "numpy.savez_compressed", "numpy.savetxt"}
_IO_EXEMPT_SUFFIX = ".utils.io"


def _head_name(node: ast.AST) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _call_graph(project: Project) -> dict[str, set[str]]:
    """qualname -> resolved project callees (module-level resolution)."""
    edges: dict[str, set[str]] = {}
    for info in project.iter_functions():
        module = project.modules[info.module]
        callees: set[str] = set()
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Call):
                resolved = project.resolve(module, sub.func)
                if resolved is not None and resolved in project.functions:
                    callees.add(resolved)
            elif isinstance(sub, (ast.Name, ast.Attribute)):
                # passing a function as a value (e.g. to executor.submit)
                resolved = project.resolve(module, sub)
                if resolved is not None and resolved in project.functions:
                    callees.add(resolved)
        edges[info.qualname] = callees
    return edges


def _worker_roots(project: Project) -> set[str]:
    """Functions handed to ``.submit`` / ``.map`` on an executor."""
    roots: set[str] = set()
    for module in project.modules.values():
        uses_pool = any(
            isinstance(n, (ast.Name, ast.Attribute))
            and (project.resolve(module, n) or "").endswith("ProcessPoolExecutor")
            for n in ast.walk(module.tree)
        )
        if not uses_pool:
            continue
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and node.args
            ):
                continue
            target = project.resolve(module, node.args[0])
            if target is not None and target in project.functions:
                roots.add(target)
    return roots


def _reachable(edges: dict[str, set[str]], roots: set[str]) -> set[str]:
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        cur = frontier.pop()
        for nxt in edges.get(cur, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


class _Pass:
    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: list[Finding] = []
        self.edges = _call_graph(project)
        self.worker_fns = _reachable(self.edges, _worker_roots(project))

    def _emit(
        self, rule: str, module: ModuleInfo, node: ast.AST,
        message: str, info: FunctionInfo | None,
    ) -> None:
        lineno = getattr(node, "lineno", 0)
        if self.project.suppressed(module, lineno, rule, info):
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=module.path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                function=info.qualname if info else "",
                source_line=module.source_line(lineno),
            )
        )

    # -- CC001 -------------------------------------------------------------

    def check_worker_state(self) -> None:
        for qualname in sorted(self.worker_fns):
            info = self.project.functions[qualname]
            module = self.project.modules[info.module]
            globals_declared: set[str] = set()
            for sub in ast.walk(info.node):
                if isinstance(sub, ast.Global):
                    globals_declared.update(sub.names)
            for sub in ast.walk(info.node):
                if isinstance(sub, (ast.Assign, ast.AugAssign)):
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                    )
                    for tgt in targets:
                        if isinstance(tgt, ast.Name) and tgt.id in globals_declared:
                            self._emit(
                                "CC001", module, sub,
                                f"worker-reachable {qualname}() rebinds module "
                                f"global {tgt.id!r}; the write is per-process and "
                                "lost at join — return state and merge instead",
                                info,
                            )
                        elif isinstance(tgt, (ast.Attribute, ast.Subscript)):
                            head = _head_name(tgt)
                            if head in module.module_globals:
                                self._emit(
                                    "CC001", module, sub,
                                    f"worker-reachable {qualname}() stores into "
                                    f"module global {head!r} "
                                    f"({unparse_short(tgt)}); per-process, lost "
                                    "at join — return a snapshot and merge",
                                    info,
                                )
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATORS
                ):
                    head = _head_name(sub.func.value)
                    if head in module.module_globals:
                        self._emit(
                            "CC001", module, sub,
                            f"worker-reachable {qualname}() mutates module "
                            f"global {head!r} via .{sub.func.attr}(); the "
                            "mutation is per-process and invisible to the "
                            "parent — return a snapshot and merge",
                            info,
                        )

    # -- CC002 -------------------------------------------------------------

    def _open_mode(self, call: ast.Call) -> str | None:
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            v = call.args[1].value
            return v if isinstance(v, str) else None
        for kw in call.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                v = kw.value.value
                return v if isinstance(v, str) else None
        return "r" if call.args or call.keywords else None

    def check_writes(self) -> None:
        for qualname in sorted(self.project.modules):
            module = self.project.modules[qualname]
            if module.qualname.endswith(_IO_EXEMPT_SUFFIX):
                continue
            # writes inside `with atomic_output_path(...)` blocks target
            # the yielded temp name — that IS the durable pattern
            atomic_spans: list[tuple[int, int]] = []
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        expr = item.context_expr
                        if isinstance(expr, ast.Call):
                            r = self.project.resolve(module, expr.func) or ""
                            if r.endswith("atomic_output_path"):
                                atomic_spans.append(
                                    (node.lineno, getattr(node, "end_lineno", node.lineno))
                                )

            def in_atomic_block(lineno: int) -> bool:
                return any(s <= lineno <= e for s, e in atomic_spans)
            spans = [
                (i.node.lineno, getattr(i.node, "end_lineno", i.node.lineno), i)
                for i in module.functions
            ]

            def enclosing(lineno: int) -> FunctionInfo | None:
                best: FunctionInfo | None = None
                best_start = -1
                for start, end, i in spans:
                    if start <= lineno <= end and start > best_start:
                        best, best_start = i, start
                return best

            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if in_atomic_block(getattr(node, "lineno", 0)):
                    continue
                info = enclosing(getattr(node, "lineno", 0))
                if isinstance(node.func, ast.Name) and node.func.id == "open":
                    mode = self._open_mode(node)
                    if mode is not None and any(c in mode for c in "wx"):
                        self._emit(
                            "CC002", module, node,
                            f"raw open(..., {mode!r}) write — a crash mid-write "
                            "leaves a torn file; use repro.utils.io."
                            "atomic_write_text/bytes (tmp + fsync + rename)",
                            info,
                        )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("write_text", "write_bytes")
                ):
                    self._emit(
                        "CC002", module, node,
                        f"Path.{node.func.attr}() is not crash-durable; use "
                        "repro.utils.io atomic_write_* instead",
                        info,
                    )
                else:
                    resolved = self.project.resolve(module, node.func)
                    if resolved in _NP_SAVERS:
                        self._emit(
                            "CC002", module, node,
                            f"direct {resolved.split('.', 1)[1]}() to a final "
                            "path is not crash-durable; write via repro.utils."
                            "io.atomic_output_path()",
                            info,
                        )


def run_concurrency(project: Project) -> list[Finding]:
    p = _Pass(project)
    p.check_worker_state()
    p.check_writes()
    return p.findings
