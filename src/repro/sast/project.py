"""Project model: parsed modules, name resolution, and the function index.

The analyzer is purely static — every ``*.py`` under the root is parsed
with :mod:`ast` (nothing is imported), so fixture trees in tests and the
real ``src/repro`` package load the same way. The loader builds:

* per-module import bindings (``fft`` -> ``repro.math.fft``) so call
  sites can be resolved to qualified names without executing imports;
* a function index covering module functions, methods, and nested
  functions (``repro.falcon.sign.sign.sampler``);
* the ``# sast:`` annotation map per module (see
  :mod:`repro.sast.annotations`).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.sast.annotations import Annotation, extract_annotations
from repro.sast.findings import Finding

__all__ = ["FunctionInfo", "ModuleInfo", "Project", "load_project", "dotted_parts"]


def dotted_parts(node: ast.AST) -> list[str] | None:
    """``a.b.c`` expression -> ``["a", "b", "c"]`` (None if not a pure chain)."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        base = dotted_parts(node.value)
        if base is None:
            return None
        return base + [node.attr]
    return None


@dataclass
class FunctionInfo:
    """One function or method known to the analyzer."""

    qualname: str                       # repro.falcon.sign.sign / ...Class.method
    module: str                         # enclosing module qualname
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str = ""                # enclosing class ("" for module functions)
    params: tuple[str, ...] = ()        # positional params, then keyword-only
    n_positional: int = 0               # how many of `params` accept positionals
    vararg: str | None = None           # `*args` name (taint slot len(params))
    kwarg: str | None = None            # `**kwargs` name (slot len(params)+1)
    param_annotations: dict[str, str] = field(default_factory=dict)  # name -> resolved
    return_annotation: str = ""
    declassify: Annotation | None = None   # declassify on the def line
    is_source: bool = False                # '# sast: source' on the def line

    @property
    def vararg_slot(self) -> int:
        return len(self.params)

    @property
    def kwarg_slot(self) -> int:
        return len(self.params) + 1


@dataclass
class ModuleInfo:
    """One parsed source file."""

    qualname: str                       # e.g. repro.falcon.sign
    path: str                           # display path (root-joined, as reported)
    source: str
    tree: ast.Module
    lines: list[str]
    bindings: dict[str, str] = field(default_factory=dict)   # local name -> qualified
    annotations: dict[int, Annotation] = field(default_factory=dict)
    annotation_errors: list[Finding] = field(default_factory=list)
    module_globals: set[str] = field(default_factory=set)    # top-level assigned names
    functions: list[FunctionInfo] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Project:
    """Everything the passes need: modules, functions, and resolution."""

    def __init__(self, root: str, package: str) -> None:
        self.root = root
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, str] = {}      # class qualname -> module qualname

    # -- queries -----------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()

    def resolve(self, module: ModuleInfo, node: ast.AST) -> str | None:
        """Qualified name a call/attribute chain refers to, if decidable."""
        parts = dotted_parts(node)
        if parts is None:
            return None
        target = module.bindings.get(parts[0])
        if target is None:
            return None
        return ".".join([target] + parts[1:])

    def function_at(self, qualname: str | None) -> FunctionInfo | None:
        if qualname is None:
            return None
        return self.functions.get(qualname)

    def annotation_at(self, module: ModuleInfo, lineno: int) -> Annotation | None:
        return module.annotations.get(lineno)

    def suppressed(
        self, module: ModuleInfo, lineno: int, rule: str,
        function: FunctionInfo | None = None,
    ) -> bool:
        """Is a finding at (module, line) declassified — inline or via the
        enclosing function's def-line annotation?"""
        ann = module.annotations.get(lineno)
        if ann is not None and ann.suppresses(rule):
            return True
        if function is not None and function.declassify is not None:
            return function.declassify.suppresses(rule)
        return False


def _annotation_to_str(module: ModuleInfo, node: ast.AST | None) -> str:
    """Best-effort resolved string for a type annotation expression."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: take the trailing identifier chain
        text = node.value.strip().split("[")[0]
        parts = text.split(".")
        head = module.bindings.get(parts[0])
        return ".".join([head] + parts[1:]) if head else text
    if isinstance(node, (ast.Name, ast.Attribute)):
        parts = dotted_parts(node)
        if parts is None:
            return ""
        head = module.bindings.get(parts[0])
        return ".".join([head] + parts[1:]) if head else ".".join(parts)
    if isinstance(node, ast.Subscript):       # Optional[SecretKey], list[...]
        return _annotation_to_str(module, node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 unions: prefer the non-None side
        left = _annotation_to_str(module, node.left)
        right = _annotation_to_str(module, node.right)
        return left if left not in ("", "None") else right
    return ""


def _collect_bindings(module: ModuleInfo) -> None:
    """Import and top-level definition bindings for name resolution."""
    pkg_parts = module.qualname.split(".")
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.bindings[alias.asname] = alias.name
                else:
                    module.bindings[alias.name.split(".")[0]] = alias.name.split(".")[0]
                    if "." in alias.name:
                        # `import a.b` also lets `a.b.f` resolve through `a`
                        module.bindings.setdefault(alias.name, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # relative import: strip `level` trailing components
                base_parts = pkg_parts[: len(pkg_parts) - node.level]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.bindings[local] = f"{base}.{alias.name}" if base else alias.name
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            module.bindings[stmt.name] = f"{module.qualname}.{stmt.name}"
        elif isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    module.module_globals.add(tgt.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                module.module_globals.add(stmt.target.id)


def _register_functions(
    project: Project, module: ModuleInfo,
    body: list[ast.stmt], prefix: str, class_name: str,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}.{stmt.name}"
            args = stmt.args
            positional = [a.arg for a in args.posonlyargs + args.args]
            names = positional + [a.arg for a in args.kwonlyargs]
            param_ann: dict[str, str] = {}
            for a in args.posonlyargs + args.args + args.kwonlyargs:
                resolved = _annotation_to_str(module, a.annotation)
                if resolved:
                    param_ann[a.arg] = resolved
            def_ann = module.annotations.get(stmt.lineno)
            info = FunctionInfo(
                qualname=qualname,
                module=module.qualname,
                node=stmt,
                class_name=class_name,
                params=tuple(names),
                n_positional=len(positional),
                vararg=args.vararg.arg if args.vararg else None,
                kwarg=args.kwarg.arg if args.kwarg else None,
                param_annotations=param_ann,
                return_annotation=_annotation_to_str(module, stmt.returns),
                declassify=def_ann if def_ann is not None and def_ann.kind == "declassify" else None,
                is_source=def_ann is not None and def_ann.kind == "source",
            )
            project.functions[qualname] = info
            module.functions.append(info)
            _register_functions(project, module, stmt.body, qualname, class_name)
        elif isinstance(stmt, ast.ClassDef):
            class_qual = f"{prefix}.{stmt.name}"
            project.classes[class_qual] = module.qualname
            _register_functions(project, module, stmt.body, class_qual, stmt.name)


def load_project(root: str, package: str | None = None) -> Project:
    """Parse every ``*.py`` under ``root`` into a :class:`Project`.

    ``package`` defaults to the root directory's basename, so loading
    ``src/repro`` yields module qualnames ``repro.falcon.sign`` etc.,
    matching how the package imports itself.
    """
    root = os.path.normpath(root)
    if not os.path.isdir(root):
        raise FileNotFoundError(f"analysis root is not a directory: {root!r}")
    pkg = package or os.path.basename(os.path.abspath(root))
    project = Project(root=root, package=pkg)
    paths: list[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in ("__pycache__",))
        for fn in sorted(filenames):
            if fn.endswith(".py"):
                paths.append(os.path.join(dirpath, fn))
    for path in paths:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if rel == "__init__.py":
            qualname = pkg
        elif rel.endswith("/__init__.py"):
            qualname = pkg + "." + rel[: -len("/__init__.py")].replace("/", ".")
        else:
            qualname = pkg + "." + rel[:-3].replace("/", ".")
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue     # not analyzable; the test suite / ruff will complain
        annotations, errors = extract_annotations(source, os.path.join(root, rel))
        module = ModuleInfo(
            qualname=qualname,
            path=os.path.join(root, rel),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            annotations=annotations,
            annotation_errors=errors,
        )
        _collect_bindings(module)
        project.modules[qualname] = module
        _register_functions(project, module, tree.body, qualname, "")
    return project


def call_name(project: Project, module: ModuleInfo, call: ast.Call) -> str | None:
    """Resolved qualified name of a call's target, if decidable."""
    return project.resolve(module, call.func)


def unparse_short(node: ast.AST, limit: int = 48) -> str:
    """Compact source form of an expression for messages."""
    try:
        text = ast.unparse(node)
    except Exception:
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."


def iter_module_functions(module: ModuleInfo) -> Iterator[FunctionInfo]:
    yield from module.functions


def literal_keywords(call: ast.Call) -> dict[str, Any]:
    """Constant-valued keyword arguments of a call (for heuristics)."""
    out: dict[str, Any] = {}
    for kw in call.keywords:
        if kw.arg is not None and isinstance(kw.value, ast.Constant):
            out[kw.arg] = kw.value.value
    return out
