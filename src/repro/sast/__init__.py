"""Static analysis for the FALCON side-channel reproduction.

``repro.sast`` is a zero-dependency (stdlib ``ast`` + ``tokenize``)
analyzer with three passes over the package source:

* secret-flow taint (:mod:`repro.sast.taint`, rules SF001-SF006);
* determinism lint (:mod:`repro.sast.determinism`, DT001-DT003);
* concurrency/durability lint (:mod:`repro.sast.concurrency`,
  CC001-CC002).

It never imports the code it analyzes — everything is parsed — so it
runs identically over ``src/repro`` and over test fixture trees. See
``docs/static-analysis.md`` for the rule catalog, the ``# sast:``
annotation grammar, and the baseline workflow.
"""

from repro.sast.baseline import apply_baseline, load_baseline, render_baseline
from repro.sast.cli import collect_findings, main
from repro.sast.findings import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    RULES,
    Finding,
    render_json,
    render_text,
    sort_findings,
)
from repro.sast.project import Project, load_project

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "RULES",
    "Finding",
    "Project",
    "apply_baseline",
    "collect_findings",
    "load_baseline",
    "load_project",
    "main",
    "render_baseline",
    "render_json",
    "render_text",
    "sort_findings",
]
