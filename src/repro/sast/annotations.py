"""The ``# sast:`` annotation grammar.

Three kinds of inline annotation steer the analyzer (full grammar in
``docs/static-analysis.md``):

``# sast: source``
    On an assignment line: the assigned names become taint sources.
    On a ``def`` line: the function's return value is a taint source.

``# sast: sink``
    Marks a line that must never receive tainted data; if taint reaches
    any expression on the line, SF004 fires.

``# sast: declassify(reason=...)``
    Suppresses findings on the annotated line — or, when placed on a
    ``def`` line, in the whole function, which then also returns
    untainted data (a declassification boundary). A ``reason`` is
    mandatory: declassification without a written justification is
    itself a finding (AN001). An optional rule filter restricts the
    suppression: ``# sast: declassify(rules=SF001|DT002, reason=...)``.

``# sast: constant-time``
    Module-level pragma: the whole module opts into the stricter
    constant-time dialect. Interval-based discharging of SF001–SF003 is
    disabled and secret-bounded loops fire SF006 (see
    ``docs/static-analysis.md``). Takes no arguments; conventionally
    placed on its own line near the top of the module.

Annotations are extracted with :mod:`tokenize` so they are recognized
only in real comments, never inside string literals.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.sast.findings import RULES, Finding

__all__ = ["Annotation", "extract_annotations"]

_PREFIX = re.compile(r"#\s*sast:")
_HEAD = re.compile(r"#\s*sast:\s*([\w-]+)\s*(?:\((.*)\)\s*)?$")
_RULES_ARG = re.compile(r"^\s*rules\s*=\s*([A-Z0-9|\s]+?)\s*,\s*")
_REASON_ARG = re.compile(r"^\s*reason\s*=\s*(.*\S)\s*$")


@dataclass(frozen=True)
class Annotation:
    """One parsed ``# sast:`` comment."""

    kind: str        # "source" | "sink" | "declassify" | "constant-time"
    line: int                      # 1-based line the comment sits on
    reason: str = ""
    rules: tuple[str, ...] = ()    # empty = applies to every rule

    def suppresses(self, rule: str) -> bool:
        return self.kind == "declassify" and (not self.rules or rule in self.rules)

    @property
    def is_blanket(self) -> bool:
        """Declassify with no rule filter: a full declassification
        boundary (sanitizes data flow), not just a finding waiver."""
        return self.kind == "declassify" and not self.rules


def extract_annotations(
    source: str, path: str
) -> tuple[dict[int, Annotation], list[Finding]]:
    """Parse all annotations in a module's source.

    Returns ``(line -> annotation, errors)``; malformed annotations are
    reported as AN001 findings rather than silently ignored (a typo'd
    declassify must not quietly re-enable a finding the author believed
    suppressed).
    """
    annotations: dict[int, Annotation] = {}
    errors: list[Finding] = []

    def err(line: int, col: int, message: str) -> None:
        errors.append(
            Finding(rule="AN001", path=path, line=line, col=col, message=message)
        )

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):
        return annotations, errors
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if _PREFIX.match(tok.string.strip()) is None:
            continue      # mentions "sast:" mid-comment — not an annotation
        line, col = tok.start
        m = _HEAD.match(tok.string.strip())
        if m is None:
            err(line, col, f"unparseable sast annotation: {tok.string.strip()!r}")
            continue
        kind, args = m.group(1), m.group(2)
        if kind not in ("source", "sink", "declassify", "constant-time"):
            err(line, col, f"unknown sast annotation kind {kind!r}")
            continue
        rules: tuple[str, ...] = ()
        reason = ""
        if kind == "declassify":
            rest = args or ""
            rm = _RULES_ARG.match(rest)
            if rm is not None:
                rules = tuple(r.strip() for r in rm.group(1).split("|") if r.strip())
                rest = rest[rm.end():]
                if not rules:
                    # `rules=|` must not silently widen into a blanket waiver
                    err(line, col, "declassify rules list is empty")
                    continue
                unknown = [r for r in rules if r not in RULES]
                if unknown:
                    err(line, col, f"declassify names unknown rule(s): {', '.join(unknown)}")
                    continue
            reason_m = _REASON_ARG.match(rest)
            if reason_m is None or not reason_m.group(1):
                err(line, col, "declassify requires a reason: "
                    "# sast: declassify(reason=why this flow is acceptable)")
                continue
            reason = reason_m.group(1)
        elif args:
            err(line, col, f"sast {kind} annotation takes no arguments")
            continue
        annotations[line] = Annotation(kind=kind, line=line, reason=reason, rules=rules)
    return annotations, errors
