"""Pluggable capture backends: who computes the step-value matrix.

Every trace the bench records starts from the same (D, S) uint64 matrix
of architectural intermediates — one row per multiplication, one column
per :data:`repro.fpr.trace.MUL_STEP_LABELS` entry. Two interchangeable
backends produce it:

``python-ref``
    The softfloat reference: one :func:`repro.fpr.trace.fpr_mul_trace`
    call per operand pair, exactly the instrumented execution the
    attack model is derived from. Slow (Python ints, one object per
    trace) but definitionally correct — it *is* the leakage model.

``numpy-batch``
    The whole pipeline — limb splits, schoolbook partial products,
    running sums, sticky collection, round-to-nearest-even with the
    carry-out renormalization, the ``EXP_REBIAS`` exponent add as a
    32-bit two's-complement word, sign XOR and the packed result —
    as uint64/int64 array ops over the full operand block. No host-FPU
    shortcut anywhere: rounding, underflow flush-to-zero and overflow
    saturate-to-infinity are the same exact integer arithmetic as
    :func:`repro.fpr.emu.fpr_mul`, so the two backends are bit-exact
    (property-tested, edge patterns included) while this one is
    orders of magnitude faster.

Capture campaigns select a backend by name (:class:`~repro.leakage.
capture.CaptureConfig` / ``repro-falcon ... --backend``); materialized
:class:`~repro.leakage.store.CampaignStore` manifests record which one
produced the shards. Because the backends agree bit-for-bit and the
device noise is seeded independently of them, the resulting trace sets
are byte-identical either way — the choice is purely a speed knob.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np
from numpy.typing import NDArray

from repro.fpr.trace import EXP_REBIAS, LOW_BITS, MUL_STEP_LABELS
from repro.utils.registry import resolve_name

__all__ = [
    "CaptureBackend",
    "PythonRefBackend",
    "NumpyBatchBackend",
    "BACKENDS",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "get_backend",
]

_U = np.uint64
_MASK25 = _U((1 << LOW_BITS) - 1)
_MANT_MASK = _U((1 << 52) - 1)
_IMPLICIT = _U(1 << 52)
_EXP_MASK = _U(0x7FF)
_N_STEPS = len(MUL_STEP_LABELS)


def _broadcast_operands(
    x: NDArray[Any] | int, y: NDArray[Any]
) -> tuple[
    NDArray[np.uint64], NDArray[np.uint64], NDArray[np.uint64], NDArray[np.uint64]
]:
    """Common operand handling: uint64 views, scalar x broadcast over y.

    Returns ``(x_arr, y_arr, ex, ey)`` — the biased exponent fields are
    validated here anyway, so callers reuse them instead of re-masking.
    """
    y_arr = np.asarray(y, dtype=np.uint64)
    x_arr = np.broadcast_to(np.asarray(x, dtype=np.uint64), y_arr.shape)
    ex = (x_arr >> _U(52)) & _EXP_MASK
    ey = (y_arr >> _U(52)) & _EXP_MASK
    if (
        bool(np.any(ex == 0))
        or bool(np.any(ey == 0))
        or bool(np.any(ex == _EXP_MASK))
        or bool(np.any(ey == _EXP_MASK))
    ):
        raise ValueError("operands must be nonzero normal doubles")
    return x_arr, y_arr, ex, ey


@runtime_checkable
class CaptureBackend(Protocol):
    """Computes the (D, S) step-value matrix for a block of multiplies."""

    @property
    def name(self) -> str:  # pragma: no cover - trivial accessor
        ...

    def step_values(
        self, x: NDArray[Any] | int, y: NDArray[Any]
    ) -> NDArray[np.uint64]:  # pragma: no cover - protocol stub
        ...


class PythonRefBackend:
    """Reference backend: one softfloat ``fpr_mul_trace`` per pair."""

    name = "python-ref"

    def step_values(self, x: NDArray[Any] | int, y: NDArray[Any]) -> NDArray[np.uint64]:  # sast: declassify(reason=leakage model of fpr multiply intermediates; consumes the secret operand by design)
        from repro.fpr.trace import fpr_mul_trace

        x_arr, y_arr, _, _ = _broadcast_operands(x, y)
        out = np.empty((y_arr.shape[0], _N_STEPS), dtype=np.uint64)
        for d in range(y_arr.shape[0]):
            trace = fpr_mul_trace(int(x_arr[d]), int(y_arr[d]))
            out[d] = trace.values
        return out


class NumpyBatchBackend:
    """Vectorized backend: the full softfloat pipeline as array ops."""

    name = "numpy-batch"

    def step_values(self, x: NDArray[Any] | int, y: NDArray[Any]) -> NDArray[np.uint64]:  # sast: declassify(reason=leakage model of fpr multiply intermediates; consumes the secret operand by design)
        x_arr, y_arr, ex, ey = _broadcast_operands(x, y)
        mx = np.bitwise_and(x_arr, _MANT_MASK)
        mx |= _IMPLICIT
        my = np.bitwise_and(y_arr, _MANT_MASK)
        my |= _IMPLICIT

        # The step matrix is built as (steps, D) so each column of the
        # returned transpose is a contiguous row here: the limb/product
        # pipeline writes straight into those rows (ufunc ``out=``),
        # which at campaign-sized blocks is markedly faster than
        # assembling temporaries and np.stack-ing them at the end.
        out = np.empty((_N_STEPS, y_arr.shape[0]), dtype=np.uint64)
        (x_lo, x_hi, y_lo, y_hi, p_ll, p_lh, s_lo, p_hl, s_mid, p_hh,
         s_hi, sticky, mant_out, exp_sum, exp_biased, exp_out, sign_out,
         result) = out

        # Limb split and schoolbook accumulation, as in fpr.c: every
        # intermediate fits uint64 (the widest is the 56-bit p_hh).
        np.bitwise_and(mx, _MASK25, out=x_lo)
        np.right_shift(mx, _U(LOW_BITS), out=x_hi)
        np.bitwise_and(my, _MASK25, out=y_lo)
        np.right_shift(my, _U(LOW_BITS), out=y_hi)

        np.multiply(x_lo, y_lo, out=p_ll)
        np.multiply(x_lo, y_hi, out=p_lh)
        np.right_shift(p_ll, _U(LOW_BITS), out=s_lo)
        s_lo += p_lh
        np.multiply(x_hi, y_lo, out=p_hl)
        np.add(s_lo, p_hl, out=s_mid)
        np.multiply(x_hi, y_hi, out=p_hh)
        np.right_shift(s_mid, _U(LOW_BITS), out=s_hi)
        s_hi += p_hh
        np.bitwise_and(s_mid, _MASK25, out=sticky)
        np.left_shift(sticky, _U(LOW_BITS), out=sticky)
        sticky |= p_ll & _MASK25

        # Round-to-nearest-even on the exact 105/106-bit product
        # zz = (s_hi << 50) | sticky, without ever materializing it:
        # the 53 kept bits come from s_hi, the dropped bits are the
        # bottom of s_hi plus the whole sticky word. ``wide`` is 1 when
        # the product carried into bit 105 (s_hi >= 2^55), which drops
        # one extra bit — emu._round_pack's ``drop`` is 52 + wide.
        wide = s_hi >> _U(55)
        shift = wide + _U(2)
        keep = s_hi >> shift
        rem = s_hi & ((_U(1) << shift) - _U(1))
        np.left_shift(rem, _U(50), out=rem)
        rem |= sticky
        half = _U(1) << (_U(51) + wide)
        round_up = (rem > half) | ((rem == half) & ((keep & _U(1)) == _U(1)))
        keep += round_up
        # An all-ones significand rounds up to 2^53: renormalize (one
        # more dropped bit cannot change the rounding, it is zero).
        carry = keep >> _U(53)
        keep >>= carry

        # Result exponent in signed arithmetic: underflow flushes to
        # signed zero, overflow saturates to the infinity pattern —
        # fpr.c semantics, NOT the host FPU's (which would produce
        # subnormals on underflow).
        np.add(ex, ey, out=exp_sum)
        biased = (exp_sum + wide + carry).astype(np.int64) - np.int64(1023)
        overflow = biased >= np.int64(2047)
        underflow = biased <= np.int64(0)
        exp_out[:] = np.where(
            overflow, np.int64(2047), np.where(underflow, np.int64(0), biased)
        )
        np.bitwise_and(keep, _MANT_MASK, out=mant_out)
        mant_out[overflow | underflow] = _U(0)

        np.bitwise_xor(x_arr >> _U(63), y_arr >> _U(63), out=sign_out)
        np.left_shift(sign_out, _U(63), out=result)
        result |= exp_out << _U(52)
        result |= mant_out
        # fpr.c holds the re-biased sum in a signed 32-bit register; its
        # (usually negative) two's-complement pattern is what leaks.
        # uint64 wraparound then a 32-bit mask IS two's complement.
        np.subtract(exp_sum, _U(EXP_REBIAS), out=exp_biased)
        exp_biased &= _U(0xFFFFFFFF)

        return out.T


DEFAULT_BACKEND = "numpy-batch"

BACKENDS: dict[str, CaptureBackend] = {
    b.name: b for b in (PythonRefBackend(), NumpyBatchBackend())
}

BACKEND_NAMES: tuple[str, ...] = tuple(sorted(BACKENDS))


def get_backend(name: str | CaptureBackend) -> CaptureBackend:
    """Resolve a backend by name (a backend instance passes through)."""
    if isinstance(name, str):
        return resolve_name("capture backend", name, BACKENDS)
    return name
