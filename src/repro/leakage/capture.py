"""Measurement campaigns against FALCON signing.

A campaign records EM traces of one registered leakage surface
(:mod:`repro.targets`, selected by ``target``). The default ``fpr-mul``
surface — the paper's attack, implemented directly in this module —
replays the attacked computation, the coefficient-wise product
FFT(c) (*) FFT(f) at line 3 of the signing algorithm, for many random
messages and records EM traces of the floating-point multiplications that
involve one chosen secret double.

FALCON's complex multiplication (FPC_MUL) of slot k computes four real
products; the secret double Re(FFT(f)_k) is multiplied by the two known
doubles Re(FFT(c)_k) and Im(FFT(c)_k) (and Im(FFT(f)_k) by the same
pair), so every signing contributes two traces-worth of leakage per
secret double. These form the two :class:`Segment` streams of a
:class:`TraceSet`.

Message modes:

* ``"hash"`` — full fidelity: draw a salt, hash salt||message with
  SHAKE-256 through HashToPoint, exactly like the signer.
* ``"direct"`` — draw c uniformly from Z_q^n directly. HashToPoint's
  output is i.i.d. uniform mod q, so this is the same distribution at a
  fraction of the cost; campaigns of 10k+ traces use it by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np
from numpy.typing import NDArray

from repro.falcon.hash_to_point import hash_to_point
from repro.falcon.keygen import SecretKey
from repro.leakage.backend import DEFAULT_BACKEND, get_backend
from repro.leakage.device import DeviceModel
from repro.leakage.synth import trace_layout
from repro.leakage.traceset import Segment, TraceSet
from repro.math import fft
from repro.obs import metrics
from repro.obs.spans import span
from repro.targets import DEFAULT_TARGET, get_target
from repro.utils.rng import ChaCha20Prng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.leakage.store import CampaignStore

__all__ = [
    "CaptureConfig",
    "CaptureCampaign",
    "capture_coefficient",
    "fft_to_doubles",
    "doubles_to_fft",
]


def fft_to_doubles(f_fft: NDArray[np.complex128]) -> NDArray[np.float64]:
    """Interleave an (n/2,) complex FFT array into n real doubles.

    Index 2k is Re(slot k), index 2k+1 is Im(slot k) — the order the
    attack walks the secret doubles in.
    """
    out = np.empty(2 * len(f_fft), dtype=np.float64)
    out[0::2] = f_fft.real
    out[1::2] = f_fft.imag
    return out


def doubles_to_fft(doubles: NDArray[Any]) -> NDArray[np.complex128]:
    """Inverse of :func:`fft_to_doubles`."""
    doubles = np.asarray(doubles, dtype=np.float64)
    return doubles[0::2] + 1j * doubles[1::2]


def _is_normal(patterns: NDArray[np.uint64]) -> NDArray[np.bool_]:
    e = (patterns >> np.uint64(52)) & np.uint64(0x7FF)
    return (e != 0) & (e != 0x7FF)


@dataclass(frozen=True)
class CaptureConfig:
    """Acquisition parameters independent of the victim key and device.

    Groups the knobs a campaign needs beyond (sk, device) so callers —
    the CLI, the pipeline, orchestration code — can pass one object
    around. ``backend`` names the step-value engine
    (:mod:`repro.leakage.backend`): ``numpy-batch`` (vectorized,
    default) or ``python-ref`` (per-value softfloat reference); the two
    are bit-exact, so the choice never changes a trace byte. ``target``
    names the leakage surface (:mod:`repro.targets`): which
    secret-handling computation the campaign records.
    """

    n_traces: int = 10_000
    mode: str = "direct"          # "direct" | "hash"
    seed: int = 2021
    backend: str = DEFAULT_BACKEND
    target: str = DEFAULT_TARGET


@dataclass
class CaptureCampaign:
    """A reusable acquisition session against one secret key.

    The known-message material (the matrix of FFT(c) values) is generated
    once and shared by the per-coefficient trace sets, like a real bench
    reusing one corpus of recorded signings.
    """

    sk: SecretKey
    device: DeviceModel = field(default_factory=DeviceModel)
    n_traces: int = 10_000
    mode: str = "direct"          # "direct" | "hash"
    seed: int = 2021
    #: Step-value engine (see :mod:`repro.leakage.backend`); bit-exact
    #: across choices, so this is purely a capture-throughput knob.
    backend: str = DEFAULT_BACKEND
    #: Leakage surface (see :mod:`repro.targets`). The default
    #: ``fpr-mul`` runs the original capture body below byte-for-byte;
    #: any other registered surface owns its own acquisition
    #: (:meth:`~repro.targets.TargetPoint.capture_traceset`).
    target: str = DEFAULT_TARGET
    #: Optional hook transforming the (D, S) step-value matrix before the
    #: device emits samples — how countermeasures (masking, shuffling)
    #: are modeled (see :mod:`repro.countermeasures`).
    value_transform: Callable[
        [NDArray[np.uint64], np.random.Generator], NDArray[np.uint64]
    ] | None = None
    #: Alternative constructor input: a :class:`CaptureConfig` overrides
    #: the individual ``n_traces``/``mode``/``seed``/``backend`` fields.
    config: CaptureConfig | None = None

    def __post_init__(self) -> None:
        if self.config is not None:
            self.n_traces = self.config.n_traces
            self.mode = self.config.mode
            self.seed = self.config.seed
            self.backend = self.config.backend
            self.target = self.config.target
        if self.mode not in ("direct", "hash"):
            raise ValueError(f"unknown capture mode {self.mode!r}")
        get_backend(self.backend)  # fail fast on unknown backend names
        get_target(self.target)    # ... and unknown surface names
        self._c_fft: NDArray[np.complex128] | None = None
        self._secret_doubles: NDArray[np.float64] | None = None
        #: Per-surface scratch (e.g. the samplerz surface's traced
        #: signing); derived deterministically from (sk, seed).
        self._surface_cache: dict[str, Any] = {}

    def __getstate__(self) -> dict[str, Any]:
        # The corpus is derived deterministically from (seed, mode, n);
        # drop it so shipping a campaign to a worker process stays cheap
        # and each worker rebuilds (and then reuses) its own copy.
        state = dict(self.__dict__)
        state["_c_fft"] = None
        state["_secret_doubles"] = None
        state["_surface_cache"] = {}
        return state

    # -- known-plaintext corpus -------------------------------------------

    def _build_corpus(self) -> None:  # sast: declassify(reason=capture layer models the victim and consumes sk by design (leakage model boundary))
        params = self.sk.params
        n = params.n
        # One domain-separated stream per (seed, mode, n) triple for BOTH
        # modes — direct mode must not collide with hash mode (or with any
        # other consumer of the bare integer seed) on the same seed value.
        rng = ChaCha20Prng(("capture", self.seed, self.mode, n).__repr__())
        c_fft = np.empty((self.n_traces, n // 2), dtype=np.complex128)
        if self.mode == "hash":
            for d in range(self.n_traces):
                salt = rng.randombytes(params.salt_len)
                msg = rng.randombytes(32)
                c = hash_to_point(salt + msg, params.q, n)
                c_fft[d] = fft.fft(c)
        else:
            q = params.q
            np_rng = np.random.default_rng(
                np.frombuffer(rng.randombytes(32), dtype=np.uint64)
            )
            cs = np_rng.integers(0, q, size=(self.n_traces, n))
            for d in range(self.n_traces):
                c_fft[d] = fft.fft(cs[d].astype(np.float64))
        self._c_fft = c_fft
        self._secret_doubles = fft_to_doubles(fft.fft(self.sk.f))

    @property
    def c_fft(self) -> NDArray[np.complex128]:
        if self._c_fft is None:
            self._build_corpus()
        assert self._c_fft is not None
        return self._c_fft

    @property
    def secret_doubles(self) -> NDArray[np.float64]:
        if self._secret_doubles is None:
            self._build_corpus()
        assert self._secret_doubles is not None
        return self._secret_doubles

    @property
    def n_targets(self) -> int:
        return get_target(self.target).n_targets(self)

    # -- acquisition -------------------------------------------------------

    def capture(self, target_index: int) -> TraceSet:
        """TraceSet for target ``target_index`` of the selected surface.

        For the default ``fpr-mul`` surface that is secret double
        ``target_index`` (0 .. n-1), acquired by the original body
        below; other surfaces dispatch to their own
        :meth:`~repro.targets.TargetPoint.capture_traceset`.
        """
        if self.target != DEFAULT_TARGET:
            return get_target(self.target).capture_traceset(self, target_index)
        n = self.sk.params.n
        if not 0 <= target_index < n:
            raise ValueError(f"target_index must be in 0..{n - 1}, got {target_index}")
        slot = target_index // 2
        secret = float(self.secret_doubles[target_index])
        secret_pattern = np.float64(secret).view(np.uint64)
        if not _is_normal(np.array([secret_pattern], dtype=np.uint64))[0]:
            raise ValueError(
                f"secret double at index {target_index} is zero/non-normal; "
                "it multiplies to zero and leaks nothing"
            )
        rng = np.random.default_rng((self.device.seed, self.seed, target_index))
        segments: list[Segment] = []
        with span("capture", target=target_index, source="live"):
            for name, known in (
                ("x_re", np.ascontiguousarray(self.c_fft[:, slot].real)),
                ("x_im", np.ascontiguousarray(self.c_fft[:, slot].imag)),
            ):
                patterns = known.view(np.uint64)
                keep = _is_normal(patterns)
                patterns = patterns[keep]
                values = get_backend(self.backend).step_values(
                    int(secret_pattern), patterns
                )
                if self.value_transform is not None:
                    values = self.value_transform(values, rng)
                traces = self.device.emit(values, rng)
                segments.append(Segment(known_y=patterns, traces=traces, name=name))
                metrics.inc("capture.rows_kept", int(patterns.shape[0]))
                metrics.inc("capture.rows_dropped", int(known.shape[0] - patterns.shape[0]))
            metrics.inc("capture.tracesets", 1)
        return TraceSet(
            layout=trace_layout(self.device),
            segments=segments,
            target_index=target_index,
            true_secret=int(secret_pattern),
            meta={
                "n": n,
                "mode": self.mode,
                "slot": slot,
                # Requested vs kept: non-normal known operands are dropped
                # per segment, so downstream significance bounds must use
                # the per-segment row counts, not this request size.
                "n_requested": self.n_traces,
                "n_kept": tuple(seg.n_traces for seg in segments),
            },
        )

    def capture_all(self) -> list[TraceSet]:
        """One TraceSet per secret double (the full-key campaign)."""
        return [self.capture(j) for j in range(self.n_targets)]

    def materialize(
        self,
        path: str,
        targets: Iterable[int] | None = None,
        progress_callback: Callable[[int, int, int], None] | None = None,
    ) -> "CampaignStore":
        """Persist this campaign to a :class:`~repro.leakage.store.CampaignStore`.

        Capture once, attack many times: the returned store serves the
        exact same TraceSets from disk (memory-mapped) without ever
        re-simulating a signing, and — unlike this object — it carries
        no secret key. Materialization is resumable; already-complete
        shards are not re-captured.
        """
        from repro.leakage.store import CampaignStore

        return CampaignStore.materialize(
            path, self, targets=targets, progress_callback=progress_callback
        )


def capture_coefficient(
    sk: SecretKey,
    target_index: int,
    n_traces: int = 10_000,
    device: DeviceModel | None = None,
    mode: str = "direct",
    seed: int = 2021,
    backend: str = DEFAULT_BACKEND,
    target: str = DEFAULT_TARGET,
) -> TraceSet:
    """Convenience wrapper: one-shot capture of a single target.

    ``target_index`` is a secret-double index for the default
    ``fpr-mul`` surface and a surface-defined index (e.g. a SamplerZ
    call number) otherwise.
    """
    campaign = CaptureCampaign(
        sk=sk,
        device=device if device is not None else DeviceModel(),
        n_traces=n_traces,
        mode=mode,
        seed=seed,
        backend=backend,
        target=target,
    )
    return campaign.capture(target_index)
