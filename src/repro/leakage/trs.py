"""Minimal Riscure TRS (trace set) file support.

TRS is the de-facto interchange format of commercial side-channel
benches (the paper's traces were captured with Riscure tooling). This
module implements the TRS v1 container: a tag-length-value header
(NT number of traces, NS samples per trace, SC sample coding, DS data
bytes per trace, TB trace-block marker) followed by packed traces, each
optionally prefixed by per-trace data bytes (we store the known-operand
pattern there, which is exactly what a known-plaintext campaign needs).

Supported sample codings: float32 (0x14) for writing; float32/int8/
int16 for reading. Enough to round-trip this repository's trace sets
and to ingest externally captured float traces.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.leakage.store import meta_from_jsonable, meta_to_jsonable
from repro.leakage.synth import TraceLayout
from repro.leakage.traceset import Segment, TraceSet
from repro.utils.io import atomic_output_path

__all__ = [
    "TrsError",
    "write_trs",
    "read_trs",
    "TrsData",
    "traceset_to_trs",
    "trs_to_segment",
    "trs_to_traceset",
]

_TAG_NT = 0x41  # number of traces
_TAG_NS = 0x42  # samples per trace
_TAG_SC = 0x43  # sample coding
_TAG_DS = 0x44  # data bytes per trace
_TAG_TS = 0x46  # title space (unused, accepted)
_TAG_DESC = 0x47  # description
_TAG_TB = 0x5F  # trace block marker (end of header)

_CODING_FLOAT = 0x14
_CODING_INT8 = 0x01
_CODING_INT16 = 0x02

_CODING_DTYPES = {
    _CODING_FLOAT: np.dtype("<f4"),
    _CODING_INT8: np.dtype("<i1"),
    _CODING_INT16: np.dtype("<i2"),
}


class TrsError(ValueError):
    """Malformed TRS container."""


@dataclass
class TrsData:
    """Contents of a TRS file."""

    traces: NDArray[np.float32]  # (NT, NS) float32
    data: NDArray[np.uint8]      # (NT, DS) uint8 per-trace data (DS may be 0)
    description: str = ""


def _encode_tlv(tag: int, payload: bytes) -> bytes:
    length = len(payload)
    if length < 0x80:
        return bytes([tag, length]) + payload
    nbytes = (length.bit_length() + 7) // 8
    return bytes([tag, 0x80 | nbytes]) + length.to_bytes(nbytes, "little") + payload


def write_trs(  # sast: declassify(reason=trace serialization; payload shape checks depend on trace dimensions, not on victim control flow)
    path: str,
    traces: NDArray[Any],
    data: NDArray[Any] | None = None,
    description: str = "",
) -> None:
    """Write (D, T) float traces (+ optional (D, DS) per-trace data bytes)."""
    traces = np.atleast_2d(np.asarray(traces, dtype=np.float32))
    nt, ns = traces.shape
    if data is None:
        data = np.zeros((nt, 0), dtype=np.uint8)
    data = np.atleast_2d(np.asarray(data, dtype=np.uint8))
    if data.shape[0] != nt:
        raise TrsError(f"{nt} traces vs {data.shape[0]} data rows")
    ds = data.shape[1]
    with atomic_output_path(path) as tmp:
        with open(tmp, "wb") as fh:
            fh.write(_encode_tlv(_TAG_NT, struct.pack("<I", nt)))
            fh.write(_encode_tlv(_TAG_NS, struct.pack("<I", ns)))
            fh.write(_encode_tlv(_TAG_SC, bytes([_CODING_FLOAT])))
            fh.write(_encode_tlv(_TAG_DS, struct.pack("<H", ds)))
            if description:
                fh.write(_encode_tlv(_TAG_DESC, description.encode()))
            fh.write(bytes([_TAG_TB, 0x00]))
            for d in range(nt):
                fh.write(data[d].tobytes())
                fh.write(traces[d].tobytes())


def read_trs(path: str) -> TrsData:
    """Read a TRS v1 file into float32 traces + raw per-trace data."""
    with open(path, "rb") as fh:
        blob = fh.read()
    pos = 0
    nt: int | None = None
    ns: int | None = None
    ds = 0
    coding = _CODING_FLOAT
    description = ""
    while pos < len(blob):
        tag = blob[pos]
        length = blob[pos + 1]
        pos += 2
        if length & 0x80:
            nbytes = length & 0x7F
            length = int.from_bytes(blob[pos : pos + nbytes], "little")
            pos += nbytes
        payload = blob[pos : pos + length]
        pos += length
        if tag == _TAG_TB:
            break
        if tag == _TAG_NT:
            nt = struct.unpack("<I", payload)[0]
        elif tag == _TAG_NS:
            ns = struct.unpack("<I", payload)[0]
        elif tag == _TAG_SC:
            coding = payload[0]
        elif tag == _TAG_DS:
            ds = struct.unpack("<H", payload)[0]
        elif tag == _TAG_DESC:
            description = payload.decode(errors="replace")
        # other tags are legal and ignored
    else:
        raise TrsError("no trace-block marker in header")
    if nt is None or ns is None:
        raise TrsError("header lacks NT/NS")
    if coding not in _CODING_DTYPES:
        raise TrsError(f"unsupported sample coding {coding:#04x}")
    dtype = _CODING_DTYPES[coding]
    stride = ds + ns * dtype.itemsize
    body = blob[pos:]
    if len(body) < nt * stride:
        raise TrsError(f"body holds {len(body)} bytes, need {nt * stride}")
    data = np.empty((nt, ds), dtype=np.uint8)
    traces = np.empty((nt, ns), dtype=np.float32)
    for d in range(nt):
        row = body[d * stride : (d + 1) * stride]
        if ds:
            data[d] = np.frombuffer(row[:ds], dtype=np.uint8)
        traces[d] = np.frombuffer(row[ds:], dtype=dtype).astype(np.float32)
    return TrsData(traces=traces, data=data, description=description)


def traceset_to_trs(traceset: "TraceSet", path_prefix: str) -> list[str]:
    """Export every segment of a TraceSet as `<prefix>_<segname>.trs`.

    The known operand pattern is stored as 8 little-endian data bytes
    per trace, so an external tool has the full known-plaintext context.
    The TRS description field carries the full TraceSet context (segment
    name, target index, ``true_secret``, layout, ``meta``) as JSON, so
    :func:`trs_to_traceset` reconstructs the set losslessly.
    """
    paths: list[str] = []
    for seg in traceset.segments:
        data = seg.known_y.astype("<u8").view(np.uint8).reshape(-1, 8)
        path = f"{path_prefix}_{seg.name}.trs"
        context = {
            "format": "falcon-down",
            "target_index": traceset.target_index,
            "seg": seg.name,
            "true_secret": traceset.true_secret,
            "samples_per_step": traceset.layout.samples_per_step,
            "meta": meta_to_jsonable(traceset.meta),
        }
        write_trs(path, seg.traces, data, description=json.dumps(context))
        paths.append(path)
    return paths


def trs_to_segment(path: str) -> Segment:
    """Import a TRS file (with 8-byte known-operand data) as a Segment."""
    trs = read_trs(path)
    if trs.data.shape[1] != 8:
        raise TrsError("expected 8 data bytes per trace (known operand pattern)")
    known = np.ascontiguousarray(trs.data).view("<u8").reshape(-1)
    name = "seg"
    ctx = _parse_context(trs.description)
    if ctx is not None and "seg" in ctx:
        name = str(ctx["seg"])
    return Segment(known_y=known.astype(np.uint64), traces=trs.traces, name=name)


def _parse_context(description: str) -> dict[str, Any] | None:
    """The JSON TraceSet context embedded in a falcon-down TRS export."""
    try:
        ctx = json.loads(description)
    except (json.JSONDecodeError, ValueError):
        return None
    if not isinstance(ctx, dict) or ctx.get("format") != "falcon-down":
        return None
    return ctx


def trs_to_traceset(paths: list[str]) -> TraceSet:
    """Rebuild a TraceSet from the TRS files of :func:`traceset_to_trs`.

    Segment order follows ``paths``; the context embedded in the
    descriptions restores target index, ``true_secret``, layout and
    ``meta`` exactly. All files must come from the same export.
    """
    if not paths:
        raise TrsError("no TRS files given")
    segments: list[Segment] = []
    ctx0: dict[str, Any] | None = None
    for path in paths:
        trs = read_trs(path)
        if trs.data.shape[1] != 8:
            raise TrsError("expected 8 data bytes per trace (known operand pattern)")
        ctx = _parse_context(trs.description)
        if ctx is None:
            raise TrsError(f"{path} carries no falcon-down TraceSet context")
        if ctx0 is None:
            ctx0 = ctx
        elif ctx["target_index"] != ctx0["target_index"]:
            raise TrsError("TRS files come from different TraceSet exports")
        known = np.ascontiguousarray(trs.data).view("<u8").reshape(-1)
        segments.append(
            Segment(known_y=known.astype(np.uint64), traces=trs.traces, name=str(ctx["seg"]))
        )
    assert ctx0 is not None
    return TraceSet(
        layout=TraceLayout(samples_per_step=int(ctx0["samples_per_step"])),
        segments=segments,
        target_index=int(ctx0["target_index"]),
        true_secret=ctx0["true_secret"],
        meta=meta_from_jsonable(ctx0["meta"]),
    )
