"""Disk-backed campaign stores: capture once, attack many times.

A Section-IV campaign at FALCON-512 scale is hundreds of coefficients
times 10k signings each; re-simulating all of it in RAM for every
``full_attack`` run is the single biggest waste in the pipeline, and a
crash loses everything. A :class:`CampaignStore` persists one capture
campaign to a directory of per-coefficient *shards*:

``path/``
    ``manifest.json`` — campaign layout: ring size, capture mode,
    seeds, device parameters, and per-target accounting
    (``n_requested`` vs per-segment ``n_kept``). Written last, so a
    directory without a manifest is an incomplete materialization.
``path/target_00000/``
    one shard per secret double: ``<seg>.known.npy`` (uint64 operand
    patterns), ``<seg>.traces.npy`` (float32 samples, memory-mapped on
    read), and ``shard.json`` (per-target metadata; written last, so
    its presence marks the shard complete).

The attack side consumes a live :class:`~repro.leakage.capture.
CaptureCampaign` or a store interchangeably through the
:class:`TraceSource` protocol — both expose ``n_targets``/``n_traces``
and ``capture(target_index) -> TraceSet``. A store never re-simulates
signings (it holds no secret key at all, matching a real adversary's
view: measurements plus known operands), and trace access is
memory-mapped, so attacking from a store keeps peak RSS bounded by one
coefficient's working set rather than the whole campaign.

:meth:`TraceSet.save`/:meth:`TraceSet.load` are reimplemented on the
same serialization helpers (`write_traceset` / `read_traceset`), so
single-coefficient archives and campaign shards agree on how segment
names, ``true_secret`` and ``meta`` round-trip.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Callable, Iterable, Protocol, runtime_checkable

import numpy as np
from numpy.typing import NDArray

from repro.fpr.trace import MUL_STEP_LABELS
from repro.leakage.device import DeviceModel
from repro.leakage.synth import TraceLayout
from repro.leakage.traceset import Segment, TraceSet
from repro.obs import metrics
from repro.obs.spans import span
from repro.utils.io import atomic_output_path, atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.leakage.capture import CaptureCampaign

__all__ = [
    "TraceSource",
    "CampaignStore",
    "StoreError",
    "write_traceset",
    "read_traceset",
    "meta_to_jsonable",
    "meta_from_jsonable",
]

_MANIFEST = "manifest.json"
_SHARD_META = "shard.json"
_FORMAT = "falcon-down-campaign-store"
_VERSION = 1


class StoreError(RuntimeError):
    """The on-disk store is missing, incomplete, or inconsistent."""


@runtime_checkable
class TraceSource(Protocol):
    """What the attack engine needs from any supplier of trace sets.

    Implemented by live :class:`~repro.leakage.capture.CaptureCampaign`
    objects (simulate on demand) and by :class:`CampaignStore` (read
    from disk); :func:`repro.attack.key_recovery.recover_coefficients`
    and everything above it accept either transparently.
    """

    @property
    def n_targets(self) -> int:  # pragma: no cover
        ...

    @property
    def n_traces(self) -> int:  # pragma: no cover
        ...

    def capture(self, target_index: int) -> TraceSet:  # pragma: no cover
        ...


# -- meta serialization ----------------------------------------------------
#
# TraceSet.meta holds ints, floats, strings and *tuples* (the per-segment
# n_kept accounting). JSON has no tuple type, so tuples are tagged on the
# way out and restored on the way in — round-trips must be exact, not
# "close enough" (the significance bounds are computed from these counts).


def meta_to_jsonable(obj: Any) -> Any:
    """Recursively convert a meta value into JSON-encodable form."""
    if isinstance(obj, tuple):
        return {"__tuple__": [meta_to_jsonable(v) for v in obj]}
    if isinstance(obj, list):
        return [meta_to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): meta_to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj


def meta_from_jsonable(obj: Any) -> Any:
    """Inverse of :func:`meta_to_jsonable`."""
    if isinstance(obj, dict):
        if set(obj.keys()) == {"__tuple__"}:
            return tuple(meta_from_jsonable(v) for v in obj["__tuple__"])
        return {k: meta_from_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [meta_from_jsonable(v) for v in obj]
    return obj


# -- single-TraceSet archives (.npz) ---------------------------------------


def write_traceset(path: str, traceset: TraceSet) -> None:
    """Persist one TraceSet to an .npz archive, metadata included."""
    arrays: dict[str, NDArray[Any]] = {}
    names: list[str] = []
    for i, seg in enumerate(traceset.segments):
        arrays[f"known_{i}"] = seg.known_y
        arrays[f"traces_{i}"] = seg.traces
        names.append(seg.name)
    arrays["seg_names"] = np.array(names)
    arrays["spp"] = np.array([traceset.layout.samples_per_step])
    arrays["target_index"] = np.array([traceset.target_index])
    arrays["true_secret"] = np.array(
        [traceset.true_secret if traceset.true_secret is not None else 0],
        dtype=np.uint64,
    )
    arrays["has_secret"] = np.array([traceset.true_secret is not None])
    arrays["meta_json"] = np.array(
        json.dumps(meta_to_jsonable(traceset.meta), sort_keys=True)
    )
    # Non-default step layouts (other leakage surfaces) ride along; the
    # fpr-mul default is omitted so pre-surface archives stay byte-stable.
    if tuple(traceset.layout.labels) != MUL_STEP_LABELS:
        arrays["labels"] = np.array(list(traceset.layout.labels))
    # np.savez appends ".npz" to bare paths, so hand it an open file on
    # the temp name instead; the rename keeps readers from ever seeing a
    # partially written archive.
    with atomic_output_path(path) as tmp:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)


def read_traceset(path: str) -> TraceSet:
    """Load a TraceSet written by :func:`write_traceset`.

    Archives from before metadata rode along (no ``meta_json`` entry)
    load with an empty ``meta`` dict rather than failing.
    """
    data = np.load(path, allow_pickle=False)
    names = [str(s) for s in data["seg_names"]]
    segments = [
        Segment(known_y=data[f"known_{i}"], traces=data[f"traces_{i}"], name=names[i])
        for i in range(len(names))
    ]
    labels = (
        tuple(str(s) for s in data["labels"]) if "labels" in data else MUL_STEP_LABELS
    )
    layout = TraceLayout(samples_per_step=int(data["spp"][0]), labels=labels)
    secret = int(data["true_secret"][0]) if bool(data["has_secret"][0]) else None
    meta: dict[str, Any] = {}
    if "meta_json" in data:
        meta = meta_from_jsonable(json.loads(str(data["meta_json"])))
    return TraceSet(
        layout=layout,
        segments=segments,
        target_index=int(data["target_index"][0]),
        true_secret=secret,
        meta=meta,
    )


# -- campaign stores -------------------------------------------------------


def _shard_dir(root: str, target_index: int) -> str:
    return os.path.join(root, f"target_{target_index:05d}")


def _write_shard(root: str, traceset: TraceSet) -> None:
    """One shard per target: raw .npy arrays (memmappable) + JSON meta."""
    d = _shard_dir(root, traceset.target_index)
    os.makedirs(d, exist_ok=True)
    for seg in traceset.segments:
        with atomic_output_path(os.path.join(d, f"{seg.name}.known.npy")) as tmp:
            with open(tmp, "wb") as fh:
                np.save(fh, seg.known_y)
        # Stored verbatim: the capture layer already emits float32, and a
        # surface that produces a different dtype must round-trip it —
        # forcing float32 here would silently corrupt wider traces.
        stored = np.ascontiguousarray(seg.traces)
        with atomic_output_path(os.path.join(d, f"{seg.name}.traces.npy")) as tmp:
            with open(tmp, "wb") as fh:
                np.save(fh, stored)
        metrics.inc(
            "store.bytes_written",
            int(seg.known_y.nbytes) + int(stored.nbytes),
        )
    metrics.inc("store.shards_written", 1)
    shard: dict[str, Any] = {
        "target_index": traceset.target_index,
        "true_secret": traceset.true_secret,
        "segments": [seg.name for seg in traceset.segments],
        "meta": meta_to_jsonable(traceset.meta),
        "samples_per_step": traceset.layout.samples_per_step,
    }
    # Same convention as write_traceset: only non-default step layouts
    # are recorded, keeping fpr-mul shards byte-identical to pre-surface
    # stores (the byte-identity pin covers this).
    if tuple(traceset.layout.labels) != MUL_STEP_LABELS:
        shard["labels"] = list(traceset.layout.labels)
    # shard.json is written last: its presence marks the shard complete,
    # which is what lets an interrupted materialize() resume cleanly.
    atomic_write_text(
        os.path.join(d, _SHARD_META), json.dumps(shard, indent=1, sort_keys=True)
    )


def _shard_complete(root: str, target_index: int) -> bool:
    return os.path.exists(os.path.join(_shard_dir(root, target_index), _SHARD_META))


def _read_shard(root: str, target_index: int, mmap: bool = True) -> TraceSet:
    d = _shard_dir(root, target_index)
    meta_path = os.path.join(d, _SHARD_META)
    if not os.path.exists(meta_path):
        raise StoreError(f"store has no complete shard for target {target_index}")
    with open(meta_path) as fh:
        shard = json.load(fh)
    segments: list[Segment] = []
    for name in shard["segments"]:
        known = np.load(os.path.join(d, f"{name}.known.npy"))
        traces_path = os.path.join(d, f"{name}.traces.npy")
        traces = np.load(traces_path, mmap_mode="r") if mmap else np.load(traces_path)
        segments.append(Segment(known_y=known, traces=traces, name=name))
        # Memory-mapped shards count bytes *exposed*; the page cache
        # decides what is physically read, but this is the upper bound
        # the attack walks per coefficient.
        metrics.inc("store.bytes_read", int(known.nbytes) + int(traces.nbytes))
    metrics.inc("store.shards_read", 1)
    labels = tuple(shard["labels"]) if "labels" in shard else MUL_STEP_LABELS
    return TraceSet(
        layout=TraceLayout(samples_per_step=int(shard["samples_per_step"]), labels=labels),
        segments=segments,
        target_index=int(shard["target_index"]),
        true_secret=shard["true_secret"],
        meta=meta_from_jsonable(shard["meta"]),
    )


def _device_to_jsonable(device: DeviceModel) -> dict[str, Any]:
    return {
        "gain": device.gain,
        "offset": device.offset,
        "noise_sigma": device.noise_sigma,
        "samples_per_step": device.samples_per_step,
        "jitter": device.jitter,
        "seed": device.seed,
        "model": type(device.model).__name__,
    }


def _device_from_jsonable(spec: dict[str, Any]) -> DeviceModel:
    from repro.leakage import model as model_mod

    model_cls = getattr(model_mod, spec.get("model", "HammingWeightModel"))
    return DeviceModel(
        gain=spec["gain"],
        offset=spec["offset"],
        noise_sigma=spec["noise_sigma"],
        samples_per_step=spec["samples_per_step"],
        jitter=spec["jitter"],
        seed=spec["seed"],
        model=model_cls(),
    )


class CampaignStore:
    """A materialized capture campaign: shards on disk, manifest on top.

    Open an existing store with ``CampaignStore(path)``; create one from
    a live campaign with :meth:`materialize` (or the
    :meth:`~repro.leakage.capture.CaptureCampaign.materialize`
    convenience on the campaign itself). The store implements
    :class:`TraceSource`, so every attack entry point accepts it in
    place of a live campaign.
    """

    def __init__(self, path: str):
        self.path = str(path)
        manifest_path = os.path.join(self.path, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise StoreError(
                f"{self.path!r} is not a campaign store (no {_MANIFEST}; "
                "an interrupted materialize() leaves shards but no manifest — "
                "re-run materialize to complete it)"
            )
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        if manifest.get("format") != _FORMAT:
            raise StoreError(f"{manifest_path} is not a {_FORMAT} manifest")
        if int(manifest.get("version", 0)) > _VERSION:
            raise StoreError(
                f"store version {manifest['version']} is newer than this code ({_VERSION})"
            )
        self.manifest: dict[str, Any] = manifest

    # -- TraceSource -------------------------------------------------------

    @property
    def n_targets(self) -> int:
        return int(self.manifest["n_targets"])

    @property
    def n_traces(self) -> int:
        return int(self.manifest["n_traces"])

    def capture(self, target_index: int, mmap: bool = True) -> TraceSet:
        """The stored TraceSet for one secret double.

        Traces are memory-mapped float32 by default: the attack touches
        one coefficient's shard at a time, so peak RSS stays O(shard)
        no matter how large the campaign is. Pass ``mmap=False`` to
        read the arrays into memory instead.
        """
        if not 0 <= target_index < self.n_targets:
            raise ValueError(
                f"target_index must be in 0..{self.n_targets - 1}, got {target_index}"
            )
        entry = self.manifest["targets"].get(str(target_index))
        if entry is not None and entry.get("skipped"):
            raise ValueError(
                f"target {target_index} was skipped at capture time: {entry.get('reason', '')}"
            )
        with span("capture", target=target_index, source="store"):
            return _read_shard(self.path, target_index, mmap=mmap)

    # -- campaign parameters ----------------------------------------------

    @property
    def n(self) -> int:
        return int(self.manifest["n"])

    @property
    def mode(self) -> str:
        return str(self.manifest["mode"])

    @property
    def seed(self) -> int:
        return int(self.manifest["seed"])

    @property
    def backend(self) -> str:
        """Which step-value backend produced the shards.

        Stores written before the backend was recorded predate the
        pluggable engines; everything then went through the vectorized
        path that became ``numpy-batch``.
        """
        return str(self.manifest.get("backend", "numpy-batch"))

    @property
    def target(self) -> str:
        """Which leakage surface the shards record.

        Stores written before surfaces were pluggable only ever held the
        paper's fpr-mul captures; they default accordingly.
        """
        return str(self.manifest.get("target", "fpr-mul"))

    @property
    def device(self) -> DeviceModel:
        """The acquisition device model recorded in the manifest."""
        return _device_from_jsonable(self.manifest["device"])

    def targets(self) -> list[int]:
        """All target indices with a complete shard."""
        return sorted(
            int(k) for k, v in self.manifest["targets"].items() if not v.get("skipped")
        )

    # -- creation ----------------------------------------------------------

    @classmethod
    def materialize(
        cls,
        path: str,
        campaign: "CaptureCampaign",
        targets: Iterable[int] | None = None,
        progress_callback: Callable[[int, int, int], None] | None = None,
    ) -> "CampaignStore":
        """Capture every target of ``campaign`` into a store at ``path``.

        Resumable: complete shards (their ``shard.json`` exists) are not
        re-captured, so an interrupted materialization continues where
        it stopped. The manifest is written (atomically) only after all
        shards exist. Targets whose secret double is non-normal leak
        nothing and are recorded as skipped.
        """
        os.makedirs(path, exist_ok=True)
        target_list = list(targets) if targets is not None else list(range(campaign.n_targets))
        entries: dict[str, dict[str, Any]] = {}
        for done, j in enumerate(target_list, start=1):
            if _shard_complete(path, j):
                with open(os.path.join(_shard_dir(path, j), _SHARD_META)) as fh:
                    shard = json.load(fh)
                entries[str(j)] = {"n_kept": list(meta_from_jsonable(shard["meta"]).get("n_kept", ()))}
            else:
                try:
                    ts = campaign.capture(j)
                except ValueError as exc:
                    entries[str(j)] = {"skipped": True, "reason": str(exc)}
                    continue
                _write_shard(path, ts)
                entries[str(j)] = {"n_kept": list(ts.meta.get("n_kept", ()))}
            if progress_callback is not None:
                progress_callback(j, done, len(target_list))
        manifest: dict[str, Any] = {
            "format": _FORMAT,
            "version": _VERSION,
            "n": campaign.sk.params.n,
            "n_targets": campaign.n_targets,
            "n_traces": campaign.n_traces,
            "mode": campaign.mode,
            "seed": campaign.seed,
            "backend": campaign.backend,
            "target": campaign.target,
            "device": _device_to_jsonable(campaign.device),
            "targets": entries,
        }
        atomic_write_text(
            os.path.join(path, _MANIFEST),
            json.dumps(manifest, indent=1, sort_keys=True),
        )
        return cls(path)

    @classmethod
    def is_store(cls, path: str) -> bool:
        return os.path.exists(os.path.join(str(path), _MANIFEST))

    # -- plumbing ----------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        # Shipping a store to a worker process ships the path only; each
        # worker re-opens its own memmaps (file handles don't pickle).
        return {"path": self.path}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(state["path"])

    def __repr__(self) -> str:
        return (
            f"CampaignStore(path={self.path!r}, n={self.n}, "
            f"n_targets={self.n_targets}, n_traces={self.n_traces}, mode={self.mode!r})"
        )
