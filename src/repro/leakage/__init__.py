"""Simulated EM side-channel acquisition.

The paper measures a real ARM Cortex-M4 with a near-field EM probe; this
package is the software substitute. The device model executes FALCON's
instrumented floating-point multiplication (:mod:`repro.fpr.trace`) and
emits, for every architectural intermediate, leakage samples

    sample = gain * HW(value) + offset + N(0, noise_sigma^2)

— the data-dependent CMOS activity the paper's differential analysis
consumes. The capture layer replays the attacked computation
FFT(c) (*) FFT(f) from real FALCON signing flows over many random
messages and packages the result as :class:`TraceSet` objects.
"""

from repro.leakage.model import HammingWeightModel, HammingDistanceModel, WeightedBitModel
from repro.leakage.backend import (
    BACKEND_NAMES,
    CaptureBackend,
    DEFAULT_BACKEND,
    NumpyBatchBackend,
    PythonRefBackend,
    get_backend,
)
from repro.leakage.device import DeviceModel
from repro.leakage.synth import synthesize_mul_traces, trace_layout, TraceLayout
from repro.leakage.traceset import TraceSet
from repro.leakage.capture import CaptureCampaign, CaptureConfig, capture_coefficient
from repro.leakage.store import CampaignStore, StoreError, TraceSource
from repro.leakage.trs import read_trs, write_trs, traceset_to_trs, trs_to_traceset
from repro.leakage.fpc import fpc_step_values, synthesize_fpc_traces, FpcLayout

__all__ = [
    "HammingWeightModel",
    "HammingDistanceModel",
    "WeightedBitModel",
    "BACKEND_NAMES",
    "CaptureBackend",
    "DEFAULT_BACKEND",
    "NumpyBatchBackend",
    "PythonRefBackend",
    "get_backend",
    "DeviceModel",
    "synthesize_mul_traces",
    "trace_layout",
    "TraceLayout",
    "TraceSet",
    "CaptureCampaign",
    "CaptureConfig",
    "capture_coefficient",
    "CampaignStore",
    "StoreError",
    "TraceSource",
    "read_trs",
    "write_trs",
    "traceset_to_trs",
    "trs_to_traceset",
    "fpc_step_values",
    "synthesize_fpc_traces",
    "FpcLayout",
]
