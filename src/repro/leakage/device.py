"""The simulated device under test.

Stands in for the paper's measurement bench: FALCON reference software on
an ARM Cortex-M4 at 168 MHz, probed with a Riscure EM probe and sampled
by a PicoScope at 500 MS/s. The knobs that matter to the attack are the
signal gain, the additive Gaussian noise level, how many oscilloscope
samples cover each architectural intermediate, and (optionally) trigger
jitter. The default ``noise_sigma`` is calibrated so the per-component
traces-to-significance land in the paper's regime: the sign bit becomes
99.99%-significant around 9k traces, the exponent and mantissa additions
around 1k (paper Fig. 4 e-h).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.leakage.model import HammingWeightModel

__all__ = ["DeviceModel"]


@dataclass
class DeviceModel:
    """Acquisition model: leakage model + analog front-end parameters."""

    gain: float = 1.0
    offset: float = 10.0
    noise_sigma: float = 10.0
    samples_per_step: int = 1
    jitter: int = 0                      # max +/- sample shift per trace
    seed: int = 0xEC0FFEE
    model: HammingWeightModel = field(default_factory=HammingWeightModel)

    def __post_init__(self) -> None:
        if self.samples_per_step < 1:
            raise ValueError(f"samples_per_step must be >= 1, got {self.samples_per_step}")
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {self.noise_sigma}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def rng(self) -> np.random.Generator:
        """A fresh deterministic generator for one acquisition run."""
        return np.random.default_rng(self.seed)

    def emit(self, values: NDArray[Any], rng: np.random.Generator) -> NDArray[np.float32]:
        """Samples for a (D, S) matrix of step values -> (D, S*spp) floats.

        Each step value is held for ``samples_per_step`` oscilloscope
        samples; independent Gaussian noise is added per sample; optional
        jitter circularly shifts each trace by a random offset.
        """
        values = np.atleast_2d(values)
        signal = self.model.signal(values) * self.gain + self.offset
        expanded = np.repeat(signal, self.samples_per_step, axis=1)
        noise = rng.normal(0.0, self.noise_sigma, size=expanded.shape)
        traces = (expanded + noise).astype(np.float32)
        if self.jitter:
            # One gather instead of a per-trace np.roll loop: for shift
            # s, np.roll puts a[(i - s) mod T] at column i, so building
            # the whole (D, T) column-index matrix applies every trace's
            # circular shift in a single take_along_axis (bit-identical
            # to the loop — it is the same permutation).
            shifts = rng.integers(-self.jitter, self.jitter + 1, size=traces.shape[0])
            width = traces.shape[1]
            cols = (np.arange(width)[None, :] - shifts[:, None]) % width
            traces = np.take_along_axis(traces, cols, axis=1)
        return traces
