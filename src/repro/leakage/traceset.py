"""TraceSet: one acquisition campaign against one secret coefficient.

A secret double (one of the 2 * (n/2) real values inside FFT(f)) is
multiplied, in FALCON's FPC_MUL, by two known doubles per signing: the
real and the imaginary part of the corresponding FFT(c) slot. A TraceSet
stores one :class:`Segment` per such multiplication stream; attacks may
consume any subset (two segments double the effective trace count, since
both use the same secret with independent known inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.leakage.synth import TraceLayout

__all__ = ["Segment", "TraceSet"]


@dataclass
class Segment:
    """Traces for one multiplication stream: secret * known_i."""

    known_y: np.ndarray          # (D,) uint64 fpr patterns of the known operand
    traces: np.ndarray           # (D, T) float32 samples
    name: str = "seg"

    def __post_init__(self) -> None:
        self.known_y = np.asarray(self.known_y, dtype=np.uint64)
        self.traces = np.asarray(self.traces, dtype=np.float32)
        if self.known_y.shape[0] != self.traces.shape[0]:
            raise ValueError(
                f"{self.known_y.shape[0]} known values vs {self.traces.shape[0]} traces"
            )

    @property
    def n_traces(self) -> int:
        return int(self.traces.shape[0])

    def head(self, n: int) -> "Segment":
        """The first n traces (for trace-count evolution studies)."""
        return Segment(known_y=self.known_y[:n], traces=self.traces[:n], name=self.name)


@dataclass
class TraceSet:
    """All acquisitions targeting one secret double."""

    layout: TraceLayout
    segments: list[Segment]
    target_index: int = 0                 # which double inside FFT(f)
    true_secret: int | None = None        # ground-truth fpr pattern (sims only)
    meta: dict = field(default_factory=dict)

    @property
    def n_traces(self) -> int:
        return sum(seg.n_traces for seg in self.segments)

    def head(self, n: int) -> "TraceSet":
        return TraceSet(
            layout=self.layout,
            segments=[seg.head(n) for seg in self.segments],
            target_index=self.target_index,
            true_secret=self.true_secret,
            meta=dict(self.meta),
        )

    def save(self, path: str) -> None:
        """Persist to an .npz archive."""
        arrays: dict[str, np.ndarray] = {}
        names = []
        for i, seg in enumerate(self.segments):
            arrays[f"known_{i}"] = seg.known_y
            arrays[f"traces_{i}"] = seg.traces
            names.append(seg.name)
        arrays["seg_names"] = np.array(names)
        arrays["spp"] = np.array([self.layout.samples_per_step])
        arrays["target_index"] = np.array([self.target_index])
        arrays["true_secret"] = np.array(
            [self.true_secret if self.true_secret is not None else 0], dtype=np.uint64
        )
        arrays["has_secret"] = np.array([self.true_secret is not None])
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "TraceSet":
        data = np.load(path, allow_pickle=False)
        names = [str(s) for s in data["seg_names"]]
        segments = [
            Segment(known_y=data[f"known_{i}"], traces=data[f"traces_{i}"], name=names[i])
            for i in range(len(names))
        ]
        layout = TraceLayout(samples_per_step=int(data["spp"][0]))
        secret = int(data["true_secret"][0]) if bool(data["has_secret"][0]) else None
        return cls(
            layout=layout,
            segments=segments,
            target_index=int(data["target_index"][0]),
            true_secret=secret,
        )
