"""TraceSet: one acquisition campaign against one secret coefficient.

A secret double (one of the 2 * (n/2) real values inside FFT(f)) is
multiplied, in FALCON's FPC_MUL, by two known doubles per signing: the
real and the imaginary part of the corresponding FFT(c) slot. A TraceSet
stores one :class:`Segment` per such multiplication stream; attacks may
consume any subset (two segments double the effective trace count, since
both use the same secret with independent known inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.leakage.synth import TraceLayout

__all__ = ["Segment", "TraceSet"]


@dataclass
class Segment:
    """Traces for one multiplication stream: secret * known_i."""

    known_y: NDArray[np.uint64]  # (D,) uint64 fpr patterns of the known operand
    traces: NDArray[np.float32]  # (D, T) float32 samples
    name: str = "seg"

    def __post_init__(self) -> None:
        self.known_y = np.asarray(self.known_y, dtype=np.uint64)
        self.traces = np.asarray(self.traces, dtype=np.float32)
        if self.known_y.shape[0] != self.traces.shape[0]:
            raise ValueError(
                f"{self.known_y.shape[0]} known values vs {self.traces.shape[0]} traces"
            )

    @property
    def n_traces(self) -> int:
        return int(self.traces.shape[0])

    def head(self, n: int) -> "Segment":
        """The first n traces (for trace-count evolution studies)."""
        return Segment(known_y=self.known_y[:n], traces=self.traces[:n], name=self.name)


@dataclass
class TraceSet:
    """All acquisitions targeting one secret double."""

    layout: TraceLayout
    segments: list[Segment]
    target_index: int = 0                 # which double inside FFT(f)
    true_secret: int | None = None        # ground-truth fpr pattern (sims only)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def n_traces(self) -> int:
        return sum(seg.n_traces for seg in self.segments)

    def head(self, n: int) -> "TraceSet":
        """The first n traces of every segment, with meta rescaled.

        Evolution studies use ``head(n)`` to emulate an n-trace
        campaign, so the trace accounting must follow the truncation:
        ``n_requested`` and the per-segment ``n_kept`` counts are capped
        at what the truncated set actually contains — otherwise the
        Fisher-z significance bounds downstream would be computed from
        the *original* campaign size.
        """
        segments = [seg.head(n) for seg in self.segments]
        meta = dict(self.meta)
        if "n_requested" in meta:
            meta["n_requested"] = min(int(meta["n_requested"]), n)
        if "n_kept" in meta:
            meta["n_kept"] = tuple(seg.n_traces for seg in segments)
        return TraceSet(
            layout=self.layout,
            segments=segments,
            target_index=self.target_index,
            true_secret=self.true_secret,
            meta=meta,
        )

    def save(self, path: str) -> None:
        """Persist to an .npz archive (see :mod:`repro.leakage.store`).

        Round-trips are lossless: segment names, ``true_secret`` and the
        full ``meta`` dict come back exactly as stored.
        """
        from repro.leakage import store

        store.write_traceset(path, self)

    @classmethod
    def load(cls, path: str) -> "TraceSet":
        from repro.leakage import store

        return store.read_traceset(path)
