"""Vectorized synthesis of EM traces for FALCON's float multiplication.

Computes, for D (secret, known) operand pairs at once, the same
architectural intermediates as :func:`repro.fpr.trace.fpr_mul_trace`
(property-tested equal), maps them through the device model, and returns
oscilloscope-style trace matrices.

The step-value computation itself is pluggable — see
:mod:`repro.leakage.backend` for the ``python-ref`` (per-value
softfloat) and ``numpy-batch`` (vectorized, bit-exact, orders of
magnitude faster) implementations. :func:`mul_step_values` dispatches
to the batch backend by default; hypothesis builders across the attack
side all route through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.fpr.trace import MUL_STEP_LABELS
from repro.leakage.backend import CaptureBackend, DEFAULT_BACKEND, get_backend
from repro.leakage.device import DeviceModel

__all__ = ["mul_step_values", "trace_layout", "TraceLayout", "synthesize_mul_traces"]


def mul_step_values(
    x: NDArray[Any] | int,
    y: NDArray[Any],
    backend: str | CaptureBackend = DEFAULT_BACKEND,
) -> NDArray[np.uint64]:  # sast: declassify(reason=leakage model of fpr multiply intermediates; consumes the secret operand by design)
    """(D, S) uint64 matrix of intermediates for x*y, one row per pair.

    ``x`` (secret) and ``y`` (known) are fpr bit patterns; ``x`` may be a
    scalar, broadcast against ``y``. Columns follow MUL_STEP_LABELS.
    Inputs must be nonzero normals (the capture layer filters zeros).
    ``backend`` selects the implementation (bit-exact either way).
    """
    return get_backend(backend).step_values(x, y)


@dataclass(frozen=True)
class TraceLayout:
    """Mapping from step labels to sample index ranges in a trace."""

    samples_per_step: int
    labels: tuple[str, ...] = MUL_STEP_LABELS

    @property
    def n_samples(self) -> int:
        return len(self.labels) * self.samples_per_step

    def slice_of(self, label: str) -> slice:
        i = self.labels.index(label)
        return slice(i * self.samples_per_step, (i + 1) * self.samples_per_step)

    def sample_of(self, label: str) -> int:
        """First sample index covering ``label``."""
        return self.labels.index(label) * self.samples_per_step


def trace_layout(device: DeviceModel) -> TraceLayout:
    return TraceLayout(samples_per_step=device.samples_per_step)


def synthesize_mul_traces(
    x: NDArray[Any] | int,
    y: NDArray[Any],
    device: DeviceModel,
    rng: np.random.Generator | None = None,
    backend: str | CaptureBackend = DEFAULT_BACKEND,
) -> tuple[NDArray[np.float32], NDArray[np.uint64]]:
    """Traces (D, T) plus the underlying step values (D, S) for x*y."""
    if rng is None:
        rng = device.rng()
    values = mul_step_values(x, y, backend=backend)
    traces = device.emit(values, rng)
    return traces, values
