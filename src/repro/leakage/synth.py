"""Vectorized synthesis of EM traces for FALCON's float multiplication.

Computes, for D (secret, known) operand pairs at once, the same
architectural intermediates as :func:`repro.fpr.trace.fpr_mul_trace`
(property-tested equal), maps them through the device model, and returns
oscilloscope-style trace matrices. Everything fits in uint64: the widest
intermediate is the 56-bit high partial product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.fpr.trace import EXP_REBIAS, LOW_BITS, MUL_STEP_LABELS
from repro.leakage.device import DeviceModel

__all__ = ["mul_step_values", "trace_layout", "TraceLayout", "synthesize_mul_traces"]

_U = np.uint64
_MASK25 = _U((1 << LOW_BITS) - 1)
_MANT_MASK = _U((1 << 52) - 1)
_IMPLICIT = _U(1 << 52)
_EXP_MASK = _U(0x7FF)


def mul_step_values(x: NDArray[Any] | int, y: NDArray[Any]) -> NDArray[np.uint64]:  # sast: declassify(reason=leakage model of fpr multiply intermediates; consumes the secret operand by design)
    """(D, S) uint64 matrix of intermediates for x*y, one row per pair.

    ``x`` (secret) and ``y`` (known) are fpr bit patterns; ``x`` may be a
    scalar, broadcast against ``y``. Columns follow MUL_STEP_LABELS.
    Inputs must be nonzero normals (the capture layer filters zeros).
    """
    y = np.asarray(y, dtype=np.uint64)
    x = np.broadcast_to(np.asarray(x, dtype=np.uint64), y.shape).copy()
    ex = (x >> _U(52)) & _EXP_MASK
    ey = (y >> _U(52)) & _EXP_MASK
    if np.any(ex == 0) or np.any(ey == 0) or np.any(ex == 0x7FF) or np.any(ey == 0x7FF):
        raise ValueError("operands must be nonzero normal doubles")
    mx = (x & _MANT_MASK) | _IMPLICIT
    my = (y & _MANT_MASK) | _IMPLICIT

    x_lo = mx & _MASK25
    x_hi = mx >> _U(LOW_BITS)
    y_lo = my & _MASK25
    y_hi = my >> _U(LOW_BITS)

    p_ll = x_lo * y_lo
    p_lh = x_lo * y_hi
    s_lo = (p_ll >> _U(LOW_BITS)) + p_lh
    p_hl = x_hi * y_lo
    s_mid = s_lo + p_hl
    p_hh = x_hi * y_hi
    s_hi = (s_mid >> _U(LOW_BITS)) + p_hh
    sticky = (p_ll & _MASK25) | ((s_mid & _MASK25) << _U(LOW_BITS))

    # The rounded result comes from the host FPU (IEEE-754, bit-exact
    # with repro.fpr.emu.fpr_mul for normal in/out).
    result = (x.view(np.float64) * y.view(np.float64)).view(np.uint64)
    mant_out = result & _MANT_MASK
    exp_out = (result >> _U(52)) & _EXP_MASK
    sign_out = (x >> _U(63)) ^ (y >> _U(63))
    exp_sum = ex + ey
    exp_biased = (exp_sum - _U(EXP_REBIAS)) & _U(0xFFFFFFFF)

    cols = {
        "load_x_lo": x_lo,
        "load_x_hi": x_hi,
        "load_y_lo": y_lo,
        "load_y_hi": y_hi,
        "p_ll": p_ll,
        "p_lh": p_lh,
        "s_lo": s_lo,
        "p_hl": p_hl,
        "s_mid": s_mid,
        "p_hh": p_hh,
        "s_hi": s_hi,
        "sticky": sticky,
        "mant_out": mant_out,
        "exp_sum": exp_sum,
        "exp_biased": exp_biased,
        "exp_out": exp_out,
        "sign_out": sign_out,
        "result": result,
    }
    return np.stack([cols[lab] for lab in MUL_STEP_LABELS], axis=-1)


@dataclass(frozen=True)
class TraceLayout:
    """Mapping from step labels to sample index ranges in a trace."""

    samples_per_step: int
    labels: tuple[str, ...] = MUL_STEP_LABELS

    @property
    def n_samples(self) -> int:
        return len(self.labels) * self.samples_per_step

    def slice_of(self, label: str) -> slice:
        i = self.labels.index(label)
        return slice(i * self.samples_per_step, (i + 1) * self.samples_per_step)

    def sample_of(self, label: str) -> int:
        """First sample index covering ``label``."""
        return self.labels.index(label) * self.samples_per_step


def trace_layout(device: DeviceModel) -> TraceLayout:
    return TraceLayout(samples_per_step=device.samples_per_step)


def synthesize_mul_traces(
    x: NDArray[Any] | int,
    y: NDArray[Any],
    device: DeviceModel,
    rng: np.random.Generator | None = None,
) -> tuple[NDArray[np.float32], NDArray[np.uint64]]:
    """Traces (D, T) plus the underlying step values (D, S) for x*y."""
    if rng is None:
        rng = device.rng()
    values = mul_step_values(x, y)
    traces = device.emit(values, rng)
    return traces, values
