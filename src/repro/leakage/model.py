"""Leakage models: how an intermediate value maps to emitted signal.

The paper's distinguisher assumes Hamming-weight leakage (Brier et al.);
:class:`HammingWeightModel` is therefore the default everywhere. The
Hamming-distance and weighted-bit variants support robustness experiments
(how the attack degrades when the device leaks differently from the
model the attacker assumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.utils.bits import hamming_weight_array

__all__ = ["HammingWeightModel", "HammingDistanceModel", "WeightedBitModel"]


@dataclass(frozen=True)
class HammingWeightModel:
    """signal = HW(value)."""

    def signal(self, values: NDArray[Any]) -> NDArray[np.float64]:
        """Noise-free signal for an array of (<= 64-bit) intermediates."""
        return hamming_weight_array(values).astype(np.float64)


@dataclass(frozen=True)
class HammingDistanceModel:
    """signal = HD(value, previous value on the same bus)."""

    def signal(
        self, values: NDArray[Any], previous: NDArray[Any] | None = None
    ) -> NDArray[np.float64]:
        values = np.asarray(values, dtype=np.uint64)
        if previous is None:
            previous = np.zeros_like(values)
        return hamming_weight_array(values ^ np.asarray(previous, dtype=np.uint64)).astype(
            np.float64
        )


@dataclass(frozen=True)
class WeightedBitModel:
    """signal = sum_i w_i * bit_i(value): unequal per-bit contributions.

    ``weights`` has one entry per bit position (little-endian). Models
    probes that couple more strongly to some lines than others.
    """

    weights: tuple[float, ...] = field(default_factory=lambda: tuple([1.0] * 64))

    def signal(self, values: NDArray[Any]) -> NDArray[np.float64]:
        values = np.asarray(values, dtype=np.uint64)
        out = np.zeros(values.shape, dtype=np.float64)
        for i, w in enumerate(self.weights):
            if w == 0.0:
                continue
            bit = (values >> np.uint64(i)) & np.uint64(1)
            out += w * bit.astype(np.float64)
        return out
