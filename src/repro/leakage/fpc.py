"""Full-fidelity leakage of FALCON's complex multiplication (FPC_MUL).

The attacked computation FFT(c) (*) FFT(f) multiplies complex slots
(paper Figure 1). The reference FPC_MUL computes, for
x = x_re + i x_im (secret) and y = y_re + i y_im (known):

    p0 = x_re * y_re      p1 = x_im * y_im
    p2 = x_re * y_im      p3 = x_im * y_re
    d_re = p0 - p1        d_im = p2 + p3

The per-real-multiply capture (:mod:`repro.leakage.capture`) is what
the paper's attack consumes; this module synthesizes the *whole* slot
trace — the four instrumented multiplies plus the two instrumented
final additions — for fidelity studies (the final adds mix both secret
doubles of the slot and are a natural second-order target the paper's
"other parts may also leak" remark anticipates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.fpr.trace import ADD_STEP_LABELS, MUL_STEP_LABELS
from repro.leakage.device import DeviceModel
from repro.leakage.synth import mul_step_values

__all__ = ["FpcLayout", "fpc_step_values", "synthesize_fpc_traces", "FPC_MUL_NAMES"]

_U = np.uint64
_SIGN = _U(1) << _U(63)
_ABS = ~_SIGN
_EXPF = _U(0x7FF)
_MANTF = _U((1 << 52) - 1)
_IMPL = _U(1 << 52)

#: The four real multiplications inside one complex multiply.
FPC_MUL_NAMES = ("re_re", "im_im", "re_im", "im_re")


@dataclass(frozen=True)
class FpcLayout:
    """Step labels of a full complex-multiplication trace."""

    labels: tuple[str, ...]

    @property
    def n_samples(self) -> int:
        return len(self.labels)

    def index_of(self, label: str) -> int:
        return self.labels.index(label)

    @classmethod
    def build(cls) -> "FpcLayout":
        labels: list[str] = []
        for name in FPC_MUL_NAMES:
            labels.extend(f"{name}.{lab}" for lab in MUL_STEP_LABELS)
        labels.extend(f"add_re.{lab}" for lab in ADD_STEP_LABELS)
        labels.extend(f"add_im.{lab}" for lab in ADD_STEP_LABELS)
        return cls(labels=tuple(labels))


def _add_step_values(x: NDArray[Any], y: NDArray[Any]) -> NDArray[np.uint64]:  # sast: declassify(reason=vectorized leakage model of fpr addition; mirrors the victim's data flow on purpose)
    """Vectorized intermediates of fpr addition (see fpr_add_trace)."""
    x = np.asarray(x, dtype=np.uint64)
    y = np.asarray(y, dtype=np.uint64)
    swap = (x & _ABS) < (y & _ABS)
    big = np.where(swap, y, x)
    small = np.where(swap, x, y)
    eb = (big >> _U(52)) & _EXPF
    es = (small >> _U(52)) & _EXPF
    if np.any(eb == 0) or np.any(es == 0):
        raise ValueError("operands must be nonzero normal doubles")
    m_b = (big & _MANTF) | _IMPL
    m_s = (small & _MANTF) | _IMPL
    exp_diff = eb - es
    aligned = m_s >> np.minimum(exp_diff, _U(63))
    same = (big >> _U(63)) == (small >> _U(63))
    mant_sum = np.where(same, m_b + aligned, m_b - aligned)
    result = (x.view(np.float64) + y.view(np.float64)).view(np.uint64)
    mant_out = result & _MANTF
    exp_out = (result >> _U(52)) & _EXPF
    sign_out = result >> _U(63)
    cols = [exp_diff, m_b, aligned, mant_sum, mant_out, exp_out, sign_out, result]
    return np.stack(cols, axis=-1)


def fpc_step_values(
    x_re: int, x_im: int, y_re: NDArray[Any], y_im: NDArray[Any]
) -> tuple[NDArray[np.uint64], FpcLayout]:
    """(D, S) intermediates of the full complex multiply per trace.

    ``x_re``/``x_im`` are the secret doubles' bit patterns (scalars);
    ``y_re``/``y_im`` the known operand pattern arrays.
    """
    y_re = np.asarray(y_re, dtype=np.uint64)
    y_im = np.asarray(y_im, dtype=np.uint64)
    mul_blocks = [
        mul_step_values(x_re, y_re),
        mul_step_values(x_im, y_im),
        mul_step_values(x_re, y_im),
        mul_step_values(x_im, y_re),
    ]
    res_col = MUL_STEP_LABELS.index("result")
    p0 = mul_blocks[0][:, res_col]
    p1 = mul_blocks[1][:, res_col]
    p2 = mul_blocks[2][:, res_col]
    p3 = mul_blocks[3][:, res_col]
    add_re = _add_step_values(p0, p1 ^ _SIGN)   # d_re = p0 - p1
    add_im = _add_step_values(p2, p3)           # d_im = p2 + p3
    values = np.concatenate(mul_blocks + [add_re, add_im], axis=1)
    return values, FpcLayout.build()


def synthesize_fpc_traces(
    x_re: int,
    x_im: int,
    y_re: NDArray[Any],
    y_im: NDArray[Any],
    device: DeviceModel | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[NDArray[np.float32], NDArray[np.uint64], FpcLayout]:
    """Full-slot traces: (traces, step values, layout)."""
    dev = device if device is not None else DeviceModel()
    if rng is None:
        rng = dev.rng()
    values, layout = fpc_step_values(x_re, x_im, y_re, y_im)
    traces = dev.emit(values, rng)
    return traces, values, layout
