"""Bit-manipulation helpers used across the leakage models and attacks.

The side-channel distinguishers in this package are built on the Hamming
weight of architectural intermediates (products, sums, packed floats).
These helpers provide both scalar (Python ``int``) and vectorized
(:mod:`numpy`) Hamming weight computations that work for values wider than
64 bits (schoolbook partial products are up to 106 bits wide).
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "hamming_weight",
    "hamming_weight_array",
    "hamming_distance",
    "bit_reverse",
    "mask",
    "bits_of",
    "from_bits",
]

# Lookup table for one byte; shared by scalar and vector paths.
_BYTE_HW = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def mask(nbits: int) -> int:
    """Return an ``nbits``-wide all-ones mask (``nbits >= 0``)."""
    if nbits < 0:
        raise ValueError(f"nbits must be non-negative, got {nbits}")
    return (1 << nbits) - 1


def hamming_weight(value: int) -> int:
    """Hamming weight of an arbitrary-precision non-negative integer."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return value.bit_count()


def hamming_distance(a: int, b: int) -> int:
    """Hamming distance between two non-negative integers."""
    if a < 0 or b < 0:
        raise ValueError("operands must be non-negative")
    return (a ^ b).bit_count()


def hamming_weight_array(values: NDArray[Any], width: int = 64) -> NDArray[np.int64]:  # sast: declassify(reason=Hamming-weight leakage model primitive; computing HW of secret intermediates is its job)
    """Vectorized Hamming weight of an unsigned integer array.

    Parameters
    ----------
    values:
        Array of unsigned integers. dtype must be an unsigned integer type
        of at most 64 bits; values wider than 64 bits must be split by the
        caller (see :func:`repro.attack.hypotheses.product_hw`).
    width:
        Only the low ``width`` bits contribute (1..64).
    """
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in 1..64, got {width}")
    arr = np.asarray(values)
    if arr.dtype.kind != "u":
        arr = arr.astype(np.uint64)
    if width < 64:
        arr = arr & np.uint64(mask(width))
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0: hardware popcount
        return np.bitwise_count(arr).astype(np.int64)
    # Fallback: view as bytes and sum the per-byte weights.
    flat = np.ascontiguousarray(arr, dtype=np.uint64)
    as_bytes = flat.view(np.uint8).reshape(*flat.shape, 8)
    return _BYTE_HW[as_bytes].sum(axis=-1).astype(np.int64)


def bit_reverse(value: int, nbits: int) -> int:
    """Reverse the low ``nbits`` bits of ``value`` (used by iterative NTT)."""
    out = 0
    for _ in range(nbits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def bits_of(value: int, nbits: int) -> list[int]:
    """Little-endian list of the low ``nbits`` bits of ``value``."""
    return [(value >> i) & 1 for i in range(nbits)]


def from_bits(bits: list[int]) -> int:
    """Inverse of :func:`bits_of` (little-endian bit list to integer)."""
    out = 0
    for i, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bit {i} is {b}, expected 0 or 1")
        out |= b << i
    return out
