"""Shared low-level utilities: bit manipulation, PRNG, statistics."""

from repro.utils.bits import (
    hamming_weight,
    hamming_weight_array,
    hamming_distance,
    bit_reverse,
    mask,
)
from repro.utils.rng import ChaCha20Prng, SystemRng
from repro.utils.stats import (
    OnlineMoments,
    PearsonAccumulator,
    batched_pearson,
    fisher_z_threshold,
    pearson_corr,
    streaming_pearson,
)

__all__ = [
    "hamming_weight",
    "hamming_weight_array",
    "hamming_distance",
    "bit_reverse",
    "mask",
    "ChaCha20Prng",
    "SystemRng",
    "OnlineMoments",
    "PearsonAccumulator",
    "batched_pearson",
    "streaming_pearson",
    "pearson_corr",
    "fisher_z_threshold",
]
