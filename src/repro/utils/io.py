"""Durable file writes shared by the store, session, and bench layers.

The tmp-write → fsync → ``os.replace`` dance makes the *file contents*
atomic, but on POSIX the rename itself lives in the parent directory's
data: until the directory is fsynced, a crash can forget that the new
name exists at all — losing a campaign manifest or a session checkpoint
that the file-level fsync "guaranteed". Both
:mod:`repro.leakage.store` and :mod:`repro.attack.session` had exactly
this bug (file fsync, no directory fsync); they now share the helpers
here, which fsync the parent directory after every replace.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "atomic_output_path",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
]


def fsync_dir(path: str | os.PathLike[str]) -> None:
    """fsync a directory so renames inside it survive a crash.

    Directories cannot be fsynced on some platforms/filesystems
    (Windows, some network mounts) — there the rename durability is the
    filesystem's problem and the failure is ignored.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | os.PathLike[str], blob: bytes) -> None:
    """Crash-durable write: tmp file + fsync, rename, parent-dir fsync.

    Readers never observe a partial file (``os.replace`` is atomic) and
    after return the entry survives power loss (both the data and the
    directory entry are on stable storage).
    """
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=os.path.basename(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    fsync_dir(parent)


def atomic_write_text(path: str | os.PathLike[str], content: str) -> None:
    """:func:`atomic_write_bytes` for text (UTF-8)."""
    atomic_write_bytes(path, content.encode("utf-8"))


@contextmanager
def atomic_output_path(path: str | os.PathLike[str]) -> Iterator[str]:
    """Atomic writes for APIs that insist on a filename (np.savez, TRS).

    Yields a temp path in the destination's directory; on clean exit the
    temp file is fsynced and renamed over ``path`` with the same
    durability contract as :func:`atomic_write_bytes`. On an exception
    the temp file is removed and the destination is untouched::

        with atomic_output_path(out) as tmp:
            np.savez_compressed(tmp, traces=traces)
    """
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=os.path.basename(path), suffix=".tmp")
    os.close(fd)
    try:
        yield tmp
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    fsync_dir(parent)
