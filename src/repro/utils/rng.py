"""Deterministic randomness for reproducible measurement campaigns.

FALCON's reference implementation expands a SHAKE-seeded state through a
ChaCha20-based PRNG. We implement ChaCha20 (RFC 8439) from scratch so the
whole signing + capture pipeline is deterministic given a seed, which makes
attack experiments and the benchmark harness reproducible run to run.

:class:`ChaCha20Prng` is validated against the ``cryptography`` package's
ChaCha20 in the test suite when that package is available.
"""

from __future__ import annotations

import hashlib
import os
import struct

__all__ = ["chacha20_block", "ChaCha20Prng", "SystemRng"]

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_MASK32 = 0xFFFFFFFF


def _rotl32(v: int, c: int) -> int:
    return ((v << c) | (v >> (32 - c))) & _MASK32


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 keystream block (RFC 8439 section 2.3)."""
    if len(key) != 32:
        raise ValueError(f"key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"nonce must be 12 bytes, got {len(nonce)}")
    init = list(_CONSTANTS)
    init += list(struct.unpack("<8I", key))
    init.append(counter & _MASK32)
    init += list(struct.unpack("<3I", nonce))
    state = init.copy()
    for _ in range(10):
        _quarter_round(state, 0, 4, 8, 12)
        _quarter_round(state, 1, 5, 9, 13)
        _quarter_round(state, 2, 6, 10, 14)
        _quarter_round(state, 3, 7, 11, 15)
        _quarter_round(state, 0, 5, 10, 15)
        _quarter_round(state, 1, 6, 11, 12)
        _quarter_round(state, 2, 7, 8, 13)
        _quarter_round(state, 3, 4, 9, 14)
    out = [(s + i) & _MASK32 for s, i in zip(state, init)]
    return struct.pack("<16I", *out)


class ChaCha20Prng:
    """Seeded deterministic byte stream built on ChaCha20.

    The 32-byte key is derived from an arbitrary seed via SHAKE-256,
    mirroring how FALCON's reference code seeds its inner PRNG from a
    SHAKE context.
    """

    def __init__(self, seed: bytes | int | str) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "little", signed=False)
        elif isinstance(seed, str):
            seed = seed.encode()
        self._key = hashlib.shake_256(seed).digest(32)
        self._nonce = bytes(12)
        self._counter = 0
        self._buffer = b""

    def randombytes(self, n: int) -> bytes:
        """Return the next ``n`` bytes of the keystream."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        while len(self._buffer) < n:
            self._buffer += chacha20_block(self._key, self._counter, self._nonce)
            self._counter += 1
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi], via rejection."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        nbytes = (span.bit_length() + 7) // 8
        limit = (1 << (8 * nbytes)) // span * span
        while True:
            v = int.from_bytes(self.randombytes(nbytes), "little")
            if v < limit:
                return lo + v % span

    def random_u64(self) -> int:
        return int.from_bytes(self.randombytes(8), "little")

    def uniform(self) -> float:
        """Uniform double in [0, 1) with 53 bits of precision."""
        return (self.random_u64() >> 11) * (2.0**-53)


class SystemRng:
    """OS randomness with the same interface as :class:`ChaCha20Prng`."""

    def randombytes(self, n: int) -> bytes:
        return os.urandom(n)

    def randint(self, lo: int, hi: int) -> int:
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        nbytes = (span.bit_length() + 7) // 8
        limit = (1 << (8 * nbytes)) // span * span
        while True:
            v = int.from_bytes(self.randombytes(nbytes), "little")
            if v < limit:
                return lo + v % span

    def random_u64(self) -> int:
        return int.from_bytes(self.randombytes(8), "little")

    def uniform(self) -> float:
        return (self.random_u64() >> 11) * (2.0**-53)
