"""Statistics shared by the CPA distinguisher and the analysis layer.

The paper's distinguisher is the classic Pearson-correlation CPA of Brier
et al. with a Hamming-weight leakage estimate, judged against a 99.99%
confidence interval. The interval is the standard Fisher-z bound for the
null hypothesis "true correlation is zero": with D traces, an observed
sample correlation r is significant at level alpha when
``|r| > tanh(z_alpha / sqrt(D - 3))``.

Correlation is computed from the five raw-moment sums (sum h, sum h^2,
sum t, sum t^2, sum h*t), which makes it streamable: a
:class:`PearsonAccumulator` folds (D, G)/(D, T) batches in as they
arrive and can emit the correlation matrix at any point. Both
:func:`batched_pearson` (one-shot) and :func:`streaming_pearson`
(chunked, O(chunk) working memory) finalize through the same code path,
so their results agree to float64 summation-order differences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]

__all__ = [
    "pearson_corr",
    "batched_pearson",
    "streaming_pearson",
    "PearsonAccumulator",
    "fisher_z_threshold",
    "normal_quantile",
    "OnlineMoments",
]


def normal_quantile(p: float) -> float:
    """Quantile (inverse CDF) of the standard normal distribution.

    Uses Acklam's rational approximation (relative error < 1.15e-9),
    which keeps the core library free of a SciPy dependency.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        return num / den
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        return -num / den
    q = p - 0.5
    r = q * q
    num = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
    den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    return num / den


def fisher_z_threshold(n_traces: int, confidence: float = 0.9999) -> float:
    """Correlation magnitude needed for significance at ``confidence``.

    This is the dashed-line bound drawn in the paper's Figure 4: under the
    null (no leakage), atanh(r) is approximately normal with standard
    deviation 1/sqrt(D - 3).

    With three or fewer traces the Fisher-z variance is undefined; the
    bound saturates at the largest float strictly below 1.0 rather than
    1.0 itself, so that a mathematically perfect correlation (clipped to
    exactly 1.0 by the distinguisher) still registers as significant
    under the strict ``>`` comparison used by
    :meth:`repro.attack.cpa.CpaResult.significant_guesses`.
    """
    if n_traces <= 3:
        return math.nextafter(1.0, 0.0)
    z = normal_quantile(confidence)
    return math.tanh(z / math.sqrt(n_traces - 3))


def pearson_corr(x: NDArray[Any], y: NDArray[Any]) -> float:
    """Pearson correlation between two 1-D arrays (0.0 when degenerate)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = math.sqrt(float(xc @ xc) * float(yc @ yc))
    if denom == 0.0:
        return 0.0
    return float(xc @ yc) / denom


def _finalize_pearson(
    count: int,
    sum_h: FloatArray,
    sum_h2: FloatArray,
    sum_t: FloatArray,
    sum_t2: FloatArray,
    sum_ht: FloatArray,
) -> FloatArray:
    """(G, T) correlation from the five raw-moment sums.

    Shared by the one-shot and streaming paths so both produce identical
    finalization arithmetic; columns with zero variance on either side
    yield 0.0 rather than NaN.
    """
    cov = sum_ht - np.outer(sum_h, sum_t) / count
    var_h = np.maximum(sum_h2 - sum_h * sum_h / count, 0.0)
    var_t = np.maximum(sum_t2 - sum_t * sum_t / count, 0.0)
    denom = np.sqrt(np.outer(var_h, var_t))
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = np.where(denom > 0, cov / np.where(denom > 0, denom, 1.0), 0.0)
    return np.clip(corr, -1.0, 1.0).astype(np.float64)


def _validate_pair(hyps: NDArray[Any], traces: NDArray[Any]) -> None:
    if hyps.ndim != 2 or traces.ndim != 2 or hyps.shape[0] != traces.shape[0]:
        raise ValueError(
            f"expected (D,G) and (D,T) with matching D, got {hyps.shape} and {traces.shape}"
        )


def batched_pearson(hyps: NDArray[Any], traces: NDArray[Any]) -> FloatArray:
    """Correlation of every hypothesis column with every trace sample.

    Parameters
    ----------
    hyps:
        (D, G) array: leakage estimate per trace for each of G guesses.
    traces:
        (D, T) array: measured traces, T samples each.

    Returns
    -------
    (G, T) array of Pearson correlations; columns with zero variance on
    either side produce 0.0 rather than NaN.
    """
    _validate_pair(np.asarray(hyps), np.asarray(traces))
    # Raw-moment formulation: one float64 cast of the hypothesis matrix,
    # no centered copies (the matrices here are 10k x thousands).
    h = np.asarray(hyps, dtype=np.float64)
    t = np.asarray(traces, dtype=np.float64)
    return _finalize_pearson(
        h.shape[0],
        h.sum(axis=0),
        np.einsum("dg,dg->g", h, h),
        t.sum(axis=0),
        np.einsum("dt,dt->t", t, t),
        h.T @ t,
    )


@dataclass
class PearsonAccumulator:
    """Streaming raw-moment sums for a (G, T) Pearson correlation matrix.

    Shapes are fixed by the first :meth:`update`; subsequent batches must
    match. Independent accumulators over disjoint trace partitions can be
    :meth:`merge`\\ d — the sums are additive — which is what makes the
    distinguisher trivially parallel over acquisition shards.
    """

    count: int = 0
    _sum_h: FloatArray | None = field(default=None, repr=False)
    _sum_h2: FloatArray | None = field(default=None, repr=False)
    _sum_t: FloatArray | None = field(default=None, repr=False)
    _sum_t2: FloatArray | None = field(default=None, repr=False)
    _sum_ht: FloatArray | None = field(default=None, repr=False)

    @property
    def n_guesses(self) -> int | None:
        return None if self._sum_h is None else int(self._sum_h.shape[0])

    @property
    def n_samples(self) -> int | None:
        return None if self._sum_t is None else int(self._sum_t.shape[0])

    def update(self, hyps: NDArray[Any], traces: NDArray[Any]) -> "PearsonAccumulator":
        """Fold in one (D, G)/(D, T) batch of rows; returns self."""
        h = np.atleast_2d(np.asarray(hyps, dtype=np.float64))
        t = np.atleast_2d(np.asarray(traces, dtype=np.float64))
        _validate_pair(h, t)
        if self._sum_h is not None and self._sum_t is not None and (
            h.shape[1] != self._sum_h.shape[0] or t.shape[1] != self._sum_t.shape[0]
        ):
            raise ValueError(
                f"batch shapes {h.shape}/{t.shape} do not match accumulator "
                f"({self._sum_h.shape[0]} guesses, {self._sum_t.shape[0]} samples)"
            )
        if h.shape[0] == 0:
            return self
        if self._sum_h is None:
            self._sum_h = np.zeros(h.shape[1])
            self._sum_h2 = np.zeros(h.shape[1])
            self._sum_t = np.zeros(t.shape[1])
            self._sum_t2 = np.zeros(t.shape[1])
            self._sum_ht = np.zeros((h.shape[1], t.shape[1]))
        assert (
            self._sum_h2 is not None and self._sum_t is not None
            and self._sum_t2 is not None and self._sum_ht is not None
        )
        self.count += h.shape[0]
        self._sum_h += h.sum(axis=0)
        self._sum_h2 += np.einsum("dg,dg->g", h, h)
        self._sum_t += t.sum(axis=0)
        self._sum_t2 += np.einsum("dt,dt->t", t, t)
        self._sum_ht += h.T @ t
        return self

    def merge(self, other: "PearsonAccumulator") -> "PearsonAccumulator":
        """Add another accumulator's sums into this one; returns self."""
        if other.count == 0 or other._sum_h is None:
            return self
        assert (
            other._sum_h2 is not None and other._sum_t is not None
            and other._sum_t2 is not None and other._sum_ht is not None
        )
        if self._sum_h is None:
            self.count = other.count
            self._sum_h = other._sum_h.copy()
            self._sum_h2 = other._sum_h2.copy()
            self._sum_t = other._sum_t.copy()
            self._sum_t2 = other._sum_t2.copy()
            self._sum_ht = other._sum_ht.copy()
            return self
        assert (
            self._sum_h2 is not None and self._sum_t is not None
            and self._sum_t2 is not None and self._sum_ht is not None
        )
        if (
            other._sum_h.shape != self._sum_h.shape
            or other._sum_t.shape != self._sum_t.shape
        ):
            raise ValueError("cannot merge accumulators of different shapes")
        self.count += other.count
        self._sum_h += other._sum_h
        self._sum_h2 += other._sum_h2
        self._sum_t += other._sum_t
        self._sum_t2 += other._sum_t2
        self._sum_ht += other._sum_ht
        return self

    def correlation(self) -> FloatArray:
        """The (G, T) Pearson correlation of everything folded so far."""
        if self.count < 2:
            raise ValueError("need at least two traces")
        assert (
            self._sum_h is not None and self._sum_h2 is not None
            and self._sum_t is not None and self._sum_t2 is not None
            and self._sum_ht is not None
        )
        return _finalize_pearson(
            self.count, self._sum_h, self._sum_h2, self._sum_t, self._sum_t2, self._sum_ht
        )

    def threshold(self, confidence: float = 0.9999) -> float:
        """Fisher-z bound for the traces accumulated so far."""
        return fisher_z_threshold(self.count, confidence)


def streaming_pearson(
    hyps: NDArray[Any], traces: NDArray[Any], chunk_rows: int = 4096
) -> FloatArray:
    """Chunked equivalent of :func:`batched_pearson`.

    Processes ``chunk_rows`` traces at a time through a
    :class:`PearsonAccumulator`, so the float64 working set is
    O(chunk_rows * (G + T)) regardless of D — the full-corpus float64
    cast that :func:`batched_pearson` performs never materializes.
    Results agree with the one-shot path to float64 summation-order
    error (far below 1e-9 in practice).
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    hyps = np.asarray(hyps)
    traces = np.asarray(traces)
    _validate_pair(hyps, traces)
    acc = PearsonAccumulator()
    for lo in range(0, hyps.shape[0], chunk_rows):
        acc.update(hyps[lo : lo + chunk_rows], traces[lo : lo + chunk_rows])
    return acc.correlation()


@dataclass
class OnlineMoments:
    """Streaming per-sample mean/variance of trace batches.

    Batches are folded in with Chan et al.'s parallel-variance update:
    each (D, T) batch is reduced with one vectorized pass (no per-row
    Python loop) and combined with the running moments exactly.
    """

    count: int = 0
    _mean: FloatArray | None = field(default=None, repr=False)
    _m2: FloatArray | None = field(default=None, repr=False)

    def update(self, batch: NDArray[Any]) -> None:
        """Fold a (D, T) batch of rows into the accumulator."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        n_b = batch.shape[0]
        if n_b == 0:
            return
        mean_b = batch.mean(axis=0)
        m2_b = np.einsum("dt,dt->t", batch - mean_b, batch - mean_b)
        if self._mean is None:
            self.count = n_b
            self._mean = mean_b
            self._m2 = m2_b
            return
        assert self._m2 is not None
        n_a = self.count
        total = n_a + n_b
        delta = mean_b - self._mean
        self._mean = self._mean + delta * (n_b / total)
        self._m2 = self._m2 + m2_b + delta * delta * (n_a * n_b / total)
        self.count = total

    @property
    def mean(self) -> FloatArray:
        if self._mean is None:
            raise ValueError("no data accumulated")
        return self._mean

    @property
    def variance(self) -> FloatArray:
        """Sample variance (ddof=1)."""
        if self._m2 is None or self.count < 2:
            raise ValueError("need at least two rows for a variance")
        return self._m2 / (self.count - 1)
