"""Statistics shared by the CPA distinguisher and the analysis layer.

The paper's distinguisher is the classic Pearson-correlation CPA of Brier
et al. with a Hamming-weight leakage estimate, judged against a 99.99%
confidence interval. The interval is the standard Fisher-z bound for the
null hypothesis "true correlation is zero": with D traces, an observed
sample correlation r is significant at level alpha when
``|r| > tanh(z_alpha / sqrt(D - 3))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "pearson_corr",
    "batched_pearson",
    "fisher_z_threshold",
    "normal_quantile",
    "OnlineMoments",
]


def normal_quantile(p: float) -> float:
    """Quantile (inverse CDF) of the standard normal distribution.

    Uses Acklam's rational approximation (relative error < 1.15e-9),
    which keeps the core library free of a SciPy dependency.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        return num / den
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        return -num / den
    q = p - 0.5
    r = q * q
    num = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
    den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    return num / den


def fisher_z_threshold(n_traces: int, confidence: float = 0.9999) -> float:
    """Correlation magnitude needed for significance at ``confidence``.

    This is the dashed-line bound drawn in the paper's Figure 4: under the
    null (no leakage), atanh(r) is approximately normal with standard
    deviation 1/sqrt(D - 3).
    """
    if n_traces <= 3:
        return 1.0
    z = normal_quantile(confidence)
    return math.tanh(z / math.sqrt(n_traces - 3))


def pearson_corr(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation between two 1-D arrays (0.0 when degenerate)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = math.sqrt(float(xc @ xc) * float(yc @ yc))
    if denom == 0.0:
        return 0.0
    return float(xc @ yc) / denom


def batched_pearson(hyps: np.ndarray, traces: np.ndarray) -> np.ndarray:
    """Correlation of every hypothesis column with every trace sample.

    Parameters
    ----------
    hyps:
        (D, G) array: leakage estimate per trace for each of G guesses.
    traces:
        (D, T) array: measured traces, T samples each.

    Returns
    -------
    (G, T) array of Pearson correlations; columns with zero variance on
    either side produce 0.0 rather than NaN.
    """
    if hyps.ndim != 2 or traces.ndim != 2 or hyps.shape[0] != traces.shape[0]:
        raise ValueError(
            f"expected (D,G) and (D,T) with matching D, got {hyps.shape} and {traces.shape}"
        )
    # Raw-moment formulation: one float64 cast of the hypothesis matrix,
    # no centered copies (the matrices here are 10k x thousands).
    h = np.asarray(hyps, dtype=np.float64)
    t = np.asarray(traces, dtype=np.float64)
    d = h.shape[0]
    sum_h = h.sum(axis=0)
    sum_h2 = np.einsum("dg,dg->g", h, h)
    sum_t = t.sum(axis=0)
    sum_t2 = np.einsum("dt,dt->t", t, t)
    sum_ht = h.T @ t
    cov = sum_ht - np.outer(sum_h, sum_t) / d
    var_h = np.maximum(sum_h2 - sum_h * sum_h / d, 0.0)
    var_t = np.maximum(sum_t2 - sum_t * sum_t / d, 0.0)
    denom = np.sqrt(np.outer(var_h, var_t))
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = np.where(denom > 0, cov / np.where(denom > 0, denom, 1.0), 0.0)
    return np.clip(corr, -1.0, 1.0)


@dataclass
class OnlineMoments:
    """Welford accumulator for streaming mean/variance of trace batches."""

    count: int = 0
    _mean: np.ndarray | None = field(default=None, repr=False)
    _m2: np.ndarray | None = field(default=None, repr=False)

    def update(self, batch: np.ndarray) -> None:
        """Fold a (D, T) batch of rows into the accumulator."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        for row in batch:
            self.count += 1
            if self._mean is None:
                self._mean = row.copy()
                self._m2 = np.zeros_like(row)
                continue
            delta = row - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (row - self._mean)

    @property
    def mean(self) -> np.ndarray:
        if self._mean is None:
            raise ValueError("no data accumulated")
        return self._mean

    @property
    def variance(self) -> np.ndarray:
        """Sample variance (ddof=1)."""
        if self._m2 is None or self.count < 2:
            raise ValueError("need at least two rows for a variance")
        return self._m2 / (self.count - 1)
