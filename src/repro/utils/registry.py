"""Shared name-lookup plumbing for the pluggable registries.

The repo has three user-facing registries resolved by name — capture
backends (:mod:`repro.leakage.backend`), leakage surfaces
(:mod:`repro.targets`) and distinguishers
(:mod:`repro.attack.distinguisher`) — each reachable from a CLI flag.
They share one failure mode: a typo'd name. :func:`resolve_name` gives
them one error message shape (the sorted list of registered names), so
``--target``, ``--backend`` and ``--distinguisher`` all fail the same
helpful way and the message is tested once.
"""

from __future__ import annotations

from typing import Mapping, TypeVar

__all__ = ["unknown_name_error", "resolve_name"]

T = TypeVar("T")


def unknown_name_error(kind: str, name: object, registered: Mapping[str, T]) -> ValueError:
    """The uniform lookup-failure error: kind, offender, sorted choices."""
    choices = ", ".join(repr(k) for k in sorted(registered))
    return ValueError(f"unknown {kind} {name!r}; registered {kind}s: {choices}")


def resolve_name(kind: str, name: str, registered: Mapping[str, T]) -> T:
    """Look ``name`` up in ``registered`` or raise the uniform error."""
    try:
        return registered[name]
    except KeyError:
        raise unknown_name_error(kind, name, registered) from None
