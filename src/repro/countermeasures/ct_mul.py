# sast: constant-time
"""Branchless (constant-time dialect) variant of ``fpr_mul``.

``repro.fpr.emu.fpr_mul`` is a faithful model of FALCON's FPEMU
multiplication, *including* its variable-time structure: the rounding
path branches on secret rounding digits, shifts by a secret-dependent
normalization amount, and measures ``bit_length()`` of the secret
product. Those are exactly the control-flow/timing findings the
leakage contract records for the baseline (SF001/SF003).

This module reimplements the multiplication as straight-line
arithmetic: every select is an arithmetic mux over constant-shift
alternatives, so the analyzed code has no secret branch, no secret
subscript, and no operation whose *time* depends on a secret. The
module opts into the stricter ``# sast: constant-time`` dialect, which
disables all interval-based discharging — the claim "no findings" is
made against the harshest version of the analyzer.

The select trick relies on the product significand's narrow range:
``mx * my`` of two normals lies in ``[2^104, 2^106)``, so the
normalization amount is 52 or 53 and one bit (``sig >> 105``) decides
it. Both candidate shifts are computed with *constant* amounts and the
result is chosen by multiplication with the selector bit.

The GALACTICS caveat applies and is recorded in the contract's variant
section: constant time eliminates the timing/control channel only.
The *values* flowing through this code are still secret-dependent, so
the dynamic oracle still observes key-dependent operand streams on
every line (verdict CONFIRMED) — constant time is not a DEMA
countermeasure. Masking (:mod:`repro.countermeasures.masked_mul`)
addresses the value channel.

Inputs must be finite fpr patterns (normal or zero), as everywhere in
FALCON's fpr domain; subnormal/inf/NaN inputs are a caller error and
produce unspecified output instead of the exception the emulator
raises (an input-validation branch would be a secret branch).
"""

from __future__ import annotations

from repro.fpr.emu import BIAS, MANT_BITS, SIGN_BIT, decompose

__all__ = ["ct_fpr_mul"]

_EXP_MASK = (1 << 11) - 1
_MANT_MASK = (1 << MANT_BITS) - 1
_IMPLICIT = 1 << MANT_BITS
_INF = 0x7FF << MANT_BITS


def _nonzero(pattern: int) -> int:
    """1 if the fpr pattern is nonzero (ignoring the sign bit), else 0.

    Branchless: for mag > 0, ``mag | -mag`` is negative, so its
    arithmetic shift by 63 is -1; for mag == 0 it stays 0.
    """
    mag = pattern & ~SIGN_BIT
    return ((mag | -mag) >> 63) & 1


def ct_fpr_mul(x: int, y: int) -> int:
    """Bit-exact ``fpr_mul`` with straight-line control flow."""
    sx, bex, fx = decompose(x)
    sy, bey, fy = decompose(y)
    s = sx ^ sy
    mx = _IMPLICIT | fx
    my = _IMPLICIT | fy
    # exact product of the significands: sig in [2^104, 2^106)
    sig = mx * my
    # normalization amount: 53 when sig >= 2^105, else 52
    b = (sig >> 105) & 1
    keep = (sig >> 53) * b + (sig >> 52) * (1 - b)
    rem = (sig & ((1 << 53) - 1)) * b + (sig & ((1 << 52) - 1)) * (1 - b)
    half = (1 << 51) * (1 + b)
    # round to nearest, ties to even, without comparing via a branch:
    # rem > half  <=>  half - rem < 0;  rem == half  <=>  rem ^ half == 0
    gt = ((half - rem) >> 63) & 1
    d = rem ^ half
    eq = 1 - (((d | -d) >> 63) & 1)
    up = gt | (eq & keep & 1)
    keep = keep + up
    # carry out of the 53-bit significand renormalizes by one more bit
    c = keep >> 53
    keep = (keep >> 1) * c + keep * (1 - c)
    drop = 52 + b + c
    # value = keep * 2^(ex + ey + drop) with keep in [2^52, 2^53)
    biased = (bex - BIAS - MANT_BITS) + (bey - BIAS - MANT_BITS) + drop + MANT_BITS + BIAS
    # classify: overflow saturates to the inf pattern, underflow flushes
    # to signed zero, the normal range packs the fields
    ovf = ((_EXP_MASK - 1 - biased) >> 63) & 1
    unf = ((biased - 1) >> 63) & 1
    norm = 1 - ovf - unf
    pat_norm = (s << 63) | ((biased & _EXP_MASK) << MANT_BITS) | (keep & _MANT_MASK)
    pat_over = (s << 63) | _INF
    pat_zero = s << 63
    pat = pat_norm * norm + pat_over * ovf + pat_zero * unf
    # zero inputs bypass the (garbage) normal path arithmetically
    nz = _nonzero(x) * _nonzero(y)
    return pat * nz + ((x ^ y) & SIGN_BIT) * (1 - nz)
