"""Countermeasures from the paper's Discussion (Section V-B).

"The most popular techniques for side-channel mitigation is hiding and
masking." Neither existed for FALCON at publication time; this package
models both on the attacked multiplication so their effect on the attack
can be quantified (benchmarks/bench_countermeasures.py):

* :mod:`repro.countermeasures.masking` — ideal first-order masking as a
  *trace-level model*: every mantissa-datapath intermediate is blinded
  by a fresh uniform mask per execution, so no single sample's
  expectation depends on the secret. First-order CPA collapses to noise.
* :mod:`repro.countermeasures.shuffling` — hiding by operation
  shuffling: the four partial products (and their accumulations) execute
  in a random order, spreading each intermediate's leakage over several
  time samples.

Trace-level transforms are exposed as ``value_transform`` hooks for
:class:`repro.leakage.capture.CaptureCampaign`.

Two *code-level* variants reimplement ``fpr_mul`` itself and are
verified against the leakage contract (``repro-sast verify --variant``,
rule CT007; see ``docs/countermeasures.md``):

* :mod:`repro.countermeasures.masked_mul` — first-order boolean-masked
  multiplier: every register write holds a blinded share.
* :mod:`repro.countermeasures.ct_mul` — branchless constant-time
  multiplier under the ``# sast: constant-time`` strict dialect.
"""

from repro.countermeasures.ct_mul import ct_fpr_mul
from repro.countermeasures.masked_mul import (
    MaskContext,
    RandomMaskSource,
    SimulationMaskSource,
    masked_fpr_mul,
)
from repro.countermeasures.masking import MaskingTransform, capture_masked_shares
from repro.countermeasures.shuffling import ShufflingTransform

__all__ = [
    "MaskContext",
    "MaskingTransform",
    "RandomMaskSource",
    "ShufflingTransform",
    "SimulationMaskSource",
    "capture_masked_shares",
    "ct_fpr_mul",
    "masked_fpr_mul",
]
