"""Countermeasures from the paper's Discussion (Section V-B).

"The most popular techniques for side-channel mitigation is hiding and
masking." Neither existed for FALCON at publication time; this package
models both on the attacked multiplication so their effect on the attack
can be quantified (benchmarks/bench_countermeasures.py):

* :mod:`repro.countermeasures.masking` — ideal first-order masking:
  every mantissa-datapath intermediate is blinded by a fresh uniform
  mask per execution, so no single sample's expectation depends on the
  secret. First-order CPA collapses to noise.
* :mod:`repro.countermeasures.shuffling` — hiding by operation
  shuffling: the four partial products (and their accumulations) execute
  in a random order, spreading each intermediate's leakage over several
  time samples.

Both are exposed as ``value_transform`` hooks for
:class:`repro.leakage.capture.CaptureCampaign`.
"""

from repro.countermeasures.masking import MaskingTransform, capture_masked_shares
from repro.countermeasures.shuffling import ShufflingTransform

__all__ = ["MaskingTransform", "capture_masked_shares", "ShufflingTransform"]
