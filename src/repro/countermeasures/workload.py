"""Secret-driven workloads for the countermeasure variants.

These drivers exist for the verification loop, not for the attack: they
pull key material through :func:`masked_fpr_mul` and
:func:`ct_fpr_mul` so that

* the static pass sees real secret taint entering the variants (the
  residual findings recorded in the contract's variant sections are
  reachable, not vacuous), and
* the dynamic oracle can replay the variants per key seed and compare
  line digests (``repro-sast verify --variant <name> --oracle``).

This module deliberately lives outside the ``# sast: constant-time``
dialect — the drivers loop over secret-derived data, which the strict
dialect forbids (SF006) inside the countermeasure implementations.

Patterns are built from raw bit operations rather than through
``repro.fpr.emu`` so the drivers add no emulator call sites of their
own. The biased exponent is pinned into ``[1023, 1038]``, which keeps
every key-derived pattern nonzero: the zero patterns that exercise the
clear zero branch sit at *fixed positions* in the schedule, so the
number and order of ``fresh_mask`` draws is identical for every key and
the :class:`~repro.countermeasures.masked_mul.SimulationMaskSource`
stream stays aligned across oracle seeds.
"""

from __future__ import annotations

from repro.countermeasures.ct_mul import ct_fpr_mul
from repro.countermeasures.masked_mul import SimulationMaskSource, masked_fpr_mul
from repro.falcon.keygen import SecretKey

__all__ = [
    "run_ct_workload",
    "run_masked_workload",
    "variant_patterns",
]

_MANT_MASK = (1 << 52) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _pattern(c: int) -> int:
    """Nonzero fpr pattern whose sign/exponent/mantissa all depend on ``c``."""
    return (
        ((c & 1) << 63)
        | ((1023 + (c & 15)) << 52)
        | ((c * _GOLDEN) & _MANT_MASK)
    )


def variant_patterns(sk: SecretKey) -> list[int]:
    """Key-derived operand schedule, with zero traffic at fixed slots."""
    pats = [_pattern(c) for c in sk.f[:8]]
    pats += [_pattern(c) for c in sk.g[:8]]
    # fixed-position zeros: the clear zero branch runs for every key at
    # the same schedule slots, keeping the mask stream key-independent
    return pats + [0, 1 << 63]


def _pairs(pats: list[int]) -> list[tuple[int, int]]:
    return list(zip(pats, pats[1:] + pats[:1]))


def run_masked_workload(seed: str, n: int) -> None:
    """Replay ``masked_fpr_mul`` over one key's operand schedule.

    Uses the simulation coupling so the oracle observes the
    key-independence of the shares (see ``masked_mul``); the residual
    clear-boundary lines are the only ones expected to stay CONFIRMED.
    """
    from repro.falcon.keygen import keygen
    from repro.falcon.params import FalconParams

    params = FalconParams.get(n)
    sk, _pk = keygen(params, seed=f"oracle-key-{seed}")
    source = SimulationMaskSource()
    for x, y in _pairs(variant_patterns(sk)):
        masked_fpr_mul(x, y, source)


def run_ct_workload(seed: str, n: int) -> None:
    """Replay ``ct_fpr_mul`` over one key's operand schedule.

    Every line is expected to stay CONFIRMED: straight-line control flow
    does not make the *values* key-independent (the GALACTICS caveat).
    """
    from repro.falcon.keygen import keygen
    from repro.falcon.params import FalconParams

    params = FalconParams.get(n)
    sk, _pk = keygen(params, seed=f"oracle-key-{seed}")
    for x, y in _pairs(variant_patterns(sk)):
        ct_fpr_mul(x, y)
