"""Hiding by shuffling the schoolbook partial-product order.

The four partial products of the mantissa multiplication are data
independent and may execute in any order; a shuffled implementation
draws a fresh permutation per signing. An attacker who correlates at a
fixed sample then sees the targeted intermediate only 1/4 of the time,
cutting the observable correlation by the same factor (so the number of
traces for significance grows ~16x) — hiding weakens but does not
remove the leak, which is the classic result this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.fpr.trace import MUL_STEP_LABELS

__all__ = ["ShufflingTransform", "DEFAULT_SHUFFLE_GROUP"]

#: The independently-schedulable operations (the four partial products).
DEFAULT_SHUFFLE_GROUP = ("p_ll", "p_lh", "p_hl", "p_hh")


@dataclass
class ShufflingTransform:
    """``value_transform`` hook permuting a step group per trace."""

    group: tuple[str, ...] = DEFAULT_SHUFFLE_GROUP

    _cols: NDArray[Any] = field(init=False, repr=False)
    _perms: NDArray[Any] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for label in self.group:
            if label not in MUL_STEP_LABELS:
                raise ValueError(f"unknown step label {label!r}")
        self._cols = np.array([MUL_STEP_LABELS.index(lab) for lab in self.group])
        self._perms = np.array(list(permutations(range(len(self.group)))))

    def __call__(
        self, values: NDArray[np.uint64], rng: np.random.Generator
    ) -> NDArray[np.uint64]:
        out = values.copy()
        d = out.shape[0]
        pick = rng.integers(0, len(self._perms), size=d)
        perms = self._perms[pick]                      # (D, k) permutation per trace
        group_vals = out[:, self._cols]                # (D, k)
        out[:, self._cols] = np.take_along_axis(group_vals, perms, axis=1)
        return out
