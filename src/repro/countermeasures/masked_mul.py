"""First-order Boolean-masked variant of ``fpr_mul`` (register-transfer model).

The leakage model shared by the static pass and the dynamic oracle is a
*register probe* model: an observation samples the named values a
source line touches (the oracle digests exactly the locals named on a
traced line; the taint pass reports the taint of named data flowing
into sinks). Under that model a masked implementation must ensure that
no *named* value is secret in the clear — every register holds either
a share ``v XOR m`` or public data, and mask material never appears as
a named local at all (it lives inside :class:`MaskContext`, whose
default ``repr`` is address-based and therefore opaque to the oracle's
value encoder).

Clear values do exist transiently inside expression temporaries — the
analogue of combinational logic between registers. As in the standard
glitch-free d-probing argument for hardware masking, combinational
intermediates are assumed to leak only through the registers they are
latched into; the engine mirrors this by tracking kinds/masks on named
flows and treating expression temporaries as below its granularity.
This is the documented soundness boundary of the model (see
``docs/countermeasures.md``), not an accident.

Each register write follows one idiom::

    reg_s = CLEAR_EXPR ^ ctx.fresh_mask("reg", CLEAR_EXPR, width)

``fresh_mask`` is the statically recognized mask source: the taint
engine sees ``secret ^ mask`` and degrades the result to a ``share``,
which the SF001–SF004 sinks ignore. ``CLEAR_EXPR`` is spelled twice —
once for the datapath and once so the mask source can couple to the
value — because Python has no unnamed registers; both evaluations are
transient and the source text stays branch-free.

Two mask sources implement the two sides of the simulatability
argument:

* :class:`RandomMaskSource` — independent uniform masks, the real
  countermeasure. Every share is uniform and independent of the
  secret, but a *replay* oracle cannot certify that from two traces.
* :class:`SimulationMaskSource` — draws ``m := v XOR R`` with ``R``
  from a fixed key-independent stream, so every share equals ``R``.
  This is a valid coupling of the same per-execution distribution
  (``v XOR R`` is uniform when ``R`` is), chosen so the key-equality
  oracle can observe what the distribution argument proves: under it,
  every compute-region line digests identically across secret keys and
  the oracle returns REFUTED. The residual lines — the zero test, the
  unpack/blinding boundary, and the coupling internals that touch the
  clear value — stay CONFIRMED and are recorded in the contract's
  variant section.
"""

from __future__ import annotations

from repro.fpr.emu import BIAS, MANT_BITS, SIGN_BIT, decompose, is_zero
from repro.utils.rng import ChaCha20Prng

__all__ = [
    "MaskContext",
    "RandomMaskSource",
    "SimulationMaskSource",
    "fresh_mask",
    "masked_fpr_mul",
]

_EXP_MASK = (1 << 11) - 1
_MANT_MASK = (1 << MANT_BITS) - 1
_IMPLICIT = 1 << MANT_BITS
_INF = 0x7FF << MANT_BITS


def fresh_mask(width: int, rng: ChaCha20Prng) -> int:
    """Uniform ``width``-bit mask word — the module's randomness primitive."""
    return int.from_bytes(rng.randombytes((width + 7) // 8), "little") & (
        (1 << width) - 1
    )


class RandomMaskSource:
    """Independent uniform masks: the deployed countermeasure."""

    def __init__(self, seed: int = 2718) -> None:
        self._rng = ChaCha20Prng(seed)

    def fresh_mask(self, value: int, width: int) -> int:
        return fresh_mask(width, self._rng)


class SimulationMaskSource:
    """Coupled masks ``m = value XOR R`` with key-independent ``R``.

    The mask distribution is unchanged (uniform), but under this
    coupling every share ``value XOR m`` equals the stream value ``R``,
    so a differential-replay oracle observes the key-independence that
    holds in distribution for :class:`RandomMaskSource`.
    """

    def __init__(self, seed: int = 2718) -> None:
        self._rng = ChaCha20Prng(seed)

    def fresh_mask(self, value: int, width: int) -> int:
        return value ^ fresh_mask(width, self._rng)


class MaskContext:
    """Mask register file: holds every live mask, opaque to the oracle.

    Deliberately not a dataclass and without a custom ``repr``: the
    default address-based repr encodes as ``<MaskContext>`` under the
    oracle, so naming the context on a line never leaks mask material.
    """

    def __init__(self, source: RandomMaskSource | SimulationMaskSource) -> None:
        self._source = source
        self._masks: dict[str, int] = {}

    def fresh_mask(self, label: str, value: int, width: int) -> int:
        mask = self._source.fresh_mask(value, width)
        self._masks[label] = mask
        return mask

    def mask_of(self, label: str) -> int:
        return self._masks[label]


def masked_fpr_mul(
    x: int, y: int, source: RandomMaskSource | SimulationMaskSource | None = None
) -> int:
    """Bit-exact ``fpr_mul`` with every named intermediate masked.

    The rounding algorithm is the branchless select chain of
    :func:`repro.countermeasures.ct_mul.ct_fpr_mul`; here each step is
    additionally latched into a Boolean-masked register. The clear
    input boundary (zero test, field unpack, initial blinding) is the
    accepted residual leakage recorded in the leakage contract.
    """
    if is_zero(x) or is_zero(y):
        # residual: the zero test reads the clear inputs (SF001)
        return (x ^ y) & SIGN_BIT
    ctx = MaskContext(source if source is not None else RandomMaskSource())
    # -- blinding boundary: clear fields exist here and only here --------
    sx, bex, fx = decompose(x)
    sy, bey, fy = decompose(y)
    s_s = (sx ^ sy) ^ ctx.fresh_mask("s", sx ^ sy, 1)
    mx_s = (_IMPLICIT | fx) ^ ctx.fresh_mask("mx", _IMPLICIT | fx, 53)
    my_s = (_IMPLICIT | fy) ^ ctx.fresh_mask("my", _IMPLICIT | fy, 53)
    e_s = (bex + bey) ^ ctx.fresh_mask("e", bex + bey, 12)
    # -- masked compute region: named values are shares from here on -----
    sig_s = (
        (mx_s ^ ctx.mask_of("mx")) * (my_s ^ ctx.mask_of("my"))
    ) ^ ctx.fresh_mask(
        "sig", (mx_s ^ ctx.mask_of("mx")) * (my_s ^ ctx.mask_of("my")), 106
    )
    b_s = (
        ((sig_s ^ ctx.mask_of("sig")) >> 105) & 1
    ) ^ ctx.fresh_mask("b", ((sig_s ^ ctx.mask_of("sig")) >> 105) & 1, 1)
    keep0_s = (
        ((sig_s ^ ctx.mask_of("sig")) >> 53) * (b_s ^ ctx.mask_of("b"))
        + ((sig_s ^ ctx.mask_of("sig")) >> 52) * (1 - (b_s ^ ctx.mask_of("b")))
    ) ^ ctx.fresh_mask(
        "keep0",
        ((sig_s ^ ctx.mask_of("sig")) >> 53) * (b_s ^ ctx.mask_of("b"))
        + ((sig_s ^ ctx.mask_of("sig")) >> 52) * (1 - (b_s ^ ctx.mask_of("b"))),
        54,
    )
    rem_s = (
        ((sig_s ^ ctx.mask_of("sig")) & ((1 << 53) - 1)) * (b_s ^ ctx.mask_of("b"))
        + ((sig_s ^ ctx.mask_of("sig")) & ((1 << 52) - 1))
        * (1 - (b_s ^ ctx.mask_of("b")))
    ) ^ ctx.fresh_mask(
        "rem",
        ((sig_s ^ ctx.mask_of("sig")) & ((1 << 53) - 1)) * (b_s ^ ctx.mask_of("b"))
        + ((sig_s ^ ctx.mask_of("sig")) & ((1 << 52) - 1))
        * (1 - (b_s ^ ctx.mask_of("b"))),
        53,
    )
    half_s = (
        (1 << 51) * (1 + (b_s ^ ctx.mask_of("b")))
    ) ^ ctx.fresh_mask("half", (1 << 51) * (1 + (b_s ^ ctx.mask_of("b"))), 53)
    # dz = half - rem carries both rounding comparisons: its sign bit is
    # the strict rem > half test and its zeroness is the tie test (a
    # subtraction register rather than rem XOR half: XORing two shares
    # with shared mask history is exactly what SF005 rejects)
    dz_s = (
        (half_s ^ ctx.mask_of("half")) - (rem_s ^ ctx.mask_of("rem"))
    ) ^ ctx.fresh_mask(
        "dz", (half_s ^ ctx.mask_of("half")) - (rem_s ^ ctx.mask_of("rem")), 54
    )
    gt_s = (
        ((dz_s ^ ctx.mask_of("dz")) >> 63) & 1
    ) ^ ctx.fresh_mask("gt", ((dz_s ^ ctx.mask_of("dz")) >> 63) & 1, 1)
    eq_s = (
        1
        - (
            (
                (
                    (dz_s ^ ctx.mask_of("dz"))
                    | -(dz_s ^ ctx.mask_of("dz"))
                )
                >> 63
            )
            & 1
        )
    ) ^ ctx.fresh_mask(
        "eq",
        1 - ((((dz_s ^ ctx.mask_of("dz")) | -(dz_s ^ ctx.mask_of("dz"))) >> 63) & 1),
        1,
    )
    up_s = (
        (gt_s ^ ctx.mask_of("gt"))
        | (
            (eq_s ^ ctx.mask_of("eq"))
            & (keep0_s ^ ctx.mask_of("keep0"))
            & 1
        )
    ) ^ ctx.fresh_mask(
        "up",
        (gt_s ^ ctx.mask_of("gt"))
        | ((eq_s ^ ctx.mask_of("eq")) & (keep0_s ^ ctx.mask_of("keep0")) & 1),
        1,
    )
    k1_s = (
        (keep0_s ^ ctx.mask_of("keep0")) + (up_s ^ ctx.mask_of("up"))
    ) ^ ctx.fresh_mask(
        "k1", (keep0_s ^ ctx.mask_of("keep0")) + (up_s ^ ctx.mask_of("up")), 54
    )
    c_s = (
        (k1_s ^ ctx.mask_of("k1")) >> 53
    ) ^ ctx.fresh_mask("c", (k1_s ^ ctx.mask_of("k1")) >> 53, 1)
    keep_s = (
        ((k1_s ^ ctx.mask_of("k1")) >> 1) * (c_s ^ ctx.mask_of("c"))
        + (k1_s ^ ctx.mask_of("k1")) * (1 - (c_s ^ ctx.mask_of("c")))
    ) ^ ctx.fresh_mask(
        "keep",
        ((k1_s ^ ctx.mask_of("k1")) >> 1) * (c_s ^ ctx.mask_of("c"))
        + (k1_s ^ ctx.mask_of("k1")) * (1 - (c_s ^ ctx.mask_of("c"))),
        53,
    )
    # biased exponent = bex + bey + drop - BIAS - MANT_BITS with
    # drop = 52 + b + c; may be negative (underflow), handled by selects
    biased_s = (
        (e_s ^ ctx.mask_of("e"))
        + (b_s ^ ctx.mask_of("b"))
        + (c_s ^ ctx.mask_of("c"))
        - BIAS
    ) ^ ctx.fresh_mask(
        "biased",
        (e_s ^ ctx.mask_of("e"))
        + (b_s ^ ctx.mask_of("b"))
        + (c_s ^ ctx.mask_of("c"))
        - BIAS,
        13,
    )
    ovf_s = (
        ((_EXP_MASK - 1 - (biased_s ^ ctx.mask_of("biased"))) >> 63) & 1
    ) ^ ctx.fresh_mask(
        "ovf", ((_EXP_MASK - 1 - (biased_s ^ ctx.mask_of("biased"))) >> 63) & 1, 1
    )
    unf_s = (
        (((biased_s ^ ctx.mask_of("biased")) - 1) >> 63) & 1
    ) ^ ctx.fresh_mask(
        "unf", (((biased_s ^ ctx.mask_of("biased")) - 1) >> 63) & 1, 1
    )
    patn_s = (
        ((s_s ^ ctx.mask_of("s")) << 63)
        | (((biased_s ^ ctx.mask_of("biased")) & _EXP_MASK) << MANT_BITS)
        | ((keep_s ^ ctx.mask_of("keep")) & _MANT_MASK)
    ) ^ ctx.fresh_mask(
        "patn",
        ((s_s ^ ctx.mask_of("s")) << 63)
        | (((biased_s ^ ctx.mask_of("biased")) & _EXP_MASK) << MANT_BITS)
        | ((keep_s ^ ctx.mask_of("keep")) & _MANT_MASK),
        64,
    )
    pat_s = (
        (patn_s ^ ctx.mask_of("patn"))
        * (1 - (ovf_s ^ ctx.mask_of("ovf")) - (unf_s ^ ctx.mask_of("unf")))
        + (((s_s ^ ctx.mask_of("s")) << 63) | _INF) * (ovf_s ^ ctx.mask_of("ovf"))
        + ((s_s ^ ctx.mask_of("s")) << 63) * (unf_s ^ ctx.mask_of("unf"))
    ) ^ ctx.fresh_mask(
        "pat",
        (patn_s ^ ctx.mask_of("patn"))
        * (1 - (ovf_s ^ ctx.mask_of("ovf")) - (unf_s ^ ctx.mask_of("unf")))
        + (((s_s ^ ctx.mask_of("s")) << 63) | _INF) * (ovf_s ^ ctx.mask_of("ovf"))
        + ((s_s ^ ctx.mask_of("s")) << 63) * (unf_s ^ ctx.mask_of("unf")),
        64,
    )
    # the unmasked result is returned, never named: the transient
    # recombination is the audited exit from the masked domain
    return pat_s ^ ctx.mask_of("pat")
