"""Ideal first-order Boolean masking of the mantissa datapath.

A masked implementation never holds a secret-dependent value in the
clear: each intermediate v is represented as (v XOR m, m) with m fresh
and uniform per execution. We model the ideal case — the device leaks
the masked share only (leaking both shares at separate samples would
re-enable second-order attacks; that extension is deliberately left as
a hook, ``leak_masks=True``).

The sign/exponent steps can be masked the same way; the default list
covers every step the paper's attack targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fpr.trace import MUL_STEP_LABELS, MUL_STEP_WIDTHS

__all__ = ["MaskingTransform", "DEFAULT_MASKED_STEPS"]

#: Every step carrying secret mantissa/exponent/sign material.
DEFAULT_MASKED_STEPS = (
    "load_x_lo",
    "load_x_hi",
    "p_ll",
    "p_lh",
    "s_lo",
    "p_hl",
    "s_mid",
    "p_hh",
    "s_hi",
    "sticky",
    "mant_out",
    "exp_sum",
    "exp_biased",
    "exp_out",
    "sign_out",
    "result",
)


@dataclass
class MaskingTransform:
    """``value_transform`` hook implementing first-order masking."""

    masked_steps: tuple[str, ...] = DEFAULT_MASKED_STEPS
    leak_masks: bool = False   # ideal masking: the mask share is not observed

    _indices: list[tuple[int, int]] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        for label in self.masked_steps:
            if label not in MUL_STEP_LABELS:
                raise ValueError(f"unknown step label {label!r}")
            self._indices.append((MUL_STEP_LABELS.index(label), MUL_STEP_WIDTHS[label]))

    def __call__(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = values.copy()
        d = out.shape[0]
        for col, width in self._indices:
            masks = _random_masks(rng, d, width)
            out[:, col] = out[:, col] ^ masks
        return out


def _random_masks(rng: np.random.Generator, n: int, width: int) -> np.ndarray:
    masks = rng.integers(0, 1 << min(width, 63), size=n, dtype=np.int64).astype(np.uint64)
    if width >= 64:
        masks |= rng.integers(0, 2, size=n, dtype=np.int64).astype(np.uint64) << np.uint64(63)
    return masks


def capture_masked_shares(
    sk,
    target_index: int,
    step: str,
    n_traces: int = 10_000,
    device=None,
    seed: int = 2021,
    segment: int = 0,
):
    """Capture a masked device that leaks *both* shares of one step.

    A real masked implementation manipulates (v XOR m) and m in separate
    cycles; an oscilloscope sees both. Returns
    ``(share_masked, share_mask, known_y, true_secret)`` where the two
    share arrays are (D,) sample columns — the input of the
    second-order attack (:mod:`repro.attack.second_order`).
    """
    import numpy as np

    from repro.fpr.trace import MUL_STEP_LABELS, MUL_STEP_WIDTHS
    from repro.leakage.capture import CaptureCampaign
    from repro.leakage.device import DeviceModel
    from repro.leakage.synth import mul_step_values

    if step not in MUL_STEP_LABELS:
        raise ValueError(f"unknown step label {step!r}")
    dev = device if device is not None else DeviceModel()
    campaign = CaptureCampaign(sk=sk, n_traces=n_traces, device=dev, seed=seed)
    ts = campaign.capture(target_index)
    seg = ts.segments[segment]
    values = mul_step_values(ts.true_secret, seg.known_y)
    col = MUL_STEP_LABELS.index(step)
    width = MUL_STEP_WIDTHS[step]
    rng = np.random.default_rng((dev.seed, seed, target_index, col))
    masks = _random_masks(rng, len(seg.known_y), width)
    masked_vals = values[:, col] ^ masks
    share_masked = dev.emit(masked_vals.reshape(-1, 1), rng)[:, 0]
    share_mask = dev.emit(masks.reshape(-1, 1), rng)[:, 0]
    return share_masked, share_mask, seg.known_y, ts.true_secret
