"""Ideal first-order Boolean masking of the mantissa datapath.

A masked implementation never holds a secret-dependent value in the
clear: each intermediate v is represented as (v XOR m, m) with m fresh
and uniform per execution. We model the ideal case — the device leaks
the masked share only (leaking both shares at separate samples would
re-enable second-order attacks; that extension is deliberately left as
a hook, ``leak_masks=True``).

The sign/exponent steps can be masked the same way; the default list
covers every step the paper's attack targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.typing import NDArray

from repro.fpr.trace import MUL_STEP_LABELS, MUL_STEP_WIDTHS

if TYPE_CHECKING:
    from repro.falcon.keygen import SecretKey
    from repro.leakage.device import DeviceModel

__all__ = ["MaskingTransform", "DEFAULT_MASKED_STEPS"]

#: Every step carrying secret mantissa/exponent/sign material.
DEFAULT_MASKED_STEPS = (
    "load_x_lo",
    "load_x_hi",
    "p_ll",
    "p_lh",
    "s_lo",
    "p_hl",
    "s_mid",
    "p_hh",
    "s_hi",
    "sticky",
    "mant_out",
    "exp_sum",
    "exp_biased",
    "exp_out",
    "sign_out",
    "result",
)


@dataclass
class MaskingTransform:
    """``value_transform`` hook implementing first-order masking."""

    masked_steps: tuple[str, ...] = DEFAULT_MASKED_STEPS
    leak_masks: bool = False   # ideal masking: the mask share is not observed

    _indices: list[tuple[int, int]] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        for label in self.masked_steps:
            if label not in MUL_STEP_LABELS:
                raise ValueError(f"unknown step label {label!r}")
            self._indices.append((MUL_STEP_LABELS.index(label), MUL_STEP_WIDTHS[label]))

    def __call__(
        self, values: NDArray[np.uint64], rng: np.random.Generator
    ) -> NDArray[np.uint64]:
        """Mask every configured column with one batched RNG call.

        Bit-identical to drawing :func:`_random_masks` per column: numpy
        serves our power-of-two bounds rejection-free, so each bounded
        draw is a fixed bit-slice of the raw word stream (one uint64 per
        element above 32 bits, one 32-bit half — low half first, high
        half buffered — at or below). We pull the whole word budget in a
        single full-range ``integers`` call, slice the masks out, and
        restore the generator's half-word buffer through
        ``bit_generator.state`` so subsequent draws (device noise,
        jitter, a second segment's masks) see the exact stream the
        per-column loop would have left behind.
        """
        out = values.copy()
        d = int(out.shape[0])
        if d == 0 or not self._indices:
            return out
        state = rng.bit_generator.state
        had_buffer = bool(state.get("has_uint32"))
        pending: int | None = int(state["uinteger"]) if had_buffer else None
        total = _consumed_words(self._indices, d, buffered=had_buffer)
        raw = rng.integers(0, 1 << 64, size=total, dtype=np.uint64)
        pos = 0
        for col, width in self._indices:
            m = min(width, 63)
            if m > 32:
                masks = raw[pos:pos + d] >> np.uint64(64 - m)
                pos += d
            else:
                masks, pos, pending = _take_halves(raw, pos, pending, d, m)
            if width >= 64:
                top, pos, pending = _take_halves(raw, pos, pending, d, 1)
                masks = masks | (top << np.uint64(63))
            out[:, col] = out[:, col] ^ masks
        if pending is not None or had_buffer:
            state = rng.bit_generator.state
            state["has_uint32"] = int(pending is not None)
            state["uinteger"] = int(pending or 0)
            rng.bit_generator.state = state
        return out


def _consumed_words(
    indices: list[tuple[int, int]], d: int, buffered: bool
) -> int:
    """Raw uint64 words the per-column loop draws for a batch of ``d``."""
    total = 0
    for _col, width in indices:
        m = min(width, 63)
        if m > 32:
            total += d
        else:
            need = d - (1 if buffered else 0)
            total += (need + 1) // 2
            buffered = need % 2 == 1
        if width >= 64:
            need = d - (1 if buffered else 0)
            total += (need + 1) // 2
            buffered = need % 2 == 1
    return total


def _take_halves(
    raw: NDArray[np.uint64], pos: int, pending: int | None, count: int, m: int
) -> tuple[NDArray[np.uint64], int, int | None]:
    """``count`` draws of a ``2**m`` bound (m <= 32): 32-bit halves,
    low half first, odd tail buffered — numpy's own consumption order."""
    halves = np.empty(count, dtype=np.uint64)
    start = 0
    if pending is not None:
        halves[0] = pending
        pending = None
        start = 1
    need = count - start
    n_words = (need + 1) // 2
    words = raw[pos:pos + n_words]
    pos += n_words
    inter = np.empty(2 * n_words, dtype=np.uint64)
    inter[0::2] = words & np.uint64(0xFFFFFFFF)
    inter[1::2] = words >> np.uint64(32)
    halves[start:] = inter[:need]
    if need % 2 == 1:
        pending = int(inter[need])
    return halves >> np.uint64(32 - m), pos, pending


def _random_masks(
    rng: np.random.Generator, n: int, width: int
) -> NDArray[np.uint64]:
    masks = rng.integers(0, 1 << min(width, 63), size=n, dtype=np.int64).astype(np.uint64)
    if width >= 64:
        masks |= rng.integers(0, 2, size=n, dtype=np.int64).astype(np.uint64) << np.uint64(63)
    return masks


def capture_masked_shares(
    sk: "SecretKey",
    target_index: int,
    step: str,
    n_traces: int = 10_000,
    device: "DeviceModel | None" = None,
    seed: int = 2021,
    segment: int = 0,
) -> tuple[NDArray[Any], NDArray[Any], NDArray[np.uint64], int]:
    """Capture a masked device that leaks *both* shares of one step.

    A real masked implementation manipulates (v XOR m) and m in separate
    cycles; an oscilloscope sees both. Returns
    ``(share_masked, share_mask, known_y, true_secret)`` where the two
    share arrays are (D,) sample columns — the input of the
    second-order attack (:mod:`repro.attack.second_order`).
    """
    from repro.leakage.capture import CaptureCampaign
    from repro.leakage.device import DeviceModel
    from repro.leakage.synth import mul_step_values

    if step not in MUL_STEP_LABELS:
        raise ValueError(f"unknown step label {step!r}")
    dev = device if device is not None else DeviceModel()
    campaign = CaptureCampaign(sk=sk, n_traces=n_traces, device=dev, seed=seed)
    ts = campaign.capture(target_index)
    seg = ts.segments[segment]
    values = mul_step_values(ts.true_secret, seg.known_y)
    col = MUL_STEP_LABELS.index(step)
    width = MUL_STEP_WIDTHS[step]
    rng = np.random.default_rng((dev.seed, seed, target_index, col))
    masks = _random_masks(rng, len(seg.known_y), width)
    masked_vals = values[:, col] ^ masks
    share_masked = dev.emit(masked_vals.reshape(-1, 1), rng)[:, 0]
    share_mask = dev.emit(masks.reshape(-1, 1), rng)[:, 0]
    return share_masked, share_mask, seg.known_y, ts.true_secret
