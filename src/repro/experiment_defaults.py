"""Shared experiment-scale constants.

The paper runs FALCON-512 with ~10k EM measurements per coefficient on
an ARM Cortex-M4. The default laptop-scale experiments here use a
smaller ring so the full pipeline (n coefficients x 4 component attacks)
finishes in minutes on one core; the code paths are identical for 512.
"""

__all__ = ["PAPER_N", "PAPER_N_TRACES", "DEFAULT_N", "DEFAULT_N_TRACES", "BENCH_SEED"]

#: The paper's configuration.
PAPER_N = 512
PAPER_N_TRACES = 10_000

#: Laptop-scale defaults used by tests, examples and benchmarks.
DEFAULT_N = 16
DEFAULT_N_TRACES = 10_000

#: Deterministic seed shared by the benchmark harness.
BENCH_SEED = b"falcon-down-repro"
