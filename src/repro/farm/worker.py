"""The worker body: lease, attack, heartbeat, checkpoint, complete.

A farm worker is an ordinary OS process running :func:`worker_loop`
against a farm directory. It owns no special state — everything a job
needs is regenerated from the :class:`~repro.farm.spec.CampaignSpec`
(the victim key from its seed, the corpus from the capture config), and
everything a job produces lands in the job's own store/session/journal
under the farm root. Kill a worker at any instant and nothing is lost:
finished coefficients are already checkpointed by
:class:`~repro.attack.session.AttackSession`, the lease expires, the
queue re-queues the job, and the successor replays the checkpoints and
attacks only what is missing — the final report is bit-identical to an
uninterrupted run (the determinism contract the whole reproduction is
built on).

Cancellation is cooperative at coefficient granularity: the worker
checks the job's cancel marker from the attack's progress callback and
raises :class:`~repro.farm.queue.JobCancelled` between coefficients,
so a canceled job's evidence stays resumable too.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Callable, Optional

from repro.attack.key_recovery import ProgressEvent
from repro.attack.pipeline import FullAttackReport, full_attack
from repro.falcon.keygen import keygen
from repro.falcon.params import FalconParams
from repro.farm.queue import FarmError, FarmQueue, JobCancelled
from repro.farm.spec import CampaignSpec, Job
from repro.leakage.device import DeviceModel
from repro.obs import metrics
from repro.obs.journal import RunJournal

__all__ = [
    "execute_job",
    "result_payload",
    "run_campaign",
    "worker_loop",
]

#: Fraction of the lease TTL between heartbeats (3 beats per TTL keeps
#: one dropped beat from costing the lease).
_HEARTBEAT_FRACTION = 1.0 / 3.0


def run_campaign(
    spec: CampaignSpec,
    store_dir: Optional[str] = None,
    session_dir: Optional[str] = None,
    journal: Optional[RunJournal] = None,
    progress_callback: Optional[Callable[[ProgressEvent], None]] = None,
    n_workers: Optional[int] = None,
) -> FullAttackReport:
    """One campaign spec -> one :func:`~repro.attack.pipeline.full_attack`.

    This is the *entire* mapping from a farm job to the attack engine —
    the farm adds scheduling, not a second attack path — and it is the
    same function the smoke test calls directly (no queue, no session)
    to produce the reference reports that farm results must match
    bit-identically.
    """
    params = FalconParams.get(spec.n)
    sk, pk = keygen(params, seed=spec.key_seed.encode())
    device = DeviceModel(noise_sigma=spec.noise_sigma, seed=spec.device_seed)
    return full_attack(
        sk,
        pk,
        n_traces=spec.capture.n_traces,
        device=device,
        config=spec.attack,
        message=spec.message.encode(),
        mode=spec.capture.mode,
        seed=spec.capture.seed,
        backend=spec.capture.backend,
        target=spec.capture.target,
        progress_callback=progress_callback,
        n_workers=n_workers,
        store=store_dir if spec.use_store else None,
        session=session_dir,
        journal=journal,
    )


def result_payload(report: FullAttackReport) -> dict[str, Any]:
    """The durable result record: outcome + the bit-identity fingerprint.

    ``fingerprint`` is the recovered secret itself — the per-call
    sampler outputs for value surfaces, otherwise the recovered fpr
    patterns per coefficient — so two runs of the same spec can be
    compared for bit-identity from their job records alone.
    """
    result = report.key_recovery
    fingerprint = result.recovered_values or [
        c.pattern for c in result.coefficients
    ]
    telemetry = report.telemetry
    return {
        "succeeded": bool(report.succeeded),
        "key_correct": bool(report.key_correct),
        "forgery_verifies": bool(report.forgery_verifies),
        "n_correct_coefficients": int(report.n_correct_coefficients),
        "n_coefficients": int(report.n_coefficients),
        "target": report.target,
        "failure": report.failure,
        "fingerprint": [int(v) for v in fingerprint],
        "elapsed_seconds": float(report.elapsed_seconds),
        "checkpoints_written": 0 if telemetry is None else telemetry.checkpoints_written,
        "checkpoints_restored": 0 if telemetry is None else telemetry.checkpoints_restored,
    }


def execute_job(
    queue: FarmQueue,
    job: Job,
    worker_id: str,
    lease_ttl: float,
    throttle_s: float = 0.0,
    job_workers: Optional[int] = None,
) -> dict[str, Any]:
    """Run one leased job to completion; returns the result payload.

    The attack's progress callback doubles as the worker's liveness
    loop: after every finished coefficient it heartbeats the lease
    (when a third of the TTL has passed) and checks the cancel marker,
    raising :class:`JobCancelled` to stop at the next coefficient
    boundary. ``throttle_s`` inserts a sleep per progress event —
    production leaves it 0; failure-injection tests use it to hold a
    job open long enough to kill the worker mid-lease.

    A lost lease (:class:`FarmError` from the heartbeat) aborts the
    job body immediately: a successor already owns it, and finishing
    anyway would double-write the job record.
    """
    last_beat = queue.clock()
    beat_every = max(lease_ttl * _HEARTBEAT_FRACTION, 0.05)

    def _pulse(event: ProgressEvent) -> None:
        nonlocal last_beat
        if throttle_s > 0.0:
            time.sleep(throttle_s)
        if queue.cancel_requested(job.job_id):
            raise JobCancelled(job.job_id)
        now = queue.clock()
        if now - last_beat >= beat_every:
            queue.heartbeat(job.job_id, worker_id, lease_ttl)
            last_beat = now
        if event.stage == "coefficient":
            queue.journal(
                "progress",
                job=job.job_id,
                worker=worker_id,
                completed=event.completed,
                total=event.total,
            )

    with RunJournal(str(queue.job_journal_path(job.job_id))) as journal:
        report = run_campaign(
            job.spec,
            store_dir=str(queue.store_dir(job.job_id)),
            session_dir=str(queue.session_dir(job.job_id)),
            journal=journal,
            progress_callback=_pulse,
            n_workers=job_workers,
        )
    return result_payload(report)


def worker_loop(
    root: str,
    worker_id: str,
    lease_ttl: float = 30.0,
    poll_s: float = 0.2,
    drain: bool = False,
    max_jobs: Optional[int] = None,
    throttle_s: float = 0.0,
    job_workers: Optional[int] = None,
) -> int:
    """Claim-and-run loop for one worker process; returns jobs finished.

    ``drain=True`` exits when the queue has nothing claimable (the batch
    mode the smoke test and ``farm worker --drain`` use); otherwise the
    worker polls forever. ``max_jobs`` bounds how many jobs this worker
    will take (failure-injection tests use 1). Back-pressure is honored
    on claim: when the farm's ``max_concurrent`` leases are already out,
    the worker backs off instead of piling on.
    """
    queue = FarmQueue(root)
    finished = 0
    while max_jobs is None or finished < max_jobs:
        limits = queue.read_limits()
        max_concurrent = limits.get("max_concurrent")
        job = queue.claim(
            worker_id,
            lease_ttl,
            max_concurrent=None if max_concurrent is None else int(max_concurrent),
        )
        if job is None:
            if drain:
                break
            time.sleep(poll_s)
            continue
        try:
            payload = execute_job(
                queue, job, worker_id, lease_ttl,
                throttle_s=throttle_s, job_workers=job_workers,
            )
        except JobCancelled:
            queue.mark_canceled(job.job_id, worker_id)
            finished += 1
        except FarmError:
            # The lease changed hands (we stalled past the TTL and were
            # re-queued). The successor owns the job now — walk away.
            metrics.inc("farm.jobs_abandoned", 1)
        except Exception as exc:
            queue.fail(
                job.job_id,
                worker_id,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc(limit=8)}",
            )
            finished += 1
        else:
            queue.complete(job.job_id, worker_id, payload)
            finished += 1
    return finished
