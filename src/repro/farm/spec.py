"""Job specifications and durable job records.

A :class:`CampaignSpec` is everything needed to reproduce one attack
campaign from nothing: the victim key is regenerated from its seed, the
capture corpus from the :class:`~repro.leakage.capture.CaptureConfig`,
and the attack from the :class:`~repro.attack.config.AttackConfig` —
the same determinism contract the rest of the reproduction is built on
(bit-identical results for identical specs, regardless of which worker
runs them or how often they are interrupted).

A :class:`Job` wraps one spec with its queue state. Both round-trip
through JSON exactly (tuples included, via the store layer's
``meta_to_jsonable`` convention), because the queue persists them with
:mod:`repro.utils.io` atomic writes and a restarted farm must read back
precisely what was submitted.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.attack.config import AttackConfig
from repro.leakage.capture import CaptureConfig

__all__ = [
    "CampaignSpec",
    "Job",
    "JobState",
    "JOB_FORMAT",
    "JOB_VERSION",
]

JOB_FORMAT = "falcon-down-farm-job"
JOB_VERSION = 1


class JobState(str, enum.Enum):
    """Lifecycle of one campaign job.

    ``PENDING -> RUNNING -> DONE | FAILED | CANCELED``; ``FAILED`` and
    ``CANCELED`` return to ``PENDING`` via resume, and an expired lease
    moves ``RUNNING`` back to ``PENDING`` (the successor resumes from
    the session checkpoints, so no finished coefficient is re-attacked).
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELED = "canceled"


@dataclass(frozen=True)
class CampaignSpec:
    """One reproducible attack campaign: who, what, and how.

    ``key_seed`` regenerates the victim key pair (``keygen(params,
    seed=key_seed.encode())``) inside whichever worker runs the job;
    no key material is ever queued. ``capture`` and ``attack`` are the
    existing config objects verbatim — the farm adds scheduling, not a
    parallel configuration language. ``use_store`` materializes the
    campaign into a per-job :class:`~repro.leakage.store.CampaignStore`
    under the farm root (capture once, resume from disk); the store is
    what the quota/eviction policy manages. ``noise_sigma`` configures
    the simulated acquisition device.
    """

    key_seed: str
    n: int = 8
    capture: CaptureConfig = field(default_factory=CaptureConfig)
    attack: AttackConfig = field(default_factory=AttackConfig)
    noise_sigma: float = 10.0
    device_seed: int = 2021
    use_store: bool = True
    message: str = "farm forgery probe"

    @property
    def target(self) -> str:
        """The leakage surface this campaign attacks."""
        return self.capture.target

    @property
    def distinguisher(self) -> str:
        """The statistical engine every recovery step scores with."""
        return self.attack.distinguisher

    def to_jsonable(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        # JSON has no tuples; AttackConfig.exponent_guesses restores on load.
        out["attack"]["exponent_guesses"] = list(self.attack.exponent_guesses)
        return out

    @classmethod
    def from_jsonable(cls, obj: dict[str, Any]) -> "CampaignSpec":
        data = dict(obj)
        cap = dict(data.pop("capture", {}))
        atk = dict(data.pop("attack", {}))
        if "exponent_guesses" in atk:
            atk["exponent_guesses"] = tuple(atk["exponent_guesses"])
        return cls(capture=CaptureConfig(**cap), attack=AttackConfig(**atk), **data)

    def digest(self) -> str:
        """Content fingerprint (stable across processes and restarts)."""
        blob = json.dumps(self.to_jsonable(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:10]


@dataclass
class Job:
    """One spec plus its queue state — the unit the farm schedules."""

    job_id: str
    spec: CampaignSpec
    state: JobState = JobState.PENDING
    #: How many times a worker has started (or restarted) this job.
    attempts: int = 0
    #: Wall-clock submit time (operator display only, never a result).
    submitted_at: float = 0.0
    #: Final result payload written by the completing worker (the
    #: per-target fingerprint, success flags, telemetry counters).
    result: dict[str, Any] | None = None
    #: Why the job failed, if it did.
    error: str | None = None
    #: Monotonic completion sequence (assigned at DONE; drives the
    #: oldest-completed store eviction order).
    done_seq: int | None = None
    #: Whether the job's campaign store was evicted by the quota sweep.
    store_evicted: bool = False

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "format": JOB_FORMAT,
            "version": JOB_VERSION,
            "job_id": self.job_id,
            "spec": self.spec.to_jsonable(),
            "state": self.state.value,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "result": self.result,
            "error": self.error,
            "done_seq": self.done_seq,
            "store_evicted": self.store_evicted,
        }

    @classmethod
    def from_jsonable(cls, obj: dict[str, Any]) -> "Job":
        if obj.get("format") != JOB_FORMAT:
            raise ValueError(f"not a {JOB_FORMAT} record")
        return cls(
            job_id=str(obj["job_id"]),
            spec=CampaignSpec.from_jsonable(obj["spec"]),
            state=JobState(obj["state"]),
            attempts=int(obj.get("attempts", 0)),
            submitted_at=float(obj.get("submitted_at", 0.0)),
            result=obj.get("result"),
            error=obj.get("error"),
            done_seq=obj.get("done_seq"),
            store_evicted=bool(obj.get("store_evicted", False)),
        )

    def encode(self) -> str:
        return json.dumps(self.to_jsonable(), indent=1, sort_keys=True)

    @classmethod
    def decode(cls, text: str) -> "Job":
        return cls.from_jsonable(json.loads(text))
