"""The control plane: status rendering, journal tailing, HTTP endpoint.

Three consumers see the same state three ways:

* :func:`format_status` renders :meth:`FarmQueue.status` for a
  terminal (``farm status``);
* :func:`tail_events` / :func:`watch_events` stream a JSONL journal to
  any number of independent subscribers — each keeps its own byte
  offset, so ``farm watch`` in five terminals and an HTTP poller all
  follow the same file without coordination, and a torn final line
  (a writer mid-append) is simply not consumed until it completes;
* :class:`FarmHTTPServer` is the minimal stdlib HTTP face: GET
  ``/health``, ``/status``, ``/jobs``, ``/jobs/<id>``,
  ``/journal?offset=N``; POST ``/submit``, ``/jobs/<id>/cancel``,
  ``/jobs/<id>/resume``. JSON in, JSON out, no dependencies — enough
  to script a farm from anything that can speak HTTP.

Nothing here holds farm state: every request re-opens the queue
directory, so the control plane can run in a different process (or
machine, over a shared filesystem) from the service and the workers.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterator, Optional, cast
from urllib.parse import parse_qs, urlparse

from repro.farm.queue import FarmError, FarmQueue
from repro.farm.spec import CampaignSpec
from repro.obs import metrics

__all__ = [
    "FarmHTTPServer",
    "format_status",
    "serve_http",
    "tail_events",
    "watch_events",
]


def format_status(status: dict[str, Any]) -> str:
    """Human rendering of one :meth:`FarmQueue.status` snapshot."""
    counts = status["counts"]
    lines = [
        f"farm {status['root']}",
        "  queue: "
        + "  ".join(f"{state}={counts[state]}" for state in sorted(counts)),
        f"  store: {status['store_bytes']} bytes",
    ]
    limits = status.get("limits") or {}
    if limits:
        lines.append(
            "  limits: "
            + "  ".join(f"{k}={limits[k]}" for k in sorted(limits))
        )
    for job_id, lease in sorted(status.get("leases", {}).items()):
        lines.append(
            f"  lease {job_id}: worker={lease['worker']} "
            f"expires_in={lease['expires_in_s']:.1f}s"
        )
    for bad in status.get("quarantined", []):
        lines.append(f"  quarantined (unreadable record): {bad}")
    for job in status.get("jobs", []):
        extra = ""
        if job["succeeded"] is not None:
            extra = f"  succeeded={job['succeeded']}"
        if job["error"]:
            extra += f"  error={job['error'].splitlines()[0]}"
        if job["store_evicted"]:
            extra += "  store=evicted"
        lines.append(
            f"  {job['job_id']}  {job['state']:<8s} target={job['target']:<8s} "
            f"n={job['n']} attempts={job['attempts']}{extra}"
        )
    return "\n".join(lines)


def tail_events(path: str, offset: int = 0) -> tuple[list[dict[str, Any]], int]:
    """Events appended since ``offset``; returns (events, new offset).

    Only *complete* lines are consumed — the offset never advances past
    a line without a trailing newline, so a writer caught mid-append is
    re-read whole on the next call instead of being split or dropped.
    Each subscriber owns its offset; the file is shared and read-only.
    """
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return [], offset
    with fh:
        fh.seek(offset)
        blob = fh.read()
    events: list[dict[str, Any]] = []
    consumed = 0
    for raw in blob.split(b"\n"):
        end = consumed + len(raw) + 1
        if end > len(blob):  # no trailing newline: torn/in-flight line
            break
        consumed = end
        if raw.strip():
            try:
                events.append(json.loads(raw))
            except json.JSONDecodeError:
                continue  # torn by a crash; complete lines still count
    return events, offset + consumed


def watch_events(
    path: str,
    poll_s: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
    from_start: bool = True,
) -> Iterator[dict[str, Any]]:
    """Generator form of :func:`tail_events`: yield events as they land.

    ``stop`` is polled between reads so callers (CLI watch, tests) can
    end the stream; without it the generator follows forever.
    """
    offset = 0
    if not from_start:
        _, offset = tail_events(path, 0)
    while True:
        events, offset = tail_events(path, offset)
        yield from events
        if stop is not None and stop():
            return
        if not events:
            time.sleep(poll_s)


class _Handler(BaseHTTPRequestHandler):
    """One request = one queue open; the farm root comes from the server."""

    def _farm_server(self) -> "FarmHTTPServer":
        return cast("FarmHTTPServer", self.server)

    def _send(self, code: int, payload: dict[str, Any] | list[Any]) -> None:
        blob = json.dumps(payload, indent=1, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _queue(self) -> FarmQueue:
        return FarmQueue(self._farm_server().farm_root)

    def log_message(self, format: str, *args: Any) -> None:
        pass  # HTTP chatter stays out of the operator's terminal

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        queue = self._queue()
        try:
            if parts == ["status"]:
                self._send(200, queue.status())
            elif parts == ["health"]:
                health = self._farm_server().health_fn
                if health is not None:
                    self._send(200, health())
                else:
                    self._send(
                        200,
                        {
                            "queue": queue.status(),
                            "metrics": metrics.current_registry()
                            .snapshot()
                            .to_jsonable(),
                        },
                    )
            elif parts == ["jobs"]:
                self._send(200, [job.to_jsonable() for job in queue.jobs()])
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send(200, queue.get(parts[1]).to_jsonable())
            elif parts == ["journal"]:
                query = parse_qs(url.query)
                offset = int(query.get("offset", ["0"])[0])
                events, new_offset = tail_events(str(queue.journal_path), offset)
                self._send(200, {"events": events, "offset": new_offset})
            else:
                self._send(404, {"error": f"unknown path {url.path!r}"})
        except FarmError as exc:
            self._send(404, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        queue = self._queue()
        try:
            if parts == ["submit"]:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length) or b"{}")
                spec = CampaignSpec.from_jsonable(body)
                job = queue.submit(spec)
                self._send(200, job.to_jsonable())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._send(200, queue.cancel(parts[1]).to_jsonable())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "resume":
                self._send(200, queue.resume(parts[1]).to_jsonable())
            else:
                self._send(404, {"error": f"unknown path {url.path!r}"})
        except FarmError as exc:
            self._send(409, {"error": str(exc)})
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"bad request: {exc}"})


class FarmHTTPServer(ThreadingHTTPServer):
    """The farm's HTTP face; state lives on disk, not in the server."""

    daemon_threads = True

    def __init__(
        self,
        farm_root: str,
        address: tuple[str, int] = ("127.0.0.1", 0),
        health_fn: Optional[Callable[[], dict[str, Any]]] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.farm_root = farm_root
        #: Optional richer health source (a live FarmService's .health).
        self.health_fn = health_fn


def serve_http(
    farm_root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    health_fn: Optional[Callable[[], dict[str, Any]]] = None,
) -> FarmHTTPServer:
    """Start the HTTP endpoint on a daemon thread; returns the server.

    ``port=0`` binds an ephemeral port (tests); the chosen address is
    ``server.server_address``. Call ``server.shutdown()`` to stop.
    """
    server = FarmHTTPServer(farm_root, (host, port), health_fn=health_fn)
    thread = threading.Thread(
        target=server.serve_forever, name="farm-http", daemon=True
    )
    thread.start()
    return server
