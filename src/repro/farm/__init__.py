"""Campaign orchestration: the attack farm (``repro.farm``).

Everything a multi-tenant "attack farm" needs existed in pieces after
PRs 1-7 — sharded :class:`~repro.leakage.store.CampaignStore`\\ s,
resumable :class:`~repro.attack.session.AttackSession` checkpoints,
streamable :class:`~repro.obs.journal.RunJournal` events, and a
surface-parameterized :func:`~repro.attack.key_recovery.recover_full_key`.
The paper's attack is embarrassingly parallel across coefficients *and*
keys, so the missing layer was scheduling, not math. This package is
that layer:

:mod:`repro.farm.spec`
    :class:`CampaignSpec` — one durable job description: (key seed,
    :class:`~repro.leakage.capture.CaptureConfig`,
    :class:`~repro.attack.config.AttackConfig`, leakage surface,
    distinguisher, store policy) — plus the :class:`Job` record and its
    JSON round-trip.
:mod:`repro.farm.queue`
    :class:`FarmQueue` — a crash-durable, directory-backed job queue.
    Every mutation goes through :mod:`repro.utils.io` atomic writes, so
    the queue survives restarts; leases are claimed atomically
    (``os.link``), heartbeaten, and re-queued on expiry, so a killed
    worker's job is picked up by a successor.
:mod:`repro.farm.worker`
    The worker body: lease a job, run capture/attack through the
    existing :class:`~repro.attack.session.AttackSession` checkpoints
    (a crashed worker's successor resumes bit-identically), heartbeat
    while working, honor cancellation between coefficients.
:mod:`repro.farm.service`
    The asyncio orchestrator: spawn a worker-process pool, sweep
    expired leases, enforce the store quota (oldest-completed
    eviction), degrade gracefully to serial per-job attacks when
    memory is tight, and expose :mod:`repro.obs` metrics as the
    service health snapshot.
:mod:`repro.farm.control`
    The control plane: status/health reports, journal tailing for any
    number of ``farm watch`` subscribers, and the minimal stdlib HTTP
    endpoint.

The CLI front door is ``repro-falcon farm submit/status/cancel/resume/
watch/serve`` (see :mod:`repro.cli`); ``docs/orchestration.md`` walks
the architecture and the job lifecycle.
"""

from __future__ import annotations

from repro.farm.queue import FarmError, FarmQueue, JobCancelled
from repro.farm.service import FarmLimits, FarmService
from repro.farm.spec import CampaignSpec, Job, JobState

__all__ = [
    "CampaignSpec",
    "Job",
    "JobState",
    "FarmError",
    "FarmQueue",
    "JobCancelled",
    "FarmLimits",
    "FarmService",
]
