"""The durable job queue: atomic files, leases, heartbeats, re-queue.

The queue is a directory, not a process — workers, the orchestrator,
and the control plane are separate OS processes that all operate on the
same layout and rendezvous purely through atomic filesystem operations::

    <root>/
      farm.json              # limits (concurrency, quota, lease TTL)
      jobs/<id>.json         # one Job record per campaign (atomic writes)
      leases/<id>.json       # exists while a worker owns the job
      cancel/<id>            # cancellation request marker
      stores/<id>/           # the job's materialized CampaignStore
      sessions/<id>/         # the job's AttackSession checkpoints
      journal.jsonl          # farm event stream (O_APPEND, multi-writer)

Durability and mutual exclusion come from three primitives only:

* **atomic record writes** — every ``jobs/<id>.json`` mutation goes
  through :func:`repro.utils.io.atomic_write_text` (tmp + fsync +
  rename + parent-dir fsync), so a restarted farm reads back exactly
  the last complete state and a torn write is impossible by
  construction. A file torn by other means (a dying filesystem, manual
  meddling) is *quarantined*, never trusted: the queue keeps serving
  every readable job.
* **exclusive lease creation** — a worker claims a job by hard-linking
  a fully-written temp file to ``leases/<id>.json`` (``os.link`` fails
  atomically if the name exists), so two workers can never both win,
  and the winner's lease is complete the instant it is visible.
* **append-only journal** — events are single ``os.write`` calls on an
  ``O_APPEND`` descriptor, safe for any number of concurrent writers;
  readers tolerate a torn final line exactly like
  :func:`repro.obs.journal.read_journal`.

Leases carry a deadline. A worker heartbeats (rewrites its lease) while
attacking; if the worker dies — SIGKILL, OOM, power — the deadline
passes and any sweep (:meth:`FarmQueue.requeue_expired`) returns the
job to ``pending``. The successor worker resumes from the job's
:class:`~repro.attack.session.AttackSession` checkpoints, so the crash
costs at most one coefficient of re-work and the final result is
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from repro.farm.spec import CampaignSpec, Job, JobState
from repro.obs import metrics
from repro.utils.io import atomic_write_text, fsync_dir

__all__ = [
    "FarmError",
    "FarmQueue",
    "JobCancelled",
    "wall_clock",
]

_FARM_CONFIG = "farm.json"
_JOURNAL = "journal.jsonl"


class FarmError(RuntimeError):
    """The queue refused an operation (bad state, unknown job, quota)."""


class JobCancelled(Exception):
    """Raised inside a worker when its job's cancel marker appears."""


def wall_clock() -> float:  # sast: declassify(rules=DT002, reason=lease deadlines and journal timestamps must be comparable across independent worker processes; they are operator metadata and never feed an attack result)
    """The farm's clock: injectable for tests, wall time in production.

    Lease deadlines must be meaningful *across* processes (the worker
    that writes a deadline is never the process that checks it), so a
    per-process monotonic clock cannot work here.
    """
    return time.time()


Clock = Callable[[], float]


class FarmQueue:
    """Operations on one farm directory (safe from any process)."""

    def __init__(
        self, root: str | os.PathLike[str], clock: Clock | None = None
    ) -> None:
        self.root = Path(root)
        self.clock: Clock = clock if clock is not None else wall_clock
        for sub in ("jobs", "leases", "cancel", "stores", "sessions", "journals"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def job_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    def lease_path(self, job_id: str) -> Path:
        return self.root / "leases" / f"{job_id}.json"

    def cancel_path(self, job_id: str) -> Path:
        return self.root / "cancel" / job_id

    def store_dir(self, job_id: str) -> Path:
        return self.root / "stores" / job_id

    def session_dir(self, job_id: str) -> Path:
        return self.root / "sessions" / job_id

    def job_journal_path(self, job_id: str) -> Path:
        """The per-job RunJournal sink (`farm watch <job>` streams this)."""
        return self.root / "journals" / f"{job_id}.jsonl"

    @property
    def journal_path(self) -> Path:
        return self.root / _JOURNAL

    # -- farm limits -------------------------------------------------------

    def write_limits(self, limits: dict[str, Any]) -> None:
        atomic_write_text(
            self.root / _FARM_CONFIG, json.dumps(limits, indent=1, sort_keys=True)
        )

    def read_limits(self) -> dict[str, Any]:
        path = self.root / _FARM_CONFIG
        try:
            loaded = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return dict(loaded) if isinstance(loaded, dict) else {}

    # -- journal -----------------------------------------------------------

    def journal(self, event: str, **payload: Any) -> None:
        """Append one event; a single O_APPEND write, multi-process safe."""
        record: dict[str, Any] = {"ts": round(self.clock(), 6), "event": event}
        record.update(payload)
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        fd = os.open(self.journal_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    # -- job records -------------------------------------------------------

    def _write_job(self, job: Job) -> None:
        atomic_write_text(self.job_path(job.job_id), job.encode())

    def save(self, job: Job) -> None:
        """Persist an updated job record (atomic, crash-durable)."""
        self._write_job(job)

    def _read_job(self, path: Path) -> Job | None:
        """One job record, or None when the file is torn/foreign."""
        try:
            return Job.decode(path.read_text())
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None

    def get(self, job_id: str) -> Job:
        job = self._read_job(self.job_path(job_id))
        if job is None:
            raise FarmError(f"no readable job {job_id!r} in {self.root}")
        return job

    def jobs(self) -> list[Job]:
        """Every readable job, in submission order; torn files skipped."""
        out: list[Job] = []
        for path in sorted((self.root / "jobs").glob("*.json")):
            job = self._read_job(path)
            if job is not None:
                out.append(job)
        return out

    def quarantined(self) -> list[str]:
        """Job files present on disk but unreadable (torn/foreign)."""
        bad: list[str] = []
        for path in sorted((self.root / "jobs").glob("*.json")):
            if self._read_job(path) is None:
                bad.append(path.stem)
        return bad

    # -- submission --------------------------------------------------------

    def _next_seq(self) -> int:
        seqs = [0]
        for path in (self.root / "jobs").glob("*.json"):
            head = path.stem.split("-", 1)[0]
            if head.isdigit():
                seqs.append(int(head))
        return max(seqs) + 1

    def submit(self, spec: CampaignSpec, job_id: str | None = None) -> Job:
        """Enqueue one campaign; returns the durable Job record.

        Ids sort in submission order (``<seq>-<spec digest>``) so FIFO
        scheduling falls out of a directory listing. Submitting an id
        that already exists is refused — resubmission of the same
        campaign is :meth:`resume`, not a duplicate job.
        """
        if job_id is None:
            job_id = f"{self._next_seq():06d}-{spec.digest()}"
        if self.job_path(job_id).exists():
            raise FarmError(f"job {job_id!r} already exists; use resume to re-run it")
        job = Job(job_id=job_id, spec=spec, submitted_at=self.clock())
        self._write_job(job)
        metrics.inc("farm.jobs_submitted", 1)
        self.journal("submitted", job=job_id, target=spec.target, n=spec.n)
        return job

    # -- leasing -----------------------------------------------------------

    def _read_lease(self, job_id: str) -> dict[str, Any] | None:
        try:
            loaded = json.loads(self.lease_path(job_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return loaded if isinstance(loaded, dict) else None

    def _write_lease_exclusive(self, job_id: str, lease: dict[str, Any]) -> bool:
        """Atomically create the lease file with full content: the claim.

        The content is written to a temp name first and hard-linked into
        place — ``os.link`` fails if the lease exists, so exactly one
        claimant wins and the winner's lease is never observable torn.
        """
        lease_path = self.lease_path(job_id)
        fd, tmp = tempfile.mkstemp(dir=lease_path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(lease, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            try:
                os.link(tmp, lease_path)
            except FileExistsError:
                return False
            fsync_dir(lease_path.parent)
            return True
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def active_leases(self) -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        for path in sorted((self.root / "leases").glob("*.json")):
            lease = self._read_lease(path.stem)
            if lease is not None:
                out[path.stem] = lease
        return out

    def claim(
        self, worker_id: str, lease_ttl: float, max_concurrent: int | None = None
    ) -> Job | None:
        """Lease the oldest pending job, or None when nothing is claimable.

        ``max_concurrent`` is the farm's back-pressure valve: when that
        many leases are already active, the worker backs off instead of
        piling more concurrent captures onto the machine. The check is
        advisory (two workers can race past it by one job) — the hard
        invariant, single ownership per job, is the atomic lease link.
        """
        if max_concurrent is not None and len(self.active_leases()) >= max_concurrent:
            return None
        now = self.clock()
        for job in self.jobs():
            if job.state is not JobState.PENDING:
                continue
            if self.cancel_requested(job.job_id):
                continue
            lease = {
                "job": job.job_id,
                "worker": worker_id,
                "taken_at": now,
                "deadline": now + lease_ttl,
            }
            if not self._write_lease_exclusive(job.job_id, lease):
                continue  # lost the race for this job; try the next one
            job.state = JobState.RUNNING
            job.attempts += 1
            job.error = None
            self._write_job(job)
            metrics.inc("farm.jobs_leased", 1)
            self.journal(
                "leased", job=job.job_id, worker=worker_id, attempt=job.attempts
            )
            return job
        return None

    def heartbeat(self, job_id: str, worker_id: str, lease_ttl: float) -> None:
        """Extend the caller's lease; refuses if the lease changed hands."""
        lease = self._read_lease(job_id)
        if lease is None or lease.get("worker") != worker_id:
            raise FarmError(
                f"lease on {job_id!r} is no longer held by {worker_id!r} "
                "(expired and re-queued?); abandon the job"
            )
        now = self.clock()
        lease["deadline"] = now + lease_ttl
        lease["heartbeat_at"] = now
        # The owner may rewrite its own lease; os.replace keeps readers
        # from ever seeing a partial file.
        atomic_write_text(self.lease_path(job_id), json.dumps(lease, sort_keys=True))
        metrics.inc("farm.heartbeats", 1)

    def _release_lease(self, job_id: str) -> None:
        try:
            os.unlink(self.lease_path(job_id))
        except FileNotFoundError:
            pass

    def requeue_expired(self) -> list[str]:
        """Return every job with a dead owner to the pending state.

        Three shapes of death are swept: a lease past its deadline (the
        worker stopped heartbeating), a torn lease file (the filesystem
        died mid-claim — unreadable means unowned), and a ``running``
        job with no lease at all (a previous sweep crashed between
        unlink and rewrite). The job's checkpoints are untouched, so
        the successor resumes instead of restarting.
        """
        now = self.clock()
        requeued: list[str] = []
        for path in sorted((self.root / "leases").glob("*.json")):
            job_id = path.stem
            lease = self._read_lease(job_id)
            if lease is not None and float(lease.get("deadline", 0.0)) > now:
                continue
            self._release_lease(job_id)
            job = self._read_job(self.job_path(job_id))
            if job is not None and job.state is JobState.RUNNING:
                job.state = JobState.PENDING
                self._write_job(job)
                requeued.append(job_id)
                metrics.inc("farm.leases_expired", 1)
                self.journal(
                    "lease_expired",
                    job=job_id,
                    worker=None if lease is None else lease.get("worker"),
                )
        for job in self.jobs():
            if job.state is JobState.RUNNING and self._read_lease(job.job_id) is None:
                job.state = JobState.PENDING
                self._write_job(job)
                requeued.append(job.job_id)
                metrics.inc("farm.leases_expired", 1)
                self.journal("orphan_requeued", job=job.job_id)
        return requeued

    # -- completion / failure / cancellation -------------------------------

    def _next_done_seq(self) -> int:
        seqs = [0]
        for job in self.jobs():
            if job.done_seq is not None:
                seqs.append(int(job.done_seq))
        return max(seqs) + 1

    def complete(self, job_id: str, worker_id: str, result: dict[str, Any]) -> Job:
        job = self.get(job_id)
        job.state = JobState.DONE
        job.result = result
        job.error = None
        job.done_seq = self._next_done_seq()
        self._write_job(job)
        self._release_lease(job_id)
        metrics.inc("farm.jobs_completed", 1)
        self.journal(
            "done", job=job_id, worker=worker_id,
            succeeded=bool(result.get("succeeded")),
        )
        return job

    def fail(self, job_id: str, worker_id: str, error: str) -> Job:
        job = self.get(job_id)
        job.state = JobState.FAILED
        job.error = error
        self._write_job(job)
        self._release_lease(job_id)
        metrics.inc("farm.jobs_failed", 1)
        self.journal("failed", job=job_id, worker=worker_id, error=error)
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation: pending jobs stop immediately, running
        jobs stop at the next coefficient boundary (the worker checks
        the marker from its progress callback)."""
        job = self.get(job_id)
        marker = self.cancel_path(job_id)
        fd = os.open(marker, os.O_WRONLY | os.O_CREAT, 0o644)
        os.close(fd)
        fsync_dir(marker.parent)
        if job.state is JobState.PENDING:
            job.state = JobState.CANCELED
            self._write_job(job)
        metrics.inc("farm.jobs_cancel_requested", 1)
        self.journal("cancel_requested", job=job_id)
        return job

    def cancel_requested(self, job_id: str) -> bool:
        return self.cancel_path(job_id).exists()

    def mark_canceled(self, job_id: str, worker_id: str) -> Job:
        """A worker acknowledging the cancel marker mid-job."""
        job = self.get(job_id)
        job.state = JobState.CANCELED
        self._write_job(job)
        self._release_lease(job_id)
        metrics.inc("farm.jobs_canceled", 1)
        self.journal("canceled", job=job_id, worker=worker_id)
        return job

    def resume(self, job_id: str) -> Job:
        """Return a canceled/failed job to the queue.

        The session checkpoints and any materialized store survive
        cancellation, so the resumed job re-attacks only the missing
        coefficients and its final result is bit-identical to a job
        that was never interrupted.
        """
        job = self.get(job_id)
        if job.state not in (JobState.CANCELED, JobState.FAILED):
            raise FarmError(
                f"job {job_id!r} is {job.state.value}; only canceled/failed "
                "jobs can be resumed"
            )
        try:
            os.unlink(self.cancel_path(job_id))
        except FileNotFoundError:
            pass
        job.state = JobState.PENDING
        job.error = None
        self._write_job(job)
        metrics.inc("farm.jobs_resumed", 1)
        self.journal("resumed", job=job_id)
        return job

    # -- accounting --------------------------------------------------------

    def store_bytes(self) -> int:
        """Total bytes of all per-job campaign stores under the farm."""
        total = 0
        for base, _dirs, files in os.walk(self.root / "stores"):
            for name in files:
                try:
                    total += os.path.getsize(os.path.join(base, name))
                except OSError:
                    continue
        return total

    def status(self) -> dict[str, Any]:
        """Queue/lease/quota state in one JSON-able snapshot."""
        jobs = self.jobs()
        counts: dict[str, int] = {s.value: 0 for s in JobState}
        for job in jobs:
            counts[job.state.value] += 1
        leases = self.active_leases()
        now = self.clock()
        limits = self.read_limits()
        return {
            "root": str(self.root),
            "counts": counts,
            "quarantined": self.quarantined(),
            "leases": {
                job_id: {
                    "worker": lease.get("worker"),
                    "expires_in_s": round(float(lease.get("deadline", now)) - now, 3),
                }
                for job_id, lease in leases.items()
            },
            "store_bytes": self.store_bytes(),
            "limits": limits,
            "jobs": [
                {
                    "job_id": job.job_id,
                    "state": job.state.value,
                    "target": job.spec.target,
                    "n": job.spec.n,
                    "attempts": job.attempts,
                    "succeeded": None
                    if job.result is None
                    else bool(job.result.get("succeeded")),
                    "error": job.error,
                    "store_evicted": job.store_evicted,
                }
                for job in jobs
            ],
        }
