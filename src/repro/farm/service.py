"""The farm orchestrator: worker pool, lease sweeper, quota, health.

:class:`FarmService` is the always-on piece: an asyncio event loop
supervising a pool of worker *processes* (the attack is CPU-bound
Python — threads would serialize on the GIL, and the per-job engine
already fans out with ``ProcessPoolExecutor``, so workers must be real
processes with the service as their non-daemonic parent). The event
loop itself only schedules: it sweeps expired leases back into the
queue, enforces the store quota, restarts dead workers, and answers
health queries — all cheap, all I/O-shaped, which is exactly what
asyncio is for.

Back-pressure and degradation are deliberately boring:

* **max concurrent jobs** — workers check the active-lease count at
  claim time (:meth:`FarmQueue.claim`), so the limit holds even for
  workers the service did not spawn.
* **store quota** — when the per-job campaign stores exceed
  ``max_store_bytes``, the sweeper evicts oldest-*completed* stores
  first (``done_seq`` order): a completed job's evidence lives on in
  its result payload and session checkpoints, so its store is pure
  cache; running/pending jobs' stores are never touched.
* **memory degradation** — when ``MemAvailable`` is below the
  configured floor, newly spawned workers run their per-job attack
  serially (``job_workers=1``) instead of fanning out, trading wall
  clock for not getting OOM-killed mid-campaign.

Health is the :mod:`repro.obs` metrics snapshot plus the queue status —
one JSON document, served identically by ``farm status`` and the HTTP
endpoint (:mod:`repro.farm.control`).
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import shutil
from dataclasses import dataclass
from typing import Any, Optional

from repro.farm.queue import FarmQueue
from repro.farm.spec import JobState
from repro.farm.worker import worker_loop
from repro.obs import metrics

__all__ = ["FarmLimits", "FarmService", "available_memory_bytes"]


@dataclass(frozen=True)
class FarmLimits:
    """The farm's resource policy, persisted to ``farm.json``.

    Persisting the limits beside the queue means every worker — even
    one started by hand on another terminal — honors the same
    back-pressure, and a restarted service resumes the same policy.
    """

    #: Leases allowed out at once (claim-time back-pressure valve).
    max_concurrent: int = 4
    #: Total bytes of per-job campaign stores before oldest-completed
    #: eviction kicks in. ``None`` disables the quota.
    max_store_bytes: Optional[int] = None
    #: Seconds a worker may go silent before its lease is re-queued.
    lease_ttl: float = 30.0
    #: ``MemAvailable`` floor below which new workers attack serially.
    min_free_bytes: int = 256 * 1024 * 1024

    def to_jsonable(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, obj: dict[str, Any]) -> "FarmLimits":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in obj.items() if k in fields})


def available_memory_bytes() -> Optional[int]:
    """``MemAvailable`` from /proc/meminfo, or None off-Linux."""
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


class FarmService:
    """Supervise workers and invariants for one farm directory."""

    def __init__(
        self,
        root: str,
        limits: Optional[FarmLimits] = None,
        n_workers: int = 2,
        job_workers: Optional[int] = None,
        throttle_s: float = 0.0,
        sweep_every: float = 1.0,
    ) -> None:
        self.queue = FarmQueue(root)
        self.limits = limits if limits is not None else FarmLimits()
        self.n_workers = n_workers
        self.job_workers = job_workers
        self.throttle_s = throttle_s
        self.sweep_every = sweep_every
        self.degraded = False
        self._procs: list[multiprocessing.Process] = []
        self._worker_seq = 0
        self.queue.write_limits(self.limits.to_jsonable())

    # -- worker pool -------------------------------------------------------

    def _effective_job_workers(self) -> Optional[int]:
        """Per-job fan-out, degraded to serial when memory is tight."""
        avail = available_memory_bytes()
        if avail is not None and avail < self.limits.min_free_bytes:
            if not self.degraded:
                self.degraded = True
                metrics.inc("farm.degraded_to_serial", 1)
                self.queue.journal("degraded", reason="low_memory", available=avail)
            return 1
        self.degraded = False
        return self.job_workers

    def spawn_worker(self, drain: bool = False) -> multiprocessing.Process:
        """Start one worker process against this farm's queue."""
        self._worker_seq += 1
        worker_id = f"worker-{self._worker_seq:03d}"
        proc = multiprocessing.Process(
            target=worker_loop,
            args=(str(self.queue.root), worker_id),
            kwargs={
                "lease_ttl": self.limits.lease_ttl,
                "drain": drain,
                "throttle_s": self.throttle_s,
                "job_workers": self._effective_job_workers(),
            },
            name=worker_id,
        )
        proc.start()
        self._procs.append(proc)
        metrics.inc("farm.workers_spawned", 1)
        self.queue.journal("worker_spawned", worker=worker_id, pid=proc.pid)
        return proc

    def alive_workers(self) -> list[multiprocessing.Process]:
        return [p for p in self._procs if p.is_alive()]

    def stop(self) -> None:
        """Terminate the pool; leases expire and jobs re-queue for later."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=10.0)
        self._procs.clear()

    # -- invariants --------------------------------------------------------

    def sweep(self) -> dict[str, Any]:
        """One maintenance pass: expired leases + store quota."""
        requeued = self.queue.requeue_expired()
        evicted = self.enforce_store_quota()
        return {"requeued": requeued, "evicted": evicted}

    def enforce_store_quota(self) -> list[str]:
        """Evict oldest-completed campaign stores until under quota.

        Only ``done`` jobs' stores are candidates (a completed job's
        store is re-materializable cache; its result and checkpoints
        survive eviction), ordered by completion sequence so the
        longest-finished evidence goes first.
        """
        quota = self.limits.max_store_bytes
        if quota is None:
            return []
        evicted: list[str] = []
        used = self.queue.store_bytes()
        if used <= quota:
            return evicted
        candidates = sorted(
            (
                job
                for job in self.queue.jobs()
                if job.state is JobState.DONE
                and not job.store_evicted
                and job.done_seq is not None
            ),
            key=lambda job: (job.done_seq or 0, job.job_id),
        )
        for job in candidates:
            if used <= quota:
                break
            store = self.queue.store_dir(job.job_id)
            freed = 0
            if store.exists():
                for base_files in store.rglob("*"):
                    if base_files.is_file():
                        try:
                            freed += base_files.stat().st_size
                        except OSError:
                            continue
                shutil.rmtree(store, ignore_errors=True)
            job.store_evicted = True
            self.queue.save(job)
            used -= freed
            evicted.append(job.job_id)
            metrics.inc("farm.stores_evicted", 1)
            metrics.inc("farm.store_bytes_evicted", freed)
            self.queue.journal("store_evicted", job=job.job_id, freed=freed)
        return evicted

    # -- health ------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """The service health snapshot: metrics + queue + pool state."""
        snap = metrics.current_registry().snapshot()
        return {
            "queue": self.queue.status(),
            "limits": self.limits.to_jsonable(),
            "workers_alive": len(self.alive_workers()),
            "degraded_to_serial": self.degraded,
            "available_memory_bytes": available_memory_bytes(),
            "metrics": snap.to_jsonable(),
        }

    # -- orchestration loops -----------------------------------------------

    async def run_until_drained(self, respawn: bool = True) -> dict[str, Any]:
        """Drive the farm until no pending/running work remains.

        Spawns the worker pool in drain mode and supervises: sweep
        expired leases and the quota every ``sweep_every`` seconds, and
        (``respawn``) replace dead workers while claimable work exists —
        this is what turns a SIGKILLed worker into a resumed job rather
        than a stuck farm. Returns the final queue status.
        """
        for _ in range(self.n_workers):
            self.spawn_worker(drain=True)
        try:
            while True:
                await asyncio.sleep(self.sweep_every)
                self.sweep()
                status = self.queue.status()
                counts = status["counts"]
                outstanding = counts["pending"] + counts["running"]
                if outstanding == 0:
                    break
                alive = self.alive_workers()
                if respawn and counts["pending"] > 0 and len(alive) < self.n_workers:
                    self.spawn_worker(drain=True)
            # Let drain-mode workers notice the empty queue and exit.
            for proc in self.alive_workers():
                await asyncio.to_thread(proc.join, 10.0)
        finally:
            self.stop()
        self.sweep()
        return self.queue.status()

    async def serve_forever(self) -> None:
        """The always-on mode: keep the pool full, sweep forever."""
        for _ in range(self.n_workers):
            self.spawn_worker(drain=False)
        try:
            while True:
                await asyncio.sleep(self.sweep_every)
                self.sweep()
                while len(self.alive_workers()) < self.n_workers:
                    self.spawn_worker(drain=False)
        finally:
            self.stop()

    def run_to_completion(self) -> dict[str, Any]:
        """Synchronous front door for :meth:`run_until_drained`."""
        return asyncio.run(self.run_until_drained())
