"""Command-line interface: keygen, sign, verify, capture, attack, farm.

Installed as ``repro-falcon`` (see pyproject). The attack subcommands
drive the simulated bench — the victim key doubles as the device under
test, exactly like ``examples/attack_demo.py``. The ``farm`` subcommands
are the control plane of the campaign orchestration service
(:mod:`repro.farm`): submit/status/cancel/resume/watch against a farm
directory, plus ``worker``/``run``/``serve`` to execute it.
"""

from __future__ import annotations

import argparse
import sys

from repro.falcon import FalconParams, keygen, sign, verify
from repro.falcon.keys import (
    public_key_from_json,
    public_key_to_json,
    secret_key_from_json,
    secret_key_to_json,
)
from repro.falcon.params import SUPPORTED_N
from repro.falcon.sign import Signature
from repro.utils.io import atomic_write_text

__all__ = ["main", "build_parser"]


def _read(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _write(path: str, content: str) -> None:
    atomic_write_text(path, content)


def cmd_params(args) -> int:
    from repro.analysis import format_table

    rows = []
    for n in SUPPORTED_N:
        p = FalconParams.get(n)
        rows.append([n, p.q, f"{p.sigma:.3f}", p.sig_bound, p.sig_bytelen])
    print(format_table(["n", "q", "sigma", "beta^2", "sig bytes"], rows))
    return 0


def cmd_keygen(args) -> int:
    params = FalconParams.get(args.n)
    seed = args.seed.encode() if args.seed else None
    sk, pk = keygen(params, seed=seed)
    _write(args.sk, secret_key_to_json(sk))
    _write(args.pk, public_key_to_json(pk))
    print(f"FALCON-{args.n} key pair written to {args.sk} / {args.pk}")
    return 0


def cmd_sign(args) -> int:
    sk = secret_key_from_json(_read(args.sk))
    message = args.message.encode()
    sig = sign(sk, message)
    _write(args.out, sig.encoded().hex())
    print(f"signature ({len(sig.encoded())} bytes) written to {args.out}")
    return 0


def cmd_verify(args) -> int:
    pk = public_key_from_json(_read(args.pk))
    blob = bytes.fromhex(_read(args.sig).strip())
    salt_len = pk.params.salt_len
    sig = Signature(salt=blob[1 : 1 + salt_len], s2_compressed=blob[1 + salt_len :])
    ok = verify(pk, args.message.encode(), sig)
    print("ACCEPT" if ok else "REJECT")
    return 0 if ok else 1


def cmd_capture(args) -> int:
    from repro.leakage import DeviceModel, capture_coefficient

    sk = secret_key_from_json(_read(args.sk))
    device = DeviceModel(noise_sigma=args.noise)
    ts = capture_coefficient(
        sk, args.index, n_traces=args.traces, device=device, seed=args.capture_seed,
        backend=args.backend, target=args.target,
    )
    ts.save(args.out)
    print(
        f"captured {ts.n_traces} traces of {args.target} target {args.index}"
        f" -> {args.out}"
    )
    if args.trs_prefix:
        from repro.leakage.trs import traceset_to_trs

        paths = traceset_to_trs(ts, args.trs_prefix)
        print("TRS export: " + ", ".join(paths))
    return 0


def _write_metrics_json(path: str, payload: dict) -> None:
    import json

    from repro.utils.io import atomic_write_text

    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True) + "\n")


def cmd_attack_coefficient(args) -> int:
    from repro.attack import AttackConfig
    from repro.leakage import TraceSet
    from repro.obs import RunJournal, collect_spans, scoped_registry, span
    from repro.targets import DEFAULT_TARGET, get_target

    ts = TraceSet.load(args.traceset)
    # the traceset records which surface captured it (legacy archives
    # predate surfaces and are always fpr-mul); recovery must go through
    # the same surface or the layout/hypothesis pairing is meaningless
    surface = get_target(str(ts.meta.get("target", DEFAULT_TARGET)))
    with scoped_registry() as reg, collect_spans() as roots:
        with span("attack_coefficient", target=ts.target_index):
            rec = surface.recover(ts, AttackConfig(chunk_rows=args.chunk_rows))
    snap = reg.snapshot()
    root = roots[0] if roots else None
    if args.log_json:
        with RunJournal(args.log_json) as journal:
            if root is not None:
                journal.emit_span(root, target=ts.target_index)
            journal.emit_metrics(snap)
    if args.metrics_out:
        _write_metrics_json(
            args.metrics_out,
            {
                "per_stage_s": root.stage_seconds() if root is not None else {},
                "metrics": snap.to_jsonable(),
            },
        )
    if hasattr(rec, "pattern"):
        print(f"recovered coefficient pattern: {rec.pattern:#018x}")
        if ts.true_secret is not None:
            print(f"ground truth:                  {ts.true_secret:#018x}")
            print(f"exact: {'YES' if rec.correct else 'no'}")
    else:
        print(f"recovered {surface.name} value: {rec.value:#x}")
        if ts.true_secret is not None:
            print(f"ground truth:{' ' * (len(surface.name) + 7)}{ts.true_secret:#x}")
            print(f"exact: {'YES' if rec.correct else 'no'}")
    return 0


def cmd_attack(args) -> int:  # sast: declassify(reason=CLI reports attack outcomes; the report derives from recovered secrets by definition)
    from repro.attack import AttackConfig, full_attack
    from repro.leakage import DeviceModel
    from repro.obs import RunJournal, console_subscriber

    from repro.targets import get_target

    surface = get_target(args.target)  # validate before touching key files
    sk = secret_key_from_json(_read(args.sk))
    pk = sk.public_key()
    config = AttackConfig(
        n_workers=args.workers,
        chunk_rows=args.chunk_rows,
        distinguisher=args.distinguisher,
    )
    # One event stream: --log-json adds the JSONL sink, --progress adds
    # the stderr console renderer as a subscriber of the same journal —
    # stdout carries only the final report.
    journal = None
    if args.log_json or args.progress:
        journal = RunJournal(args.log_json)
        if args.progress:
            journal.subscribe(console_subscriber)
    try:
        report = full_attack(
            sk,
            pk,
            n_traces=args.traces,
            device=DeviceModel(noise_sigma=args.noise),
            config=config,
            message=args.message.encode(),
            mode=args.mode,
            seed=args.seed,
            backend=args.backend,
            target=args.target,
            store=args.store,
            session=args.resume,
            journal=journal,
        )
    finally:
        if journal is not None:
            journal.close()
    if args.metrics_out and report.telemetry is not None:
        _write_metrics_json(args.metrics_out, report.telemetry.to_jsonable())
    print(report.summary())
    # Forgery is the success criterion only for surfaces that end in a
    # signing key; transcript surfaces succeed on exact recovery.
    ok = report.forgery_verifies if surface.has_forgery else report.key_correct
    return 0 if ok else 1


def cmd_store_info(args) -> int:
    from repro.analysis import describe_store
    from repro.leakage import CampaignStore

    print(describe_store(CampaignStore(args.store)))
    return 0


# -- farm: campaign orchestration ------------------------------------------


def _farm_spec(args):
    from repro.attack.config import AttackConfig
    from repro.farm.spec import CampaignSpec
    from repro.leakage.capture import CaptureConfig

    return CampaignSpec(
        key_seed=args.key_seed,
        n=args.n,
        capture=CaptureConfig(
            n_traces=args.traces,
            seed=args.capture_seed,
            backend=args.backend,
            target=args.target,
        ),
        attack=AttackConfig(distinguisher=args.distinguisher),
        noise_sigma=args.noise,
        device_seed=args.device_seed,
        use_store=not args.no_store,
    )


def cmd_farm_submit(args) -> int:
    from repro.farm.queue import FarmQueue

    job = FarmQueue(args.root).submit(_farm_spec(args))
    print(f"submitted {job.job_id} (target={job.spec.target}, n={job.spec.n})")
    return 0


def cmd_farm_status(args) -> int:
    import json

    from repro.farm.control import format_status
    from repro.farm.queue import FarmQueue

    status = FarmQueue(args.root).status()
    print(json.dumps(status, indent=1, sort_keys=True) if args.json
          else format_status(status))
    return 0


def cmd_farm_cancel(args) -> int:
    from repro.farm.queue import FarmQueue

    job = FarmQueue(args.root).cancel(args.job)
    print(f"cancel requested for {job.job_id} (state: {job.state.value})")
    return 0


def cmd_farm_resume(args) -> int:
    from repro.farm.queue import FarmQueue

    job = FarmQueue(args.root).resume(args.job)
    print(f"{job.job_id} re-queued (attempt {job.attempts + 1} will resume "
          "from its checkpoints)")
    return 0


def cmd_farm_watch(args) -> int:
    import json

    from repro.farm.control import tail_events, watch_events
    from repro.farm.queue import FarmQueue

    queue = FarmQueue(args.root)
    path = str(queue.job_journal_path(args.job) if args.job else queue.journal_path)

    def render(event: dict) -> None:
        print(json.dumps(event, sort_keys=True), flush=True)

    if not args.follow:
        events, _ = tail_events(path)
        for event in events:
            render(event)
        return 0
    for event in watch_events(path):
        render(event)
    return 0


def cmd_farm_worker(args) -> int:
    from repro.farm.worker import worker_loop

    finished = worker_loop(
        args.root,
        args.id,
        lease_ttl=args.lease_ttl,
        drain=args.drain,
        job_workers=args.job_workers,
    )
    print(f"{args.id}: {finished} job(s) finished")
    return 0


def cmd_farm_run(args) -> int:
    from repro.farm.control import format_status
    from repro.farm.service import FarmLimits, FarmService

    service = FarmService(
        args.root,
        limits=FarmLimits(
            max_concurrent=args.max_concurrent,
            max_store_bytes=args.max_store_bytes,
            lease_ttl=args.lease_ttl,
        ),
        n_workers=args.workers,
        job_workers=args.job_workers,
    )
    status = service.run_to_completion()
    print(format_status(status))
    counts = status["counts"]
    return 0 if counts["failed"] == 0 and counts["pending"] == 0 else 1


def cmd_farm_serve(args) -> int:
    import asyncio

    from repro.farm.control import serve_http
    from repro.farm.service import FarmLimits, FarmService

    service = FarmService(
        args.root,
        limits=FarmLimits(
            max_concurrent=args.max_concurrent,
            max_store_bytes=args.max_store_bytes,
            lease_ttl=args.lease_ttl,
        ),
        n_workers=args.workers,
        job_workers=args.job_workers,
    )
    server = serve_http(args.root, host=args.host, port=args.port,
                        health_fn=service.health)
    host, port = server.server_address[0], server.server_address[1]
    print(f"farm {args.root}: HTTP on http://{host}:{port} "
          f"({args.workers} workers)", file=sys.stderr, flush=True)
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        service.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.attack.config import KNOWN_DISTINGUISHERS
    from repro.leakage.backend import BACKENDS
    from repro.targets import DEFAULT_TARGET, TARGET_NAMES

    backend_names = ", ".join(sorted(BACKENDS))
    target_names = ", ".join(TARGET_NAMES)
    distinguisher_names = ", ".join(sorted(KNOWN_DISTINGUISHERS))

    parser = argparse.ArgumentParser(
        prog="repro-falcon",
        description="Falcon-Down reproduction: FALCON signatures and the DAC'21 side-channel attack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("params", help="print the supported parameter sets")
    p.set_defaults(fn=cmd_params)

    p = sub.add_parser("keygen", help="generate a key pair")
    p.add_argument("--n", type=int, default=512, choices=SUPPORTED_N)
    p.add_argument("--seed", type=str, default=None)
    p.add_argument("--sk", type=str, required=True, help="secret key output path")
    p.add_argument("--pk", type=str, required=True, help="public key output path")
    p.set_defaults(fn=cmd_keygen)

    p = sub.add_parser("sign", help="sign a message")
    p.add_argument("--sk", type=str, required=True)
    p.add_argument("--message", type=str, required=True)
    p.add_argument("--out", type=str, required=True, help="hex signature output path")
    p.set_defaults(fn=cmd_sign)

    p = sub.add_parser("verify", help="verify a signature")
    p.add_argument("--pk", type=str, required=True)
    p.add_argument("--message", type=str, required=True)
    p.add_argument("--sig", type=str, required=True)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("capture", help="capture EM traces of one target (simulated bench)")
    p.add_argument("--sk", type=str, required=True, help="victim secret key")
    p.add_argument(
        "--target", type=str, default=DEFAULT_TARGET,
        help=f"leakage surface to capture (registered: {target_names}; "
        "'contract:<id>' traces any ranked leakage-contract entry, see "
        "repro-sast rank)",
    )
    p.add_argument(
        "--index", type=int, default=0,
        help="target index within the surface: secret-double index for "
        "fpr-mul, ffSampling call number for samplerz",
    )
    p.add_argument("--traces", type=int, default=10_000)
    p.add_argument("--noise", type=float, default=10.0)
    p.add_argument("--capture-seed", type=int, default=2021)
    p.add_argument(
        "--backend", type=str, default="numpy-batch",
        help="step-value engine: 'numpy-batch' computes whole trace blocks "
        "as uint64 array ops, 'python-ref' runs the per-value softfloat "
        f"reference (bit-exact, ~100x slower); registered: {backend_names}",
    )
    p.add_argument("--out", type=str, required=True, help=".npz traceset output")
    p.add_argument("--trs-prefix", type=str, default=None, help="also export Riscure TRS files")
    p.set_defaults(fn=cmd_capture)

    p = sub.add_parser("attack-coefficient", help="run extend-and-prune DEMA on a saved traceset")
    p.add_argument("--traceset", type=str, required=True)
    p.add_argument(
        "--chunk-rows", type=int, default=None,
        help="stream every CPA through the raw-moment accumulator in batches "
        "of this many traces (default: one-shot matrix path)",
    )
    p.add_argument(
        "--log-json", type=str, default=None, metavar="PATH",
        help="append the structured telemetry (span tree + metrics) to "
        "this JSONL journal",
    )
    p.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write per-stage seconds and the metrics snapshot as JSON",
    )
    p.set_defaults(fn=cmd_attack_coefficient)

    p = sub.add_parser("attack", help="full key extraction + forgery against a simulated victim")
    p.add_argument("--sk", type=str, required=True, help="victim secret key (drives the simulation)")
    p.add_argument("--traces", type=int, default=10_000)
    p.add_argument("--noise", type=float, default=10.0)
    p.add_argument(
        "--mode", type=str, default="direct", choices=("direct", "hash"),
        help="known-message generation: 'hash' runs the full HashToPoint per "
        "signing, 'direct' draws c uniformly (same distribution, faster)",
    )
    p.add_argument(
        "--seed", type=int, default=2021,
        help="capture campaign seed (drives the known-message corpus and "
        "the per-target acquisition RNG)",
    )
    p.add_argument(
        "--backend", type=str, default="numpy-batch",
        help="capture step-value engine (bit-exact choices; 'numpy-batch' "
        f"makes the capture side ~100x faster); registered: {backend_names}",
    )
    p.add_argument(
        "--target", type=str, default=DEFAULT_TARGET,
        help="leakage surface to attack: 'fpr-mul' is the paper's key "
        "extraction, 'samplerz' recovers the ffSampling sampler transcript, "
        "'contract:<id>' recovers the live operands of any ranked "
        f"leakage-contract entry (registered: {target_names})",
    )
    p.add_argument(
        "--message", type=str,
        default="arbitrary message chosen by the adversary",
        help="message to forge a signature on with the recovered key",
    )
    p.add_argument("--progress", action="store_true")
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the per-coefficient attacks (1 = serial; "
        "results are bit-identical either way)",
    )
    p.add_argument(
        "--chunk-rows", type=int, default=None,
        help="stream every CPA through the raw-moment accumulator in batches "
        "of this many traces (default: one-shot matrix path)",
    )
    p.add_argument(
        "--distinguisher", type=str, default="cpa",
        help="statistical engine for every recovery step (profiled choices "
        "run a profiling phase on a fresh adversary key first); "
        f"registered: {distinguisher_names}",
    )
    p.add_argument(
        "--store", type=str, default=None,
        help="campaign store directory: materialize the capture there on "
        "first use, then attack from memory-mapped disk shards (capture "
        "once, attack many times)",
    )
    p.add_argument(
        "--resume", type=str, default=None, metavar="SESSION_DIR",
        help="checkpoint directory for a resumable session: every finished "
        "coefficient is saved atomically, and re-running with the same "
        "directory resumes an interrupted attack bit-identically",
    )
    p.add_argument(
        "--log-json", type=str, default=None, metavar="PATH",
        help="append every run event (progress, span trees, metrics) to "
        "this JSONL journal; progress chatter goes to stderr, so stdout "
        "stays machine-readable",
    )
    p.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the run's telemetry (per-stage seconds, rows "
        "correlated, store bytes read, checkpoint counts) as JSON",
    )
    p.set_defaults(fn=cmd_attack)

    p = sub.add_parser("store-info", help="summarize a materialized campaign store")
    p.add_argument("--store", type=str, required=True)
    p.set_defaults(fn=cmd_store_info)

    farm = sub.add_parser(
        "farm",
        help="campaign orchestration: durable queue + worker pool + control plane",
    )
    fsub = farm.add_subparsers(dest="farm_command", required=True)

    def _root(fp):
        fp.add_argument("--root", type=str, required=True,
                        help="farm directory (queue, leases, stores, journal)")

    fp = fsub.add_parser("submit", help="enqueue one attack campaign")
    _root(fp)
    fp.add_argument("--key-seed", type=str, required=True,
                    help="victim key seed (the worker regenerates the key pair)")
    fp.add_argument("--n", type=int, default=8, choices=SUPPORTED_N)
    fp.add_argument("--traces", type=int, default=10_000)
    fp.add_argument("--capture-seed", type=int, default=2021)
    fp.add_argument("--target", type=str, default=DEFAULT_TARGET,
                    help=f"leakage surface (registered: {target_names}; "
                    "or 'contract:<id>' for a traced contract entry)")
    fp.add_argument("--backend", type=str, default="numpy-batch",
                    help=f"capture engine (registered: {backend_names})")
    fp.add_argument("--distinguisher", type=str, default="cpa",
                    help=f"statistical engine (registered: {distinguisher_names})")
    fp.add_argument("--noise", type=float, default=10.0)
    fp.add_argument("--device-seed", type=int, default=2021)
    fp.add_argument("--no-store", action="store_true",
                    help="attack from a live capture instead of materializing "
                    "a per-job campaign store")
    fp.set_defaults(fn=cmd_farm_submit)

    fp = fsub.add_parser("status", help="queue / lease / quota state")
    _root(fp)
    fp.add_argument("--json", action="store_true")
    fp.set_defaults(fn=cmd_farm_status)

    fp = fsub.add_parser("cancel", help="request cancellation of one job")
    _root(fp)
    fp.add_argument("job", type=str)
    fp.set_defaults(fn=cmd_farm_cancel)

    fp = fsub.add_parser("resume", help="re-queue a canceled/failed job "
                         "(resumes from its checkpoints)")
    _root(fp)
    fp.add_argument("job", type=str)
    fp.set_defaults(fn=cmd_farm_resume)

    fp = fsub.add_parser("watch", help="stream the farm journal (JSONL)")
    _root(fp)
    fp.add_argument("--job", type=str, default=None,
                    help="stream this job's per-coefficient RunJournal instead")
    fp.add_argument("--follow", action="store_true",
                    help="keep following for new events (default: dump and exit)")
    fp.set_defaults(fn=cmd_farm_watch)

    fp = fsub.add_parser("worker", help="run one worker process in the foreground")
    _root(fp)
    fp.add_argument("--id", type=str, default="worker-cli")
    fp.add_argument("--lease-ttl", type=float, default=30.0)
    fp.add_argument("--drain", action="store_true",
                    help="exit when the queue has nothing claimable")
    fp.add_argument("--job-workers", type=int, default=None,
                    help="per-job coefficient fan-out (default: config)")
    fp.set_defaults(fn=cmd_farm_worker)

    def _service_opts(fp):
        fp.add_argument("--workers", type=int, default=2,
                        help="worker processes to supervise")
        fp.add_argument("--max-concurrent", type=int, default=4,
                        help="leases allowed out at once (back-pressure)")
        fp.add_argument("--max-store-bytes", type=int, default=None,
                        help="store quota; oldest-completed stores are "
                        "evicted above it")
        fp.add_argument("--lease-ttl", type=float, default=30.0)
        fp.add_argument("--job-workers", type=int, default=None)

    fp = fsub.add_parser("run", help="drain the queue with a supervised "
                         "worker pool, then exit")
    _root(fp)
    _service_opts(fp)
    fp.set_defaults(fn=cmd_farm_run)

    fp = fsub.add_parser("serve", help="always-on service: worker pool + "
                         "HTTP control endpoint")
    _root(fp)
    _service_opts(fp)
    fp.add_argument("--host", type=str, default="127.0.0.1")
    fp.add_argument("--port", type=int, default=8631)
    fp.set_defaults(fn=cmd_farm_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early: normal exit
        return 0
    except ValueError as exc:
        # registry lookups (--target / --backend / --distinguisher) raise
        # with the sorted list of registered names; surface that verbatim
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        # farm refusals (unknown job, wrong state, duplicate submit) are
        # operator errors, not crashes: one line, exit 2
        if type(exc).__name__ != "FarmError":
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
