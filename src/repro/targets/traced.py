"""The generic ``contract:<id>`` surface: attack any ranked contract entry.

The exploitability triage (:mod:`repro.sast.exploit`) gives every
CONFIRMED contract entry a stable 12-hex ``entry_id``. This module turns
that id into a registered :class:`~repro.targets.TargetPoint` — no
hand-written surface code — by instrumenting the entry's source line
with the same ``sys.settrace`` machinery the dynamic taint oracle uses
(:mod:`repro.sast.oracle`) and exposing the line's live operands as the
device's step values.

**Victim model.** The oracle's seeded workload
(:func:`repro.sast.oracle._run_workload`) runs once in-process under
line tracing — keygen, signing, verification, the fpr sweep and the
countermeasure variants, everything the contract's verdicts were
recorded against — so every CONFIRMED entry's line is reachable by
construction. Each *hit* of the traced line is one target (capped at
:data:`MAX_TARGETS`), and the device replays that hit ``n_traces``
times, exactly like the ``samplerz`` surface replays one sampler call.

**Trace layout.** The watched operands are the identifiers appearing on
the entry's line, in the oracle's own sorted order
(:func:`repro.sast.oracle._names_by_line`). Each operand contributes
one full-word step (its u64 pattern — template material) plus
:data:`VALUE_BITS` single-bit steps of its low bits, which make the
intermediate exactly decodable from mean leakage.

**Hypothesis engine.** Replay captures degenerate Pearson CPA (the
hypothesis column is constant across replays), so recovery uses the
same calibrated-template idea as the samplerz surface, reduced to its
per-bit form: a bit step's sample mean is ``offset + gain * bit``, so
thresholding the measured mean at ``offset + gain / 2`` decodes the
bit; the decision margin is the smallest distance any bit had to the
threshold. The recovered secret is the live value of the entry's
operands at the attacked hit — the leaking intermediate itself.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.attack.config import AttackConfig
    from repro.attack.key_recovery import CoefficientRecord, KeyRecoveryResult
    from repro.falcon.keygen import PublicKey
    from repro.leakage.capture import CaptureCampaign
    from repro.leakage.device import DeviceModel
    from repro.leakage.synth import TraceLayout
    from repro.leakage.traceset import TraceSet

__all__ = [
    "MAX_TARGETS",
    "VALUE_BITS",
    "TracedContractTarget",
    "TracedRecovery",
    "resolve_traced_target",
]

_U64 = (1 << 64) - 1

#: contract file the ``contract:`` names resolve against (overridable so
#: tests and fixture projects can point at their own contract)
_CONTRACT_ENV = "REPRO_CONTRACT"
_DEFAULT_CONTRACT = "leakage-contract.json"

#: hits of the traced line that become attackable targets; the workload
#: executes hot lines hundreds of times and replaying each is a full
#: campaign, so the surface exposes a bounded prefix
MAX_TARGETS = 32

#: cap on recorded hits (memory bound; targets only ever index below it)
_MAX_HITS = 4096

#: low bits of each operand exposed as single-bit steps — enough to
#: decode any value mod q (q = 12289 needs 14) and any sign/exponent
#: field, while keeping the trace width bounded
VALUE_BITS = 16


def _encode_word(value: Any) -> int:
    """A local's u64 step pattern (0 for unset / non-scalar operands)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & _U64
    if isinstance(value, float):
        return int(np.float64(value).view(np.uint64))
    return 0


def _contract_path() -> str:
    return os.environ.get(_CONTRACT_ENV, _DEFAULT_CONTRACT)


@lru_cache(maxsize=32)
def resolve_traced_target(name: str, contract_path: str) -> "TracedContractTarget":
    """Resolve ``contract:<id>`` against a contract file (cached).

    Raises ``ValueError`` for unknown ids with the nearest context a
    user needs: where the contract was read from and how to list ids.
    """
    from repro.sast.contract import load_contract
    from repro.sast.exploit import entry_id

    wanted = name[len("contract:"):]
    try:
        contract = load_contract(contract_path)
    except FileNotFoundError:
        raise ValueError(
            f"cannot resolve {name!r}: contract file {contract_path!r} not "
            f"found (set ${_CONTRACT_ENV} or run from the repo root)"
        ) from None
    for entry in contract.entries:
        if entry_id(entry.fingerprint) == wanted:
            return TracedContractTarget(
                rule=entry.rule,
                rel_path=entry.path,
                function=entry.function,
                line_text=entry.line_text,
                occurrence=entry.occurrence,
            )
    raise ValueError(
        f"no contract entry with id {wanted!r} in {contract_path!r} "
        "(list ids with: repro-sast rank)"
    )


def get_traced_target(name: str) -> "TracedContractTarget":
    """``contract:`` dispatch hook used by :func:`repro.targets.get_target`."""
    return resolve_traced_target(name, _contract_path())


def _resolve_line(source_path: str, function: str, line_text: str, occurrence: int) -> int:
    """Line number of the entry's fingerprint in the *imported* source.

    The fingerprint is drift-tolerant on purpose — ``(function,
    normalized line text, occurrence)`` — so the surface re-anchors it
    against the package that will actually execute, exactly like
    ``verify`` re-anchors entries against fresh findings.
    """
    import ast

    from repro.sast.variants import normalize_line

    with open(source_path, encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=source_path)
    short = function.rsplit(".", 1)[-1]
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == short:
                spans.append((node.lineno, node.end_lineno or node.lineno))
    if not spans:
        raise ValueError(
            f"function {short!r} not found in {source_path!r}; the installed "
            "package drifted from the contract — regenerate it"
        )
    lines = source.splitlines()
    matches = [
        lineno
        for lo, hi in spans
        for lineno in range(lo, min(hi, len(lines)) + 1)
        if normalize_line(lines[lineno - 1]) == line_text
    ]
    matches = sorted(set(matches))
    if occurrence >= len(matches):
        raise ValueError(
            f"line {line_text!r} (occurrence {occurrence}) not found in "
            f"{short}() of {source_path!r}; regenerate the contract"
        )
    return matches[occurrence]


def _trace_hits(
    source_path: str,
    lineno: int,
    names: tuple[str, ...],
    workload: Callable[[], None],
) -> list[tuple[int, ...]]:
    """Every execution of one line, as encoded operand tuples.

    The line event fires *before* the line runs (same semantics the
    oracle records under), so operands assigned on the line itself show
    their pre-execution values and may be unset on the first hit.
    """
    watched = {source_path, os.path.realpath(source_path)}
    hits: list[tuple[int, ...]] = []

    def local_trace(frame: Any, event: str, arg: Any) -> Any:
        if (
            event == "line"
            and frame.f_lineno == lineno
            and len(hits) < _MAX_HITS
        ):
            local_vars = frame.f_locals
            hits.append(
                tuple(_encode_word(local_vars.get(name)) for name in names)
            )
        return local_trace

    def global_trace(frame: Any, event: str, arg: Any) -> Any:
        if event == "call" and frame.f_code.co_filename in watched:
            return local_trace
        return None

    sys.settrace(global_trace)
    try:
        workload()
    finally:
        sys.settrace(None)
    return hits


@dataclass(frozen=True)
class TracedRecovery:
    """One recovered hit: the decoded low bits of every line operand."""

    target_index: int                 # which hit of the line was attacked
    values: dict[str, int]            # operand -> decoded low VALUE_BITS
    true_values: dict[str, int]       # ground truth (sims only)
    primary: str                      # the operand reported as `value`
    margin: float                     # smallest bit-mean distance to threshold

    @property
    def value(self) -> int:
        return self.values.get(self.primary, 0)

    @property
    def correct(self) -> bool:
        return self.values == self.true_values


class TracedContractTarget:
    """TargetPoint for one contract entry, built from its fingerprint."""

    has_forgery = False

    def __init__(
        self,
        rule: str,
        rel_path: str,
        function: str,
        line_text: str,
        occurrence: int = 0,
    ) -> None:
        from repro.sast.exploit import entry_id
        from repro.sast.oracle import _names_by_line

        self.rule = rule
        self.rel_path = rel_path
        self.function = function
        self.line_text = line_text
        self.occurrence = occurrence
        self.entry_id = entry_id((rule, rel_path, function, line_text, occurrence))
        self.name = f"contract:{self.entry_id}"

        import repro

        pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
        self.source_path = os.path.join(pkg_dir, rel_path.replace("/", os.sep))
        self.lineno = _resolve_line(
            self.source_path, function, line_text, occurrence
        )
        self.value_names: tuple[str, ...] = _names_by_line(
            self.source_path, {self.lineno}
        ).get(self.lineno, ())
        if not self.value_names:
            raise ValueError(
                f"contract entry {self.entry_id} has no named operands on "
                f"{rel_path}:{self.lineno}; nothing to expose as step values"
            )
        labels: list[str] = []
        for name in self.value_names:
            labels.append(name)
            labels.extend(f"{name}_b{bit:02d}" for bit in range(VALUE_BITS))
        self.step_labels: tuple[str, ...] = tuple(labels)

    # -- acquisition -------------------------------------------------------

    def layout(self, device: "DeviceModel") -> "TraceLayout":
        from repro.leakage.synth import TraceLayout

        return TraceLayout(
            samples_per_step=device.samples_per_step, labels=self.step_labels
        )

    def _hits(self, campaign: "CaptureCampaign") -> list[tuple[int, ...]]:  # sast: declassify(reason=capture layer models the victim workload and records secret intermediates by design (leakage model boundary))
        key = f"traced:{self.entry_id}"
        hits = campaign._surface_cache.get(key)
        if hits is None:
            from repro.sast.oracle import _run_workload

            seed = str(campaign.seed)
            n = int(campaign.sk.params.n)
            hits = _trace_hits(
                self.source_path,
                self.lineno,
                self.value_names,
                lambda: _run_workload(seed, n),
            )
            campaign._surface_cache[key] = hits
        return hits

    def n_targets(self, campaign: "CaptureCampaign") -> int:
        return min(len(self._hits(campaign)), MAX_TARGETS)

    def _step_row(self, hit: tuple[int, ...]) -> "np.ndarray":
        row = np.empty(len(self.step_labels), dtype=np.uint64)
        pos = 0
        for word in hit:
            row[pos] = word
            pos += 1
            for bit in range(VALUE_BITS):
                row[pos] = (word >> bit) & 1
                pos += 1
        return row

    def capture_traceset(self, campaign: "CaptureCampaign", target_index: int) -> "TraceSet":  # sast: declassify(reason=capture layer emits modeled leakage of secret intermediates by design (leakage model boundary))
        from repro.leakage.traceset import Segment, TraceSet
        from repro.obs import metrics
        from repro.obs.spans import span

        hits = self._hits(campaign)
        n_targets = min(len(hits), MAX_TARGETS)
        if not 0 <= target_index < n_targets:
            raise ValueError(
                f"target_index must be in 0..{n_targets - 1}, got {target_index}"
            )
        hit = hits[target_index]
        # the operand whose decode is reported as the recovery `value`:
        # the one varying most across hits — the actual intermediate,
        # not loop geometry (k, half) or a modulus constant (q)
        distinct = [
            len({h[i] for h in hits}) for i in range(len(self.value_names))
        ]
        primary = min(
            zip(self.value_names, distinct), key=lambda t: (-t[1], t[0])
        )[0]
        row = self._step_row(hit)
        values = np.tile(row, (campaign.n_traces, 1))
        rng = np.random.default_rng(
            (campaign.device.seed, campaign.seed, target_index)
        )
        with span("capture", target=target_index, source="live"):
            if campaign.value_transform is not None:
                values = campaign.value_transform(values, rng)
            traces = campaign.device.emit(values, rng)
            segments = [
                Segment(
                    known_y=np.arange(campaign.n_traces, dtype=np.uint64),
                    traces=traces,
                    name="replay",
                )
            ]
            metrics.inc("capture.rows_kept", int(campaign.n_traces))
            metrics.inc("capture.tracesets", 1)
        mask = (1 << VALUE_BITS) - 1
        true_values = {
            name: word & mask for name, word in zip(self.value_names, hit)
        }
        return TraceSet(
            layout=self.layout(campaign.device),
            segments=segments,
            target_index=target_index,
            true_secret=true_values[primary],
            meta={
                "n": campaign.sk.params.n,
                "mode": campaign.mode,
                "target": self.name,
                "entry_id": self.entry_id,
                "site": f"{self.rel_path}:{self.lineno}",
                "primary": primary,
                "true_values": true_values,
                # clone-device calibration of the affine HW response —
                # the profiling assumption of the per-bit template
                "gain": float(campaign.device.gain),
                "offset": float(campaign.device.offset),
                "n_requested": campaign.n_traces,
                "n_kept": (campaign.n_traces,),
            },
        )

    # -- hypothesis engine -------------------------------------------------

    def recover(
        self,
        traceset: "TraceSet",
        config: "AttackConfig",
        distinguisher: Any = None,
    ) -> TracedRecovery:
        """Decode every operand's low bits from the replay traces.

        ``distinguisher`` is accepted for engine-interface parity but
        unused (replay captures degenerate Pearson-style scorers; see
        the module docstring for the per-bit threshold template).
        """
        from repro.obs import metrics

        layout = traceset.layout
        gain = float(traceset.meta.get("gain", 1.0))
        offset = float(traceset.meta.get("offset", 10.0))
        threshold = offset + gain / 2.0
        decoded: dict[str, int] = {}
        margin = float("inf")
        rows = sum(seg.n_traces for seg in traceset.segments)
        for name in self.value_names:
            value = 0
            for bit in range(VALUE_BITS):
                sl = layout.slice_of(f"{name}_b{bit:02d}")
                mean = float(
                    np.mean([np.mean(seg.traces[:, sl]) for seg in traceset.segments])
                )
                if mean > threshold:
                    value |= 1 << bit
                margin = min(margin, abs(mean - threshold))
            decoded[name] = value
        metrics.inc("cpa.score_calls", len(self.value_names) * VALUE_BITS)
        metrics.inc("cpa.rows_correlated", rows)
        raw_true = traceset.meta.get("true_values", {})
        return TracedRecovery(
            target_index=traceset.target_index,
            values=decoded,
            true_values={str(k): int(v) for k, v in dict(raw_true).items()},
            primary=str(traceset.meta.get("primary", self.value_names[0])),
            margin=margin,
        )

    # -- engine records ----------------------------------------------------

    def make_record(
        self,
        recovery: TracedRecovery,
        traceset: "TraceSet",
        elapsed_seconds: float,
        n_requested: int,
    ) -> "CoefficientRecord":
        from repro.attack.key_recovery import CoefficientRecord

        return CoefficientRecord(
            target_index=traceset.target_index,
            elapsed_seconds=elapsed_seconds,
            n_traces_requested=n_requested,
            n_traces_kept=tuple(seg.n_traces for seg in traceset.segments),
            correct=recovery.correct,
            mantissa_margin=recovery.margin,
        )

    def rebuild(
        self,
        recoveries: "list[Any]",
        records: "list[CoefficientRecord]",
        pk: "PublicKey",
        notify: Any,
    ) -> "KeyRecoveryResult":
        """Assemble the per-hit operand decodes into the campaign result.

        No forgery follows (``has_forgery`` is False): the deliverable
        is the recovered intermediate stream at the contract entry —
        the primitive a GALACTICS-style key recovery consumes. ``pk``
        is unused but kept for rebuild-interface parity.
        """
        from repro.attack.key_recovery import KeyRecoveryResult, ProgressEvent
        from repro.obs.spans import span

        notify(
            ProgressEvent(
                "rebuild", 0, 1,
                message=f"assembling operand stream for {self.name}",
            )
        )
        with span("rebuild"):
            values = [int(r.value) for r in recoveries]
        return KeyRecoveryResult(
            f=[],
            g=[],
            big_f=[],
            big_g=[],
            recovered_sk=None,
            coefficients=list(recoveries),
            records=list(records),
            recovered_values=values,
        )
