"""Pluggable leakage surfaces: which secret-handling hot spot is attacked.

The paper attacks exactly one computation — the coefficient-wise product
``FFT(c) (*) FFT(f)`` at line 3 of the signing algorithm — and for five
PRs the whole pipeline was hard-wired to it. A :class:`TargetPoint`
makes the surface a first-class, registered object instead: each surface
owns

* its **trace layout** — the ordered step labels of the instrumented
  execution and how the device maps them to oscilloscope samples
  (:meth:`TargetPoint.layout`),
* its **batched step-value computation** — how a capture campaign turns
  victim state into the (D, S) uint64 intermediate matrix the device
  emits (:meth:`TargetPoint.capture_traceset`, composing with the
  :mod:`repro.leakage.backend` engines where vectorization applies),
* its **hypothesis engine** — the predictor family scored against the
  traces (for ``fpr-mul`` the :mod:`repro.attack.hypotheses` ``hyp_*``
  functions; for ``samplerz`` the thermometer-code HW predictor of
  :mod:`repro.targets.samplerz`),
* its **secret parameterization** — which integers/doubles the
  per-target attacks recover and how they rebuild key material or
  sampler transcripts (:meth:`TargetPoint.recover` /
  :meth:`TargetPoint.rebuild`),
* its **contract annotation boundary** — where its instrumented trace
  hook lives and carries the reviewed ``sast: declassify`` boundary
  (``repro/fpr/trace.py`` and ``repro/falcon/samplerz.py``).

Two surfaces are registered:

``fpr-mul``
    The paper's attack. Byte-identical to the pre-protocol pipeline:
    the surface object fronts the pinned capture/recovery
    implementations in :mod:`repro.leakage.capture` and
    :mod:`repro.attack` rather than re-hosting them (the leakage
    contract fingerprints those bodies).

``samplerz``
    The discrete Gaussian sampler (Algorithm 12-14) driven through real
    seeded signings: the RCDT base-sampler walk and the rejection-loop
    iteration count are the architectural intermediates, and the
    recovered secrets are ffSampling's per-call Gaussian draws.

Beyond the registry, any ``contract:<id>`` name resolves to the generic
traced surface (:mod:`repro.targets.traced`): the leakage-contract
entry with that exploitability ``entry_id`` (see ``repro-sast rank``)
is compiled into a TargetPoint by instrumenting its source line, so
every ranked entry is attackable without writing surface code.

Select a surface by name everywhere a campaign is configured:
``CaptureCampaign(target=...)``, ``full_attack(target=...)``,
``repro-falcon capture/attack --target``. Store manifests record the
surface; legacy manifests default to ``fpr-mul``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.utils.registry import resolve_name

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.attack.config import AttackConfig
    from repro.attack.key_recovery import CoefficientRecord, KeyRecoveryResult
    from repro.falcon.keygen import PublicKey
    from repro.leakage.capture import CaptureCampaign
    from repro.leakage.device import DeviceModel
    from repro.leakage.synth import TraceLayout
    from repro.leakage.traceset import TraceSet

__all__ = [
    "TargetPoint",
    "TARGETS",
    "TARGET_NAMES",
    "DEFAULT_TARGET",
    "get_target",
]


@runtime_checkable
class TargetPoint(Protocol):
    """One attackable leakage surface, end to end.

    The capture layer asks a surface for its corpus size and per-target
    trace sets; the attack layer asks it to recover each target's secret
    and to rebuild the campaign-level result. Everything between —
    stores, sessions, worker fan-out, journals, telemetry — is
    surface-agnostic and works unchanged for any registered surface.
    """

    @property
    def name(self) -> str:  # pragma: no cover - trivial accessor
        ...

    @property
    def step_labels(self) -> tuple[str, ...]:  # pragma: no cover
        ...

    @property
    def has_forgery(self) -> bool:
        """Whether a successful campaign yields a signing key to forge with."""
        ...  # pragma: no cover

    def layout(self, device: "DeviceModel") -> "TraceLayout":
        """Trace layout of this surface on ``device``."""
        ...  # pragma: no cover

    def n_targets(self, campaign: "CaptureCampaign") -> int:
        """How many per-target attacks one campaign comprises."""
        ...  # pragma: no cover

    def capture_traceset(self, campaign: "CaptureCampaign", target_index: int) -> "TraceSet":
        """Acquire one target's TraceSet from a live campaign."""
        ...  # pragma: no cover

    def recover(
        self, traceset: "TraceSet", config: "AttackConfig", distinguisher: Any = None
    ) -> Any:
        """Recover one target's secret from its TraceSet."""
        ...  # pragma: no cover

    def make_record(
        self, recovery: Any, traceset: "TraceSet", elapsed_seconds: float, n_requested: int
    ) -> "CoefficientRecord":
        """Observability record for one finished per-target attack."""
        ...  # pragma: no cover

    def rebuild(
        self, recoveries: list[Any], records: "list[CoefficientRecord]",
        pk: "PublicKey", notify: Any,
    ) -> "KeyRecoveryResult":
        """Campaign-level result from the per-target recoveries."""
        ...  # pragma: no cover


def _build_registry() -> dict[str, TargetPoint]:
    from repro.targets.fpr_mul import FprMulTarget
    from repro.targets.samplerz import SamplerZTarget

    surfaces: tuple[TargetPoint, ...] = (FprMulTarget(), SamplerZTarget())
    return {s.name: s for s in surfaces}


DEFAULT_TARGET = "fpr-mul"

TARGETS: dict[str, TargetPoint] = _build_registry()

TARGET_NAMES: tuple[str, ...] = tuple(sorted(TARGETS))


def get_target(name: "str | TargetPoint") -> TargetPoint:
    """Resolve a surface by name (a surface instance passes through).

    ``contract:<id>`` names dispatch to the generic traced surface
    (:mod:`repro.targets.traced`), which compiles the leakage-contract
    entry with that :func:`repro.sast.exploit.entry_id` into a
    TargetPoint — any ranked entry is attackable without surface code.
    """
    if isinstance(name, str):
        if name.startswith("contract:"):
            from repro.targets.traced import get_traced_target

            return get_traced_target(name)
        return resolve_name("target", name, TARGETS)
    return name
