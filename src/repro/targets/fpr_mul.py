"""The ``fpr-mul`` surface: the paper's FFT(c) (*) FFT(f) multiply attack.

This surface *fronts* the pinned implementations rather than re-hosting
them: capture stays in :meth:`repro.leakage.capture.CaptureCampaign.
capture` (the legacy body runs whenever ``campaign.target`` is
``fpr-mul``), per-coefficient recovery stays in
:func:`repro.attack.coefficient.recover_coefficient`, and the key
rebuild stays in :func:`repro.attack.key_recovery.rebuild_signing_key`.
Keeping those bodies in place is deliberate — the verified leakage
contract fingerprints them by (path, function, line), and the byte-
identity pin (``tests/test_targets.py``) holds the refactor to exactly
the pre-protocol trace bytes.

Surface parameters:

* **Targets** — the n secret doubles of FFT(f) (Re/Im interleaved).
* **Steps** — the 18 ``MUL_STEP_LABELS`` intermediates of one fpr
  multiply (:mod:`repro.fpr.trace`), batch-computed by the pluggable
  :mod:`repro.leakage.backend` engines.
* **Hypotheses** — the ``hyp_*`` family of :mod:`repro.attack.
  hypotheses`, consumed through the extend-and-prune ladder and the
  sign/exponent DEMA of :mod:`repro.attack.coefficient`.
* **Secret** — one fpr bit pattern per target; all n rebuild ``f`` via
  the inverse FFT, then (g, F, G) from the public key and NTRUSolve.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.fpr.trace import MUL_STEP_LABELS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.attack.coefficient import CoefficientRecovery
    from repro.attack.config import AttackConfig
    from repro.attack.key_recovery import CoefficientRecord, KeyRecoveryResult
    from repro.falcon.keygen import PublicKey
    from repro.leakage.capture import CaptureCampaign
    from repro.leakage.device import DeviceModel
    from repro.leakage.synth import TraceLayout
    from repro.leakage.traceset import TraceSet

__all__ = ["FprMulTarget"]


class FprMulTarget:
    """TargetPoint adapter over the original (pinned) attack pipeline."""

    name = "fpr-mul"
    has_forgery = True
    step_labels: tuple[str, ...] = MUL_STEP_LABELS

    def layout(self, device: "DeviceModel") -> "TraceLayout":
        from repro.leakage.synth import trace_layout

        return trace_layout(device)

    def n_targets(self, campaign: "CaptureCampaign") -> int:
        return int(campaign.sk.params.n)

    def capture_traceset(self, campaign: "CaptureCampaign", target_index: int) -> "TraceSet":
        # The legacy capture body runs directly (campaign.capture only
        # dispatches away from itself for non-default surfaces).
        return campaign.capture(target_index)

    def recover(
        self,
        traceset: "TraceSet",
        config: "AttackConfig",
        distinguisher: Any = None,
    ) -> "CoefficientRecovery":
        from repro.attack.coefficient import recover_coefficient

        return recover_coefficient(traceset, config, distinguisher=distinguisher)

    def make_record(
        self,
        recovery: "CoefficientRecovery",
        traceset: "TraceSet",
        elapsed_seconds: float,
        n_requested: int,
    ) -> "CoefficientRecord":
        from repro.attack.key_recovery import CoefficientRecord

        return CoefficientRecord(
            target_index=traceset.target_index,
            elapsed_seconds=elapsed_seconds,
            n_traces_requested=n_requested,
            n_traces_kept=tuple(seg.n_traces for seg in traceset.segments),
            correct=recovery.correct,
            sign_margin=recovery.sign.margin,
            exponent_margin=recovery.exponent.margin,
            mantissa_margin=recovery.mantissa_margin,
        )

    def rebuild(
        self,
        recoveries: "list[Any]",
        records: "list[CoefficientRecord]",
        pk: "PublicKey",
        notify: Any,
    ) -> "KeyRecoveryResult":
        from repro.attack.key_recovery import rebuild_signing_key

        return rebuild_signing_key(recoveries, records, pk, notify)
