"""The ``samplerz`` surface: RCDT walk + rejection-loop leakage.

SamplerZ (FALCON Algorithm 12-14) is the other universally-implemented
secret hot spot besides the fpr multiply: every signature makes 2n calls
through :func:`repro.falcon.ffsampling.ffsampling`, and each call's
output ``z`` feeds straight into the short lattice vector. Bi-SamplerZ
(arXiv:2505.24509) breaks FALCON from single-bit leakage of exactly the
intermediates this surface captures; GALACTICS (arXiv:1910.06185-style
attacks on BLISS) established that sampler-adjacent leakage suffices to
break a full signature scheme. This module makes that family of attacks
a registered end-to-end citizen of the pipeline.

**Victim model.** One seeded signing is executed with the instrumented
:func:`repro.falcon.samplerz.samplerz_trace` hook; each of its 2n
samplerz calls is one *target*. The device replays that call
``n_traces`` times (a triggered oscilloscope re-arming on the same
sampler invocation — standard practice for single-execution targets)
and emits noisy Hamming-weight leakage of the 26
:data:`~repro.falcon.samplerz.SAMPLERZ_STEP_LABELS` intermediates: the
rejection-loop iteration count, the 72-bit RCDT draw (three 24-bit
limbs), the 18 thermometer-comparison bits ``cmp_i = [u < RCDT[i]]``
whose sum *is* ``z0``, the sign bit ``b``, and the assembled outputs.

**Hypothesis engine.** The candidate space is tiny — ``z0`` in
``0..len(RCDT)`` and ``b`` in {0, 1} determine ``z = b + (2b-1) z0``
and every predictable step value — so instead of Pearson CPA (which
degenerates on replay captures: the hypothesis column is constant
across replays) the surface scores candidates with a calibrated affine
template: predicted sample mean ``offset + gain * HW(step value)``
against the measured per-step means, ranked by negative squared error.
The ``gain``/``offset`` calibration rides in the TraceSet meta,
modeling the profiling step an attacker performs on a clone device.

**Recovered secret.** The center-relative draw ``z`` of every call —
ffSampling's Gaussian outputs. (The absolute output ``z + floor(mu)``
needs the secret-dependent center ``mu``; recovering the per-call ``z``
transcript is the sampler-leakage primitive the cited attacks build
key recovery from.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.falcon.samplerz import (
    RCDT,
    SAMPLERZ_STEP_LABELS,
    SamplerZTrace,
    samplerz_trace,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.attack.config import AttackConfig
    from repro.attack.key_recovery import CoefficientRecord, KeyRecoveryResult
    from repro.falcon.keygen import PublicKey, SecretKey
    from repro.leakage.capture import CaptureCampaign
    from repro.leakage.device import DeviceModel
    from repro.leakage.synth import TraceLayout
    from repro.leakage.traceset import TraceSet

__all__ = ["SamplerZTarget", "SamplerZRecovery", "traced_signing"]

_U64 = (1 << 64) - 1


def _hw(v: int) -> int:
    return bin(v).count("1")


def traced_signing(sk: "SecretKey", seed: int) -> list[SamplerZTrace]:  # sast: declassify(reason=capture layer models the victim signing and consumes sk by design (leakage model boundary))
    """One seeded signing with every samplerz call instrumented.

    Replicates :func:`repro.falcon.sign.sign` — salt + message from the
    campaign's domain-separated stream, HashToPoint, the (t0, t1)
    target, then ffSampling — but routes the sampler through
    :func:`~repro.falcon.samplerz.samplerz_trace`, which consumes the
    RNG byte-for-byte like the plain sampler (the recording is passive).
    Returns the 2n per-call traces in execution order.
    """
    from repro.falcon.ffsampling import ffsampling
    from repro.falcon.hash_to_point import hash_to_point
    from repro.falcon.sign import sign_target
    from repro.utils.rng import ChaCha20Prng

    params = sk.params
    # Same domain-separation shape as the fpr-mul corpus stream, with
    # the surface name in the mode slot (a signing always hashes, so
    # the direct/hash distinction does not exist here).
    rng = ChaCha20Prng(("capture", seed, "samplerz", params.n).__repr__())
    salt = rng.randombytes(params.salt_len)
    msg = rng.randombytes(32)
    c = hash_to_point(salt + msg, params.q, params.n)
    t0, t1 = sign_target(sk, c)
    calls: list[SamplerZTrace] = []

    def sampler(center: float, sigma: float) -> int:
        trace = samplerz_trace(center, sigma, params.sigmin, rng)
        calls.append(trace)
        return trace.result

    ffsampling(t0, t1, sk.tree, sampler)
    return calls


@dataclass(frozen=True)
class SamplerZRecovery:
    """One recovered samplerz call: the center-relative draw ``z``.

    Mirrors the role :class:`~repro.attack.coefficient.
    CoefficientRecovery` plays for the fpr-mul surface (``value`` /
    ``correct`` / a decision margin), so the surface-agnostic engine
    can account for either.
    """

    call_index: int
    z0: int                      # recovered half-Gaussian base sample
    b: int                       # recovered sign-flip bit
    margin: float                # best-vs-runner-up template score gap
    true_value: int | None       # ground-truth z pattern (sims only)

    @property
    def z(self) -> int:
        """The recovered center-relative draw ``b + (2b-1) z0``."""
        return self.b + (2 * self.b - 1) * self.z0

    @property
    def value(self) -> int:
        """``z`` as the two's-complement u64 pattern of the z_val step."""
        return self.z & _U64

    @property
    def correct(self) -> bool | None:
        if self.true_value is None:
            return None
        return self.value == self.true_value


class SamplerZTarget:
    """TargetPoint for the discrete Gaussian sampler surface."""

    name = "samplerz"
    has_forgery = False
    step_labels: tuple[str, ...] = SAMPLERZ_STEP_LABELS
    #: Steps whose value a (z0, b) candidate fully determines — the
    #: template scores exactly these. The u limbs are excluded (the
    #: uniform draw is not predictable from the candidate) and so is
    #: z_out (it needs the secret center mu); iters is excluded because
    #: the accepted-iteration count does not discriminate (z0, b).
    predicted_labels: tuple[str, ...] = (
        *(f"cmp_{i:02d}" for i in range(len(RCDT))),
        "z0",
        "b",
        "z_val",
    )

    def layout(self, device: "DeviceModel") -> "TraceLayout":
        from repro.leakage.synth import TraceLayout

        return TraceLayout(
            samples_per_step=device.samples_per_step, labels=SAMPLERZ_STEP_LABELS
        )

    def n_targets(self, campaign: "CaptureCampaign") -> int:
        # ffSampling makes 4 sampler calls per leaf over n/2 leaves.
        return 2 * int(campaign.sk.params.n)

    def _calls(self, campaign: "CaptureCampaign") -> list[SamplerZTrace]:  # sast: declassify(reason=capture layer models the victim signing and consumes sk by design (leakage model boundary))
        calls = campaign._surface_cache.get("samplerz_calls")
        if calls is None:
            calls = traced_signing(campaign.sk, campaign.seed)
            campaign._surface_cache["samplerz_calls"] = calls
        return calls

    def capture_traceset(self, campaign: "CaptureCampaign", target_index: int) -> "TraceSet":  # sast: declassify(reason=capture layer emits modeled leakage of secret sampler intermediates by design (leakage model boundary))
        from repro.leakage.traceset import Segment, TraceSet
        from repro.obs import metrics
        from repro.obs.spans import span

        calls = self._calls(campaign)
        if not 0 <= target_index < len(calls):
            raise ValueError(
                f"target_index must be in 0..{len(calls) - 1}, got {target_index}"
            )
        call = calls[target_index]
        row = np.array([val for _, val in call.steps], dtype=np.uint64)
        values = np.tile(row, (campaign.n_traces, 1))
        # Same per-target RNG derivation as the fpr-mul capture, so
        # replays are independent across calls but reproducible per call.
        rng = np.random.default_rng((campaign.device.seed, campaign.seed, target_index))
        with span("capture", target=target_index, source="live"):
            if campaign.value_transform is not None:
                values = campaign.value_transform(values, rng)
            traces = campaign.device.emit(values, rng)
            segments = [
                Segment(
                    known_y=np.arange(campaign.n_traces, dtype=np.uint64),
                    traces=traces,
                    name="replay",
                )
            ]
            metrics.inc("capture.rows_kept", int(campaign.n_traces))
            metrics.inc("capture.tracesets", 1)
        return TraceSet(
            layout=self.layout(campaign.device),
            segments=segments,
            target_index=target_index,
            true_secret=call.z & _U64,
            meta={
                "n": campaign.sk.params.n,
                "mode": campaign.mode,
                "target": self.name,
                "call_index": target_index,
                # The attacker's clone-device calibration of the affine
                # HW response — the profiling assumption of the template.
                "gain": float(campaign.device.gain),
                "offset": float(campaign.device.offset),
                "n_requested": campaign.n_traces,
                "n_kept": (campaign.n_traces,),
            },
        )

    # -- hypothesis engine -------------------------------------------------

    def _predict(self, z0: int, b: int, gain: float, offset: float) -> dict[str, float]:
        """Predicted per-step sample mean for candidate (z0, b)."""
        z = b + (2 * b - 1) * z0
        values = {
            # RCDT is decreasing, so u < RCDT[i] holds exactly for i < z0.
            **{f"cmp_{i:02d}": (1 if i < z0 else 0) for i in range(len(RCDT))},
            "z0": z0,
            "b": b,
            "z_val": z & _U64,
        }
        return {lab: offset + gain * _hw(v) for lab, v in values.items()}

    def recover(
        self,
        traceset: "TraceSet",
        config: "AttackConfig",
        distinguisher: Any = None,
    ) -> SamplerZRecovery:
        """Decode (z0, b) from one call's replay traces.

        ``distinguisher`` is accepted for engine-interface parity but
        unused: replay captures make every hypothesis column constant
        across traces, which degenerates Pearson-style scorers, so this
        surface ships its own calibrated-template engine (see the
        module docstring).
        """
        from repro.obs import metrics

        layout = traceset.layout
        gain = float(traceset.meta.get("gain", 1.0))
        offset = float(traceset.meta.get("offset", 10.0))
        measured: dict[str, float] = {}
        rows = 0
        for seg in traceset.segments:
            rows += seg.n_traces
        for label in self.predicted_labels:
            sl = layout.slice_of(label)
            measured[label] = float(
                np.mean([np.mean(seg.traces[:, sl]) for seg in traceset.segments])
            )
        scored: list[tuple[float, int, int]] = []
        for z0 in range(len(RCDT) + 1):
            for b in (0, 1):
                predicted = self._predict(z0, b, gain, offset)
                sse = sum(
                    (measured[lab] - predicted[lab]) ** 2
                    for lab in self.predicted_labels
                )
                scored.append((-sse, z0, b))
        scored.sort(key=lambda t: -t[0])
        best_score, z0, b = scored[0]
        metrics.inc("cpa.score_calls", len(scored))
        metrics.inc("cpa.rows_correlated", rows)
        return SamplerZRecovery(
            call_index=traceset.target_index,
            z0=z0,
            b=b,
            margin=best_score - scored[1][0],
            true_value=traceset.true_secret,
        )

    # -- engine records ----------------------------------------------------

    def make_record(
        self,
        recovery: SamplerZRecovery,
        traceset: "TraceSet",
        elapsed_seconds: float,
        n_requested: int,
    ) -> "CoefficientRecord":
        from repro.attack.key_recovery import CoefficientRecord

        return CoefficientRecord(
            target_index=traceset.target_index,
            elapsed_seconds=elapsed_seconds,
            n_traces_requested=n_requested,
            n_traces_kept=tuple(seg.n_traces for seg in traceset.segments),
            correct=recovery.correct,
            mantissa_margin=recovery.margin,
        )

    def rebuild(
        self,
        recoveries: list[Any],
        records: "list[CoefficientRecord]",
        pk: "PublicKey",
        notify: Any,
    ) -> "KeyRecoveryResult":
        """Assemble the recovered per-call draws into the campaign result.

        No forgery follows directly (``has_forgery`` is False): the
        deliverable is the ffSampling sampler transcript — the
        primitive Bi-SamplerZ-style key recovery consumes. ``pk`` is
        unused but kept for rebuild-interface parity.
        """
        from repro.attack.key_recovery import KeyRecoveryResult, ProgressEvent
        from repro.obs.spans import span

        notify(
            ProgressEvent(
                "rebuild", 0, 1, message="assembling ffSampling sampler transcript"
            )
        )
        with span("rebuild"):
            values = [int(r.value) for r in recoveries]
        return KeyRecoveryResult(
            f=[],
            g=[],
            big_f=[],
            big_g=[],
            recovered_sk=None,
            coefficients=list(recoveries),
            records=list(records),
            recovered_values=values,
        )
