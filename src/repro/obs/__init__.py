"""Observability: structured telemetry for long attack campaigns.

Three zero-dependency pieces, designed to survive the engine's
``ProcessPoolExecutor`` fan-out:

* :mod:`repro.obs.metrics` — counters / gauges / histograms with
  mergeable :class:`MetricsSnapshot`\\ s; each worker accumulates into a
  scoped registry and the parent merges, so parallel totals equal
  serial totals.
* :mod:`repro.obs.spans` — :func:`span` timing context manager building
  the hierarchical stage tree (capture → extend / prune / sign /
  exponent → repair → rebuild → forge).
* :mod:`repro.obs.journal` — :class:`RunJournal`, a JSONL event sink
  unifying the ProgressEvent stream, finished span trees, and metric
  snapshots; console progress is a journal subscriber on stderr.

See ``docs/observability.md`` for the journal schema and metric names.
"""

from repro.obs.journal import (
    RunJournal,
    console_subscriber,
    format_progress,
    progress_event_to_payload,
    read_journal,
)
from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    current_registry,
    scoped_registry,
)
from repro.obs.spans import Span, attach, collect_spans, detached, span

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsSnapshot",
    "current_registry",
    "scoped_registry",
    "Span",
    "span",
    "collect_spans",
    "detached",
    "attach",
    "RunJournal",
    "read_journal",
    "console_subscriber",
    "format_progress",
    "progress_event_to_payload",
]
