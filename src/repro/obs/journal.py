"""The run journal: one JSONL stream for progress, spans, and metrics.

Before this module the attack engine had three disjoint outputs — a
``print``-based progress callback, per-coefficient timing buried in
:class:`~repro.attack.key_recovery.CoefficientRecord`, and nothing at
all for metrics. A :class:`RunJournal` unifies them: every event is one
JSON object on its own line (``{"ts": ..., "seq": ..., "event": ...,
...}``), appended (and flushed) to the sink file, and simultaneously
fanned out to in-process subscribers. The stock console progress
renderer is just such a subscriber writing to *stderr*, so piping the
JSONL (or any other stdout consumer) never sees progress chatter
interleaved into machine-readable output.

Event vocabulary (see ``docs/observability.md`` for the full schema):

``run_start`` / ``run_end``
    campaign parameters, then outcome + wall clock.
``progress``
    one :class:`~repro.attack.key_recovery.ProgressEvent`, flattened
    (``stage``/``completed``/``total``/``message`` + the per-coefficient
    ``record`` fields when present).
``span``
    a finished :class:`~repro.obs.spans.Span` tree (nested).
``metrics``
    a :class:`~repro.obs.metrics.MetricsSnapshot`.

``read_journal`` parses a sink back into the list of event dicts, which
is the round-trip the tests pin down.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from typing import Any, Callable, TextIO

from repro.obs.metrics import MetricsSnapshot
from repro.obs.spans import Span

__all__ = [
    "RunJournal",
    "read_journal",
    "progress_event_to_payload",
    "format_progress",
    "console_subscriber",
]


def _json_default(obj: Any) -> Any:
    """Last-resort encoder: numpy scalars/arrays, dataclasses, bytes."""
    if hasattr(obj, "item"):          # numpy scalar
        return obj.item()
    if hasattr(obj, "tolist"):        # numpy array
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, bytes):
        return obj.decode("utf-8", "replace")
    return str(obj)


def progress_event_to_payload(event: Any) -> dict[str, Any]:
    """Flatten a ProgressEvent (duck-typed) into journal payload fields."""
    payload: dict[str, Any] = {
        "stage": event.stage,
        "completed": int(event.completed),
        "total": int(event.total),
    }
    if getattr(event, "message", ""):
        payload["message"] = event.message
    record = getattr(event, "record", None)
    if record is not None:
        payload["record"] = {
            "target_index": int(record.target_index),
            "elapsed_seconds": float(record.elapsed_seconds),
            "n_traces_requested": int(record.n_traces_requested),
            "n_traces_used": int(record.n_traces_used),
            "correct": record.correct,
            "sign_margin": float(record.sign_margin),
            "exponent_margin": float(record.exponent_margin),
            "mantissa_margin": float(record.mantissa_margin),
        }
    return payload


def format_progress(payload: dict[str, Any]) -> str | None:
    """Human one-liner for a ``progress`` payload (None = nothing to say)."""
    record = payload.get("record")
    if record is not None:
        correct = record.get("correct")
        status = "ok " if correct else ("?? " if correct is None else "BAD")
        line = (
            f"  [{payload['completed']:4d}/{payload['total']}] "
            f"coefficient {record['target_index']:4d}: {status} "
            f"{record['elapsed_seconds']:6.2f}s "
            f"traces={record['n_traces_used']} "
            f"margin={record['exponent_margin']:.3f}"
        )
        if payload.get("message"):
            line += f" ({payload['message']})"
        return line
    if payload.get("message"):
        return f"  {payload['stage']}: {payload['message']}"
    return None


def console_subscriber(record: dict[str, Any], stream: TextIO | None = None) -> None:
    """Journal subscriber rendering ``progress`` events to stderr.

    Console progress and the JSONL sink thus come from one event
    stream — there is no second ``print`` path to fall out of sync (or
    to corrupt piped stdout).
    """
    if record.get("event") != "progress":
        return
    line = format_progress(record)
    if line:
        print(line, file=stream if stream is not None else sys.stderr, flush=True)


class RunJournal:
    """Append-only JSONL event sink with in-process fan-out.

    ``path=None`` makes a pure pub/sub hub (subscribers only), which is
    how ``--progress`` without ``--log-json`` runs. The file is opened
    in append mode and flushed per event, so a crashed campaign's
    journal is readable up to the last completed event.
    """

    def __init__(
        self,
        path: str | None = None,
        subscribers: tuple[Callable[[dict[str, Any]], None], ...] = (),
    ) -> None:
        self.path = path
        self._fh = open(path, "a") if path else None
        self._subscribers: list[Callable[[dict[str, Any]], None]] = list(subscribers)
        self._seq = 0

    def subscribe(self, fn: Callable[[dict[str, Any]], None]) -> None:
        self._subscribers.append(fn)

    def emit(self, event: str, **payload: Any) -> dict[str, Any]:
        """Record one event; returns the full record dict."""
        record: dict[str, Any] = {"ts": round(time.time(), 6), "seq": self._seq, "event": event}
        record.update(payload)
        self._seq += 1
        if self._fh is not None:
            self._fh.write(json.dumps(record, default=_json_default) + "\n")
            self._fh.flush()
        for fn in self._subscribers:
            fn(record)
        return record

    # -- typed emitters ----------------------------------------------------

    def emit_progress(self, event: Any) -> dict[str, Any]:
        """One ProgressEvent from the attack engine (duck-typed)."""
        return self.emit("progress", **progress_event_to_payload(event))

    def emit_span(self, s: Span, **extra: Any) -> dict[str, Any]:
        return self.emit("span", span=s.to_jsonable(), **extra)

    def emit_metrics(self, snapshot: MetricsSnapshot, scope: str = "run") -> dict[str, Any]:
        return self.emit("metrics", scope=scope, metrics=snapshot.to_jsonable())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"RunJournal(path={self.path!r}, events={self._seq})"


def read_journal(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL journal back into event dicts (in emission order).

    A torn final line (crash mid-write) is tolerated and dropped — every
    complete line is a complete JSON object by construction.
    """
    events: list[dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events
