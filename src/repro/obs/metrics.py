"""Process-wide metrics: counters, gauges, histograms — mergeable snapshots.

A Section-IV campaign fans per-coefficient attacks out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, so a single in-process
registry cannot see the whole run: each worker process accumulates into
its own registry and the parent merges the returned snapshots. The
design here makes that the *only* model — every unit of work (one
per-coefficient attack, one full campaign) runs inside
:func:`scoped_registry`, the instrumented code writes through the
module-level :func:`inc`/:func:`set_gauge`/:func:`observe` helpers into
whatever registry is innermost, and the finished scope's
:class:`MetricsSnapshot` is merged into the enclosing registry by
whoever launched it (same-process caller or pool parent — the merged
totals are identical either way, which is what the cross-process
equivalence test pins down).

Snapshots are plain dataclasses of dicts: picklable (workers return
them), JSON-able (the :class:`~repro.obs.journal.RunJournal` emits
them), and additive (counters sum, histogram moments combine, gauges
take the most recent write).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "HistogramSummary",
    "MetricsSnapshot",
    "MetricsRegistry",
    "current_registry",
    "scoped_registry",
    "inc",
    "set_gauge",
    "observe",
]


@dataclass
class HistogramSummary:
    """Streaming summary of one observed distribution (no raw samples)."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "HistogramSummary") -> "HistogramSummary":
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_jsonable(cls, obj: dict[str, Any]) -> "HistogramSummary":
        return cls(
            count=int(obj["count"]),
            total=float(obj["total"]),
            min=math.inf if obj.get("min") is None else float(obj["min"]),
            max=-math.inf if obj.get("max") is None else float(obj["max"]),
        )

    def copy(self) -> "HistogramSummary":
        return HistogramSummary(self.count, self.total, self.min, self.max)


@dataclass
class MetricsSnapshot:
    """A frozen view of one registry — additive across workers.

    ``merge`` mutates and returns ``self`` so parents can fold a stream
    of per-worker snapshots in without intermediate copies; counters and
    histograms are disjoint-partition additive, gauges are last-write
    (the merged-in snapshot wins, matching "most recent observation").
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            if name in self.histograms:
                self.histograms[name].merge(hist)
            else:
                self.histograms[name] = hist.copy()
        return self

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_jsonable() for k, h in self.histograms.items()},
        }

    @classmethod
    def from_jsonable(cls, obj: dict[str, Any]) -> "MetricsSnapshot":
        return cls(
            counters={k: v for k, v in obj.get("counters", {}).items()},
            gauges={k: v for k, v in obj.get("gauges", {}).items()},
            histograms={
                k: HistogramSummary.from_jsonable(h)
                for k, h in obj.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """One process's (or one scope's) accumulation point."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = HistogramSummary()
        hist.observe(value)

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={k: h.copy() for k, h in self._histograms.items()},
        )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a finished scope's (or worker's) snapshot into this registry."""
        for name, value in snap.counters.items():
            self.inc(name, value)
        for name, value in snap.gauges.items():
            self.set_gauge(name, value)
        for name, hist in snap.histograms.items():
            if name in self._histograms:
                self._histograms[name].merge(hist)
            else:
                self._histograms[name] = hist.copy()

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


# The innermost registry receives every write; the bottom entry is the
# process-wide default so instrumentation is always collected somewhere.
_STACK: list[MetricsRegistry] = [MetricsRegistry()]


def current_registry() -> MetricsRegistry:
    """The registry module-level writes currently land in."""
    return _STACK[-1]


@contextmanager
def scoped_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:  # sast: declassify(rules=CC001, reason=registry stack is intentionally per-process; workers return snapshots the parent merges)
    """Collect every metric written inside the block into a fresh registry.

    Writes go *only* to the scoped registry — the caller is responsible
    for merging ``registry.snapshot()`` into its own scope afterwards
    (that responsibility is what makes serial and multi-process runs
    account identically: in both cases exactly one merge happens, in the
    parent).
    """
    reg = registry if registry is not None else MetricsRegistry()
    _STACK.append(reg)
    try:
        yield reg
    finally:
        _STACK.remove(reg)


def _reset_state() -> None:
    """Fresh process-wide state (pool-worker initializers, tests)."""
    del _STACK[1:]
    _STACK[0].reset()


def inc(name: str, value: float = 1) -> None:
    _STACK[-1].inc(name, value)


def set_gauge(name: str, value: float) -> None:
    _STACK[-1].set_gauge(name, value)


def observe(name: str, value: float) -> None:
    _STACK[-1].observe(name, value)
