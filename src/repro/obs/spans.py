"""Hierarchical timing spans: where the trace budget's wall clock goes.

``span("prune")`` opens a timed region; spans opened inside it become
children, so one per-coefficient attack reconstructs the full stage
tree of the paper's pipeline — capture → extend / prune / sign /
exponent → (globally) repair → NTRU rebuild → forgery — with measured
seconds at every node. Each closed span also feeds a
``stage_seconds.<name>`` histogram into the current metrics registry,
so aggregate per-stage cost is available even when nobody keeps the
trees.

Workers run each target inside :func:`detached` so their span tree is
always rooted at the target (never silently grafted onto whatever the
forked parent had open); the parent re-attaches the returned root with
:func:`attach`. Span objects are plain picklable dataclasses with a
JSON round-trip, so they travel across the pool boundary and into the
:class:`~repro.obs.journal.RunJournal` unchanged.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs import metrics

__all__ = ["Span", "span", "collect_spans", "detached", "attach"]


@dataclass
class Span:
    """One timed region of the attack, with nested children."""

    name: str
    started_at: float = 0.0          # wall-clock (time.time) for journal ordering
    duration_s: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def stage_seconds(self) -> dict[str, float]:
        """Seconds per direct-child stage name (same-name spans summed)."""
        out: dict[str, float] = {}
        for child in self.children:
            out[child.name] = out.get(child.name, 0.0) + child.duration_s
        return out

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (depth-first, self included) with ``name``."""
        for s in self.walk():
            if s.name == name:
                return s
        return None

    def to_jsonable(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_jsonable() for c in self.children]
        return out

    @classmethod
    def from_jsonable(cls, obj: dict[str, Any]) -> "Span":
        return cls(
            name=str(obj["name"]),
            started_at=float(obj.get("started_at", 0.0)),
            duration_s=float(obj.get("duration_s", 0.0)),
            attrs=dict(obj.get("attrs", {})),
            children=[cls.from_jsonable(c) for c in obj.get("children", [])],
        )


class _SpanState:
    __slots__ = ("open", "collectors")

    def __init__(self) -> None:
        self.open: list[Span] = []
        self.collectors: list[list[Span]] = []


_STATE = _SpanState()


def _reset_state() -> None:
    """Fresh process-wide state (pool-worker initializers, tests)."""
    _STATE.open.clear()
    _STATE.collectors.clear()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:  # sast: declassify(rules=CC001, reason=span stack is intentionally per-process context; worker span trees are serialized back and merged)
    """Time a region; nests under any currently open span.

    The yielded :class:`Span` can be annotated further (``s.attrs``)
    while open. On close the duration is final, a
    ``stage_seconds.<name>`` observation lands in the current metrics
    registry, and — if the span was a root — it is delivered to every
    active :func:`collect_spans` list.
    """
    s = Span(name=name, started_at=time.time(), attrs=dict(attrs))
    parent = _STATE.open[-1] if _STATE.open else None
    if parent is not None:
        parent.children.append(s)
    _STATE.open.append(s)
    t0 = time.perf_counter()
    try:
        yield s
    finally:
        s.duration_s = time.perf_counter() - t0
        _STATE.open.pop()
        metrics.observe(f"stage_seconds.{name}", s.duration_s)
        if parent is None:
            for collector in _STATE.collectors:
                collector.append(s)


@contextmanager
def collect_spans() -> Iterator[list[Span]]:
    """Yield a list that accumulates every root span closed in the block."""
    roots: list[Span] = []
    _STATE.collectors.append(roots)
    try:
        yield roots
    finally:
        _STATE.collectors.remove(roots)


@contextmanager
def detached() -> Iterator[list[Span]]:
    """Run the block with an empty span context, collecting its roots.

    Inside the block no span has an implicit parent — exactly the view a
    pool worker has — so the same instrumentation produces the same
    trees whether a target runs in-process or in a worker. Yields the
    list of root spans closed inside the block.
    """
    saved_open, saved_collectors = _STATE.open, _STATE.collectors
    roots: list[Span] = []
    _STATE.open, _STATE.collectors = [], [roots]
    try:
        yield roots
    finally:
        _STATE.open, _STATE.collectors = saved_open, saved_collectors


def attach(s: Span) -> None:
    """Graft a finished (detached/worker) span into the current context.

    Becomes a child of the innermost open span, or is delivered to the
    active collectors when nothing is open.
    """
    if _STATE.open:
        _STATE.open[-1].children.append(s)
    else:
        for collector in _STATE.collectors:
            collector.append(s)
