"""A complete from-scratch implementation of the FALCON signature scheme.

This is the substrate the attacked computation lives in: key generation
(NTRUGen with the tower-of-rings NTRUSolve), the ffLDL* Falcon tree, fast
Fourier sampling with SamplerZ, SHAKE-256 hash-to-point, signature
compression, signing and NTT-based verification.

The implementation follows the FALCON specification (round 3). It is not
constant time — this repository *simulates* the physical leakage channel
explicitly (:mod:`repro.leakage`), so host-level timing is irrelevant.

Quickstart::

    from repro.falcon import FalconParams, keygen, sign, verify

    params = FalconParams.get(64)          # toy ring; 512/1024 also work
    sk, pk = keygen(params, seed=b"demo")
    sig = sign(sk, b"message")
    assert verify(pk, b"message", sig)
"""

from repro.falcon.params import FalconParams, Q
from repro.falcon.keygen import keygen, SecretKey, PublicKey
from repro.falcon.sign import sign, Signature
from repro.falcon.verify import verify

__all__ = [
    "FalconParams",
    "Q",
    "keygen",
    "SecretKey",
    "PublicKey",
    "sign",
    "Signature",
    "verify",
]
