"""Wire-format encodings from the FALCON specification (Section 3.11).

* Public keys: a header byte 0x00 | logn, then the n coefficients of h
  packed as 14-bit big-endian fields.
* Private keys: a header byte 0x50 | logn, then f, g, F packed as
  fixed-width signed two's-complement fields; the widths depend on n
  exactly as in the spec (f, g: 8 bits at n = 512, wider for small n;
  F always 8 bits). G is not stored — it is recomputed from the NTRU
  equation G = (q + g F) / f over the ring, which this module does on
  decode.

These encoders make stored keys interoperable-shaped (byte-for-byte
layout of the reference implementation for the supported header/field
widths) and exercise the same "recompute G" path an embedded decoder
uses.
"""

from __future__ import annotations

from repro.falcon.keygen import PublicKey, SecretKey, derive_secret_key
from repro.falcon.params import FalconParams
from repro.math import fft, poly

__all__ = ["encode_public_key", "decode_public_key", "encode_secret_key", "decode_secret_key", "CodecError"]


class CodecError(ValueError):
    """Malformed key encoding."""


#: Spec Table 3.2: bit width of f and g coefficients per logn.
_FG_BITS = {1: 8, 2: 8, 3: 8, 4: 8, 5: 8, 6: 7, 7: 7, 8: 6, 9: 6, 10: 5}
_F_BITS = 8          # F (and G) always fit signed 8 bits
_H_BITS = 14         # q = 12289 < 2^14


class _BitPacker:
    def __init__(self) -> None:
        self._acc = 0
        self._nbits = 0
        self._out = bytearray()

    def push(self, value: int, nbits: int) -> None:
        if not 0 <= value < 1 << nbits:
            raise CodecError(f"value {value} does not fit {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
    def finish(self) -> bytes:
        if self._nbits:
            self._out.append((self._acc << (8 - self._nbits)) & 0xFF)
            self._acc = 0
            self._nbits = 0
        return bytes(self._out)


class _BitUnpacker:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def pull(self, nbits: int) -> int:
        out = 0
        for _ in range(nbits):
            if self._pos >= 8 * len(self._data):
                raise CodecError("truncated key encoding")
            byte = self._data[self._pos >> 3]
            out = (out << 1) | ((byte >> (7 - (self._pos & 7))) & 1)
            self._pos += 1
        return out

    def padding_is_zero(self) -> bool:
        while self._pos < 8 * len(self._data):
            if self.pull(1):
                return False
        return True


def _logn(n: int) -> int:
    return n.bit_length() - 1


def encode_public_key(pk: PublicKey) -> bytes:
    """Header 0x00|logn then 14-bit packed h."""
    packer = _BitPacker()
    for coeff in pk.h:
        if not 0 <= coeff < pk.params.q:
            raise CodecError(f"h coefficient {coeff} out of range")
        packer.push(coeff, _H_BITS)
    return bytes([0x00 | _logn(pk.params.n)]) + packer.finish()


def decode_public_key(data: bytes) -> PublicKey:
    if not data:
        raise CodecError("empty public key")
    head = data[0]
    if head & 0xF0 != 0x00:
        raise CodecError(f"bad public key header {head:#04x}")
    n = 1 << (head & 0x0F)
    params = FalconParams.get(n)
    expected = 1 + (n * _H_BITS + 7) // 8
    if len(data) != expected:
        raise CodecError(f"public key must be {expected} bytes, got {len(data)}")
    unpacker = _BitUnpacker(data[1:])
    h = [unpacker.pull(_H_BITS) for _ in range(n)]
    if any(v >= params.q for v in h):
        raise CodecError("h coefficient exceeds q")
    if not unpacker.padding_is_zero():
        raise CodecError("non-zero padding in public key")
    return PublicKey(params=params, h=h)


def _push_signed(packer: _BitPacker, coeffs: list[int], nbits: int) -> None:
    lo, hi = -(1 << (nbits - 1)) + 1, (1 << (nbits - 1)) - 1
    for c in coeffs:
        if not lo <= c <= hi:
            raise CodecError(f"coefficient {c} does not fit signed {nbits} bits")
        packer.push(c & ((1 << nbits) - 1), nbits)


def _pull_signed(unpacker: _BitUnpacker, n: int, nbits: int) -> list[int]:
    out = []
    sign_bit = 1 << (nbits - 1)
    for _ in range(n):
        v = unpacker.pull(nbits)
        if v & sign_bit:
            v -= 1 << nbits
        if v == -(1 << (nbits - 1)):
            raise CodecError("non-canonical minimum-value coefficient")
        out.append(v)
    return out


def encode_secret_key(sk: SecretKey) -> bytes:
    """Header 0x50|logn then fixed-width f, g, F (G is recomputed)."""
    logn = _logn(sk.params.n)
    fg_bits = _FG_BITS[logn]
    packer = _BitPacker()
    _push_signed(packer, sk.f, fg_bits)
    _push_signed(packer, sk.g, fg_bits)
    _push_signed(packer, sk.big_f, _F_BITS)
    return bytes([0x50 | logn]) + packer.finish()


def decode_secret_key(data: bytes) -> SecretKey:
    """Decode and rebuild the full key, recomputing G then the tree."""
    if not data:
        raise CodecError("empty secret key")
    head = data[0]
    if head & 0xF0 != 0x50:
        raise CodecError(f"bad secret key header {head:#04x}")
    logn = head & 0x0F
    n = 1 << logn
    params = FalconParams.get(n)
    fg_bits = _FG_BITS[logn]
    total_bits = 2 * n * fg_bits + n * _F_BITS
    expected = 1 + (total_bits + 7) // 8
    if len(data) != expected:
        raise CodecError(f"secret key must be {expected} bytes, got {len(data)}")
    unpacker = _BitUnpacker(data[1:])
    f = _pull_signed(unpacker, n, fg_bits)
    g = _pull_signed(unpacker, n, fg_bits)
    big_f = _pull_signed(unpacker, n, _F_BITS)
    if not unpacker.padding_is_zero():
        raise CodecError("non-zero padding in secret key")
    big_g = _recompute_big_g(f, g, big_f, params.q)
    return derive_secret_key(params, f, g, big_f, big_g)


def _recompute_big_g(f: list[int], g: list[int], big_f: list[int], q: int) -> list[int]:
    """G = (q + g F) / f in Q[x]/(x^n + 1), known to be integral.

    Computed exactly: solve f * G = q + g F via the FFT for the values
    and verify with integer arithmetic.
    """
    n = len(f)
    rhs = poly.add(poly.constant(q, n), poly.mul(g, big_f))
    f_fft = fft.fft([float(c) for c in f])
    rhs_fft = fft.fft([float(c) for c in rhs])
    big_g = [int(round(v)) for v in fft.ifft(rhs_fft / f_fft)]
    # exact verification (floats only guided the rounding)
    if poly.sub(poly.mul(f, big_g), rhs) != [0] * n:
        raise CodecError("secret key fails the NTRU equation (corrupt encoding)")
    return big_g
