"""SamplerZ: FALCON's discrete Gaussian sampler over the integers.

Two interchangeable implementations:

* :func:`samplerz` — the specification's structure (Algorithm 12-14):
  a half-Gaussian base sampler driven by a reverse cumulative
  distribution table (RCDT) at sigma_max = 1.8205, a random sign flip,
  and a Bernoulli rejection with probability ccs * exp(-x).
  The RCDT is recomputed at import time to 72 fractional bits with
  :mod:`mpmath`, and the Bernoulli trial uses the host's double-precision
  ``exp`` instead of the spec's fixed-point polynomial — statistically
  equivalent (relative error < 2^-52 vs the spec's 2^-45 target), though
  not bit-compatible with the spec's test vectors (our RNG differs
  anyway; the distribution is cross-checked against
  :func:`repro.math.gaussian.sample_dgauss` with chi-square tests).

* :func:`samplerz_simple` — plain rejection sampling, used as the
  statistical reference in tests.

Both draw randomness from the ``rng`` objects of :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import math

from repro.falcon.params import SIGMA_MAX
from repro.math.gaussian import sample_dgauss
from repro.utils.rng import ChaCha20Prng, SystemRng

__all__ = ["RCDT", "base_sampler", "samplerz", "samplerz_simple", "MAX_SIGMA"]

MAX_SIGMA = SIGMA_MAX
_INV_2SIGMA2_MAX = 1.0 / (2.0 * SIGMA_MAX * SIGMA_MAX)
_RCDT_BITS = 72


def _build_rcdt() -> tuple[int, ...]:
    """RCDT[i] = round(2^72 * P(z0 > i)) for the half-Gaussian at sigma_max.

    The half-Gaussian support is z0 >= 0 with P(z0 = z) proportional to
    exp(-z^2 / (2 sigma_max^2)); 18 entries suffice (beyond that the
    probability mass is below 2^-72).
    """
    import mpmath

    mpmath.mp.dps = 60
    sig = mpmath.mpf(str(SIGMA_MAX))
    rho = [mpmath.e ** (-(mpmath.mpf(z) ** 2) / (2 * sig * sig)) for z in range(64)]
    total = sum(rho)
    scale = mpmath.mpf(2) ** _RCDT_BITS
    out = []
    tail = total
    for z in range(64):
        tail -= rho[z]
        v = int(mpmath.nint(scale * tail / total))
        if v == 0:
            break
        out.append(v)
    return tuple(out)


RCDT: tuple[int, ...] = _build_rcdt()


def base_sampler(rng: ChaCha20Prng | SystemRng) -> int:
    """Sample z0 >= 0 from the half-Gaussian at sigma_max (Algorithm 12)."""
    u = int.from_bytes(rng.randombytes(_RCDT_BITS // 8), "little")
    z0 = 0
    for threshold in RCDT:
        z0 += u < threshold
    return z0


def _ber_exp(x: float, ccs: float, rng: ChaCha20Prng | SystemRng) -> bool:
    """Bernoulli trial with success probability ccs * exp(-x), x >= 0."""
    return rng.uniform() < ccs * math.exp(-x)


def samplerz(mu: float, sigma: float, sigmin: float, rng: ChaCha20Prng | SystemRng) -> int:
    """Sample from D_{Z, mu, sigma} (Algorithm 14 structure).

    ``sigmin <= sigma <= sigma_max`` as guaranteed by FALCON's normalized
    tree; ``ccs = sigmin / sigma`` rescales the acceptance probability so
    the iteration count is key independent in the real implementation.
    """
    if not sigmin <= sigma <= SIGMA_MAX + 1e-9:
        raise ValueError(f"sigma {sigma} outside [{sigmin}, {SIGMA_MAX}]")
    s = math.floor(mu)
    r = mu - s
    dss = 1.0 / (2.0 * sigma * sigma)
    ccs = sigmin / sigma
    while True:
        z0 = base_sampler(rng)
        b = rng.randombytes(1)[0] & 1
        z = b + (2 * b - 1) * z0
        x = ((z - r) ** 2) * dss - z0 * z0 * _INV_2SIGMA2_MAX
        if _ber_exp(x, ccs, rng):
            return z + s


def samplerz_simple(mu: float, sigma: float, rng: ChaCha20Prng | SystemRng) -> int:
    """Reference rejection sampler with the same signature (for tests)."""
    return sample_dgauss(mu, sigma, rng)
