"""SamplerZ: FALCON's discrete Gaussian sampler over the integers.

Two interchangeable implementations:

* :func:`samplerz` — the specification's structure (Algorithm 12-14):
  a half-Gaussian base sampler driven by a reverse cumulative
  distribution table (RCDT) at sigma_max = 1.8205, a random sign flip,
  and a Bernoulli rejection with probability ccs * exp(-x).
  The RCDT is recomputed at import time to 72 fractional bits with
  :mod:`mpmath`, and the Bernoulli trial uses the host's double-precision
  ``exp`` instead of the spec's fixed-point polynomial — statistically
  equivalent (relative error < 2^-52 vs the spec's 2^-45 target), though
  not bit-compatible with the spec's test vectors (our RNG differs
  anyway; the distribution is cross-checked against
  :func:`repro.math.gaussian.sample_dgauss` with chi-square tests).

* :func:`samplerz_simple` — plain rejection sampling, used as the
  statistical reference in tests.

Both draw randomness from the ``rng`` objects of :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.falcon.params import SIGMA_MAX
from repro.math.gaussian import sample_dgauss
from repro.utils.rng import ChaCha20Prng, SystemRng

__all__ = [
    "RCDT",
    "base_sampler",
    "samplerz",
    "samplerz_simple",
    "MAX_SIGMA",
    "SAMPLERZ_STEP_LABELS",
    "SAMPLERZ_STEP_WIDTHS",
    "SamplerZTrace",
    "samplerz_trace",
]

MAX_SIGMA = SIGMA_MAX
_INV_2SIGMA2_MAX = 1.0 / (2.0 * SIGMA_MAX * SIGMA_MAX)
_RCDT_BITS = 72


def _build_rcdt() -> tuple[int, ...]:
    """RCDT[i] = round(2^72 * P(z0 > i)) for the half-Gaussian at sigma_max.

    The half-Gaussian support is z0 >= 0 with P(z0 = z) proportional to
    exp(-z^2 / (2 sigma_max^2)); 18 entries suffice (beyond that the
    probability mass is below 2^-72).
    """
    import mpmath

    mpmath.mp.dps = 60
    sig = mpmath.mpf(str(SIGMA_MAX))
    rho = [mpmath.e ** (-(mpmath.mpf(z) ** 2) / (2 * sig * sig)) for z in range(64)]
    total = sum(rho)
    scale = mpmath.mpf(2) ** _RCDT_BITS
    out = []
    tail = total
    for z in range(64):
        tail -= rho[z]
        v = int(mpmath.nint(scale * tail / total))
        if v == 0:
            break
        out.append(v)
    return tuple(out)


RCDT: tuple[int, ...] = _build_rcdt()


def base_sampler(rng: ChaCha20Prng | SystemRng) -> int:
    """Sample z0 >= 0 from the half-Gaussian at sigma_max (Algorithm 12)."""
    u = int.from_bytes(rng.randombytes(_RCDT_BITS // 8), "little")
    z0 = 0
    for threshold in RCDT:
        z0 += u < threshold
    return z0


def _ber_exp(x: float, ccs: float, rng: ChaCha20Prng | SystemRng) -> bool:
    """Bernoulli trial with success probability ccs * exp(-x), x >= 0."""
    return rng.uniform() < ccs * math.exp(-x)


def samplerz(mu: float, sigma: float, sigmin: float, rng: ChaCha20Prng | SystemRng) -> int:
    """Sample from D_{Z, mu, sigma} (Algorithm 14 structure).

    ``sigmin <= sigma <= sigma_max`` as guaranteed by FALCON's normalized
    tree; ``ccs = sigmin / sigma`` rescales the acceptance probability so
    the iteration count is key independent in the real implementation.
    """
    if not sigmin <= sigma <= SIGMA_MAX + 1e-9:
        raise ValueError(f"sigma {sigma} outside [{sigmin}, {SIGMA_MAX}]")
    s = math.floor(mu)
    r = mu - s
    dss = 1.0 / (2.0 * sigma * sigma)
    ccs = sigmin / sigma
    while True:
        z0 = base_sampler(rng)
        b = rng.randombytes(1)[0] & 1
        z = b + (2 * b - 1) * z0
        x = ((z - r) ** 2) * dss - z0 * z0 * _INV_2SIGMA2_MAX
        if _ber_exp(x, ccs, rng):
            return z + s


def samplerz_simple(mu: float, sigma: float, rng: ChaCha20Prng | SystemRng) -> int:
    """Reference rejection sampler with the same signature (for tests)."""
    return sample_dgauss(mu, sigma, rng)


# -- instrumented execution (the samplerz leakage surface) ------------------
#
# Mirrors :mod:`repro.fpr.trace`: the same computation as :func:`samplerz`,
# re-run with every architectural intermediate recorded in execution
# order. The leakage simulator (:mod:`repro.targets.samplerz`) turns each
# recorded value into trace samples; :func:`samplerz` itself stays
# textually untouched so the leakage contract's reviewed findings on it
# keep their fingerprints.

#: Architectural intermediates of one accepted samplerz call, in
#: execution order. The RCDT walk contributes one thermometer-comparison
#: bit per table entry (``cmp_i = [u < RCDT[i]]``) — together they encode
#: z0 in unary, which is exactly the single-bit leakage Bi-SamplerZ-style
#: attacks consume — plus the rejection-loop iteration count, the 72-bit
#: uniform draw as three 24-bit limbs, and the assembled outputs.
SAMPLERZ_STEP_LABELS: tuple[str, ...] = (
    "iters",                                        # rejection-loop trips until accept
    "u_lo", "u_mid", "u_hi",                        # 72-bit RCDT draw, 24-bit limbs
    *(f"cmp_{i:02d}" for i in range(len(RCDT))),    # thermometer bits of the RCDT walk
    "z0",                                           # half-Gaussian base sample
    "b",                                            # sign-flip bit
    "z_val",                                        # z = b + (2b-1) z0, two's complement
    "z_out",                                        # z + floor(mu), two's complement
)

#: Bit width of each step's value (upper bound; used by leakage scaling).
SAMPLERZ_STEP_WIDTHS: dict[str, int] = {
    "iters": 8,
    "u_lo": 24,
    "u_mid": 24,
    "u_hi": 24,
    **{f"cmp_{i:02d}": 1 for i in range(len(RCDT))},
    "z0": 5,
    "b": 1,
    "z_val": 64,
    "z_out": 64,
}

_U64 = (1 << 64) - 1
_U24 = (1 << 24) - 1


@dataclass(frozen=True)
class SamplerZTrace:
    """All intermediates of one instrumented samplerz call."""

    mu: float
    sigma: float
    result: int                       # the returned sample z + floor(mu)
    z: int                            # the center-relative draw b + (2b-1) z0
    iters: int                        # rejection-loop iterations until accept
    steps: tuple[tuple[str, int], ...]

    def value(self, label: str) -> int:
        for lab, val in self.steps:
            if lab == label:
                return val
        raise KeyError(f"no step named {label!r}")

    @property
    def values(self) -> list[int]:
        return [val for _, val in self.steps]

    @property
    def labels(self) -> list[str]:
        return [lab for lab, _ in self.steps]


def samplerz_trace(mu: float, sigma: float, sigmin: float, rng: ChaCha20Prng | SystemRng) -> SamplerZTrace:  # sast: declassify(reason=instrumented leakage model of samplerz; records secret-dependent intermediates by design (trace hook, mirrors fpr_mul_trace))
    """Run :func:`samplerz` with every intermediate recorded.

    Consumes ``rng`` byte-for-byte like :func:`samplerz` (9 RCDT bytes +
    1 sign byte + one uniform per loop trip), so a traced execution and
    a plain one driven by the same seeded stream return the same sample
    — the recording is passive. Only the *accepted* iteration's RCDT
    walk is recorded (the device triggers on the accept, as the paper's
    bench triggers on the multiply), but the iteration count itself is a
    step: rejection counts are the other classic samplerz side channel.
    """
    if not sigmin <= sigma <= SIGMA_MAX + 1e-9:
        raise ValueError(f"sigma {sigma} outside [{sigmin}, {SIGMA_MAX}]")
    s = math.floor(mu)
    r = mu - s
    dss = 1.0 / (2.0 * sigma * sigma)
    ccs = sigmin / sigma
    iters = 0
    while True:
        iters += 1
        u = int.from_bytes(rng.randombytes(_RCDT_BITS // 8), "little")
        z0 = 0
        for threshold in RCDT:
            z0 += u < threshold
        b = rng.randombytes(1)[0] & 1
        z = b + (2 * b - 1) * z0
        x = ((z - r) ** 2) * dss - z0 * z0 * _INV_2SIGMA2_MAX
        if rng.uniform() < ccs * math.exp(-x):
            break
    steps = (
        ("iters", iters),
        ("u_lo", u & _U24),
        ("u_mid", (u >> 24) & _U24),
        ("u_hi", (u >> 48) & _U24),
        *((f"cmp_{i:02d}", 1 if u < RCDT[i] else 0) for i in range(len(RCDT))),
        ("z0", z0),
        ("b", b),
        ("z_val", z & _U64),
        ("z_out", (z + s) & _U64),
    )
    return SamplerZTrace(mu=mu, sigma=sigma, result=z + s, z=z, iters=iters, steps=steps)
