"""The FALCON tree (ffLDL*) and fast Fourier sampling (ffSampling).

The secret key's second component is a binary tree T obtained by the
recursive LDL* decomposition of the Gram matrix G = B_hat x B_hat* in the
FFT domain (spec Algorithm 9), with every leaf then normalized to
sigma / sqrt(leaf) (Algorithm 1, lines 6-8). Signing draws a lattice
point close to the target t by recursing down that tree and calling
SamplerZ at the leaves (Algorithm 11).

The recursion bottoms out at ring degree 2, where a polynomial's FFT is
the single complex value z0 + i z1: the two integer coefficients are the
real and imaginary parts and are sampled directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.math import fft

__all__ = ["LdlLeaf", "LdlNode", "ffldl", "normalize_tree", "ffsampling", "gram_from_basis", "tree_depth"]

SamplerFn = Callable[[float, float], int]  # (center, sigma) -> integer


@dataclass
class LdlLeaf:
    """A leaf of the FALCON tree: after normalization, a sampler sigma."""

    value: float


@dataclass
class LdlNode:
    """Internal node: l10 (FFT array) plus the two child trees."""

    l10: np.ndarray
    left: "TreeT"
    right: "TreeT"


TreeT = Union[LdlLeaf, LdlNode]


def gram_from_basis(
    b00: np.ndarray, b01: np.ndarray, b10: np.ndarray, b11: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Entries (g00, g01, g11) of G = B B* for a 2x2 FFT-domain basis.

    g10 is adj(g01) and is never materialized. g00 and g11 are
    self-adjoint (real-valued in the FFT domain).
    """
    g00 = b00 * np.conj(b00) + b01 * np.conj(b01)
    g01 = b00 * np.conj(b10) + b01 * np.conj(b11)
    g11 = b10 * np.conj(b10) + b11 * np.conj(b11)
    return g00, g01, g11


def _ldl(g00: np.ndarray, g01: np.ndarray, g11: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pointwise LDL* of [[g00, g01], [adj(g01), g11]].

    Returns (l10, d00, d11) with G = [[1,0],[l10,1]] diag(d00, d11) [[1, adj(l10)],[0,1]].
    """
    d00 = g00
    l10 = np.conj(g01) / g00
    d11 = g11 - l10 * np.conj(l10) * g00
    return l10, d00, d11


def ffldl(g00: np.ndarray, g01: np.ndarray, g11: np.ndarray) -> LdlNode:
    """Recursive ffLDL* of a self-adjoint 2x2 Gram in the FFT domain."""
    l10, d00, d11 = _ldl(g00, g01, g11)
    if len(g00) == 1:
        # Ring degree 2: children are real scalars (Gram determinant parts).
        return LdlNode(l10=l10, left=LdlLeaf(float(d00[0].real)), right=LdlLeaf(float(d11[0].real)))
    d00_0, d00_1 = fft.split_fft(d00)
    d11_0, d11_1 = fft.split_fft(d11)
    left = ffldl(d00_0, d00_1, d00_0)
    right = ffldl(d11_0, d11_1, d11_0)
    return LdlNode(l10=l10, left=left, right=right)


def normalize_tree(tree: TreeT, sigma: float) -> None:
    """Replace every leaf value d with sigma / sqrt(d), in place."""
    if isinstance(tree, LdlLeaf):
        if tree.value <= 0:
            raise ValueError(f"non-positive leaf in FALCON tree: {tree.value}")
        tree.value = sigma / np.sqrt(tree.value)
        return
    normalize_tree(tree.left, sigma)
    normalize_tree(tree.right, sigma)


def tree_depth(tree: TreeT) -> int:
    if isinstance(tree, LdlLeaf):
        return 0
    return 1 + max(tree_depth(tree.left), tree_depth(tree.right))


def ffsampling(
    t0: np.ndarray, t1: np.ndarray, tree: LdlNode, sampler: SamplerFn
) -> tuple[np.ndarray, np.ndarray]:
    """Fast Fourier nearest-plane sampling (spec Algorithm 11).

    ``t0``/``t1`` are FFT-domain targets; ``sampler(center, sigma)`` draws
    one integer from D_{Z, center, sigma}. Returns (z0, z1) in the FFT
    domain with integer preimages.
    """
    if len(t0) == 1:
        sig1 = tree.right.value
        z1r = sampler(float(t1[0].real), sig1)
        z1i = sampler(float(t1[0].imag), sig1)
        z1 = np.array([complex(z1r, z1i)], dtype=np.complex128)
        t0b = t0 + (t1 - z1) * tree.l10
        sig0 = tree.left.value
        z0r = sampler(float(t0b[0].real), sig0)
        z0i = sampler(float(t0b[0].imag), sig0)
        z0 = np.array([complex(z0r, z0i)], dtype=np.complex128)
        return z0, z1
    t1_0, t1_1 = fft.split_fft(t1)
    z1_0, z1_1 = ffsampling(t1_0, t1_1, tree.right, sampler)
    z1 = fft.merge_fft(z1_0, z1_1)
    t0b = t0 + (t1 - z1) * tree.l10
    t0_0, t0_1 = fft.split_fft(t0b)
    z0_0, z0_1 = ffsampling(t0_0, t0_1, tree.left, sampler)
    z0 = fft.merge_fft(z0_0, z0_1)
    return z0, z1
