"""FALCON signature generation (spec Algorithm 10).

The message is hashed to c with a fresh 320-bit salt, the target
t = (-1/q FFT(c) (*) FFT(F), 1/q FFT(c) (*) FFT(f)) is built, ffSampling
draws z close to t, and s = (t - z) B_hat yields the short pair
(s1, s2) with s1 + s2 h = c mod q. s2 is compressed into the signature;
the loop resamples until the norm bound and the bit budget are met.

The first step — the coefficient-wise product FFT(c) (*) FFT(f) — is the
computation the paper attacks; :mod:`repro.leakage.capture` replays
exactly this code path under the instrumented float multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.falcon import samplerz as _samplerz
from repro.falcon.compress import CompressError, compress
from repro.falcon.ffsampling import ffsampling
from repro.falcon.hash_to_point import hash_to_point
from repro.falcon.keygen import SecretKey
from repro.math import fft
from repro.utils.rng import ChaCha20Prng, SystemRng

__all__ = ["Signature", "sign", "sign_target", "SignError"]


class SignError(RuntimeError):
    """Signing failed to produce a short-enough signature (should not happen)."""


@dataclass(frozen=True)
class Signature:
    """A FALCON signature: the salt r and the compressed s2."""

    salt: bytes
    s2_compressed: bytes

    def encoded(self) -> bytes:
        """Header byte || salt || compressed s2 (spec wire format shape)."""
        return bytes([0x30]) + self.salt + self.s2_compressed


def sign_target(sk: SecretKey, c: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """The ffSampling target t for hashed message c (Algorithm 10 line 3).

    t0 = -FFT(c) (*) FFT(F) / q,  t1 = FFT(c) (*) FFT(f) / q.
    The product FFT(c) (*) FFT(f) inside t1 is the attacked computation.
    """
    q = sk.params.q
    c_fft = fft.fft(c)
    f_fft = fft.fft(sk.f)
    big_f_fft = fft.fft(sk.big_f)
    t0 = -(c_fft * big_f_fft) / q
    t1 = (c_fft * f_fft) / q
    return t0, t1


def sign(
    sk: SecretKey,
    message: bytes,
    seed: bytes | int | str | None = None,
    max_attempts: int = 64,
) -> Signature:
    """Sign ``message`` with ``sk`` (deterministic when ``seed`` is given)."""
    rng: ChaCha20Prng | SystemRng
    rng = ChaCha20Prng(seed) if seed is not None else SystemRng()
    params = sk.params
    b00, b01, b10, b11 = sk.b_hat

    def sampler(center: float, sigma: float) -> int:
        return _samplerz.samplerz(center, sigma, params.sigmin, rng)

    for _ in range(max_attempts):
        salt = rng.randombytes(params.salt_len)
        c = hash_to_point(salt + message, params.q, params.n)
        t0, t1 = sign_target(sk, c)
        for _ in range(max_attempts):
            z0, z1 = ffsampling(t0, t1, sk.tree, sampler)
            # s = (t - z) B_hat, rows [[g, -f], [G, -F]]
            d0 = t0 - z0
            d1 = t1 - z1
            s0_fft = d0 * b00 + d1 * b10
            s1_fft = d0 * b01 + d1 * b11
            s0 = [int(round(v)) for v in fft.ifft(s0_fft)]
            s1 = [int(round(v)) for v in fft.ifft(s1_fft)]
            norm_sq = sum(v * v for v in s0) + sum(v * v for v in s1)
            if norm_sq > params.sig_bound:
                continue
            try:
                s2_bytes = compress(s1, params.compressed_sig_bits)
            except CompressError:
                continue
            return Signature(salt=salt, s2_compressed=s2_bytes)
    raise SignError(f"no short signature after {max_attempts} attempts")
