"""FALCON parameter sets.

The standard sets are FALCON-512 and FALCON-1024; smaller power-of-two
rings (n = 8 .. 256) are supported for tests and laptop-scale experiments
exactly as in the reference Python implementation of FALCON. The standard
deviation of the signature sampler follows the specification:

    sigma(n) = sigmin(n) * 1.17 * sqrt(q)

where sigmin(n) is the smoothing-parameter factor. We recover the spec's
epsilon implicitly by fitting the closed form

    sigmin(n) = (1/pi) * sqrt( ln(8n * (1 + sqrt(alpha * n))) / 2 )

to the published FALCON-512 constant; the same alpha then reproduces the
published FALCON-1024 constant to 13 significant digits, which validates
the fit. The squared signature bound is beta^2 = floor((1.1 * sigma *
sqrt(2n))^2), also per the specification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Q", "FalconParams", "SIGMA_MAX", "SUPPORTED_N"]

#: The FALCON modulus (fixed for every parameter set).
Q = 12289

#: Upper bound on the Gaussian widths fed to SamplerZ (spec: sigma_max).
SIGMA_MAX = 1.8205

#: Fitted so that sigmin(512) equals the spec constant 1.2778336969128337;
#: sigmin(1024) then matches the spec's 1.298280334344292 to 13 digits.
_ALPHA = 1.1529215045594085e18

SUPPORTED_N = (8, 16, 32, 64, 128, 256, 512, 1024)

#: Signature byte lengths: 512/1024 from the specification, smaller rings
#: sized as in the reference Python implementation (generous for toys).
_SIG_BYTELEN = {8: 52, 16: 63, 32: 82, 64: 122, 128: 200, 256: 356, 512: 666, 1024: 1280}

_SALT_LEN = 40  # 320-bit salt r
_HEAD_LEN = 1   # header byte


def _sigmin(n: int) -> float:
    return (1.0 / math.pi) * math.sqrt(0.5 * math.log(8 * n * (1 + math.sqrt(_ALPHA * n))))


@dataclass(frozen=True)
class FalconParams:
    """One FALCON parameter set (immutable)."""

    n: int              # ring degree (power of two)
    q: int              # modulus, always 12289
    sigma: float        # signature sampler standard deviation
    sigmin: float       # lower bound fed to SamplerZ
    sig_bound: int      # beta^2: max squared norm of (s1, s2)
    sig_bytelen: int    # total encoded signature length in bytes

    @classmethod
    def get(cls, n: int) -> "FalconParams":
        """The parameter set for ring degree ``n``."""
        if n not in SUPPORTED_N:
            raise ValueError(f"unsupported ring degree {n}; choose from {SUPPORTED_N}")
        sigmin = _sigmin(n)
        sigma = sigmin * 1.17 * math.sqrt(Q)
        bound = int((1.1 * sigma * math.sqrt(2 * n)) ** 2)
        return cls(
            n=n,
            q=Q,
            sigma=sigma,
            sigmin=sigmin,
            sig_bound=bound,
            sig_bytelen=_SIG_BYTELEN[n],
        )

    @property
    def sigma_fg(self) -> float:
        """Std-dev for the keygen polynomials f, g: 1.17 * sqrt(q / 2n)."""
        return 1.17 * math.sqrt(self.q / (2 * self.n))

    @property
    def salt_len(self) -> int:
        return _SALT_LEN

    @property
    def compressed_sig_bits(self) -> int:
        """Bit budget for the compressed s2: 8*sig_bytelen - 328 (spec)."""
        return 8 * (self.sig_bytelen - _SALT_LEN - _HEAD_LEN)
