"""HashToPoint: map (salt || message) to a polynomial c in Z_q[x]/(x^n+1).

SHAKE-256 output is consumed 16 bits at a time (big-endian, as in the
reference code) and rejected above k*q with k = floor(2^16 / q) = 5, so
accepted values reduce uniformly mod q (spec Algorithm 3).
"""

from __future__ import annotations

import hashlib

__all__ = ["hash_to_point"]


def hash_to_point(data: bytes, q: int, n: int) -> list[int]:
    """The polynomial c = HashToPoint(data, q, n)."""
    if not 1 <= q <= 1 << 16:
        raise ValueError(f"q must fit 16 bits, got {q}")
    k = (1 << 16) // q
    limit = k * q
    shake = hashlib.shake_256(data)
    # Squeeze generously and extend on the (rare) rejection-heavy runs.
    out: list[int] = []
    chunk_len = 2 * (3 * n + 16)
    offset = 0
    buf = shake.digest(chunk_len)
    while len(out) < n:
        if offset + 2 > len(buf):
            chunk_len *= 2
            buf = shake.digest(chunk_len)
        t = (buf[offset] << 8) | buf[offset + 1]
        offset += 2
        if t < limit:
            out.append(t % q)
    return out
