"""Key serialization.

Secret keys are stored as the four NTRU polynomials (the FFT basis and
the FALCON tree are deterministic derivations and are rebuilt on load);
public keys as h. The format is a small JSON document — the goal is a
stable, auditable artifact for the experiment pipeline, not wire-format
compatibility with the reference C encoding.
"""

from __future__ import annotations

import json

from repro.falcon.keygen import PublicKey, SecretKey, derive_secret_key
from repro.falcon.params import FalconParams

__all__ = [
    "secret_key_to_json",
    "secret_key_from_json",
    "public_key_to_json",
    "public_key_from_json",
]

_SK_KIND = "falcon-secret-key"
_PK_KIND = "falcon-public-key"


def secret_key_to_json(sk: SecretKey) -> str:
    return json.dumps(
        {
            "kind": _SK_KIND,
            "n": sk.params.n,
            "f": sk.f,
            "g": sk.g,
            "F": sk.big_f,
            "G": sk.big_g,
            "h": sk.h,
        }
    )


def secret_key_from_json(doc: str) -> SecretKey:
    data = json.loads(doc)
    if data.get("kind") != _SK_KIND:
        raise ValueError(f"not a secret key document: kind={data.get('kind')!r}")
    params = FalconParams.get(int(data["n"]))
    return derive_secret_key(
        params,
        [int(v) for v in data["f"]],
        [int(v) for v in data["g"]],
        [int(v) for v in data["F"]],
        [int(v) for v in data["G"]],
        h=[int(v) for v in data["h"]],
    )


def public_key_to_json(pk: PublicKey) -> str:
    return json.dumps({"kind": _PK_KIND, "n": pk.params.n, "h": pk.h})


def public_key_from_json(doc: str) -> PublicKey:
    data = json.loads(doc)
    if data.get("kind") != _PK_KIND:
        raise ValueError(f"not a public key document: kind={data.get('kind')!r}")
    params = FalconParams.get(int(data["n"]))
    return PublicKey(params=params, h=[int(v) for v in data["h"]])
