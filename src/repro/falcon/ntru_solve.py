"""NTRUSolve: find F, G with f G - g F = q in Z[x]/(x^n + 1).

The tower-of-rings algorithm of the FALCON specification (and of
Pornin-Prest): descend by field norms to n = 1, solve the scalar Bezout
equation there, lift back up, and length-reduce (F, G) against (f, g)
with Babai's round-off in the FFT domain at every level.

Coefficients grow to thousands of bits during the descent, so everything
here is exact big-int arithmetic (:mod:`repro.math.poly`); only the Babai
quotient is computed in floating point, on block-scaled copies, and then
applied exactly.
"""

from __future__ import annotations

import numpy as np

from repro.math import fft, poly

__all__ = ["NtruSolveError", "ntru_solve", "xgcd", "reduce_fg"]


class NtruSolveError(ValueError):
    """The NTRU equation has no solution for this (f, g) — resample."""


def xgcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended gcd: returns (d, u, v) with u*a + v*b = d = gcd(a, b)."""
    old_r, r = a, b
    old_u, u = 1, 0
    old_v, v = 0, 1
    while r:
        qt = old_r // r
        old_r, r = r, old_r - qt * r
        old_u, u = u, old_u - qt * u
        old_v, v = v, old_v - qt * v
    if old_r < 0:
        old_r, old_u, old_v = -old_r, -old_u, -old_v
    return old_r, old_u, old_v


def _max_bitlength(*polys: list[int]) -> int:
    return max((abs(c).bit_length() for f in polys for c in f), default=0)


def _scaled_fft(f: list[int], shift: int) -> np.ndarray:
    """FFT of f with every coefficient shifted right by ``shift`` bits."""
    if shift <= 0:
        return fft.fft([float(c) for c in f])
    return fft.fft([float(c >> shift) for c in f])


def reduce_fg(
    f: list[int], g: list[int], big_f: list[int], big_g: list[int]
) -> tuple[list[int], list[int]]:
    """Babai round-off: shrink (F, G) by integer multiples of (f, g).

    Repeatedly computes k = round((F f* + G g*) / (f f* + g g*)) on
    block-scaled floating-point copies and subtracts k * (f, g) * 2^shift
    exactly, until the quotient vanishes.
    """
    lfg = max(_max_bitlength(f, g), 53)
    shift_fg = lfg - 53
    fa = _scaled_fft(f, shift_fg)
    ga = _scaled_fft(g, shift_fg)
    denom = fa * np.conj(fa) + ga * np.conj(ga)
    if np.any(np.abs(denom) < 1e-300):
        raise NtruSolveError("degenerate (f, g): Babai denominator vanishes")

    big_f = list(big_f)
    big_g = list(big_g)
    for _ in range(10_000):
        lFG = max(_max_bitlength(big_f, big_g), 53)
        shift_big = lFG - 53
        Fa = _scaled_fft(big_f, shift_big)
        Ga = _scaled_fft(big_g, shift_big)
        k_fft = (Fa * np.conj(fa) + Ga * np.conj(ga)) / denom
        extra = shift_big - shift_fg
        if extra < 0:
            # (F, G) is already shorter than (f, g); the true quotient is
            # the computed one scaled down by 2^-extra, which rounds to 0.
            k_fft = k_fft * (2.0 ** extra)
        k = [int(round(c)) for c in fft.ifft(k_fft)]
        if all(c == 0 for c in k):
            return big_f, big_g
        kf = poly.mul(k, f)
        kg = poly.mul(k, g)
        if extra > 0:
            kf = [c << extra for c in kf]
            kg = [c << extra for c in kg]
        big_f = poly.sub(big_f, kf)
        big_g = poly.sub(big_g, kg)
    raise NtruSolveError("Babai reduction did not converge")


def ntru_solve(f: list[int], g: list[int], q: int) -> tuple[list[int], list[int]]:
    """Solve f G - g F = q mod (x^n + 1); raise NtruSolveError if impossible."""
    n = poly.check_ring(f)
    if len(g) != n:
        raise ValueError(f"degree mismatch: {n} vs {len(g)}")
    if n == 1:
        d, u, v = xgcd(f[0], g[0])
        if d != 1:
            raise NtruSolveError(f"gcd(f(1-dim), g) = {d} != 1")
        # u f + v g = 1  =>  f (u q) - g (-v q) = q
        return [-v * q], [u * q]
    fp = poly.field_norm(f)
    gp = poly.field_norm(g)
    big_fp, big_gp = ntru_solve(fp, gp, q)
    big_f = poly.mul(poly.lift(big_fp), poly.galois_conjugate(g))
    big_g = poly.mul(poly.lift(big_gp), poly.galois_conjugate(f))
    return reduce_fg(f, g, big_f, big_g)
