"""FALCON signature verification (spec Algorithm 16).

Given (r, s2): recompute c = HashToPoint(r || m), recover
s1 = c - s2 h mod q with coefficients centered in (-q/2, q/2], and accept
iff ||(s1, s2)||^2 <= beta^2. All arithmetic is integer mod q via the NTT
substrate — verification never touches floating point.
"""

from __future__ import annotations

from repro.falcon.compress import CompressError, decompress
from repro.falcon.hash_to_point import hash_to_point
from repro.falcon.keygen import PublicKey
from repro.falcon.sign import Signature
from repro.math import ntt

__all__ = ["verify", "recover_s1"]


def _center(x: int, q: int) -> int:
    """Representative of x mod q in (-q/2, q/2]."""
    x %= q
    if x > q // 2:
        x -= q
    return x


def recover_s1(pk: PublicKey, c: list[int], s2: list[int]) -> list[int]:
    """s1 = c - s2 h mod q, centered."""
    q = pk.params.q
    s2h = ntt.mul_ntt([v % q for v in s2], pk.h, q)
    return [_center(ci - vi, q) for ci, vi in zip(c, s2h)]


def verify(pk: PublicKey, message: bytes, sig: Signature) -> bool:
    """True iff ``sig`` is a valid signature on ``message`` under ``pk``."""
    params = pk.params
    if len(sig.salt) != params.salt_len:
        return False
    try:
        s2 = decompress(sig.s2_compressed, params.compressed_sig_bits, params.n)
    except CompressError:
        return False
    c = hash_to_point(sig.salt + message, params.q, params.n)
    s1 = recover_s1(pk, c, s2)
    norm_sq = sum(v * v for v in s1) + sum(v * v for v in s2)
    return norm_sq <= params.sig_bound
