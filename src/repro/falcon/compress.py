"""Signature compression (spec Algorithms 17/18).

Each coefficient of s2 is encoded as: 1 sign bit, the 7 low bits of |s|,
then |s| >> 7 in unary (that many 0 bits followed by a terminating 1).
The bitstring is padded with zeros to exactly ``slen`` bits; decompression
rejects overlong values, a minus-zero encoding, and non-zero padding, so
the encoding is canonical (one valid bitstring per vector).
"""

from __future__ import annotations

__all__ = ["compress", "decompress", "CompressError"]

_LOW_BITS = 7
_MAX_UNARY = (1 << 12) >> _LOW_BITS  # |s| < 2048 in valid signatures


class CompressError(ValueError):
    """Signature does not fit the bit budget or is malformed."""


class _BitWriter:
    def __init__(self) -> None:
        self.bits: list[int] = []

    def write(self, value: int, nbits: int) -> None:
        """Append ``nbits`` of ``value``, MSB first."""
        for i in reversed(range(nbits)):
            self.bits.append((value >> i) & 1)

    def to_bytes(self, total_bits: int) -> bytes:
        if len(self.bits) > total_bits:
            raise CompressError(f"signature needs {len(self.bits)} bits > budget {total_bits}")
        padded = self.bits + [0] * (total_bits - len(self.bits))
        out = bytearray()
        for i in range(0, len(padded), 8):
            byte = 0
            for b in padded[i : i + 8]:
                byte = (byte << 1) | b
            if i + 8 > len(padded):
                byte <<= i + 8 - len(padded)
            out.append(byte)
        return bytes(out)


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def read(self, nbits: int) -> int:
        out = 0
        for _ in range(nbits):
            if self.pos >= 8 * len(self.data):
                raise CompressError("ran out of signature bits")
            byte = self.data[self.pos >> 3]
            out = (out << 1) | ((byte >> (7 - (self.pos & 7))) & 1)
            self.pos += 1
        return out

    def remaining_zero(self) -> bool:
        while self.pos < 8 * len(self.data):
            if self.read(1):
                return False
        return True


def compress(s: list[int], slen_bits: int) -> bytes:
    """Encode the coefficient vector into exactly slen_bits (zero padded).

    Raises CompressError when the vector does not fit — FALCON's signing
    loop treats that as a resample event (Algorithm 10 line 11).
    """
    w = _BitWriter()
    for coeff in s:
        sign = 1 if coeff < 0 else 0
        mag = -coeff if coeff < 0 else coeff
        if mag >= 1 << 12:
            raise CompressError(f"coefficient {coeff} out of compressible range")
        w.write(sign, 1)
        w.write(mag & ((1 << _LOW_BITS) - 1), _LOW_BITS)
        w.write(1, (mag >> _LOW_BITS) + 1)  # unary: zeros would be write(0,k) then 1
    return w.to_bytes(slen_bits)


# The unary part above needs zeros then a one; _BitWriter.write(1, k+1)
# writes exactly k zero bits followed by a single one bit (the value 1 in
# k+1 bits, MSB first), which is the spec encoding.


def decompress(data: bytes, slen_bits: int, n: int) -> list[int]:
    """Inverse of :func:`compress`; raises CompressError on malformed input."""
    if 8 * len(data) < slen_bits:
        raise CompressError(f"expected at least {slen_bits} bits, got {8 * len(data)}")
    r = _BitReader(data)
    out: list[int] = []
    for _ in range(n):
        sign = r.read(1)
        mag = r.read(_LOW_BITS)
        hi = 0
        while r.read(1) == 0:
            hi += 1
            if hi > _MAX_UNARY:
                raise CompressError("unary run exceeds valid coefficient range")
        mag |= hi << _LOW_BITS
        if sign and mag == 0:
            raise CompressError("non-canonical minus-zero coefficient")
        out.append(-mag if sign else mag)
    if not r.remaining_zero():
        raise CompressError("non-zero padding after last coefficient")
    return out
