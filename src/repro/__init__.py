"""Reproduction of "Falcon Down: Breaking Falcon Post-Quantum Signature
Scheme through Side-Channel Attacks" (Karabulut & Aysu, DAC 2021).

Packages:

* :mod:`repro.falcon` — complete FALCON implementation (the victim).
* :mod:`repro.fpr` — bit-exact emulation of FALCON's 64-bit float, with
  the instrumented multiplication the attack targets.
* :mod:`repro.leakage` — simulated EM acquisition (the measurement bench).
* :mod:`repro.attack` — the paper's differential EM attack with the
  novel extend-and-prune strategy, through full key recovery and forgery.
* :mod:`repro.countermeasures` — masking/hiding models (Discussion V-B).
* :mod:`repro.analysis` — confidence bounds, evolution plots, reporting.
* :mod:`repro.math`, :mod:`repro.utils` — shared substrate.

The one-line demo (Section IV at laptop scale)::

    from repro import demo_attack
    report = demo_attack(n=16, n_traces=4000)
    print(report.summary())
"""

from repro.experiment_defaults import (
    DEFAULT_N,
    DEFAULT_N_TRACES,
    PAPER_N,
    PAPER_N_TRACES,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "demo_attack",
    "DEFAULT_N",
    "DEFAULT_N_TRACES",
    "PAPER_N",
    "PAPER_N_TRACES",
]


def demo_attack(n: int = DEFAULT_N, n_traces: int = DEFAULT_N_TRACES, seed: bytes = b"demo"):
    """Generate a victim key, run the full attack, return the report."""
    from repro.attack import full_attack
    from repro.falcon import FalconParams, keygen

    sk, pk = keygen(FalconParams.get(n), seed=seed)
    return full_attack(sk, pk, n_traces=n_traces)
