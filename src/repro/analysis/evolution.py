"""Correlation evolution vs the number of traces (paper Fig. 4 e-h).

The paper plots, at the leakiest time sample, how each guess's
correlation evolves as measurements accumulate, against the shrinking
99.99% confidence bound; the crossing point is the measurement cost of
that component of the attack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import batched_pearson, fisher_z_threshold

__all__ = ["EvolutionResult", "correlation_evolution", "traces_to_significance"]


@dataclass
class EvolutionResult:
    """Correlations of each guess at increasing trace counts."""

    checkpoints: np.ndarray       # (K,) trace counts
    corr: np.ndarray              # (K, G) correlation at the chosen sample
    guesses: np.ndarray           # (G,)
    thresholds: np.ndarray        # (K,) 99.99% bounds at each checkpoint
    confidence: float

    def crossing_point(self, guess_index: int) -> int | None:
        """First checkpoint count where |corr| exceeds the bound for good.

        "For good" = it stays above the bound at every later checkpoint,
        which is how the paper reads its evolution plots.
        """
        above = np.abs(self.corr[:, guess_index]) > self.thresholds
        for k in range(len(above)):
            if above[k:].all():
                return int(self.checkpoints[k])
        return None


def correlation_evolution(
    hypotheses: np.ndarray,
    samples: np.ndarray,
    guesses: np.ndarray,
    checkpoints: list[int] | np.ndarray | None = None,
    confidence: float = 0.9999,
) -> EvolutionResult:
    """Correlate guess hypotheses against a single-sample trace column.

    ``hypotheses`` is (D, G); ``samples`` is (D,) — the trace values at
    the leakiest sample of the attacked step.
    """
    hypotheses = np.asarray(hypotheses)
    samples = np.asarray(samples, dtype=np.float64).reshape(-1, 1)
    d = samples.shape[0]
    if checkpoints is None:
        checkpoints = np.unique(np.geomspace(100, d, 30).astype(int))
    checkpoints = np.asarray(sorted(int(c) for c in checkpoints if 10 <= int(c) <= d))
    corr = np.empty((len(checkpoints), hypotheses.shape[1]), dtype=np.float64)
    for k, count in enumerate(checkpoints):
        corr[k] = batched_pearson(hypotheses[:count], samples[:count])[:, 0]
    thresholds = np.array([fisher_z_threshold(int(c), confidence) for c in checkpoints])
    return EvolutionResult(
        checkpoints=checkpoints,
        corr=corr,
        guesses=np.asarray(guesses),
        thresholds=thresholds,
        confidence=confidence,
    )


def traces_to_significance(
    evolution: EvolutionResult, correct_guess: int
) -> int | None:
    """Measurement cost of the correct guess (None if never significant)."""
    matches = np.where(evolution.guesses == correct_guess)[0]
    if len(matches) == 0:
        raise ValueError(f"correct guess {correct_guess} not in the guess set")
    return evolution.crossing_point(int(matches[0]))
