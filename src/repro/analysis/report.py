"""Plain-text reporting helpers for benches and examples."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_ranking", "describe_store"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with auto-sized columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_ranking(
    guesses: Sequence[int],
    scores: Sequence[float],
    correct: int | None = None,
    top: int = 10,
    value_format: str = "#x",
) -> str:
    """Best-first guess ranking with the correct guess flagged."""
    order = sorted(range(len(scores)), key=lambda i: -scores[i])[:top]
    rows = []
    for rank, i in enumerate(order, start=1):
        mark = "  <-- correct" if correct is not None and guesses[i] == correct else ""
        rows.append(f"  {rank:3d}. {format(guesses[i], value_format):>16} corr={scores[i]:+.5f}{mark}")
    return "\n".join(rows)


def describe_store(store) -> str:
    """Human-readable summary of a :class:`~repro.leakage.store.CampaignStore`.

    Used by ``repro-falcon store-info`` and handy in notebooks: campaign
    identity, device parameters, and shard completeness at a glance.
    """
    dev = store.device
    entries = store.manifest["targets"]
    complete = len(store.targets())
    skipped = sum(1 for v in entries.values() if v.get("skipped"))
    lines = [
        f"campaign store at {store.path}",
        f"  FALCON n={store.n}: {store.n_targets} targets, "
        f"{store.n_traces} requested signings each (mode={store.mode}, seed={store.seed})",
        f"  device: gain={dev.gain} offset={dev.offset} noise_sigma={dev.noise_sigma} "
        f"samples_per_step={dev.samples_per_step} jitter={dev.jitter} seed={dev.seed:#x}",
        # legacy manifests predate both fields; the store properties default
        f"  capture: backend={store.backend} target={store.target}",
        f"  shards: {complete}/{store.n_targets} complete"
        + (f", {skipped} skipped (non-normal secret doubles)" if skipped else ""),
    ]
    return "\n".join(lines)
