"""Plain-text reporting helpers for benches and examples."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_ranking"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with auto-sized columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_ranking(
    guesses: Sequence[int],
    scores: Sequence[float],
    correct: int | None = None,
    top: int = 10,
    value_format: str = "#x",
) -> str:
    """Best-first guess ranking with the correct guess flagged."""
    order = sorted(range(len(scores)), key=lambda i: -scores[i])[:top]
    rows = []
    for rank, i in enumerate(order, start=1):
        mark = "  <-- correct" if correct is not None and guesses[i] == correct else ""
        rows.append(f"  {rank:3d}. {format(guesses[i], value_format):>16} corr={scores[i]:+.5f}{mark}")
    return "\n".join(rows)
