"""Empirical success-rate and guessing-entropy estimation.

The paper states the targeted variables are "captured with over 99.99%
probability with around 10k measurements". The standard empirical
artifacts behind such claims are:

* the k-th order **success rate** SR_k(D): the probability (over
  independent experiments) that the correct value ranks within the top
  k after D traces; and
* the **guessing entropy** GE(D): the expected rank of the correct
  value after D traces.

Both are estimated here by re-running a component attack on trace
prefixes of increasing length across many targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.leakage.traceset import TraceSet

__all__ = ["ComponentOutcome", "SuccessCurve", "success_curve", "guessing_entropy"]

#: A component attack: TraceSet -> (ranked guesses best-first, true value).
ComponentAttack = Callable[[TraceSet], tuple[Sequence[int], int]]


@dataclass
class ComponentOutcome:
    """Rank of the true value for one (target, checkpoint) cell."""

    target_index: int
    n_traces: int
    rank: int

    @property
    def success(self) -> bool:
        return self.rank == 0


@dataclass
class SuccessCurve:
    """Success-rate/guessing-entropy table over trace-count checkpoints."""

    checkpoints: np.ndarray               # (K,)
    outcomes: list[ComponentOutcome]

    def success_rate(self, order: int = 1) -> np.ndarray:
        """SR_order at each checkpoint (fraction of targets in top-order)."""
        out = np.zeros(len(self.checkpoints))
        for k, count in enumerate(self.checkpoints):
            cell = [o for o in self.outcomes if o.n_traces == count]
            if cell:
                out[k] = np.mean([o.rank < order for o in cell])
        return out

    def guessing_entropy(self) -> np.ndarray:
        """Mean rank (0 = always first) at each checkpoint."""
        out = np.zeros(len(self.checkpoints))
        for k, count in enumerate(self.checkpoints):
            cell = [o for o in self.outcomes if o.n_traces == count]
            if cell:
                out[k] = np.mean([o.rank for o in cell])
        return out

    def traces_for_success_rate(self, level: float = 1.0, order: int = 1) -> int | None:
        """Smallest checkpoint where SR_order >= level (and stays there)."""
        sr = self.success_rate(order)
        for k in range(len(sr)):
            if np.all(sr[k:] >= level):
                return int(self.checkpoints[k])
        return None


def success_curve(
    tracesets: list[TraceSet],
    attack: ComponentAttack,
    checkpoints: Sequence[int],
) -> SuccessCurve:
    """Run ``attack`` on prefixes of every traceset at each checkpoint."""
    outcomes = []
    for ts in tracesets:
        for count in checkpoints:
            sub = ts.head(int(count))
            ranked, truth = attack(sub)
            ranked = list(ranked)
            rank = ranked.index(truth) if truth in ranked else len(ranked)
            outcomes.append(
                ComponentOutcome(target_index=ts.target_index, n_traces=int(count), rank=rank)
            )
    return SuccessCurve(checkpoints=np.asarray(sorted(set(int(c) for c in checkpoints))),
                        outcomes=outcomes)


def guessing_entropy(curve: SuccessCurve) -> np.ndarray:
    """Convenience alias for :meth:`SuccessCurve.guessing_entropy`."""
    return curve.guessing_entropy()
