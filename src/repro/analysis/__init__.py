"""Analysis and reporting: confidence bounds, trace-count evolution,
ASCII/CSV rendering of the paper's figures."""

from repro.analysis.confidence import confidence_bound, traces_needed_for
from repro.analysis.evolution import correlation_evolution, traces_to_significance, EvolutionResult
from repro.analysis.report import format_table, format_ranking, describe_store
from repro.analysis.figures import ascii_plot, write_csv, Series
from repro.analysis.success_rate import SuccessCurve, success_curve
from repro.analysis.key_rank import KeyRankEstimate, estimate_key_rank, exact_key_rank

__all__ = [
    "confidence_bound",
    "traces_needed_for",
    "correlation_evolution",
    "traces_to_significance",
    "EvolutionResult",
    "format_table",
    "format_ranking",
    "describe_store",
    "ascii_plot",
    "write_csv",
    "Series",
    "SuccessCurve",
    "success_curve",
    "KeyRankEstimate",
    "estimate_key_rank",
    "exact_key_rank",
]
