"""Figure rendering without a plotting stack: CSV + ASCII line charts.

The benchmark harness regenerates every figure of the paper as (a) a CSV
file with the raw series and (b) an ASCII chart for quick inspection in
terminals and logs.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Sequence

from repro.utils.io import atomic_write_text

__all__ = ["Series", "ascii_plot", "write_csv"]


@dataclass
class Series:
    """One named line of a figure."""

    name: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: {len(self.x)} x vs {len(self.y)} y")


def write_csv(path: str, series: list[Series]) -> None:
    """Long-format CSV: series,x,y (written atomically)."""
    buf = io.StringIO(newline="")
    writer = csv.writer(buf)
    writer.writerow(["series", "x", "y"])
    for s in series:
        for xv, yv in zip(s.x, s.y):
            writer.writerow([s.name, xv, yv])
    atomic_write_text(path, buf.getvalue())


def ascii_plot(
    series: list[Series],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render series as an ASCII chart (one glyph per series)."""
    glyphs = "*o+x#@%&"
    xs = [v for s in series for v in s.x]
    ys = [v for s in series for v in s.y]
    if not xs:
        return "(empty figure)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        g = glyphs[si % len(glyphs)]
        for xv, yv in zip(s.x, s.y):
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = g
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:+.4g}".rjust(10))
    for row in grid:
        lines.append(" " * 10 + "|" + "".join(row))
    lines.append(f"{y_lo:+.4g}".rjust(10) + "+" + "-" * width)
    lines.append(" " * 11 + f"{x_lo:.4g}".ljust(width // 2) + f"{x_hi:.4g}".rjust(width // 2))
    if x_label or y_label:
        lines.append(f"           x: {x_label}    y: {y_label}")
    legend = "   ".join(f"{glyphs[i % len(glyphs)]} {s.name}" for i, s in enumerate(series))
    lines.append("           " + legend)
    return "\n".join(lines)
