"""Full-key rank estimation from per-coefficient score lists.

Component attacks return a score per candidate for each coefficient;
the *key rank* is the number of full-key combinations that score at
least as well as the true key — the work factor of an enumerating
adversary after the side-channel phase. Computing it exactly is
exponential; the standard estimator (Glowacz et al.) convolves
per-coefficient histograms of log-likelihoods, which this module
implements (with an exact brute-force path for small cases used to
validate it in the tests).

Scores are mapped to log space with a softmax at inverse temperature
``beta`` — CPA scores are not calibrated likelihoods, so the estimate
is reported as log2(rank) bounds rather than a point value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KeyRankEstimate", "estimate_key_rank", "exact_key_rank"]


@dataclass
class KeyRankEstimate:
    """log2 bounds on the rank of the true key (0 = best possible)."""

    log2_rank_lower: float
    log2_rank_upper: float
    n_bins: int

    @property
    def log2_rank(self) -> float:
        return 0.5 * (self.log2_rank_lower + self.log2_rank_upper)


def _log_scores(scores: np.ndarray, beta: float) -> np.ndarray:
    s = np.asarray(scores, dtype=np.float64) * beta
    s = s - s.max()
    return s - np.log(np.exp(s).sum())


def estimate_key_rank(
    per_coefficient: list[tuple[np.ndarray, int]],
    beta: float = 50.0,
    n_bins: int = 2048,
) -> KeyRankEstimate:
    """Histogram-convolution rank estimation.

    ``per_coefficient`` holds (scores, true_index) per coefficient.
    Returns log2 bounds on the number of full keys scoring >= the true
    key under the per-coefficient log-score model.
    """
    if not per_coefficient:
        raise ValueError("need at least one coefficient")
    logs = []
    true_total = 0.0
    lo = np.inf
    hi = -np.inf
    for scores, idx in per_coefficient:
        lp = _log_scores(scores, beta)
        if not 0 <= idx < len(lp):
            raise ValueError(f"true index {idx} out of range")
        logs.append(lp)
        true_total += float(lp[idx])
        lo = min(lo, float(lp.min()))
        hi = max(hi, float(lp.max()))
    n = len(logs)
    # One binning convention throughout: each per-coefficient histogram
    # maps [lo, hi] onto bin centers spaced step = (hi - lo)/(n_bins - 1)
    # (bin 0 at lo, bin n_bins-1 at hi), and convolution adds supports.

    def to_hist(lp: np.ndarray) -> np.ndarray:
        h = np.zeros(n_bins)
        bins = np.clip(((lp - lo) / max(hi - lo, 1e-300) * (n_bins - 1)).astype(int), 0, n_bins - 1)
        np.add.at(h, bins, 1.0)
        return h

    # Convolve per-coefficient histograms (support grows additively).
    acc = to_hist(logs[0])
    for lp in logs[1:]:
        acc = np.convolve(acc, to_hist(lp))
    # Bin k of the final histogram represents total log-scores near
    # n*lo + k * (hi - lo)/(n_bins - 1).
    step = (hi - lo) / max(n_bins - 1, 1)
    totals = n * lo + np.arange(len(acc)) * step
    # rank = number of combinations with total >= true_total; binning
    # error spans +/- n bins, giving the bounds.
    slack = n * step
    upper = float(acc[totals >= true_total - slack].sum())
    lower = float(acc[totals >= true_total + slack].sum())
    return KeyRankEstimate(
        log2_rank_lower=float(np.log2(max(lower, 1.0))),
        log2_rank_upper=float(np.log2(max(upper, 1.0))),
        n_bins=n_bins,
    )


def exact_key_rank(
    per_coefficient: list[tuple[np.ndarray, int]], beta: float = 50.0
) -> int:
    """Exact rank by enumeration — exponential, for validation only."""
    logs = [(_log_scores(s, beta), i) for s, i in per_coefficient]
    true_total = sum(float(lp[i]) for lp, i in logs)
    totals = np.zeros(1)
    for lp, _ in logs:
        totals = (totals[:, None] + lp[None, :]).ravel()
    return int(np.sum(totals >= true_total - 1e-12))
