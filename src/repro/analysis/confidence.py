"""Confidence bounds for correlation traces (the paper's dashed lines)."""

from __future__ import annotations

import math

from repro.utils.stats import fisher_z_threshold, normal_quantile

__all__ = ["confidence_bound", "traces_needed_for"]


def confidence_bound(n_traces: int, confidence: float = 0.9999) -> float:
    """|r| above which a correlation is significant at ``confidence``."""
    return fisher_z_threshold(n_traces, confidence)


def traces_needed_for(true_corr: float, confidence: float = 0.9999) -> int:
    """Predicted measurements until ``true_corr`` crosses the bound.

    Inverts the Fisher-z bound: significance needs
    atanh(|r|) > z_alpha / sqrt(D - 3). The paper uses this framing when
    reporting "~10k measurements suffice".

    The engine's significance test is *strict* (``scores >
    threshold`` in :meth:`repro.attack.cpa.CpaResult.significant_guesses`),
    so this returns the smallest D for which the strict inequality
    holds — the boundary case ``atanh(|r|) == z / sqrt(D - 3)`` is not
    significant and must be stepped past, where the previous
    ``ceil(... + 3)`` closed form landed exactly on it whenever the
    expression was integral.

    Note this counts rows that *enter the correlation*. The capture
    layer drops rows whose known operand is non-normal (see the
    per-segment ``meta["n_kept"]`` accounting in
    :mod:`repro.leakage.traceset`), so campaign budgets must request
    ``traces_needed_for(r)`` divided by the expected keep rate.
    """
    if not 0 < abs(true_corr) < 1:
        raise ValueError(f"true_corr must be in (0, 1) exclusive, got {true_corr}")
    z = normal_quantile(confidence)
    # Smallest integer strictly above (z/atanh|r|)^2 + 3 ...
    d = max(int(math.floor((z / math.atanh(abs(true_corr))) ** 2 + 3)) + 1, 4)
    # ... then settle on the exact frontier of the strict test itself,
    # robust to the closed form and fisher_z_threshold rounding
    # differently in float64 near the boundary.
    while d > 4 and abs(true_corr) > fisher_z_threshold(d - 1, confidence):
        d -= 1
    while not abs(true_corr) > fisher_z_threshold(d, confidence):
        d += 1
    return d
