"""Confidence bounds for correlation traces (the paper's dashed lines)."""

from __future__ import annotations

import math

from repro.utils.stats import fisher_z_threshold, normal_quantile

__all__ = ["confidence_bound", "traces_needed_for"]


def confidence_bound(n_traces: int, confidence: float = 0.9999) -> float:
    """|r| above which a correlation is significant at ``confidence``."""
    return fisher_z_threshold(n_traces, confidence)


def traces_needed_for(true_corr: float, confidence: float = 0.9999) -> int:
    """Predicted measurements until ``true_corr`` crosses the bound.

    Inverts the Fisher-z bound: significance needs
    atanh(|r|) > z_alpha / sqrt(D - 3). The paper uses this framing when
    reporting "~10k measurements suffice".
    """
    if not 0 < abs(true_corr) < 1:
        raise ValueError(f"true_corr must be in (0, 1) exclusive, got {true_corr}")
    z = normal_quantile(confidence)
    return int(math.ceil((z / math.atanh(abs(true_corr))) ** 2 + 3))
