"""Instrumented execution of FALCON's floating-point multiplication.

``fpr.c`` (FALCON_FPEMU) multiplies two 53-bit significands by splitting
each into a 25-bit low limb and a 28-bit high limb and accumulating the
four schoolbook partial products; the dropped low bits feed a sticky bit
for round-to-nearest-even, the exponents are added (plus the
normalization carry) and the sign is the XOR of the operand signs.

:func:`fpr_mul_trace` executes precisely that sequence and records every
architectural intermediate in order. The leakage simulator
(:mod:`repro.leakage.synth`) turns each recorded value into trace samples;
the attack (:mod:`repro.attack`) predicts the same values for key guesses.

Naming matches the paper's Figure 2: for a secret coefficient ``x`` and a
known coefficient ``y``,

    D = x_lo (25 secret bits)       B = y_lo (25 known bits)
    C = x_hi (28 bits, MSB fixed 1) A = y_hi (28 known bits)

The "extend" phase attacks the products ``p_ll = D*B`` / ``p_lh = D*A``
(and ``p_hl = C*B`` / ``p_hh = C*A`` for the high limb); the "prune" phase
attacks the intermediate additions ``s_lo``/``s_mid``/``s_hi``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpr import emu

__all__ = [
    "MUL_STEP_LABELS",
    "MUL_STEP_WIDTHS",
    "ADD_STEP_LABELS",
    "ADD_STEP_WIDTHS",
    "FprMulTrace",
    "FprAddTrace",
    "fpr_mul_trace",
    "fpr_add_trace",
    "mul_limbs",
]

LOW_BITS = 25
HIGH_BITS = 28
_MASK25 = (1 << LOW_BITS) - 1

#: Architectural intermediates of one fpr multiplication, in execution order.
MUL_STEP_LABELS = (
    "load_x_lo",   # D: secret low limb
    "load_x_hi",   # C: secret high limb (MSB always 1)
    "load_y_lo",   # B: known low limb
    "load_y_hi",   # A: known high limb
    "p_ll",        # D*B
    "p_lh",        # D*A
    "s_lo",        # (p_ll >> 25) + p_lh     <- prune target, low limb
    "p_hl",        # C*B
    "s_mid",       # s_lo + p_hl             <- prune target, high limb
    "p_hh",        # C*A
    "s_hi",        # (s_mid >> 25) + p_hh  == full product >> 50
    "sticky",      # dropped low bits (rounding sticky input)
    "mant_out",    # rounded 52-bit mantissa field of the result
    "exp_sum",     # raw biased exponent sum E_x + E_y
    "exp_biased",  # (E_x + E_y - 2100) as a 32-bit two's-complement word
    "exp_out",     # final biased exponent of the result
    "sign_out",    # XOR of the operand sign bits
    "result",      # full 64-bit output pattern
)

#: fpr.c re-biases the exponent sum before normalization; the constant
#: folds the two IEEE biases and the product shift. The value is held in
#: a signed 32-bit register, so its (usually negative) two's-complement
#: pattern is what leaks — and its carry structure is what lets the
#: exponent attack separate guesses whose raw sums only differ by a
#: constant Hamming-weight offset.
EXP_REBIAS = 2100

#: Bit width of each step's value (upper bound; used by leakage scaling).
MUL_STEP_WIDTHS = {
    "load_x_lo": 25,
    "load_x_hi": 28,
    "load_y_lo": 25,
    "load_y_hi": 28,
    "p_ll": 50,
    "p_lh": 53,
    "s_lo": 54,
    "p_hl": 53,
    "s_mid": 55,
    "p_hh": 56,
    "s_hi": 56,
    "sticky": 50,
    "mant_out": 52,
    "exp_sum": 12,
    "exp_biased": 32,
    "exp_out": 11,
    "sign_out": 1,
    "result": 64,
}


#: Architectural intermediates of one fpr addition, in execution order.
#: The softfloat compares magnitudes, aligns the smaller significand to
#: the larger exponent, adds or subtracts, renormalizes and rounds.
ADD_STEP_LABELS = (
    "exp_diff",      # |E_big - E_small| (alignment shift amount)
    "mant_big",      # significand of the larger-magnitude operand
    "mant_aligned",  # smaller significand shifted right by exp_diff
    "mant_sum",      # raw sum/difference of the significands
    "add_mant_out",  # rounded mantissa field of the result
    "add_exp_out",   # biased exponent of the result
    "add_sign_out",  # sign of the result
    "add_result",    # full 64-bit output pattern
)

ADD_STEP_WIDTHS = {
    "exp_diff": 11,
    "mant_big": 53,
    "mant_aligned": 53,
    "mant_sum": 54,
    "add_mant_out": 52,
    "add_exp_out": 11,
    "add_sign_out": 1,
    "add_result": 64,
}


@dataclass(frozen=True)
class FprAddTrace:
    """All intermediates of one instrumented fpr addition."""

    x: int
    y: int
    result: int
    steps: tuple[tuple[str, int], ...]

    def value(self, label: str) -> int:
        for lab, val in self.steps:
            if lab == label:
                return val
        raise KeyError(f"no step named {label!r}")

    @property
    def values(self) -> list[int]:
        return [val for _, val in self.steps]

    @property
    def labels(self) -> list[str]:
        return [lab for lab, _ in self.steps]


def fpr_add_trace(x: int, y: int) -> FprAddTrace:
    """Add two fpr patterns, recording every intermediate.

    Zero operands short-circuit (only the result step is emitted), as
    in the hardware: nothing data dependent executes.
    """
    result = emu.fpr_add(x, y)
    if emu.is_zero(x) or emu.is_zero(y):
        return FprAddTrace(x=x, y=y, result=result, steps=(("add_result", result),))

    # magnitude order: larger |value| has the larger abs bit pattern
    if (x & ~(1 << 63)) >= (y & ~(1 << 63)):
        big, small = x, y
    else:
        big, small = y, x
    s_b, m_b, _ = emu._unpack_normal(big)
    s_s, m_s, _ = emu._unpack_normal(small)
    _, eb, _ = emu.decompose(big)
    _, es, _ = emu.decompose(small)
    exp_diff = eb - es
    aligned = m_s >> min(exp_diff, 63)
    mant_sum = m_b + aligned if s_b == s_s else m_b - aligned

    sign_out, exp_out, mant_out = emu.decompose(result)
    steps = (
        ("exp_diff", exp_diff),
        ("mant_big", m_b),
        ("mant_aligned", aligned),
        ("mant_sum", mant_sum),
        ("add_mant_out", mant_out),
        ("add_exp_out", exp_out),
        ("add_sign_out", sign_out),
        ("add_result", result),
    )
    return FprAddTrace(x=x, y=y, result=result, steps=steps)


def mul_limbs(significand: int) -> tuple[int, int]:
    """Split a 53-bit significand into (low 25 bits, high 28 bits)."""
    if not 1 << 52 <= significand < 1 << 53:
        raise ValueError(f"significand out of range: {significand:#x}")
    return significand & _MASK25, significand >> LOW_BITS


@dataclass(frozen=True)
class FprMulTrace:
    """All intermediates of one instrumented fpr multiplication."""

    x: int          # secret operand bit pattern
    y: int          # known operand bit pattern
    result: int     # product bit pattern
    steps: tuple[tuple[str, int], ...]  # (label, value) in execution order

    def value(self, label: str) -> int:
        for lab, val in self.steps:
            if lab == label:
                return val
        raise KeyError(f"no step named {label!r}")

    @property
    def values(self) -> list[int]:
        return [val for _, val in self.steps]

    @property
    def labels(self) -> list[str]:
        return [lab for lab, _ in self.steps]


def fpr_mul_trace(x: int, y: int) -> FprMulTrace:
    """Multiply two fpr patterns, recording every intermediate.

    ``x`` is the secret operand (a coefficient of FFT(f)); ``y`` is the
    known operand (a coefficient of FFT(c)). Zero operands short-circuit
    (FALCON's code does the same); the returned step list is then empty
    except for the final result, and such traces are excluded from
    attacks (a zero FFT(c) coefficient carries no information anyway).
    """
    result = emu.fpr_mul(x, y)
    if emu.is_zero(x) or emu.is_zero(y):
        return FprMulTrace(x=x, y=y, result=result, steps=(("result", result),))

    sx, mx, _ = emu._unpack_normal(x)
    sy, my, _ = emu._unpack_normal(y)
    _, ex_b, _ = emu.decompose(x)
    _, ey_b, _ = emu.decompose(y)

    x_lo, x_hi = mul_limbs(mx)
    y_lo, y_hi = mul_limbs(my)

    p_ll = x_lo * y_lo
    p_lh = x_lo * y_hi
    s_lo = (p_ll >> LOW_BITS) + p_lh
    p_hl = x_hi * y_lo
    s_mid = s_lo + p_hl
    p_hh = x_hi * y_hi
    s_hi = (s_mid >> LOW_BITS) + p_hh
    sticky = (p_ll & _MASK25) | ((s_mid & _MASK25) << LOW_BITS)

    # Consistency with the exact product: s_hi is the top, sticky the rest.
    assert s_hi == (mx * my) >> 50
    assert sticky == (mx * my) & ((1 << 50) - 1)

    sign_out, exp_out, mant_out = emu.decompose(result)
    exp_sum = ex_b + ey_b
    exp_biased = (exp_sum - EXP_REBIAS) & 0xFFFFFFFF

    steps = (
        ("load_x_lo", x_lo),
        ("load_x_hi", x_hi),
        ("load_y_lo", y_lo),
        ("load_y_hi", y_hi),
        ("p_ll", p_ll),
        ("p_lh", p_lh),
        ("s_lo", s_lo),
        ("p_hl", p_hl),
        ("s_mid", s_mid),
        ("p_hh", p_hh),
        ("s_hi", s_hi),
        ("sticky", sticky),
        ("mant_out", mant_out),
        ("exp_sum", exp_sum),
        ("exp_biased", exp_biased),
        ("exp_out", exp_out),
        ("sign_out", sx ^ sy),
        ("result", result),
    )
    return FprMulTrace(x=x, y=y, result=result, steps=steps)
