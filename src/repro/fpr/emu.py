"""Bit-level emulation of FALCON's 64-bit floating-point arithmetic.

An ``fpr`` value is a 64-bit pattern held in a Python int:

    bit 63      sign s
    bits 52-62  biased exponent E (bias 1023)
    bits 0-51   mantissa fraction m

representing (-1)^s * (2^52 + m) * 2^(E - 1075) for 0 < E < 2047.

Semantics follow FALCON's ``fpr.c`` (FALCON_FPEMU):

* round-to-nearest, ties-to-even, computed with exact integer arithmetic;
* results whose exponent underflows the normal range are flushed to +/-0
  (FALCON never produces subnormals in normal operation);
* no NaNs/infinities are ever produced by FALCON; on overflow we saturate
  to the IEEE infinity pattern so misuse is at least visible.

For every input that is a normal double (or zero), each operation here is
bit-identical to the host's IEEE-754 double operation — the property-based
test suite asserts exactly that.
"""

from __future__ import annotations

import math
import struct

__all__ = [
    "SIGN_BIT",
    "EXP_BITS",
    "MANT_BITS",
    "BIAS",
    "fpr_from_float",
    "fpr_to_float",
    "decompose",
    "compose",
    "is_zero",
    "fpr_of",
    "fpr_neg",
    "fpr_abs",
    "fpr_half",
    "fpr_double",
    "fpr_add",
    "fpr_sub",
    "fpr_mul",
    "fpr_div",
    "fpr_sqrt",
    "fpr_rint",
    "fpr_floor",
    "fpr_trunc",
    "fpr_lt",
]

EXP_BITS = 11
MANT_BITS = 52
BIAS = 1023
SIGN_BIT = 1 << 63
_EXP_MASK = (1 << EXP_BITS) - 1
_MANT_MASK = (1 << MANT_BITS) - 1
_IMPLICIT = 1 << MANT_BITS
_INF = 0x7FF << MANT_BITS


def fpr_from_float(x: float) -> int:
    """Bit pattern of a host double."""
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def fpr_to_float(x: int) -> float:
    """Host double from a bit pattern."""
    return struct.unpack("<d", struct.pack("<Q", x & 0xFFFFFFFFFFFFFFFF))[0]


def decompose(x: int) -> tuple[int, int, int]:  # sast: source
    """Raw (sign, biased exponent, mantissa fraction) fields.

    Declared taint source: these fields are the mantissa/exponent limbs
    whose Hamming weight the paper's DEMA measures (see
    ``docs/static-analysis.md``).
    """
    return (x >> 63) & 1, (x >> MANT_BITS) & _EXP_MASK, x & _MANT_MASK


def compose(sign: int, biased_exp: int, mant: int) -> int:
    """Pack raw fields back into a bit pattern."""
    if sign not in (0, 1):
        raise ValueError(f"sign must be 0 or 1, got {sign}")
    if not 0 <= biased_exp <= _EXP_MASK:
        raise ValueError(f"biased exponent out of range: {biased_exp}")
    if not 0 <= mant <= _MANT_MASK:
        raise ValueError(f"mantissa out of range: {mant}")
    return (sign << 63) | (biased_exp << MANT_BITS) | mant


def is_zero(x: int) -> bool:
    return (x & ~SIGN_BIT) == 0


def _unpack_normal(x: int) -> tuple[int, int, int]:  # sast: source
    """(sign, significand in [2^52, 2^53), exponent e with value = sig*2^e).

    Caller must ensure x is a nonzero normal (FALCON never holds
    subnormals; we treat them as invalid input).
    """
    s, be, m = decompose(x)
    if be == 0:
        raise ValueError("subnormal input: FALCON's fpr never holds subnormals")
    if be == _EXP_MASK:
        raise ValueError("non-finite input: FALCON's fpr never holds inf/NaN")
    return s, _IMPLICIT | m, be - BIAS - MANT_BITS


def _round_pack(sign: int, sig: int, exp: int) -> int:
    """Round value = sig * 2^exp (sig > 0, exact) to an fpr, RNE.

    Normal results only; underflow flushes to signed zero, overflow
    saturates to infinity.
    """
    nbits = sig.bit_length()
    drop = nbits - (MANT_BITS + 1)
    if drop > 0:
        keep = sig >> drop
        rem = sig & ((1 << drop) - 1)
        half = 1 << (drop - 1)
        if rem > half or (rem == half and keep & 1):
            keep += 1
            if keep >> (MANT_BITS + 1):
                keep >>= 1
                drop += 1
        sig = keep
        exp += drop
    elif drop < 0:
        sig <<= -drop
        exp += drop
    # value = sig * 2^exp with sig in [2^52, 2^53)
    biased = exp + MANT_BITS + BIAS
    if biased >= _EXP_MASK:
        return (sign << 63) | _INF
    if biased <= 0:
        return sign << 63
    return compose(sign, biased, sig & _MANT_MASK)


def fpr_of(i: int) -> int:
    """Exact conversion from an integer (|i| < 2^53, as in FALCON)."""
    if i == 0:
        return 0
    sign = 1 if i < 0 else 0
    mag = -i if i < 0 else i
    if mag >= 1 << 53:
        raise ValueError(f"integer too large for exact fpr conversion: {i}")
    return _round_pack(sign, mag, 0)


def fpr_neg(x: int) -> int:
    return x ^ SIGN_BIT


def fpr_abs(x: int) -> int:
    return x & ~SIGN_BIT


def fpr_half(x: int) -> int:
    """x / 2 (exponent decrement; flush to zero on underflow)."""
    if is_zero(x):
        return x
    s, sig, e = _unpack_normal(x)
    return _round_pack(s, sig, e - 1)


def fpr_double(x: int) -> int:
    """x * 2 (exponent increment)."""
    if is_zero(x):
        return x
    s, sig, e = _unpack_normal(x)
    return _round_pack(s, sig, e + 1)


def fpr_add(x: int, y: int) -> int:
    """Exact-arithmetic IEEE-754 addition with RNE."""
    if is_zero(x) and is_zero(y):
        # IEEE: (+0) + (-0) = +0 under RNE; equal signs keep the sign.
        return x if x == y else 0
    if is_zero(x):
        return y
    if is_zero(y):
        return x
    sx, mx, ex = _unpack_normal(x)
    sy, my, ey = _unpack_normal(y)
    e0 = min(ex, ey)
    vx = (mx << (ex - e0)) * (-1 if sx else 1)
    vy = (my << (ey - e0)) * (-1 if sy else 1)
    v = vx + vy
    if v == 0:
        return 0  # exact cancellation is +0 under RNE
    sign = 1 if v < 0 else 0
    return _round_pack(sign, abs(v), e0)


def fpr_sub(x: int, y: int) -> int:
    return fpr_add(x, fpr_neg(y))


def fpr_mul(x: int, y: int) -> int:
    """Exact-arithmetic IEEE-754 multiplication with RNE.

    This is the reference result; the limb-level execution (the attack
    target) lives in :mod:`repro.fpr.trace` and is asserted to reconstruct
    the same pattern.
    """
    if is_zero(x) or is_zero(y):
        return ((x ^ y) & SIGN_BIT)
    sx, mx, ex = _unpack_normal(x)
    sy, my, ey = _unpack_normal(y)
    return _round_pack(sx ^ sy, mx * my, ex + ey)


def fpr_div(x: int, y: int) -> int:
    """Exact-quotient IEEE-754 division with RNE (y must be nonzero)."""
    if is_zero(y):
        raise ZeroDivisionError("fpr division by zero")
    if is_zero(x):
        return (x ^ y) & SIGN_BIT
    sx, mx, ex = _unpack_normal(x)
    sy, my, ey = _unpack_normal(y)
    # 56 guard bits make the quotient wide enough that RNE on (q, sticky)
    # equals RNE on the exact quotient.
    shift = 56
    q, rem = divmod(mx << shift, my)
    if rem:
        q |= 1  # fold the sticky into the lowest guard bit
    return _round_pack(sx ^ sy, q, ex - ey - shift)


def fpr_sqrt(x: int) -> int:
    """IEEE-754 square root with RNE (x must be non-negative)."""
    if is_zero(x):
        return x
    s, m, e = _unpack_normal(x)
    if s:
        raise ValueError("fpr_sqrt of a negative value")
    # Make the exponent even, then sqrt(m * 2^e) = sqrt(m) * 2^(e/2).
    if e & 1:
        m <<= 1
        e -= 1
    # 2*54 guard bits; r has ~80 bits, plenty above the 53 we keep.
    v = m << 108
    r = _isqrt(v)
    if r * r != v:
        r |= 1  # sticky: the true root is strictly between r and r+1
    return _round_pack(0, r, e // 2 - 54)


def _isqrt(v: int) -> int:
    return math.isqrt(v)


def fpr_rint(x: int) -> int:
    """Round to nearest integer, ties to even (returns a Python int)."""
    if is_zero(x):
        return 0
    s, m, e = _unpack_normal(x)
    if e >= 0:
        mag = m << e
    else:
        shift = -e
        if shift > 54 + MANT_BITS:
            return 0
        keep = m >> shift
        rem = m & ((1 << shift) - 1)
        half = 1 << (shift - 1)
        if rem > half or (rem == half and keep & 1):
            keep += 1
        mag = keep
    return -mag if s else mag


def fpr_floor(x: int) -> int:
    """Largest integer <= x (returns a Python int)."""
    if is_zero(x):
        return 0
    s, m, e = _unpack_normal(x)
    if e >= 0:
        mag = m << e
        return -mag if s else mag
    shift = -e
    if shift > 54 + MANT_BITS:
        return -1 if s else 0
    keep = m >> shift
    rem = m & ((1 << shift) - 1)
    if s:
        return -(keep + (1 if rem else 0))
    return keep


def fpr_trunc(x: int) -> int:
    """Round toward zero (returns a Python int)."""
    if is_zero(x):
        return 0
    s, m, e = _unpack_normal(x)
    mag = m << e if e >= 0 else (m >> min(-e, 54 + MANT_BITS))
    return -mag if s else mag


def _as_i64(v: int) -> int:
    """Reinterpret a 64-bit pattern as a signed two's-complement int."""
    v &= 0xFFFFFFFFFFFFFFFF
    return v - (1 << 64) if v & SIGN_BIT else v


def fpr_lt(x: int, y: int) -> bool:
    """Compare x < y directly on the bit patterns, as ``fpr.c`` does.

    The sign-aware integer comparison: IEEE-754 patterns of equal sign
    order like signed integers (reversed when both are negative, since
    a larger magnitude pattern is a more negative value); on a sign
    mismatch the negative operand is smaller — except ``-0 < +0``,
    which is false (the zeros compare equal, both directions). No host
    float round-trip: the comparison is exact integer arithmetic on the
    operand words, so the sast taint pass sees the secret-dependent
    compare instead of an opaque conversion.
    """
    sx = _as_i64(x)
    sy = _as_i64(y)
    if (sx | sy) >= 0:
        # both non-negative: signed (equivalently unsigned) pattern order
        return sx < sy
    if (sx & sy) < 0:
        # both negative: magnitude order is reversed
        return sy < sx
    # signs differ: the negative operand is smaller, unless both are zeros
    return sx < 0 and ((x | y) & ~SIGN_BIT) != 0
