"""Emulation of FALCON's custom 64-bit floating-point type (``fpr``).

FALCON approximates IEEE-754 double precision with its own constant-time
software implementation (``fpr.c``, the FALCON_FPEMU path): 1 sign bit,
11 exponent bits, 52 mantissa bits, round-to-nearest-even, and subnormal
results flushed to zero. The multiplication splits each 53-bit significand
into a 25-bit low limb and a 28-bit high limb and accumulates the four
schoolbook partial products — precisely the intermediates the paper's
extend-and-prune attack keys on.

* :mod:`repro.fpr.emu` — the arithmetic itself, bit-exact against host
  IEEE-754 doubles (validated by property tests).
* :mod:`repro.fpr.trace` — the same multiplication, instrumented to emit
  every architectural intermediate in execution order for the leakage
  simulator.
"""

from repro.fpr.emu import (
    fpr_add,
    fpr_div,
    fpr_mul,
    fpr_neg,
    fpr_of,
    fpr_sqrt,
    fpr_sub,
    fpr_to_float,
    fpr_from_float,
    decompose,
    compose,
)
from repro.fpr.trace import FprMulTrace, fpr_mul_trace, MUL_STEP_LABELS

__all__ = [
    "fpr_add",
    "fpr_sub",
    "fpr_mul",
    "fpr_div",
    "fpr_sqrt",
    "fpr_neg",
    "fpr_of",
    "fpr_to_float",
    "fpr_from_float",
    "decompose",
    "compose",
    "FprMulTrace",
    "fpr_mul_trace",
    "MUL_STEP_LABELS",
]
