"""Second-order attack against first-order masking — paper Section V-B.

First-order Boolean masking stores the secret intermediate v as the
pair (v XOR m, m): no single sample's expectation depends on v, so
first-order CPA fails (see bench_countermeasures). The classical
counter-countermeasure combines the two share samples with the
centered product

    comb_d = (t1_d - mean(t1)) * (t2_d - mean(t2))

whose expectation *does* depend on HW(v) (Prouff-Rivain-Bevan), letting
ordinary CPA run on the combined trace — at a quadratic cost in noise,
so the measurement count grows sharply. This module provides the
combining preprocessing and a convenience CPA wrapper.
"""

from __future__ import annotations

import numpy as np

from repro.attack.cpa import CpaResult

__all__ = ["centered_product", "second_order_cpa"]


def centered_product(share1: np.ndarray, share2: np.ndarray) -> np.ndarray:
    """Centered-product combining of two share sample columns.

    Accepts (D,) or (D, S) arrays; multi-sample windows are combined
    pairwise per sample index.
    """
    a = np.atleast_2d(np.asarray(share1, dtype=np.float64).T).T
    b = np.atleast_2d(np.asarray(share2, dtype=np.float64).T).T
    if a.shape != b.shape:
        raise ValueError(f"share shapes differ: {a.shape} vs {b.shape}")
    return (a - a.mean(axis=0, keepdims=True)) * (b - b.mean(axis=0, keepdims=True))


def second_order_cpa(
    share1: np.ndarray,
    share2: np.ndarray,
    hypotheses: np.ndarray,
    guesses: np.ndarray,
    chunk_rows: int | None = None,
) -> CpaResult:
    """CPA on the centered product of the two share leakages.

    ``hypotheses`` is the usual (D, G) predicted-HW matrix of the
    *unmasked* intermediate; under HW leakage of both shares, the
    centered product correlates (negatively, with magnitude shrinking in
    the noise squared) with HW(v) — the distinguisher works unchanged.

    Thin wrapper over
    :class:`repro.attack.distinguisher.SecondOrderDistinguisher`, which
    owns the (optionally streaming, via ``chunk_rows``) combine+CPA.
    """
    from repro.attack.distinguisher import SecondOrderDistinguisher

    a = np.atleast_2d(np.asarray(share1, dtype=np.float64).T).T
    b = np.atleast_2d(np.asarray(share2, dtype=np.float64).T).T
    if a.shape != b.shape:
        raise ValueError(f"share shapes differ: {a.shape} vs {b.shape}")
    window = np.concatenate([a, b], axis=1)
    dist = SecondOrderDistinguisher(chunk_rows=chunk_rows)
    return dist.score(hypotheses, window, guesses)
