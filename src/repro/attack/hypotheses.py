"""Vectorized leakage predictions for key guesses.

Every function returns a (D, G) Hamming-weight hypothesis matrix: the
predicted HW of one architectural intermediate of the instrumented
multiply (:mod:`repro.fpr.trace`), for each of D traces (rows, known
operand varies) and G guesses (columns, secret candidate varies).

Memory is bounded by chunking over guesses: a full (D, G) uint64
intermediate matrix is never materialized beyond ``_CHUNK`` columns.
"""

from __future__ import annotations

import numpy as np

from repro.fpr.trace import LOW_BITS
from repro.utils.bits import hamming_weight_array

__all__ = [
    "known_limbs",
    "known_exponent",
    "known_sign",
    "hyp_product",
    "hyp_s_lo",
    "hyp_s_mid",
    "hyp_s_hi",
    "hyp_exp_sum",
    "hyp_exp_biased",
    "hyp_exp_out",
    "hyp_sign",
]

_U = np.uint64
_MASK25 = _U((1 << LOW_BITS) - 1)
_MANT_MASK = _U((1 << 52) - 1)
_IMPLICIT = _U(1 << 52)
_CHUNK = 256


def known_limbs(y_patterns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(B, A): low-25 and high-28 significand limbs of the known operand."""
    y = np.asarray(y_patterns, dtype=np.uint64)
    my = (y & _MANT_MASK) | _IMPLICIT
    return my & _MASK25, my >> _U(LOW_BITS)


def known_exponent(y_patterns: np.ndarray) -> np.ndarray:
    y = np.asarray(y_patterns, dtype=np.uint64)
    return (y >> _U(52)) & _U(0x7FF)


def known_sign(y_patterns: np.ndarray) -> np.ndarray:
    y = np.asarray(y_patterns, dtype=np.uint64)
    return y >> _U(63)


def _hw_outer(known: np.ndarray, guesses: np.ndarray, fn) -> np.ndarray:
    """HW(fn(known[:, None], guess[None, :])) computed in guess chunks."""
    known = np.asarray(known, dtype=np.uint64)
    guesses = np.asarray(guesses, dtype=np.uint64)
    d, g = known.shape[0], guesses.shape[0]
    out = np.empty((d, g), dtype=np.int8)
    for lo in range(0, g, _CHUNK):
        hi = min(lo + _CHUNK, g)
        vals = fn(known[:, None], guesses[None, lo:hi])
        out[:, lo:hi] = hamming_weight_array(vals).astype(np.int8)
    return out


def hyp_product(known_limb: np.ndarray, guesses: np.ndarray, mask_bits: int | None = None) -> np.ndarray:
    """HW of (guess * known_limb), optionally masked to the low bits.

    The extend phase of the attack: hypotheses on the partial products
    p_ll = D*B, p_lh = D*A (low secret limb) or p_hl = C*B, p_hh = C*A
    (high secret limb). ``mask_bits`` restricts the prediction to the low
    bits, which depend only on the guessed low bits of the secret limb —
    this is what makes the LSB-to-MSB ladder sound.
    """
    if mask_bits is not None:
        m = _U((1 << mask_bits) - 1)
        return _hw_outer(known_limb, guesses, lambda k, g: (k * g) & m)
    return _hw_outer(known_limb, guesses, lambda k, g: k * g)


def hyp_s_lo(y_lo: np.ndarray, y_hi: np.ndarray, d_candidates: np.ndarray) -> np.ndarray:
    """HW of s_lo = (D*B >> 25) + D*A — the prune target for the low limb."""
    return _hw_outer_pair(
        y_lo, y_hi, d_candidates, lambda b, a, d: ((d * b) >> _U(LOW_BITS)) + d * a
    )


def hyp_s_mid(
    y_lo: np.ndarray, y_hi: np.ndarray, d_low: int, c_candidates: np.ndarray
) -> np.ndarray:
    """HW of s_mid = s_lo + C*B, with the low limb D already recovered."""
    d = _U(d_low)
    return _hw_outer_pair(
        y_lo,
        y_hi,
        c_candidates,
        lambda b, a, c: ((d * b) >> _U(LOW_BITS)) + d * a + c * b,
    )


def hyp_s_hi(
    y_lo: np.ndarray, y_hi: np.ndarray, d_low: int, c_candidates: np.ndarray
) -> np.ndarray:
    """HW of s_hi = (s_mid >> 25) + C*A (the full product's top bits)."""
    d = _U(d_low)

    def fn(b, a, c):
        s_mid = ((d * b) >> _U(LOW_BITS)) + d * a + c * b
        return (s_mid >> _U(LOW_BITS)) + c * a

    return _hw_outer_pair(y_lo, y_hi, c_candidates, fn)


def _hw_outer_pair(k1: np.ndarray, k2: np.ndarray, guesses: np.ndarray, fn) -> np.ndarray:
    """Chunked HW for predictors needing two known arrays."""
    k1 = np.asarray(k1, dtype=np.uint64)
    k2 = np.asarray(k2, dtype=np.uint64)
    guesses = np.asarray(guesses, dtype=np.uint64)
    d, g = k1.shape[0], guesses.shape[0]
    out = np.empty((d, g), dtype=np.int8)
    for lo in range(0, g, _CHUNK):
        hi = min(lo + _CHUNK, g)
        vals = fn(k1[:, None], k2[:, None], guesses[None, lo:hi])
        out[:, lo:hi] = hamming_weight_array(vals).astype(np.int8)
    return out


def hyp_exp_sum(y_patterns: np.ndarray, guesses: np.ndarray) -> np.ndarray:
    """HW of the raw biased exponent sum E_x + E_y for guessed E_x."""
    ey = known_exponent(y_patterns)
    return _hw_outer(ey, guesses, lambda k, g: k + g)


def hyp_exp_biased(y_patterns: np.ndarray, guesses: np.ndarray) -> np.ndarray:
    """HW of the 32-bit two's-complement word (E_x + E_y - 2100).

    The rebias pushes the sum into the negative range, where increments
    flip long carry chains; unlike the raw sum, the resulting HW-vs-E_y
    profiles of two guesses are generally not offset by a constant, so
    this intermediate disambiguates the tie classes of ``hyp_exp_sum``.
    """
    from repro.fpr.trace import EXP_REBIAS

    ey = known_exponent(y_patterns)
    rebias = _U(EXP_REBIAS)
    m32 = _U(0xFFFFFFFF)
    return _hw_outer(ey, guesses, lambda k, g: (k + g - rebias) & m32)


def hyp_exp_out(y_patterns: np.ndarray, guesses: np.ndarray, significand: int) -> np.ndarray:  # sast: declassify(reason=hypothesis engine enumerates candidate intermediates; operates on attacker guesses, not victim control flow)
    """HW of the result's biased exponent for guessed E_x.

    With the 53-bit significand already recovered, the full product —
    and hence its normalization/rounding carry — is exactly predictable:
    the hypothesis builds x = (E_x_guess, significand), multiplies by the
    known operand in IEEE-754, and reads off the exponent field.
    """
    if not 1 << 52 <= significand < 1 << 53:
        raise ValueError(f"significand out of range: {significand:#x}")
    y = np.asarray(y_patterns, dtype=np.uint64)
    guesses = np.asarray(guesses, dtype=np.uint64)
    mant = _U(significand) & _MANT_MASK
    x_pats = ((guesses << _U(52)) | mant).view(np.float64)
    y_f = y.view(np.float64)
    d, g = y.shape[0], guesses.shape[0]
    out = np.empty((d, g), dtype=np.int8)
    for lo in range(0, g, _CHUNK):
        hi = min(lo + _CHUNK, g)
        # Extreme wrong guesses overflow to inf — a legal (useless)
        # hypothesis for those columns, so silence the FP warning.
        with np.errstate(over="ignore", under="ignore"):
            prod = y_f[:, None] * x_pats[None, lo:hi]
        exp_field = (prod.view(np.uint64) >> _U(52)) & _U(0x7FF)
        out[:, lo:hi] = hamming_weight_array(exp_field).astype(np.int8)
    return out


def hyp_sign(y_patterns: np.ndarray) -> np.ndarray:
    """(D, 2) hypothesis for the result sign: guess s_x in {0, 1}."""
    sy = known_sign(y_patterns)
    return _hw_outer(sy, np.array([0, 1], dtype=np.uint64), lambda k, g: k ^ g)
