"""Streaming CPA: correlation from running sums over trace batches.

A real campaign acquires traces for hours; the distinguisher should not
need them all in memory. Pearson correlation decomposes into five
running sums (Σh, Σh², Σt, Σt², Σht), so batches can be folded in as
they arrive and the correlation matrix queried at any point — this is
also how the correlation-evolution plots are produced without quadratic
recomputation.

The moment bookkeeping lives in
:class:`repro.utils.stats.PearsonAccumulator`; this class adds the
fixed-shape validation a long-running acquisition loop wants. Results
are bit-identical to :func:`repro.utils.stats.batched_pearson` on the
concatenated data (same raw-moment finalization).
"""

from __future__ import annotations

import numpy as np

from repro.utils.stats import PearsonAccumulator

__all__ = ["IncrementalCpa"]


class IncrementalCpa:
    """Accumulates (D, G) hypothesis / (D, T) trace batches."""

    def __init__(self, n_guesses: int, n_samples: int):
        if n_guesses < 1 or n_samples < 1:
            raise ValueError("n_guesses and n_samples must be positive")
        self.n_guesses = n_guesses
        self.n_samples = n_samples
        self._acc = PearsonAccumulator()

    @property
    def count(self) -> int:
        return self._acc.count

    def update(self, hypotheses: np.ndarray, traces: np.ndarray) -> None:
        """Fold in one batch (rows are traces)."""
        h = np.atleast_2d(np.asarray(hypotheses, dtype=np.float64))
        t = np.atleast_2d(np.asarray(traces, dtype=np.float64))
        if h.shape[1] != self.n_guesses or t.shape[1] != self.n_samples:
            raise ValueError(
                f"batch shapes {h.shape}/{t.shape} do not match "
                f"({self.n_guesses} guesses, {self.n_samples} samples)"
            )
        if h.shape[0] != t.shape[0]:
            raise ValueError(f"{h.shape[0]} hypothesis rows vs {t.shape[0]} trace rows")
        self._acc.update(h, t)

    def correlation(self) -> np.ndarray:
        """The (G, T) Pearson correlation of everything folded so far."""
        return self._acc.correlation()

    def threshold(self, confidence: float = 0.9999) -> float:
        return self._acc.threshold(confidence)
