"""Streaming CPA: correlation from running sums over trace batches.

A real campaign acquires traces for hours; the distinguisher should not
need them all in memory. Pearson correlation decomposes into five
running sums (Σh, Σh², Σt, Σt², Σht), so batches can be folded in as
they arrive and the correlation matrix queried at any point — this is
also how the correlation-evolution plots are produced without quadratic
recomputation.

Results are bit-identical to :func:`repro.utils.stats.batched_pearson`
on the concatenated data (same raw-moment formulation).
"""

from __future__ import annotations

import numpy as np

__all__ = ["IncrementalCpa"]


class IncrementalCpa:
    """Accumulates (D, G) hypothesis / (D, T) trace batches."""

    def __init__(self, n_guesses: int, n_samples: int):
        if n_guesses < 1 or n_samples < 1:
            raise ValueError("n_guesses and n_samples must be positive")
        self.n_guesses = n_guesses
        self.n_samples = n_samples
        self.count = 0
        self._sum_h = np.zeros(n_guesses)
        self._sum_h2 = np.zeros(n_guesses)
        self._sum_t = np.zeros(n_samples)
        self._sum_t2 = np.zeros(n_samples)
        self._sum_ht = np.zeros((n_guesses, n_samples))

    def update(self, hypotheses: np.ndarray, traces: np.ndarray) -> None:
        """Fold in one batch (rows are traces)."""
        h = np.atleast_2d(np.asarray(hypotheses, dtype=np.float64))
        t = np.atleast_2d(np.asarray(traces, dtype=np.float64))
        if h.shape[1] != self.n_guesses or t.shape[1] != self.n_samples:
            raise ValueError(
                f"batch shapes {h.shape}/{t.shape} do not match "
                f"({self.n_guesses} guesses, {self.n_samples} samples)"
            )
        if h.shape[0] != t.shape[0]:
            raise ValueError(f"{h.shape[0]} hypothesis rows vs {t.shape[0]} trace rows")
        self.count += h.shape[0]
        self._sum_h += h.sum(axis=0)
        self._sum_h2 += np.einsum("dg,dg->g", h, h)
        self._sum_t += t.sum(axis=0)
        self._sum_t2 += np.einsum("dt,dt->t", t, t)
        self._sum_ht += h.T @ t

    def correlation(self) -> np.ndarray:
        """The (G, T) Pearson correlation of everything folded so far."""
        if self.count < 2:
            raise ValueError("need at least two traces")
        d = self.count
        cov = self._sum_ht - np.outer(self._sum_h, self._sum_t) / d
        var_h = np.maximum(self._sum_h2 - self._sum_h**2 / d, 0.0)
        var_t = np.maximum(self._sum_t2 - self._sum_t**2 / d, 0.0)
        denom = np.sqrt(np.outer(var_h, var_t))
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, cov / np.where(denom > 0, denom, 1.0), 0.0)
        return np.clip(corr, -1.0, 1.0)

    def threshold(self, confidence: float = 0.9999) -> float:
        from repro.utils.stats import fisher_z_threshold

        return fisher_z_threshold(self.count, confidence)
