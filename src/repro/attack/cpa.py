"""Correlation power/EM analysis: the paper's distinguisher (Eq. 1).

For D traces with T samples and G guesses, the distinguisher is the
Pearson correlation r_{i,j} between the Hamming-weight leakage estimate
of guess i and the measured samples at time j; a guess is accepted when
its correlation crosses the 99.99% Fisher-z confidence bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics
from repro.utils.stats import batched_pearson, fisher_z_threshold, streaming_pearson

__all__ = ["CpaResult", "run_cpa", "significance_threshold", "combine_scores"]


def significance_threshold(n_traces: int, confidence: float = 0.9999) -> float:
    """|r| needed for significance — the dashed line in the paper's Fig. 4."""
    return fisher_z_threshold(n_traces, confidence)


@dataclass
class CpaResult:
    """Correlation matrix plus ranking utilities for one CPA run."""

    guesses: np.ndarray          # (G,) the guess values
    corr: np.ndarray             # (G, T) correlation traces
    n_traces: int
    signed: bool = False         # rank on signed corr (sign-bit attack) or |corr|

    @property
    def scores(self) -> np.ndarray:
        """(G,) peak score per guess across time samples."""
        if self.signed:
            return self.corr.max(axis=1)
        return np.abs(self.corr).max(axis=1)

    @property
    def ranking(self) -> np.ndarray:
        """Guess indices sorted best-first."""
        return np.argsort(-self.scores, kind="stable")

    @property
    def best_guess(self) -> int:
        return int(self.guesses[self.ranking[0]])

    @property
    def best_sample(self) -> int:
        """Sample index where the best guess peaks (the leakiest point)."""
        g = self.ranking[0]
        row = self.corr[g] if self.signed else np.abs(self.corr[g])
        return int(np.argmax(row))

    def threshold(self, confidence: float = 0.9999) -> float:
        return significance_threshold(self.n_traces, confidence)

    def significant_guesses(self, confidence: float = 0.9999) -> np.ndarray:
        """Guess values whose peak score crosses the confidence bound.

        The bound is strictly below 1.0 even for degenerate trace counts
        (see :func:`repro.utils.stats.fisher_z_threshold`), so a perfect
        correlation always qualifies under the strict comparison.
        """
        return self.guesses[self.scores > self.threshold(confidence)]

    def top(self, k: int) -> list[tuple[int, float]]:
        """The k best (guess, score) pairs."""
        order = self.ranking[:k]
        return [(int(self.guesses[i]), float(self.scores[i])) for i in order]


def run_cpa(
    hypotheses: np.ndarray,
    traces: np.ndarray,
    guesses: np.ndarray,
    signed: bool = False,
    chunk_rows: int | None = None,
) -> CpaResult:
    """Correlate a (D, G) hypothesis matrix against (D, T) traces.

    ``chunk_rows`` switches to the streaming accumulator: the correlation
    is built from raw-moment sums over ``chunk_rows``-trace batches, so
    the float64 working set stays O(chunk) instead of O(D). Results agree
    with the one-shot path to float64 summation-order error.

    ``n_traces`` on the result is the row count actually correlated —
    after any per-segment filtering upstream — so the Fisher-z
    significance bound always matches the data that produced the
    correlations.
    """
    hypotheses = np.asarray(hypotheses)
    traces = np.asarray(traces)
    if chunk_rows is not None:
        corr = streaming_pearson(hypotheses, traces, chunk_rows=chunk_rows)
        metrics.inc("cpa.chunks_streamed", -(-traces.shape[0] // max(chunk_rows, 1)))
    else:
        corr = batched_pearson(hypotheses, traces)
    metrics.inc("cpa.score_calls", 1)
    metrics.inc("cpa.rows_correlated", int(traces.shape[0]))
    return CpaResult(
        guesses=np.asarray(guesses),
        corr=corr,
        n_traces=traces.shape[0],
        signed=signed,
    )


def combine_scores(results: list[CpaResult]) -> np.ndarray:
    """Combine per-segment CPA scores for the same guess vector.

    Segments are statistically independent acquisitions of the same
    secret (different known operands), so their Fisher-z statistics add;
    summing the (small) correlations is the first-order equivalent and is
    what we rank on.
    """
    if not results:
        raise ValueError("no CPA results to combine")
    first = results[0].guesses
    for r in results[1:]:
        if not np.array_equal(r.guesses, first):
            raise ValueError("segments ranked over different guess vectors")
    return np.sum([r.scores for r in results], axis=0)
