"""End-to-end attack driver: capture -> per-coefficient DEMA -> forgery.

This is the Section IV experiment in one call: given a victim device
(secret key + device model), acquire a measurement campaign, recover
every coefficient of FFT(f) with the extend-and-prune attack, rebuild
the signing key from the public information, forge a signature on an
arbitrary message, and verify it under the victim's genuine public key.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.attack.config import AttackConfig
from repro.attack.key_recovery import (
    CoefficientRecord,
    KeyRecoveryError,
    KeyRecoveryResult,
    ProgressCallback,
    forge,
    recover_full_key,
)
from repro.falcon.keygen import PublicKey, SecretKey
from repro.falcon.verify import verify
from repro.leakage.capture import CaptureCampaign
from repro.leakage.device import DeviceModel
from repro.obs import metrics, spans
from repro.obs.metrics import MetricsSnapshot
from repro.obs.spans import Span, span
from repro.targets import DEFAULT_TARGET, get_target

__all__ = ["AttackTelemetry", "FullAttackReport", "full_attack"]


@dataclass
class AttackTelemetry:
    """Where a campaign's wall clock and I/O went.

    Distilled from the run's metrics snapshot and root span so reports
    (and the JSONL journal) expose the perf trajectory without keeping
    raw traces around. ``per_stage_s`` holds the direct children of the
    ``attack`` root span — materialize / coefficients / rebuild / forge
    — whose sum approximates the wall clock (the residue is setup cost).
    """

    per_stage_s: dict[str, float] = field(default_factory=dict)
    rows_correlated: int = 0          # rows that entered a distinguisher score
    chunks_streamed: int = 0          # streaming-CPA batches processed
    store_bytes_read: int = 0         # bytes exposed by store shard reads
    checkpoints_written: int = 0      # session checkpoints persisted this run
    checkpoints_restored: int = 0     # targets replayed from a prior run
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot, repr=False)
    root_span: Span | None = field(default=None, repr=False)

    @classmethod
    def from_run(cls, root: Span | None, snapshot: MetricsSnapshot) -> "AttackTelemetry":
        c = snapshot.counters
        return cls(
            per_stage_s=root.stage_seconds() if root is not None else {},
            rows_correlated=int(c.get("cpa.rows_correlated", 0)),
            chunks_streamed=int(c.get("cpa.chunks_streamed", 0)),
            store_bytes_read=int(c.get("store.bytes_read", 0)),
            checkpoints_written=int(c.get("session.checkpoints_written", 0)),
            checkpoints_restored=int(c.get("session.checkpoints_restored", 0)),
            metrics=snapshot,
            root_span=root,
        )

    def to_jsonable(self) -> dict:
        return {
            "per_stage_s": dict(self.per_stage_s),
            "rows_correlated": self.rows_correlated,
            "chunks_streamed": self.chunks_streamed,
            "store_bytes_read": self.store_bytes_read,
            "checkpoints_written": self.checkpoints_written,
            "checkpoints_restored": self.checkpoints_restored,
            "metrics": self.metrics.to_jsonable(),
            "span": self.root_span.to_jsonable() if self.root_span else None,
        }


@dataclass
class FullAttackReport:
    """What the adversary achieved, and at what measurement cost."""

    n: int
    n_traces: int                     # requested signings per coefficient
    key_recovery: KeyRecoveryResult
    key_correct: bool                 # recovered f equals the victim's f
    forgery_verifies: bool
    forged_message: bytes
    elapsed_seconds: float
    #: Rows that actually entered the CPA, summed over coefficients and
    #: segments — the capture layer drops non-normal known operands, so
    #: this is the count the significance bounds were computed from.
    n_traces_correlated: int = 0
    n_workers: int = 1
    failure: str | None = None        # why recovery failed, if it did
    #: Which leakage surface the campaign attacked (:mod:`repro.targets`).
    target: str = DEFAULT_TARGET
    #: Metrics + span telemetry for the whole run (always collected; the
    #: instrumentation never influences the recovered key).
    telemetry: AttackTelemetry | None = field(default=None, repr=False)

    @property
    def succeeded(self) -> bool:
        return self.failure is None and self.key_recovery.succeeded

    @property
    def n_coefficients(self) -> int:
        return len(self.key_recovery.coefficients)

    @property
    def n_correct_coefficients(self) -> int:
        return self.key_recovery.n_correct_coefficients

    @property
    def records(self) -> list[CoefficientRecord]:
        return self.key_recovery.records

    @property
    def coefficient_seconds(self) -> float:
        """Summed per-coefficient attack time (> wall clock when parallel)."""
        return sum(r.elapsed_seconds for r in self.records)

    def summary(self) -> str:
        if self.target != DEFAULT_TARGET:
            return self._summary_surface()
        lines = [
            f"FALCON-{self.n} full key extraction with {self.n_traces} measurements",
        ]
        if self.n_traces_correlated:
            lines.append(
                f"  trace rows correlated: {self.n_traces_correlated} "
                f"(requested {self.n_traces} signings/coefficient)"
            )
        if self.key_recovery.recovered_sk is None:
            reason = self.failure or "no consistent key could be rebuilt"
            lines.append(f"  key recovery FAILED: {reason}")
        if self.key_recovery.coefficients:
            lines.append(
                f"  coefficients recovered exactly: "
                f"{self.n_correct_coefficients}/{self.n_coefficients}"
            )
        lines += [
            f"  secret key f recovered: {'YES' if self.key_correct else 'no'}",
            f"  forged signature on {self.forged_message!r} verifies: "
            f"{'YES' if self.forgery_verifies else 'no'}",
        ]
        if self.n_workers > 1 and self.records:
            lines.append(
                f"  wall clock: {self.elapsed_seconds:.1f}s with {self.n_workers} "
                f"workers ({self.coefficient_seconds:.1f}s of per-coefficient work)"
            )
        else:
            lines.append(f"  wall clock: {self.elapsed_seconds:.1f}s")
        return "\n".join(lines)

    def _summary_surface(self) -> str:
        """Summary for non-key-material surfaces (no forgery stanza)."""
        lines = [
            f"FALCON-{self.n} {self.target} transcript extraction "
            f"with {self.n_traces} measurements",
        ]
        if self.n_traces_correlated:
            lines.append(
                f"  trace rows correlated: {self.n_traces_correlated} "
                f"(requested {self.n_traces} replays/call)"
            )
        if self.failure is not None:
            lines.append(f"  recovery FAILED: {self.failure}")
        if self.key_recovery.coefficients:
            lines.append(
                f"  sampler calls recovered exactly: "
                f"{self.n_correct_coefficients}/{self.n_coefficients}"
            )
        lines.append(
            f"  ffSampling sampler outputs recovered: "
            f"{'YES' if self.key_correct else 'no'}"
        )
        lines.append(f"  wall clock: {self.elapsed_seconds:.1f}s")
        return "\n".join(lines)


def full_attack(
    sk: SecretKey,
    pk: PublicKey,
    n_traces: int = 10_000,
    device: DeviceModel | None = None,
    config: AttackConfig | None = None,
    message: bytes = b"arbitrary message chosen by the adversary",
    mode: str = "direct",
    seed: int = 2021,
    backend: str = "numpy-batch",
    target: str = DEFAULT_TARGET,
    progress: bool = False,
    progress_callback: ProgressCallback | None = None,
    n_workers: int | None = None,
    value_transform=None,
    store=None,
    session=None,
    journal=None,
) -> FullAttackReport:
    """Run the complete Section-IV attack against a simulated victim.

    ``sk`` plays the victim device (it drives the leakage simulation);
    the adversary's code path only consumes the traces, the known
    FFT(c) values, and the public key. ``value_transform`` installs a
    countermeasure on the simulated device (see
    :mod:`repro.countermeasures`) — useful as a negative control.

    ``n_workers`` overrides ``config.n_workers``: per-coefficient
    attacks fan out over that many worker processes, with results
    bit-identical to the serial run. ``progress_callback`` receives
    structured per-coefficient :class:`ProgressEvent` records.

    ``backend`` selects the capture step-value engine (see
    :mod:`repro.leakage.backend`): ``numpy-batch`` (vectorized,
    default) or ``python-ref`` (per-value softfloat). The engines are
    bit-exact, so the recovered key is identical either way.

    ``target`` selects the leakage surface (see :mod:`repro.targets`).
    The default ``fpr-mul`` runs the paper's key-extraction attack and
    ends in a forgery; ``samplerz`` attacks the discrete Gaussian
    sampler instead, recovering ffSampling's per-call outputs
    (``report.key_recovery.recovered_values``) — surfaces without key
    material skip the forgery stage.

    ``store`` separates capture cost from attack cost: a path (or
    :class:`~repro.leakage.store.CampaignStore`) makes the attack read
    its traces from a disk-backed store — materialized on first use,
    memory-mapped and re-simulation-free afterwards. ``session`` (a
    path or :class:`~repro.attack.session.AttackSession`) checkpoints
    each finished coefficient so an interrupted run resumes
    bit-identically.

    ``journal`` (a :class:`~repro.obs.journal.RunJournal`) receives the
    structured event stream: ``run_start``, per-target ``progress`` and
    ``span`` events, the run's span tree and metrics snapshot, then
    ``run_end``. The returned report always carries
    :class:`AttackTelemetry` — the instrumentation is passive, so the
    recovered key is bit-identical with or without a journal attached.
    """
    start = time.perf_counter()
    cfg = config or AttackConfig()
    if n_workers is not None:
        cfg = dataclasses.replace(cfg, n_workers=n_workers)

    surface = get_target(target)  # fail fast on unknown surface names

    def _execute() -> FullAttackReport:
        campaign = CaptureCampaign(
            sk=sk,
            device=device if device is not None else DeviceModel(),
            n_traces=n_traces,
            mode=mode,
            seed=seed,
            backend=backend,
            target=target,
            value_transform=value_transform,
        )
        source = campaign
        local_session = session
        if store is not None:
            from repro.leakage.store import CampaignStore

            if isinstance(store, CampaignStore):
                source = store
            else:
                with span("materialize"):
                    source = campaign.materialize(store)
        if local_session is not None and not hasattr(local_session, "bind"):
            from repro.attack.session import AttackSession

            local_session = AttackSession(local_session)
        try:
            result = recover_full_key(
                source, pk, config=cfg, progress=progress,
                progress_callback=progress_callback, session=local_session,
                journal=journal,
            )
        except KeyRecoveryError as exc:  # failed recovery is an outcome, not a crash
            partial = KeyRecoveryResult(
                f=[], g=[], big_f=[], big_g=[], recovered_sk=None,
                coefficients=list(exc.coefficients), records=list(exc.records),
            )
            return FullAttackReport(
                n=sk.params.n,
                n_traces=n_traces,
                key_recovery=partial,
                key_correct=False,
                forgery_verifies=False,
                forged_message=message,
                elapsed_seconds=time.perf_counter() - start,
                n_traces_correlated=partial.n_traces_correlated,
                n_workers=cfg.n_workers,
                failure=str(exc),
                target=target,
            )
        if surface.has_forgery:
            key_correct = result.f == sk.f
            with span("forge"):
                sig = forge(result, message, seed=b"forgery")
                ok = verify(pk, message, sig)
        else:
            # No key material to forge with; "correct" means the full
            # recovered transcript matches the victim's ground truth.
            key_correct = bool(result.coefficients) and all(
                c.correct for c in result.coefficients
            )
            ok = False
        return FullAttackReport(
            n=sk.params.n,
            n_traces=n_traces,
            key_recovery=result,
            key_correct=key_correct,
            forgery_verifies=ok,
            forged_message=message,
            elapsed_seconds=time.perf_counter() - start,
            n_traces_correlated=result.n_traces_correlated,
            n_workers=cfg.n_workers,
            target=target,
        )

    if journal is not None:
        journal.emit(
            "run_start", n=sk.params.n, n_traces=n_traces, mode=mode,
            seed=seed, n_workers=cfg.n_workers, target=target,
        )
    # The run's telemetry is collected in an isolated scope and merged
    # back afterwards, so the report (and journal) see exactly this
    # attack's numbers even when several campaigns share a process.
    with metrics.scoped_registry() as reg, spans.detached() as roots:
        with span("attack", n=sk.params.n, n_traces=n_traces):
            report = _execute()
    snap = reg.snapshot()
    metrics.current_registry().merge_snapshot(snap)
    root = roots[0] if roots else None
    report.telemetry = AttackTelemetry.from_run(root, snap)
    if journal is not None:
        if root is not None:
            journal.emit_span(root)
        journal.emit_metrics(snap)
        journal.emit(
            "run_end", succeeded=report.succeeded,
            elapsed_seconds=report.elapsed_seconds, failure=report.failure,
        )
    return report
