"""End-to-end attack driver: capture -> per-coefficient DEMA -> forgery.

This is the Section IV experiment in one call: given a victim device
(secret key + device model), acquire a measurement campaign, recover
every coefficient of FFT(f) with the extend-and-prune attack, rebuild
the signing key from the public information, forge a signature on an
arbitrary message, and verify it under the victim's genuine public key.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.attack.config import AttackConfig
from repro.attack.key_recovery import (
    CoefficientRecord,
    KeyRecoveryError,
    KeyRecoveryResult,
    ProgressCallback,
    forge,
    recover_full_key,
)
from repro.falcon.keygen import PublicKey, SecretKey
from repro.falcon.verify import verify
from repro.leakage.capture import CaptureCampaign
from repro.leakage.device import DeviceModel

__all__ = ["FullAttackReport", "full_attack"]


@dataclass
class FullAttackReport:
    """What the adversary achieved, and at what measurement cost."""

    n: int
    n_traces: int                     # requested signings per coefficient
    key_recovery: KeyRecoveryResult
    key_correct: bool                 # recovered f equals the victim's f
    forgery_verifies: bool
    forged_message: bytes
    elapsed_seconds: float
    #: Rows that actually entered the CPA, summed over coefficients and
    #: segments — the capture layer drops non-normal known operands, so
    #: this is the count the significance bounds were computed from.
    n_traces_correlated: int = 0
    n_workers: int = 1
    failure: str | None = None        # why recovery failed, if it did

    @property
    def succeeded(self) -> bool:
        return self.failure is None and self.key_recovery.succeeded

    @property
    def n_coefficients(self) -> int:
        return len(self.key_recovery.coefficients)

    @property
    def n_correct_coefficients(self) -> int:
        return self.key_recovery.n_correct_coefficients

    @property
    def records(self) -> list[CoefficientRecord]:
        return self.key_recovery.records

    @property
    def coefficient_seconds(self) -> float:
        """Summed per-coefficient attack time (> wall clock when parallel)."""
        return sum(r.elapsed_seconds for r in self.records)

    def summary(self) -> str:
        lines = [
            f"FALCON-{self.n} full key extraction with {self.n_traces} measurements",
        ]
        if self.n_traces_correlated:
            lines.append(
                f"  trace rows correlated: {self.n_traces_correlated} "
                f"(requested {self.n_traces} signings/coefficient)"
            )
        if self.key_recovery.recovered_sk is None:
            reason = self.failure or "no consistent key could be rebuilt"
            lines.append(f"  key recovery FAILED: {reason}")
        if self.key_recovery.coefficients:
            lines.append(
                f"  coefficients recovered exactly: "
                f"{self.n_correct_coefficients}/{self.n_coefficients}"
            )
        lines += [
            f"  secret key f recovered: {'YES' if self.key_correct else 'no'}",
            f"  forged signature on {self.forged_message!r} verifies: "
            f"{'YES' if self.forgery_verifies else 'no'}",
        ]
        if self.n_workers > 1 and self.records:
            lines.append(
                f"  wall clock: {self.elapsed_seconds:.1f}s with {self.n_workers} "
                f"workers ({self.coefficient_seconds:.1f}s of per-coefficient work)"
            )
        else:
            lines.append(f"  wall clock: {self.elapsed_seconds:.1f}s")
        return "\n".join(lines)


def full_attack(
    sk: SecretKey,
    pk: PublicKey,
    n_traces: int = 10_000,
    device: DeviceModel | None = None,
    config: AttackConfig | None = None,
    message: bytes = b"arbitrary message chosen by the adversary",
    mode: str = "direct",
    seed: int = 2021,
    progress: bool = False,
    progress_callback: ProgressCallback | None = None,
    n_workers: int | None = None,
    value_transform=None,
    store=None,
    session=None,
) -> FullAttackReport:
    """Run the complete Section-IV attack against a simulated victim.

    ``sk`` plays the victim device (it drives the leakage simulation);
    the adversary's code path only consumes the traces, the known
    FFT(c) values, and the public key. ``value_transform`` installs a
    countermeasure on the simulated device (see
    :mod:`repro.countermeasures`) — useful as a negative control.

    ``n_workers`` overrides ``config.n_workers``: per-coefficient
    attacks fan out over that many worker processes, with results
    bit-identical to the serial run. ``progress_callback`` receives
    structured per-coefficient :class:`ProgressEvent` records.

    ``store`` separates capture cost from attack cost: a path (or
    :class:`~repro.leakage.store.CampaignStore`) makes the attack read
    its traces from a disk-backed store — materialized on first use,
    memory-mapped and re-simulation-free afterwards. ``session`` (a
    path or :class:`~repro.attack.session.AttackSession`) checkpoints
    each finished coefficient so an interrupted run resumes
    bit-identically.
    """
    start = time.time()
    cfg = config or AttackConfig()
    if n_workers is not None:
        cfg = dataclasses.replace(cfg, n_workers=n_workers)
    campaign = CaptureCampaign(
        sk=sk,
        device=device if device is not None else DeviceModel(),
        n_traces=n_traces,
        mode=mode,
        seed=seed,
        value_transform=value_transform,
    )
    source = campaign
    if store is not None:
        from repro.leakage.store import CampaignStore

        if isinstance(store, CampaignStore):
            source = store
        else:
            source = campaign.materialize(store)
    if session is not None and not hasattr(session, "bind"):
        from repro.attack.session import AttackSession

        session = AttackSession(session)
    try:
        result = recover_full_key(
            source, pk, config=cfg, progress=progress,
            progress_callback=progress_callback, session=session,
        )
    except KeyRecoveryError as exc:  # failed recovery is an outcome, not a crash
        partial = KeyRecoveryResult(
            f=[], g=[], big_f=[], big_g=[], recovered_sk=None,
            coefficients=list(exc.coefficients), records=list(exc.records),
        )
        return FullAttackReport(
            n=sk.params.n,
            n_traces=n_traces,
            key_recovery=partial,
            key_correct=False,
            forgery_verifies=False,
            forged_message=message,
            elapsed_seconds=time.time() - start,
            n_traces_correlated=partial.n_traces_correlated,
            n_workers=cfg.n_workers,
            failure=str(exc),
        )
    key_correct = result.f == sk.f
    sig = forge(result, message, seed=b"forgery")
    ok = verify(pk, message, sig)
    return FullAttackReport(
        n=sk.params.n,
        n_traces=n_traces,
        key_recovery=result,
        key_correct=key_correct,
        forgery_verifies=ok,
        forged_message=message,
        elapsed_seconds=time.time() - start,
        n_traces_correlated=result.n_traces_correlated,
        n_workers=cfg.n_workers,
    )
