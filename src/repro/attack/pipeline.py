"""End-to-end attack driver: capture -> per-coefficient DEMA -> forgery.

This is the Section IV experiment in one call: given a victim device
(secret key + device model), acquire a measurement campaign, recover
every coefficient of FFT(f) with the extend-and-prune attack, rebuild
the signing key from the public information, forge a signature on an
arbitrary message, and verify it under the victim's genuine public key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.attack.config import AttackConfig
from repro.attack.key_recovery import KeyRecoveryResult, forge, recover_full_key
from repro.falcon.keygen import PublicKey, SecretKey
from repro.falcon.verify import verify
from repro.leakage.capture import CaptureCampaign
from repro.leakage.device import DeviceModel

__all__ = ["FullAttackReport", "full_attack"]


@dataclass
class FullAttackReport:
    """What the adversary achieved, and at what measurement cost."""

    n: int
    n_traces: int
    key_recovery: KeyRecoveryResult
    key_correct: bool                 # recovered f equals the victim's f
    forgery_verifies: bool
    forged_message: bytes
    elapsed_seconds: float

    @property
    def n_coefficients(self) -> int:
        return len(self.key_recovery.coefficients)

    @property
    def n_correct_coefficients(self) -> int:
        return self.key_recovery.n_correct_coefficients

    def summary(self) -> str:
        lines = [
            f"FALCON-{self.n} full key extraction with {self.n_traces} measurements",
            f"  coefficients recovered exactly: "
            f"{self.n_correct_coefficients}/{self.n_coefficients}",
            f"  secret key f recovered: {'YES' if self.key_correct else 'no'}",
            f"  forged signature on {self.forged_message!r} verifies: "
            f"{'YES' if self.forgery_verifies else 'no'}",
            f"  wall clock: {self.elapsed_seconds:.1f}s",
        ]
        return "\n".join(lines)


def full_attack(
    sk: SecretKey,
    pk: PublicKey,
    n_traces: int = 10_000,
    device: DeviceModel | None = None,
    config: AttackConfig | None = None,
    message: bytes = b"arbitrary message chosen by the adversary",
    mode: str = "direct",
    seed: int = 2021,
    progress: bool = False,
    value_transform=None,
) -> FullAttackReport:
    """Run the complete Section-IV attack against a simulated victim.

    ``sk`` plays the victim device (it drives the leakage simulation);
    the adversary's code path only consumes the traces, the known
    FFT(c) values, and the public key. ``value_transform`` installs a
    countermeasure on the simulated device (see
    :mod:`repro.countermeasures`) — useful as a negative control.
    """
    start = time.time()
    campaign = CaptureCampaign(
        sk=sk,
        device=device if device is not None else DeviceModel(),
        n_traces=n_traces,
        mode=mode,
        seed=seed,
        value_transform=value_transform,
    )
    try:
        result = recover_full_key(campaign, pk, config=config, progress=progress)
    except Exception as exc:  # failed recovery is an outcome, not a crash
        from repro.attack.key_recovery import KeyRecoveryError

        if not isinstance(exc, KeyRecoveryError):
            raise
        empty = KeyRecoveryResult(
            f=[], g=[], big_f=[], big_g=[], recovered_sk=None, coefficients=[]
        )
        return FullAttackReport(
            n=sk.params.n,
            n_traces=n_traces,
            key_recovery=empty,
            key_correct=False,
            forgery_verifies=False,
            forged_message=message,
            elapsed_seconds=time.time() - start,
        )
    key_correct = result.f == sk.f
    sig = forge(result, message, seed=b"forgery")
    ok = verify(pk, message, sig)
    return FullAttackReport(
        n=sk.params.n,
        n_traces=n_traces,
        key_recovery=result,
        key_correct=key_correct,
        forgery_verifies=ok,
        forged_message=message,
        elapsed_seconds=time.time() - start,
    )
