"""Profiled (template) attack extension — paper Section V-A.

"It is possible to extend our attack by template [20] or
machine-learning based [25], [26] profiling techniques."

A template attack assumes a profiling phase on a device the adversary
controls (same model, *re-configurable key*): for every Hamming-weight
class of the targeted intermediate it estimates a Gaussian template
(mean vector + pooled covariance) from labelled traces. The matching
phase scores key guesses on the victim's traces by log-likelihood
instead of correlation, which extracts strictly more information per
trace than CPA and reduces the measurement cost.

Implementation notes:

* Templates are built per targeted step over the samples of that step
  (possibly several, when ``samples_per_step > 1``).
* The pooled covariance (Choudary-Kuhn) is used: one covariance for all
  classes, estimated from class-centered profiling traces. With few
  samples per step this is numerically robust.
* Matching returns per-guess log-likelihood sums; ranking utilities
  mirror :class:`repro.attack.cpa.CpaResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.leakage.traceset import TraceSet

__all__ = ["HwTemplates", "build_templates", "template_scores", "TemplateResult"]


@dataclass
class HwTemplates:
    """Gaussian templates for the HW classes of one targeted step."""

    classes: np.ndarray          # (K,) the HW values with a template
    means: np.ndarray            # (K, S) mean trace per class
    pooled_cov: np.ndarray       # (S, S) shared covariance
    _inv_cov: np.ndarray         # cached inverse
    _logdet: float

    @property
    def n_samples(self) -> int:
        return self.means.shape[1]

    def class_log_likelihood(self, traces: np.ndarray) -> np.ndarray:
        """(D, K) matrix of log p(trace_d | class k) for every class.

        One evaluation covers all guesses at once: scoring then reduces
        to gathering each guess's predicted-HW column per row, which is
        how :class:`repro.attack.distinguisher.TemplateDistinguisher`
        streams template matching over row chunks.
        """
        traces = np.atleast_2d(np.asarray(traces, dtype=np.float64))
        out = np.empty((traces.shape[0], len(self.classes)))
        for k in range(len(self.classes)):
            d = traces - self.means[k]
            out[:, k] = (
                -0.5 * np.einsum("ds,st,dt->d", d, self._inv_cov, d)
                - 0.5 * self._logdet
            )
        return out

    def log_likelihood(self, traces: np.ndarray, hw: np.ndarray) -> np.ndarray:
        """log p(trace_d | HW class hw_d) for each row d.

        Classes never seen in profiling contribute the worst observed
        likelihood (a conservative floor) rather than -inf.
        """
        traces = np.atleast_2d(np.asarray(traces, dtype=np.float64))
        hw = np.asarray(hw)
        out = np.full(traces.shape[0], np.nan)
        known = {int(c): i for i, c in enumerate(self.classes)}
        floor = None
        for value in np.unique(hw):
            idx = np.flatnonzero(hw == value)
            if int(value) in known:
                mu = self.means[known[int(value)]]
                d = traces[idx] - mu
                ll = -0.5 * np.einsum("ds,st,dt->d", d, self._inv_cov, d) - 0.5 * self._logdet
                out[idx] = ll
            else:
                out[idx] = np.nan
        if np.any(np.isnan(out)):
            floor = np.nanmin(out) if np.any(~np.isnan(out)) else 0.0
            out = np.where(np.isnan(out), floor, out)
        return out


def build_templates(  # sast: declassify(reason=template profiling consumes labeled leakage from the profiling device by design)
    traces: np.ndarray, hw_labels: np.ndarray, min_class_size: int = 4
) -> HwTemplates:
    """Profile Gaussian templates from labelled traces.

    ``traces`` is (D, S) (the samples of one step); ``hw_labels`` is the
    true intermediate Hamming weight per trace (known in profiling).
    """
    traces = np.atleast_2d(np.asarray(traces, dtype=np.float64))
    hw_labels = np.asarray(hw_labels)
    if traces.shape[0] != hw_labels.shape[0]:
        raise ValueError(
            f"{traces.shape[0]} traces vs {hw_labels.shape[0]} labels"
        )
    classes = []
    means = []
    centered = []
    for value in np.unique(hw_labels):
        idx = np.flatnonzero(hw_labels == value)
        if len(idx) < min_class_size:
            continue
        mu = traces[idx].mean(axis=0)
        classes.append(int(value))
        means.append(mu)
        centered.append(traces[idx] - mu)
    if not classes:
        raise ValueError("no HW class reached min_class_size during profiling")
    pooled = np.concatenate(centered, axis=0)
    cov = (pooled.T @ pooled) / max(len(pooled) - len(classes), 1)
    cov = np.atleast_2d(cov)
    # regularize lightly: profiling sets are finite
    cov += np.eye(cov.shape[0]) * 1e-9 * float(np.trace(cov) + 1.0)
    inv_cov = np.linalg.inv(cov)
    sign, logdet = np.linalg.slogdet(cov)
    if sign <= 0:
        raise ValueError("pooled covariance is not positive definite")
    return HwTemplates(
        classes=np.array(classes),
        means=np.vstack(means),
        pooled_cov=cov,
        _inv_cov=inv_cov,
        _logdet=float(logdet),
    )


@dataclass
class TemplateResult:
    """Per-guess log-likelihood totals (higher is better)."""

    guesses: np.ndarray
    scores: np.ndarray

    @property
    def ranking(self) -> np.ndarray:
        return np.argsort(-self.scores, kind="stable")

    @property
    def best_guess(self) -> int:
        return int(self.guesses[self.ranking[0]])


def template_scores(
    templates: HwTemplates,
    traces: np.ndarray,
    hyp_matrix: np.ndarray,
    guesses: np.ndarray,
) -> TemplateResult:
    """Match victim traces against templates for every guess.

    ``hyp_matrix`` is the (D, G) predicted-HW matrix of the usual CPA
    hypothesis builders — templates consume the same predictions, they
    just score them with profiled likelihoods instead of correlation.
    """
    traces = np.atleast_2d(np.asarray(traces, dtype=np.float64))
    hyp_matrix = np.asarray(hyp_matrix)
    guesses = np.asarray(guesses)
    if hyp_matrix.shape != (traces.shape[0], len(guesses)):
        raise ValueError(
            f"hypothesis shape {hyp_matrix.shape} != ({traces.shape[0]}, {len(guesses)})"
        )
    scores = np.empty(len(guesses), dtype=np.float64)
    for gi in range(len(guesses)):
        scores[gi] = float(templates.log_likelihood(traces, hyp_matrix[:, gi]).sum())
    return TemplateResult(guesses=guesses, scores=scores)


def profile_step(
    profiling_set: TraceSet, label: str, segment: int = 0
) -> HwTemplates:
    """Build templates for one step from a profiling TraceSet.

    Profiling assumes the true intermediate values are known (the
    adversary configures the keys on the profiling device); the
    simulator conveniently knows them too.
    """
    from repro.leakage.synth import mul_step_values
    from repro.fpr.trace import MUL_STEP_LABELS
    from repro.utils.bits import hamming_weight_array

    seg = profiling_set.segments[segment]
    if profiling_set.true_secret is None:
        raise ValueError("profiling requires a TraceSet with a known secret")
    values = mul_step_values(profiling_set.true_secret, seg.known_y)
    col = MUL_STEP_LABELS.index(label)
    hw = hamming_weight_array(values[:, col])
    window = seg.traces[:, profiling_set.layout.slice_of(label)]
    return build_templates(window, hw)
