"""The unified Distinguisher protocol of the attack engine.

Every attack in this repository reduces to the same question: given a
(D, G) matrix of per-guess Hamming-weight predictions and a (D, S)
window of measured samples, which guess explains the measurements best?
The paper's classic CPA answers it with Pearson correlation; the
Section V-A extensions answer it with profiled Gaussian templates or an
MLP classifier; the Section V-B counter-countermeasure answers it with
CPA on a centered product of two share windows; the Section III-B
strawman is CPA restricted to the (shift-aliased) multiplication step.

Historically each of those had a one-off interface. This module gives
them one: a :class:`Distinguisher` exposes

``score(hyp, window, guesses, *, label=None, signed=False, exact=True)``
    rank the guesses; the result carries ``guesses``/``scores``/
    ``ranking``/``best_guess`` (the :class:`ScoreResult` protocol, which
    :class:`~repro.attack.cpa.CpaResult`,
    :class:`~repro.attack.template.TemplateResult` and
    :class:`~repro.attack.ml_profiled.MlProfileResult` all satisfy).
``fit_step(label, traces, hw_labels)``
    profile one targeted step (no-op for unprofiled distinguishers).

Because the extend-and-prune ladder, the prune phase, and the sign/
exponent DEMA all consume this interface, every distinguisher inherits
the PR-1 engine features for free: ``chunk_rows`` streams the scoring
through O(chunk)-memory accumulators, the per-coefficient worker
fan-out of :func:`repro.attack.key_recovery.recover_coefficients`
ships a fitted distinguisher to each worker once, and progress arrives
as structured :class:`~repro.attack.key_recovery.ProgressEvent`\\ s.

``exact`` marks whether the hypothesis matrix predicts the *full*
intermediate (prune additions, exponents, sign) or only a masked
partial value (the ladder's LSB-window products). Profiled
distinguishers need class-aligned predictions, so on ``exact=False``
calls they fall back to their internal correlation scorer — profiling
cannot align HW classes for a value the hypothesis only knows modulo
2^m.

Select by name through :data:`~repro.attack.config.AttackConfig.
distinguisher` (CLI: ``--distinguisher``); :func:`make_distinguisher`
and :func:`profile_distinguisher` are the factory pair the engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.attack.config import KNOWN_DISTINGUISHERS, AttackConfig
from repro.attack.cpa import CpaResult, run_cpa
from repro.obs import metrics
from repro.obs.spans import span
from repro.utils.registry import resolve_name
from repro.utils.stats import OnlineMoments, PearsonAccumulator

__all__ = [
    "ScoreResult",
    "Distinguisher",
    "CpaDistinguisher",
    "StrawmanDistinguisher",
    "TemplateDistinguisher",
    "MlDistinguisher",
    "SecondOrderDistinguisher",
    "DISTINGUISHERS",
    "make_distinguisher",
    "profile_distinguisher",
    "ENGINE_PROFILED_LABELS",
]


@runtime_checkable
class ScoreResult(Protocol):
    """What every distinguisher's ``score`` returns (structurally)."""

    guesses: np.ndarray
    scores: np.ndarray

    @property
    def ranking(self) -> np.ndarray:  # pragma: no cover - protocol
        ...

    @property
    def best_guess(self) -> int:  # pragma: no cover - protocol
        ...


@dataclass
class ProfiledScore:
    """Generic best-first ranking for profiled scorers."""

    guesses: np.ndarray
    scores: np.ndarray

    @property
    def ranking(self) -> np.ndarray:
        return np.argsort(-self.scores, kind="stable")

    @property
    def best_guess(self) -> int:
        return int(self.guesses[self.ranking[0]])


class Distinguisher:
    """Base class: an unprofiled distinguisher that must define score()."""

    name: str = "base"
    needs_profiling: bool = False

    def fit_step(self, label: str, traces: np.ndarray, hw_labels: np.ndarray) -> None:
        """Profile one targeted step from labelled traces (default: no-op)."""

    @property
    def fitted_labels(self) -> tuple[str, ...]:
        return ()

    def score(
        self,
        hyp: np.ndarray,
        window: np.ndarray,
        guesses: np.ndarray,
        *,
        label: str | None = None,
        signed: bool = False,
        exact: bool = True,
    ) -> ScoreResult:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(repr=False)
class CpaDistinguisher(Distinguisher):
    """The paper's Eq.-1 Pearson-correlation distinguisher.

    ``chunk_rows`` streams the correlation through the raw-moment
    accumulator exactly as :func:`repro.attack.cpa.run_cpa` does.
    """

    chunk_rows: int | None = None
    name = "cpa"

    def score(self, hyp, window, guesses, *, label=None, signed=False, exact=True):
        return run_cpa(hyp, window, guesses, signed=signed, chunk_rows=self.chunk_rows)


@dataclass(repr=False)
class StrawmanDistinguisher(CpaDistinguisher):
    """The Section III-B baseline: CPA that only ever sees products.

    Scoring is identical to classic CPA — the strawman's defect is
    *where* it looks (multiplication outputs, whose HW is shift
    invariant), not how it ranks. It exists as a named engine citizen so
    the false-positive studies (``repro.attack.strawman``, the Fig. 4c
    bench) ride the same streaming/fan-out machinery as everything else.
    """

    name = "strawman"


def _gather_scores(
    ll: np.ndarray, classes: np.ndarray, hyp: np.ndarray
) -> np.ndarray:
    """Sum per-row class log-likelihoods along each guess's HW prediction.

    ``ll`` is (D, K) log-likelihood per row and class; ``hyp`` is the
    (D, G) predicted-HW matrix. Predictions outside the profiled
    classes take that row's worst class likelihood — a per-row floor,
    which (unlike a global minimum) is invariant under row chunking.
    """
    lut = np.full(int(classes.max()) + 2, -1, dtype=np.int64)
    lut[classes.astype(np.int64)] = np.arange(len(classes))
    h = np.asarray(hyp, dtype=np.int64)
    idx = lut[np.clip(h, 0, len(lut) - 1)]
    row_floor = ll.min(axis=1)
    gathered = np.take_along_axis(ll, np.clip(idx, 0, ll.shape[1] - 1), axis=1)
    gathered = np.where(idx >= 0, gathered, row_floor[:, None])
    return gathered.sum(axis=0)


class _ProfiledBank(Distinguisher):
    """Shared machinery for per-step profiled distinguishers.

    Subclasses store one fitted model per step label and provide
    ``_fit_one``/``_row_class_ll``; scoring streams row chunks through
    :func:`_gather_scores`, so memory stays O(chunk * G) for any trace
    count. Non-exact hypotheses (masked ladder products) fall back to
    the correlation baseline: their HW classes cannot be aligned with
    the profiled full-value classes.
    """

    needs_profiling = True

    def __init__(self, chunk_rows: int | None = None):
        self.chunk_rows = chunk_rows
        self._models: dict[str, object] = {}
        self._fallback = CpaDistinguisher(chunk_rows=chunk_rows)

    @property
    def fitted_labels(self) -> tuple[str, ...]:
        return tuple(sorted(self._models))

    def _fit_one(self, traces: np.ndarray, hw_labels: np.ndarray):
        raise NotImplementedError

    def _row_class_ll(self, model, traces: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(classes, (D, K) per-row log-likelihood) for one fitted step."""
        raise NotImplementedError

    def fit_step(self, label: str, traces: np.ndarray, hw_labels: np.ndarray) -> None:
        self._models[label] = self._fit_one(traces, hw_labels)

    def score(self, hyp, window, guesses, *, label=None, signed=False, exact=True):
        if not exact:
            return self._fallback.score(
                hyp, window, guesses, label=label, signed=signed, exact=exact
            )
        if label is None or label not in self._models:
            raise ValueError(
                f"{self.name} distinguisher is not profiled for step {label!r} "
                f"(profiled: {list(self._models) or 'none'}); run profile_distinguisher "
                "or select the 'cpa' distinguisher"
            )
        model = self._models[label]
        hyp = np.asarray(hyp)
        window = np.atleast_2d(np.asarray(window))
        guesses = np.asarray(guesses)
        chunk = self.chunk_rows or window.shape[0] or 1
        total = np.zeros(len(guesses), dtype=np.float64)
        for lo in range(0, window.shape[0], chunk):
            classes, ll = self._row_class_ll(model, window[lo : lo + chunk])
            total += _gather_scores(ll, classes, hyp[lo : lo + chunk])
            if self.chunk_rows:
                metrics.inc("cpa.chunks_streamed", 1)
        metrics.inc("cpa.score_calls", 1)
        metrics.inc("cpa.rows_correlated", int(window.shape[0]))
        return ProfiledScore(guesses=guesses, scores=total)


class TemplateDistinguisher(_ProfiledBank):
    """Gaussian-template matching (paper Section V-A, Choudary-Kuhn).

    ``fit_step`` builds one :class:`~repro.attack.template.HwTemplates`
    per targeted step; scoring ranks guesses by summed class
    log-likelihood of their HW predictions.
    """

    name = "template"

    def _fit_one(self, traces, hw_labels):
        from repro.attack.template import build_templates

        return build_templates(traces, hw_labels)

    def _row_class_ll(self, model, traces):
        return model.classes, model.class_log_likelihood(traces)


class MlDistinguisher(_ProfiledBank):
    """MLP-classifier matching (paper Section V-A refs [25][26])."""

    name = "mlp"

    def __init__(self, chunk_rows: int | None = None, **mlp_kwargs):
        super().__init__(chunk_rows=chunk_rows)
        self.mlp_kwargs = mlp_kwargs

    def _fit_one(self, traces, hw_labels):
        from repro.attack.ml_profiled import MlpClassifier

        clf = MlpClassifier(classes=np.unique(hw_labels), **self.mlp_kwargs)
        return clf.fit(traces, hw_labels)

    def _row_class_ll(self, model, traces):
        return model.classes, model.log_proba(traces)


@dataclass(repr=False)
class SecondOrderDistinguisher(Distinguisher):
    """Centered-product second-order CPA (paper Section V-B).

    The window must hold the two share leakages side by side —
    ``(D, 2S)`` with share 1 in the first S columns and share 2 in the
    last S. Scoring combines them with the Prouff-Rivain-Bevan centered
    product and runs ordinary CPA on the result. With ``chunk_rows``
    the combination streams in two passes (global share means first,
    then product chunks into the raw-moment accumulator), so the
    combined trace matrix never materializes.
    """

    chunk_rows: int | None = None
    name = "second-order"

    def score(self, hyp, window, guesses, *, label=None, signed=False, exact=True):
        window = np.atleast_2d(np.asarray(window, dtype=np.float64))
        if window.shape[1] % 2 != 0:
            raise ValueError(
                f"second-order window needs share pairs: got {window.shape[1]} columns; "
                "capture both shares (or select a first-order distinguisher)"
            )
        s = window.shape[1] // 2
        share1, share2 = window[:, :s], window[:, s:]
        if self.chunk_rows is None:
            from repro.attack.second_order import centered_product

            return run_cpa(hyp, centered_product(share1, share2), guesses, signed=signed)
        hyp = np.asarray(hyp)
        moments1, moments2 = OnlineMoments(), OnlineMoments()
        for lo in range(0, window.shape[0], self.chunk_rows):
            moments1.update(share1[lo : lo + self.chunk_rows])
            moments2.update(share2[lo : lo + self.chunk_rows])
        m1, m2 = moments1.mean, moments2.mean
        acc = PearsonAccumulator()
        for lo in range(0, window.shape[0], self.chunk_rows):
            combined = (share1[lo : lo + self.chunk_rows] - m1) * (
                share2[lo : lo + self.chunk_rows] - m2
            )
            acc.update(hyp[lo : lo + self.chunk_rows], combined)
            metrics.inc("cpa.chunks_streamed", 1)
        metrics.inc("cpa.score_calls", 1)
        metrics.inc("cpa.rows_correlated", int(window.shape[0]))
        return CpaResult(
            guesses=np.asarray(guesses),
            corr=acc.correlation(),
            n_traces=window.shape[0],
            signed=signed,
        )


DISTINGUISHERS: dict[str, type] = {
    "cpa": CpaDistinguisher,
    "template": TemplateDistinguisher,
    "mlp": MlDistinguisher,
    "second-order": SecondOrderDistinguisher,
    "strawman": StrawmanDistinguisher,
}
assert set(DISTINGUISHERS) == set(KNOWN_DISTINGUISHERS)


def make_distinguisher(
    name: str, chunk_rows: int | None = None, **kwargs
) -> Distinguisher:
    """Instantiate a registered distinguisher by name."""
    cls = resolve_name("distinguisher", name, DISTINGUISHERS)
    return cls(chunk_rows=chunk_rows, **kwargs)


def distinguisher_from_config(config: AttackConfig) -> Distinguisher:
    """The distinguisher an :class:`AttackConfig` selects (unfitted)."""
    return make_distinguisher(config.distinguisher, chunk_rows=config.chunk_rows)


#: The steps the per-coefficient engine scores with *exact* (full-value)
#: hypothesis matrices — the ones profiled distinguishers must cover.
ENGINE_PROFILED_LABELS = (
    "s_lo",
    "s_mid",
    "s_hi",
    "exp_sum",
    "exp_biased",
    "exp_out",
    "sign_out",
)


def profile_distinguisher(
    dist: Distinguisher,
    source,
    config: AttackConfig | None = None,
    labels: tuple[str, ...] = ENGINE_PROFILED_LABELS,
) -> Distinguisher:
    """Fit a profiled distinguisher for attacking ``source``.

    Profiling models the paper's assumption of an adversary-controlled
    clone device: a *fresh* key (the profiling key — never the victim's)
    is generated, a profiling campaign runs on the same device model,
    and the true intermediate values (known, since the adversary owns
    this key) label the traces. Several targets are pooled so the HW
    classes cover the victim's range.

    Unprofiled distinguishers pass through untouched, so callers can
    apply this unconditionally. Profiling models fpr-mul step leakage
    specifically; other surfaces ship their own engines, so requesting
    a profiled distinguisher against them is a configuration error.
    """
    if not dist.needs_profiling:
        return dist
    target = getattr(source, "target", "fpr-mul")
    if target != "fpr-mul":
        raise ValueError(
            f"distinguisher {dist.name!r} profiles fpr-mul step leakage; "
            f"the {target!r} surface has its own engine — use the default "
            "distinguisher with this target"
        )
    with span("profile", distinguisher=dist.name):
        return _run_profiling(dist, source, config, labels)


def _run_profiling(dist, source, config, labels):  # sast: declassify(reason=profiling consumes captured leakage labeled with known intermediates; attacker-side by design)
    from repro.falcon.keygen import keygen
    from repro.falcon.params import FalconParams
    from repro.fpr.trace import MUL_STEP_LABELS
    from repro.leakage.capture import CaptureCampaign
    from repro.leakage.synth import mul_step_values
    from repro.utils.bits import hamming_weight_array

    cfg = config or AttackConfig()
    n = source.n_targets
    params = FalconParams.get(n)
    prof_sk, _ = keygen(
        params, seed=b"falcon-down-profiling-%d" % cfg.profiling_seed
    )
    campaign = CaptureCampaign(
        sk=prof_sk,
        device=source.device,
        n_traces=cfg.profiling_traces,
        mode=getattr(source, "mode", "direct"),
        seed=cfg.profiling_seed,
    )
    per_label_rows: dict[str, list[np.ndarray]] = {lb: [] for lb in labels}
    per_label_hw: dict[str, list[np.ndarray]] = {lb: [] for lb in labels}
    profiled = 0
    for j in range(campaign.n_targets):
        if profiled >= cfg.profiling_targets:
            break
        try:
            ts = campaign.capture(j)
        except ValueError:
            continue  # non-normal profiling double: leaks nothing, skip
        profiled += 1
        for seg in ts.segments:
            values = mul_step_values(ts.true_secret, seg.known_y)
            for lb in labels:
                col = MUL_STEP_LABELS.index(lb)
                per_label_rows[lb].append(seg.traces[:, ts.layout.slice_of(lb)])
                per_label_hw[lb].append(hamming_weight_array(values[:, col]))
    if profiled == 0:
        raise ValueError("profiling campaign produced no usable targets")
    for lb in labels:
        dist.fit_step(
            lb,
            np.concatenate(per_label_rows[lb], axis=0),
            np.concatenate(per_label_hw[lb], axis=0),
        )
    return dist
