"""Machine-learning profiled attack — paper Section V-A, refs [25][26].

A small from-scratch MLP (numpy only) is trained on profiling traces to
classify the Hamming weight of a targeted intermediate; the matching
phase scores key guesses by the summed log-probability the network
assigns to each guess's predicted HW sequence — the standard
deep-learning SCA recipe (Maghrebi; Kim et al.) at a size appropriate
for the simulator's low-dimensional traces.

The network: standardized inputs -> dense(hidden, ReLU) -> dense(K
classes) -> softmax, trained with mini-batch Adam on cross-entropy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MlpClassifier", "MlProfileResult", "ml_profile_step", "ml_scores"]


@dataclass
class MlpClassifier:
    """Softmax MLP over HW classes of one intermediate."""

    classes: np.ndarray                  # (K,) class labels (HW values)
    hidden: int = 32
    seed: int = 0
    learning_rate: float = 1e-2
    epochs: int = 60
    batch_size: int = 128
    _params: dict = field(default_factory=dict, repr=False)
    _mu: np.ndarray | None = field(default=None, repr=False)
    _sd: np.ndarray | None = field(default=None, repr=False)

    def _init(self, n_features: int) -> None:
        rng = np.random.default_rng(self.seed)
        k = len(self.classes)
        self._params = {
            "w1": rng.normal(0, 1.0 / np.sqrt(n_features), (n_features, self.hidden)),
            "b1": np.zeros(self.hidden),
            "w2": rng.normal(0, 1.0 / np.sqrt(self.hidden), (self.hidden, k)),
            "b2": np.zeros(k),
        }
        self._adam = {key: (np.zeros_like(v), np.zeros_like(v)) for key, v in self._params.items()}
        self._step = 0

    def _forward(self, x: np.ndarray):
        p = self._params
        z1 = x @ p["w1"] + p["b1"]
        a1 = np.maximum(z1, 0.0)
        logits = a1 @ p["w2"] + p["b2"]
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(axis=1, keepdims=True)
        return z1, a1, probs

    def _adam_update(self, grads: dict) -> None:
        self._step += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        for key, g in grads.items():
            m, v = self._adam[key]
            m[...] = b1 * m + (1 - b1) * g
            v[...] = b2 * v + (1 - b2) * g * g
            m_hat = m / (1 - b1**self._step)
            v_hat = v / (1 - b2**self._step)
            self._params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    def fit(self, traces: np.ndarray, labels: np.ndarray) -> "MlpClassifier":
        """Train on (D, S) profiling traces with integer HW labels."""
        x = np.atleast_2d(np.asarray(traces, dtype=np.float64))
        labels = np.asarray(labels)
        if x.shape[0] != labels.shape[0]:
            raise ValueError(f"{x.shape[0]} traces vs {labels.shape[0]} labels")
        class_index = {int(c): i for i, c in enumerate(self.classes)}
        if not all(int(v) in class_index for v in np.unique(labels)):
            raise ValueError("labels contain classes the classifier was not built for")
        y = np.array([class_index[int(v)] for v in labels])
        self._mu = x.mean(axis=0)
        self._sd = x.std(axis=0) + 1e-9
        x = (x - self._mu) / self._sd
        self._init(x.shape[1])
        rng = np.random.default_rng(self.seed + 1)
        n = x.shape[0]
        onehot = np.eye(len(self.classes))[y]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = x[idx], onehot[idx]
                z1, a1, probs = self._forward(xb)
                d_logits = (probs - yb) / len(idx)
                grads = {
                    "w2": a1.T @ d_logits,
                    "b2": d_logits.sum(axis=0),
                }
                d_a1 = d_logits @ self._params["w2"].T
                d_z1 = d_a1 * (z1 > 0)
                grads["w1"] = xb.T @ d_z1
                grads["b1"] = d_z1.sum(axis=0)
                self._adam_update(grads)
        return self

    def log_proba(self, traces: np.ndarray) -> np.ndarray:
        """(D, K) log class probabilities."""
        if self._mu is None:
            raise ValueError("classifier is not trained")
        x = (np.atleast_2d(np.asarray(traces, dtype=np.float64)) - self._mu) / self._sd
        _, _, probs = self._forward(x)
        return np.log(probs + 1e-30)

    def accuracy(self, traces: np.ndarray, labels: np.ndarray) -> float:
        lp = self.log_proba(traces)
        pred = self.classes[lp.argmax(axis=1)]
        return float(np.mean(pred == np.asarray(labels)))


@dataclass
class MlProfileResult:
    guesses: np.ndarray
    scores: np.ndarray

    @property
    def ranking(self) -> np.ndarray:
        return np.argsort(-self.scores, kind="stable")

    @property
    def best_guess(self) -> int:
        return int(self.guesses[self.ranking[0]])


def ml_profile_step(profiling_set, label: str, segment: int = 0, **mlp_kwargs) -> MlpClassifier:
    """Train an MLP on one step of a profiling TraceSet (known secret)."""
    from repro.fpr.trace import MUL_STEP_LABELS
    from repro.leakage.synth import mul_step_values
    from repro.utils.bits import hamming_weight_array

    if profiling_set.true_secret is None:
        raise ValueError("profiling requires a TraceSet with a known secret")
    seg = profiling_set.segments[segment]
    values = mul_step_values(profiling_set.true_secret, seg.known_y)
    col = MUL_STEP_LABELS.index(label)
    hw = hamming_weight_array(values[:, col])
    window = seg.traces[:, profiling_set.layout.slice_of(label)]
    classes = np.unique(hw)
    clf = MlpClassifier(classes=classes, **mlp_kwargs)
    return clf.fit(window, hw)


def ml_scores(
    clf: MlpClassifier,
    traces: np.ndarray,
    hyp_matrix: np.ndarray,
    guesses: np.ndarray,
) -> MlProfileResult:
    """Score guesses by summed log P(predicted HW class | trace)."""
    traces = np.atleast_2d(np.asarray(traces, dtype=np.float64))
    hyp_matrix = np.asarray(hyp_matrix)
    guesses = np.asarray(guesses)
    if hyp_matrix.shape != (traces.shape[0], len(guesses)):
        raise ValueError(
            f"hypothesis shape {hyp_matrix.shape} != ({traces.shape[0]}, {len(guesses)})"
        )
    log_probs = clf.log_proba(traces)            # (D, K)
    class_index = {int(c): i for i, c in enumerate(clf.classes)}
    floor = float(log_probs.min())
    scores = np.empty(len(guesses))
    for gi in range(len(guesses)):
        hw = hyp_matrix[:, gi]
        idx = np.array([class_index.get(int(v), -1) for v in hw])
        ll = np.where(idx >= 0, log_probs[np.arange(len(hw)), np.clip(idx, 0, None)], floor)
        scores[gi] = float(ll.sum())
    return MlProfileResult(guesses=guesses, scores=scores)
