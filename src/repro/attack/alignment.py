"""Static trace (re)alignment for jittery acquisitions.

The paper's bench triggers acquisition precisely, but real captures
drift; the classic pre-processing is static alignment: shift every
trace so its cross-correlation with a reference (the running mean
trace) peaks at lag zero. DEMA then proceeds unchanged. The device
model's ``jitter`` knob produces the misalignment this module undoes;
the robustness ablation measures the attack with and without it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.leakage.traceset import Segment, TraceSet

__all__ = ["align_traces", "align_traceset", "AlignmentReport"]


@dataclass
class AlignmentReport:
    """Per-trace shifts applied by the aligner."""

    shifts: np.ndarray

    @property
    def n_shifted(self) -> int:
        return int(np.count_nonzero(self.shifts))

    @property
    def max_shift(self) -> int:
        return int(np.max(np.abs(self.shifts))) if len(self.shifts) else 0


def _best_shift(trace: np.ndarray, reference: np.ndarray, max_shift: int) -> int:
    best, best_score = 0, -np.inf
    for s in range(-max_shift, max_shift + 1):
        shifted = np.roll(trace, -s)
        score = float(shifted @ reference)
        if score > best_score:
            best, best_score = s, score
    return best


def align_traces(
    traces: np.ndarray, max_shift: int = 3, n_iterations: int = 2
) -> tuple[np.ndarray, AlignmentReport]:
    """Circularly align rows of (D, T) to their common mean pattern.

    Iterates: estimate the reference as the centered mean trace, shift
    each trace to maximize its dot product with the reference within
    +/- max_shift, recompute the reference. Converges in a couple of
    rounds for trigger-jitter-scale misalignment.
    """
    traces = np.asarray(traces, dtype=np.float32).copy()
    total = np.zeros(traces.shape[0], dtype=np.int64)
    for _ in range(n_iterations):
        reference = traces.mean(axis=0)
        reference = reference - reference.mean()
        changed = 0
        for d in range(traces.shape[0]):
            row = traces[d] - traces[d].mean()
            s = _best_shift(row, reference, max_shift)
            if s:
                traces[d] = np.roll(traces[d], -s)
                total[d] += s
                changed += 1
        if changed == 0:
            break
    return traces, AlignmentReport(shifts=total)


def align_traceset(
    traceset: TraceSet, max_shift: int = 3, n_iterations: int = 2
) -> tuple[TraceSet, list[AlignmentReport]]:
    """Return a realigned copy of a TraceSet (segments aligned independently)."""
    segments = []
    reports = []
    for seg in traceset.segments:
        aligned, report = align_traces(seg.traces, max_shift, n_iterations)
        segments.append(Segment(known_y=seg.known_y, traces=aligned, name=seg.name))
        reports.append(report)
    out = TraceSet(
        layout=traceset.layout,
        segments=segments,
        target_index=traceset.target_index,
        true_secret=traceset.true_secret,
        meta=dict(traceset.meta),
    )
    return out, reports
