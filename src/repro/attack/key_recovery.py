"""From recovered FFT(f) coefficients to a full signing key and forgeries.

"FALCON's FFT function is reversible and one-to-one" (Section III-A):
once all n secret doubles of FFT(f) are extracted, the inverse FFT gives
f, whose coefficients are small integers (rounding absorbs the float
representation error). Then:

* g = h * f mod q (coefficients recentered; they must be small — this is
  the built-in consistency check),
* (F, G) from the NTRU equation via the same NTRUSolve the key owner ran,
* the FALCON tree is rebuilt, and the adversary signs arbitrary messages
  that verify under the victim's genuine public key.
"""

from __future__ import annotations

import dataclasses
import pickle
import sys
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.attack.config import AttackConfig
from repro.attack.coefficient import CoefficientRecovery, recover_coefficient
from repro.falcon.keygen import PublicKey, SecretKey, derive_secret_key
from repro.falcon.ntru_solve import NtruSolveError, ntru_solve
from repro.falcon.sign import Signature, sign
from repro.leakage.capture import doubles_to_fft
from repro.math import fft, ntt
from repro.obs import metrics, spans
from repro.obs.journal import format_progress, progress_event_to_payload
from repro.obs.metrics import MetricsSnapshot
from repro.obs.spans import span
from repro.targets import DEFAULT_TARGET, get_target

__all__ = [
    "KeyRecoveryError",
    "KeyRecoveryResult",
    "CoefficientRecord",
    "ProgressEvent",
    "recover_f",
    "recover_g_from_public",
    "repair_exponents",
    "recover_coefficients",
    "recover_full_key",
    "rebuild_signing_key",
    "forge",
]

#: |g| coefficients beyond this mean the recovered f is inconsistent
#: with the public key (keygen Gaussians never reach it).
_G_PLAUSIBLE_BOUND = 1 << 10


class KeyRecoveryError(RuntimeError):
    """The recovered coefficients are inconsistent with the public key.

    ``coefficients``/``records`` carry whatever per-coefficient evidence
    existed when the failure was detected, so callers can report a failed
    campaign without losing its measurements.
    """

    def __init__(
        self,
        message: str,
        coefficients: list[CoefficientRecovery] | None = None,
        records: "list[CoefficientRecord] | None" = None,
    ):
        super().__init__(message)
        self.coefficients = coefficients or []
        self.records = records or []


@dataclass
class CoefficientRecord:
    """Observability record for one per-coefficient attack.

    Collected by :func:`recover_coefficients` whether the campaign runs
    serially or fanned out over worker processes; timing is measured
    inside the worker, so parallel records show true per-target cost.
    """

    target_index: int
    elapsed_seconds: float
    n_traces_requested: int
    n_traces_kept: tuple[int, ...]       # actual correlated rows per segment
    correct: bool | None                 # None when no ground truth (real bench)
    sign_margin: float = 0.0
    exponent_margin: float = 0.0
    mantissa_margin: float = 0.0

    @property
    def n_traces_used(self) -> int:
        return sum(self.n_traces_kept)


@dataclass
class ProgressEvent:
    """One structured progress notification from the attack engine.

    ``stage`` is ``"coefficient"`` while per-target attacks complete
    (``record`` is set), then ``"repair"``/``"rebuild"`` for the global
    algebra. ``completed``/``total`` count units within the stage.
    """

    stage: str
    completed: int
    total: int
    record: CoefficientRecord | None = None
    message: str = ""


ProgressCallback = Callable[[ProgressEvent], None]


def default_progress_printer(event: ProgressEvent) -> None:
    """The stock console renderer for :class:`ProgressEvent` streams.

    Writes to *stderr*: progress is operator chatter, and interleaving it
    into stdout corrupted machine-readable output (``repro attack ... |
    jq`` and redirected reports alike). The rendering itself is shared
    with :func:`repro.obs.journal.console_subscriber`, so a journal-fed
    console and this direct callback produce identical lines.
    """
    line = format_progress(progress_event_to_payload(event))
    if line:
        print(line, file=sys.stderr, flush=True)


@dataclass
class KeyRecoveryResult:
    """Outcome of a full-key campaign.

    ``recovered_sk`` is ``None`` when the campaign failed before a
    consistent key could be rebuilt (the per-coefficient evidence is
    still in ``coefficients``/``records``). Surfaces whose secret is
    not key material (``has_forgery`` False, e.g. ``samplerz``) leave
    the key fields empty and deliver ``recovered_values`` instead —
    for samplerz, the per-call ffSampling sampler outputs.
    """

    f: list[int]
    g: list[int]
    big_f: list[int]
    big_g: list[int]
    recovered_sk: SecretKey | None
    coefficients: list[CoefficientRecovery] = field(repr=False, default_factory=list)
    records: list[CoefficientRecord] = field(repr=False, default_factory=list)
    recovered_values: list[int] | None = None

    @property
    def succeeded(self) -> bool:
        return self.recovered_sk is not None or self.recovered_values is not None

    @property
    def n_correct_coefficients(self) -> int:
        return sum(1 for c in self.coefficients if c.correct)

    @property
    def n_traces_correlated(self) -> int:
        """Total rows that actually entered the CPA, summed over targets."""
        return sum(r.n_traces_used for r in self.records)


def _doubles_matrix(n: int) -> np.ndarray:
    """The linear map from the n secret doubles to the n coefficients of f.

    Column j is the inverse FFT of the unit vector at double j; the map
    is orthogonal up to scaling (the FFT is unitary), which is what makes
    greedy per-coefficient exponent repair well behaved.
    """
    mat = np.empty((n, n), dtype=np.float64)
    for j in range(n):
        unit = np.zeros(n, dtype=np.float64)
        unit[j] = 1.0
        mat[:, j] = fft.ifft(doubles_to_fft(unit))
    return mat


def repair_exponents(  # sast: declassify(reason=attacker-side exponent repair over recovered candidate patterns; not victim code)
    candidates: list[list[int]], max_iterations: int = 4096, tol: float = 0.3
) -> list[int]:
    """Pick one pattern per double so the inverse FFT is (near) integral.

    ``candidates[j]`` lists plausible fpr patterns for double j, best
    first (sign and mantissa are reliably recovered by DEMA; only the
    exponent rank occasionally slips). f = invFFT(v) must be an integer
    vector; wrong exponents scale their double by a power of two and
    smear a non-integral residue over all of f. Three escalating passes:

    1. projection decoding — the map's columns are orthogonal (FFT
       unitarity), so the residual's projection onto column j estimates
       that coordinate's error directly; snap the worst coordinate to
       its nearest candidate while the cost drops;
    2. greedy single swaps over every remaining candidate;
    3. forced exploration — when multiple large errors wrap the
       rounding and flatten the cost landscape, try each single-swap
       hypothesis followed by a fresh projection pass (sequential
       interference cancellation) and keep the best outcome.
    """
    n = len(candidates)
    mat = _doubles_matrix(n)
    col_sq = float(mat[:, 0] @ mat[:, 0])  # = 2/n for every column
    cand_vals = [
        np.array([np.uint64(p) for p in c], dtype=np.uint64).view(np.float64)
        for c in candidates
    ]

    def cost_of(vec: np.ndarray) -> float:
        e = vec - np.round(vec)
        return float(e @ e)

    def projection_pass(choice: list[int]) -> tuple[list[int], float]:
        choice = list(choice)
        v = np.array([cand_vals[j][choice[j]] for j in range(n)])
        f = mat @ v
        cost = cost_of(f)
        for _ in range(max_iterations):
            r = f - np.round(f)
            if float(np.max(np.abs(r))) < tol:
                break
            proj = (mat.T @ r) / col_sq
            moved = False
            for j in np.argsort(-np.abs(proj)):
                j = int(j)
                if len(cand_vals[j]) < 2:
                    continue
                idx = int(np.argmin(np.abs(cand_vals[j] - (v[j] - proj[j]))))
                if idx == choice[j]:
                    continue
                trial = v.copy()
                trial[j] = cand_vals[j][idx]
                f_trial = mat @ trial
                c_trial = cost_of(f_trial)
                if c_trial < cost - 1e-12:
                    choice[j], v, f, cost = idx, trial, f_trial, c_trial
                    moved = True
                    break
            if not moved:
                break
        return choice, cost

    def greedy_pass(choice: list[int]) -> tuple[list[int], float]:
        choice = list(choice)
        v = np.array([cand_vals[j][choice[j]] for j in range(n)])
        f = mat @ v
        cost = cost_of(f)
        for _ in range(max_iterations):
            if float(np.max(np.abs(f - np.round(f)))) < tol:
                break
            best = None
            for j in range(n):
                if len(cand_vals[j]) < 2:
                    continue
                base = f - mat[:, j] * v[j]
                for idx in range(len(cand_vals[j])):
                    if idx == choice[j]:
                        continue
                    c = cost_of(base + mat[:, j] * cand_vals[j][idx])
                    if c < cost - 1e-12 and (best is None or c < best[0]):
                        best = (c, j, idx)
            if best is None:
                break
            cost, j, idx = best
            choice[j] = idx
            v[j] = cand_vals[j][idx]
            f = mat @ v
        return choice, cost

    def is_integral(choice: list[int]) -> bool:  # sast: declassify(reason=attacker-side lattice check on recovered candidates; runs after extraction)
        v = np.array([cand_vals[j][choice[j]] for j in range(n)])
        f = mat @ v
        return float(np.max(np.abs(f - np.round(f)))) < tol

    choice = [0] * n
    choice, cost = projection_pass(choice)
    if not is_integral(choice):
        choice, cost = greedy_pass(choice)
    force_coords = min(n, 64)
    for _ in range(8):
        if is_integral(choice):
            break
        best = (cost, choice)
        v = np.array([cand_vals[j][choice[j]] for j in range(n)])
        r = (mat @ v) - np.round(mat @ v)
        proj = np.abs(mat.T @ r) / col_sq
        for j in np.argsort(-proj)[:force_coords]:
            j = int(j)
            for idx in range(len(cand_vals[j])):
                if idx == choice[j]:
                    continue
                forced = list(choice)
                forced[j] = idx
                trial_choice, trial_cost = projection_pass(forced)
                if trial_cost > tol * tol:
                    # projection alone could not untangle the remaining
                    # errors; spend a greedy pass on this hypothesis —
                    # the forced swap may only pay off jointly.
                    trial_choice, trial_cost = greedy_pass(trial_choice)
                if trial_cost < best[0] - 1e-12:
                    best = (trial_cost, trial_choice)
                if best[0] < tol * tol:
                    break
            if best[0] < tol * tol:
                break
        if best[1] == choice:
            break
        cost, choice = best
    return [candidates[j][choice[j]] for j in range(n)]


def recover_f(patterns: list[int]) -> list[int]:  # sast: declassify(reason=attacker-side decode of extracted bit patterns into key candidates)
    """Invert the FFT on recovered fpr patterns and round to integers.

    ``patterns`` holds the n recovered doubles in capture order
    (Re/Im interleaved per FFT slot).
    """
    doubles = np.array([np.uint64(p) for p in patterns], dtype=np.uint64).view(np.float64)
    f_fft = doubles_to_fft(doubles)
    coeffs = fft.ifft(f_fft)
    f_int = [int(round(v)) for v in coeffs]
    drift = float(np.max(np.abs(coeffs - np.array(f_int, dtype=np.float64))))
    if drift > 0.4:
        raise KeyRecoveryError(
            f"inverse FFT is {drift:.3f} away from integers — recovery is corrupt"
        )
    # A grossly wrong exponent can make f astronomically large while
    # still float-"integral" (big doubles have no fractional part);
    # genuine keygen coefficients are a few hundred at most.
    largest = max(abs(c) for c in f_int)
    if largest > 1 << 12:
        raise KeyRecoveryError(
            f"recovered f has coefficient magnitude {largest} — recovery is corrupt"
        )
    return f_int


def recover_g_from_public(f: list[int], pk: PublicKey) -> list[int]:  # sast: declassify(reason=attacker-side arithmetic g = f*h mod q on recovered values)
    """g = h * f mod q with centered coefficients (h = g f^-1 mod q)."""
    q = pk.params.q
    g_mod = ntt.mul_ntt([c % q for c in f], pk.h, q)
    g = [v - q if v > q // 2 else v for v in g_mod]
    if max(abs(v) for v in g) > _G_PLAUSIBLE_BOUND:
        raise KeyRecoveryError(
            "h * f mod q is not small — the recovered f does not match this public key"
        )
    return g


def _filter_by_magnitude(patterns: list[int], params) -> list[int]:
    """Drop candidates whose magnitude is physically impossible.

    f is drawn with public sigma_fg, so an FFT(f) double has RMS
    sqrt(n/2) * sigma_fg; candidates tens of octaves away are exponent
    aliases, not plausible coefficients. The band is asymmetric: a
    double is a sum of n coefficient terms, so it cannot exceed the RMS
    scale by more than a couple of octaves (6 allowed, generously), but
    cancellation can make it genuinely tiny (13 octaves below). The
    tight upper edge matters: +16 exponent aliases sit just past it,
    and letting them through gives :func:`repair_exponents` spuriously
    integral solutions where several doubles share one wrong
    power-of-two scale.
    """
    import math

    rms = math.sqrt(params.n / 2.0) * params.sigma_fg
    center = 1023 + math.log2(rms)
    kept = []
    for p in patterns:
        exp_field = (p >> 52) & 0x7FF
        if -13 <= exp_field - center <= 6:
            kept.append(p)
    return kept or patterns


# -- parallel per-coefficient engine --------------------------------------
#
# Workers receive the trace source once (via the pool initializer; a
# CaptureCampaign's cached corpus is stripped on pickle and rebuilt lazily
# per worker, a CampaignStore pickles as its path and re-opens its memmaps)
# and then only exchange target indices and results. Every target derives
# its own capture RNG from (device.seed, campaign.seed, target_index), so
# the recovered patterns are bit-identical regardless of worker count or
# completion order. The distinguisher is built — and, for the profiled
# ones, fitted — exactly once in the parent and shipped to every worker,
# so serial, parallel, and resumed runs share one set of models.

_WORKER_STATE: dict = {}


def _init_worker(source, config: AttackConfig, distinguisher) -> None:
    _WORKER_STATE["source"] = source
    _WORKER_STATE["config"] = config
    _WORKER_STATE["distinguisher"] = distinguisher
    # Under the fork start method workers inherit the parent's metrics
    # stack and open spans; reset so each worker accounts from zero.
    metrics._reset_state()
    spans._reset_state()


def _attack_target(
    source, cfg: AttackConfig, target_index: int, distinguisher=None
) -> tuple[CoefficientRecovery, CoefficientRecord, MetricsSnapshot, list[spans.Span]]:
    """Capture + per-target recovery for one target (the worker body).

    The surface object (:mod:`repro.targets`, resolved from the
    source's ``target``) supplies the recovery engine and the
    observability record; for the default fpr-mul surface that is
    exactly :func:`~repro.attack.coefficient.recover_coefficient` plus
    the record layout below it always had.

    Runs inside a scoped metrics registry and a detached span context,
    so the returned ``(snapshot, roots)`` telemetry is exactly this
    target's — whether the body ran in-process or in a pool worker —
    and the parent performs the single merge/attach either way.
    """
    start = time.perf_counter()
    surface = get_target(getattr(source, "target", DEFAULT_TARGET))
    with metrics.scoped_registry() as reg, spans.detached() as roots:
        with span("coefficient", target=target_index):
            ts = source.capture(target_index)
            rec = surface.recover(ts, cfg, distinguisher=distinguisher)
    record = surface.make_record(
        rec, ts, time.perf_counter() - start, source.n_traces
    )
    return rec, record, reg.snapshot(), roots


def _attack_one(
    target_index: int,
) -> tuple[CoefficientRecovery, CoefficientRecord, MetricsSnapshot, list[spans.Span]]:
    return _attack_target(
        _WORKER_STATE["source"],
        _WORKER_STATE["config"],
        target_index,
        distinguisher=_WORKER_STATE["distinguisher"],
    )


def _resolve_distinguisher(source, cfg: AttackConfig):
    """Build (and profile, when needed) the config-selected distinguisher."""
    from repro.attack.distinguisher import (
        distinguisher_from_config,
        profile_distinguisher,
    )

    dist = distinguisher_from_config(cfg)
    return profile_distinguisher(dist, source, cfg)


def recover_coefficients(
    campaign,
    config: AttackConfig | None = None,
    progress_callback: ProgressCallback | None = None,
    session=None,
    distinguisher=None,
    journal=None,
) -> tuple[list[CoefficientRecovery], list[CoefficientRecord]]:
    """Attack every secret double, serially or fanned out over processes.

    ``campaign`` is any :class:`~repro.leakage.store.TraceSource` — a
    live :class:`~repro.leakage.capture.CaptureCampaign` or a
    disk-backed :class:`~repro.leakage.store.CampaignStore`.

    ``config.n_workers > 1`` runs one capture+DEMA per target on a
    :class:`~concurrent.futures.ProcessPoolExecutor`; the returned lists
    are always in target order and bit-identical to the serial path.
    Sources that cannot be pickled (e.g. a closure ``value_transform``)
    fall back to the serial path.

    ``session`` (an :class:`~repro.attack.session.AttackSession`) makes
    the campaign resumable: each finished target is checkpointed
    atomically, already-checkpointed targets are replayed from disk, and
    an interrupted run — including KeyboardInterrupt mid-fan-out —
    resumes to a bit-identical result.

    ``distinguisher`` overrides the config-selected engine with an
    already-built (and, if profiled, already-fitted) instance.

    ``journal`` (a :class:`~repro.obs.journal.RunJournal`) receives a
    ``progress`` event per finished target plus that target's span tree.
    """
    cfg = config or AttackConfig()
    total = campaign.n_targets
    if session is not None:
        session.bind(campaign, cfg)
    if distinguisher is None:
        distinguisher = _resolve_distinguisher(campaign, cfg)
    recs: list[CoefficientRecovery | None] = [None] * total
    records: list[CoefficientRecord | None] = [None] * total
    done = 0

    def _notify(event: ProgressEvent) -> None:
        if journal is not None:
            journal.emit_progress(event)
        if progress_callback is not None:
            progress_callback(event)

    if session is not None:
        for j, (rec, record) in session.completed().items():
            if 0 <= j < total and recs[j] is None:
                recs[j], records[j] = rec, record
                done += 1
                metrics.inc("session.checkpoints_restored", 1)
                _notify(
                    ProgressEvent(
                        "coefficient", done, total, record=record,
                        message="restored from checkpoint",
                    )
                )
    todo = [j for j in range(total) if recs[j] is None]
    n_workers = min(cfg.n_workers, max(len(todo), 1))
    if n_workers > 1 and not (_picklable(campaign) and _picklable(distinguisher)):
        n_workers = 1

    def _finish(j: int, result: tuple) -> None:
        nonlocal done
        rec, record, snap, roots = result
        recs[j], records[j] = rec, record
        # The single telemetry merge: worker (or scoped in-process) metrics
        # fold into the caller's registry, span trees graft into the
        # caller's open span — identical accounting in both execution modes.
        metrics.current_registry().merge_snapshot(snap)
        for root in roots:
            spans.attach(root)
            if journal is not None:
                journal.emit_span(root, target=j)
        if session is not None:
            session.record(j, rec, record)
        done += 1
        _notify(ProgressEvent("coefficient", done, total, record=record))

    if n_workers <= 1:
        for j in todo:
            _finish(j, _attack_target(campaign, cfg, j, distinguisher=distinguisher))
    else:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(campaign, cfg, distinguisher),
        ) as pool:
            pending = {pool.submit(_attack_one, j): j for j in todo}
            try:
                while pending:
                    finished, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                    # One raising future must not discard its siblings:
                    # several targets routinely land in one wait() batch,
                    # and every successful sibling is real finished work
                    # whose checkpoint a resume would otherwise redo.
                    # Record all successes first, then surface the error.
                    failure: BaseException | None = None
                    for fut in finished:
                        j = pending.pop(fut)
                        try:
                            result = fut.result()
                        except BaseException as exc:
                            if failure is None:
                                failure = exc
                            continue
                        _finish(j, result)
                    if failure is not None:
                        raise failure
            except BaseException:
                # Cancel queued targets we'd only throw away, then drain
                # the in-flight ones: their processes keep running until
                # the `with` block joins them anyway, so waiting here is
                # free — and every drained success is a checkpoint a
                # resume won't have to recompute. Futures must be
                # cancelled one by one: shutdown(cancel_futures=True)
                # cancels on the executor's management thread without
                # notifying waiters, so wait()ing on those futures
                # deadlocks.
                for fut in list(pending):
                    if fut.cancel():
                        del pending[fut]
                drained, _ = wait(set(pending))
                for fut in drained:
                    j = pending.pop(fut)
                    try:
                        result = fut.result()
                    except BaseException:
                        continue
                    try:
                        _finish(j, result)
                    except BaseException:
                        # _finish checkpoints before notifying; a callback
                        # raising here must not mask the original error.
                        continue
                raise
    return recs, records


class _NullSink:
    """A write-only sink that discards everything (picklability probes)."""

    def write(self, blob) -> int:
        return len(blob)


#: id(obj) -> (weakref guarding id reuse, verdict). Probing pickles the
#: whole object graph; for a paper-scale campaign that is GBs of traces,
#: so the verdict is cached per object. The weakref both invalidates the
#: entry when the object dies and guards against id() reuse afterwards.
_PICKLE_PROBES: dict[int, tuple] = {}


def _picklable(obj) -> bool:
    key = id(obj)
    cached = _PICKLE_PROBES.get(key)
    if cached is not None and cached[0]() is obj:
        return cached[1]
    try:
        # Stream to a null sink: same traversal pickle.dumps would do,
        # without materializing a multi-GB throwaway byte string.
        pickle.Pickler(_NullSink(), protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
        verdict = True
    except Exception:
        verdict = False
    try:
        ref = weakref.ref(obj, lambda _r, _k=key: _PICKLE_PROBES.pop(_k, None))
    except TypeError:
        return verdict  # not weakref-able (e.g. a plain tuple); skip caching
    _PICKLE_PROBES[key] = (ref, verdict)
    return verdict


def recover_full_key(
    campaign,
    pk: PublicKey,
    config: AttackConfig | None = None,
    progress: bool = False,
    progress_callback: ProgressCallback | None = None,
    n_workers: int | None = None,
    session=None,
    journal=None,
) -> KeyRecoveryResult:
    """Attack every target of the campaign's surface, then rebuild.

    For the default fpr-mul surface that means: attack every secret
    double, then rebuild the entire signing key
    (:func:`rebuild_signing_key`). Other surfaces plug in their own
    campaign-level rebuild — e.g. ``samplerz`` assembles the recovered
    ffSampling sampler transcript into
    :attr:`KeyRecoveryResult.recovered_values`.

    ``campaign`` is any :class:`~repro.leakage.store.TraceSource` (live
    campaign or disk-backed store). ``n_workers`` overrides
    ``config.n_workers`` (see :func:`recover_coefficients`; results are
    bit-identical either way). ``session`` makes the per-coefficient
    phase resumable across interrupted runs. ``progress_callback``
    receives structured :class:`ProgressEvent` notifications;
    ``progress=True`` without a callback installs the stock console
    printer. On failure the raised :class:`KeyRecoveryError` carries
    the per-coefficient evidence. ``journal`` receives the structured
    event stream (see :func:`recover_coefficients`).
    """
    cfg = config or AttackConfig()
    if n_workers is not None:
        cfg = dataclasses.replace(cfg, n_workers=n_workers)
    callback = progress_callback
    if callback is None and progress:
        callback = default_progress_printer

    def _notify(event: ProgressEvent) -> None:
        if journal is not None:
            journal.emit_progress(event)
        if callback is not None:
            callback(event)

    with span("coefficients"):
        recs, records = recover_coefficients(
            campaign, cfg, progress_callback=callback, session=session,
            journal=journal,
        )
    surface = get_target(getattr(campaign, "target", DEFAULT_TARGET))
    return surface.rebuild(recs, records, pk, _notify)


def rebuild_signing_key(
    recs: list[CoefficientRecovery],
    records: list[CoefficientRecord],
    pk: PublicKey,
    _notify: ProgressCallback,
) -> KeyRecoveryResult:
    """The fpr-mul campaign-level rebuild: recovered doubles -> signing key.

    Inverse FFT to f, g from the public key, (F, G) via NTRUSolve — with
    the exponent-repair fallback in between. This is the body that
    always ran at the end of :func:`recover_full_key`; it is a separate
    function so the ``fpr-mul`` surface object
    (:class:`repro.targets.fpr_mul.FprMulTarget`) can delegate to it.
    On failure the raised :class:`KeyRecoveryError` carries the
    per-coefficient evidence.
    """
    try:
        with span("rebuild"):
            try:
                f = recover_f([r.pattern for r in recs])
                g = recover_g_from_public(f, pk)
            except KeyRecoveryError:
                # Exponent aliasing left some coefficient off by a power of
                # two: resolve from the per-coefficient candidate lists using
                # (a) the public magnitude scale of FFT(f) coefficients and
                # (b) the integrality of invFFT, then re-validate against the
                # public key.
                _notify(
                    ProgressEvent(
                        "repair", 0, 1, message="invFFT not integral; repairing exponents"
                    )
                )
                with span("repair"):
                    candidates = [
                        _filter_by_magnitude(r.candidate_patterns(12), pk.params)
                        for r in recs
                    ]
                    patterns = repair_exponents(candidates)
                f = recover_f(patterns)
                g = recover_g_from_public(f, pk)
            _notify(ProgressEvent("rebuild", 0, 1, message="solving NTRU equation"))
            try:
                big_f, big_g = ntru_solve(f, g, pk.params.q)
            except NtruSolveError as exc:
                raise KeyRecoveryError(
                    f"NTRU completion failed on recovered (f, g): {exc}"
                ) from exc
    except KeyRecoveryError as exc:
        exc.coefficients = recs
        exc.records = records
        raise
    sk = derive_secret_key(pk.params, f, g, big_f, big_g, h=list(pk.h))
    return KeyRecoveryResult(
        f=f, g=g, big_f=big_f, big_g=big_g, recovered_sk=sk,
        coefficients=recs, records=records,
    )


def forge(result: KeyRecoveryResult, message: bytes, seed: bytes | int | None = None) -> Signature:
    """Sign an arbitrary message with the *recovered* key."""
    return sign(result.recovered_sk, message, seed=seed)
