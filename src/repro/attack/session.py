"""Resumable attack sessions: per-coefficient checkpoints on disk.

A full-key campaign is embarrassingly parallel but long: n independent
per-coefficient DEMA attacks, each minutes-scale at paper trace counts.
An :class:`AttackSession` makes the campaign interruptible at
coefficient granularity — every finished target's evidence (the
:class:`~repro.attack.coefficient.CoefficientRecovery` with its
recovered pattern and the :class:`~repro.attack.key_recovery.
CoefficientRecord` with timing and score margins) is checkpointed
atomically the moment it completes, in the serial path and in the
ProcessPoolExecutor fan-out alike. Kill the process — Ctrl-C, OOM,
power — relaunch with the same session directory, and the engine
replays the finished targets from disk and attacks only the missing
ones. The final report is bit-identical to an uninterrupted run,
because every target's work is deterministic given
(device.seed, campaign.seed, target_index) and checkpoints store the
*finished* artifacts, never partial state.

Layout (one directory per session)::

    <path>/
      session.json            # fingerprint manifest, written first
      coeff_00007.pkl         # one atomic pickle per finished target

The fingerprint binds the session to the campaign and configuration
that produced it: resuming against a different trace source, seed,
device, or attack config is refused with :class:`SessionError` rather
than silently mixing incompatible evidence.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from pathlib import Path

from repro.attack.config import AttackConfig
from repro.obs import metrics
from repro.utils.io import atomic_write_bytes

__all__ = ["AttackSession", "SessionError"]

_FORMAT = "falcon-down-attack-session"
_VERSION = 1


class SessionError(RuntimeError):
    """The session directory does not match the requested campaign."""


def _jsonable_config(config: AttackConfig) -> dict:
    out = dataclasses.asdict(config)
    # JSON has no tuples; normalize for comparison.
    return json.loads(json.dumps(out))


def session_fingerprint(source, config: AttackConfig) -> dict:
    """What a checkpoint set is only valid for.

    ``source`` is any :class:`~repro.leakage.store.TraceSource`; the
    fingerprint captures everything that influences a per-coefficient
    result: the campaign identity (surface, targets, trace count, mode,
    seed), the device model, and the full attack configuration
    (distinguisher included).
    """
    from repro.leakage.store import _device_to_jsonable

    device = getattr(source, "device", None)
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "target": getattr(source, "target", "fpr-mul"),
        "n_targets": int(source.n_targets),
        "n_traces": int(source.n_traces),
        "mode": getattr(source, "mode", None),
        "seed": getattr(source, "seed", None),
        "device": _device_to_jsonable(device) if device is not None else None,
        "config": _jsonable_config(config),
    }


class AttackSession:
    """Checkpoint directory for one resumable full-key campaign."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._manifest: dict | None = None
        manifest_path = self.path / "session.json"
        if manifest_path.exists():
            self._manifest = json.loads(manifest_path.read_text())
            if self._manifest.get("format") != _FORMAT:
                raise SessionError(f"{self.path} is not an attack session directory")

    # -- lifecycle ---------------------------------------------------------

    def bind(self, source, config: AttackConfig) -> "AttackSession":
        """Create the manifest, or verify it matches on resume.

        First call on a fresh directory writes the fingerprint; later
        calls (the resume path) compare and refuse mismatches, so stale
        checkpoints can never leak into a different campaign's report.
        """
        fp = session_fingerprint(source, config)
        if self._manifest is None:
            self.path.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                self.path / "session.json",
                json.dumps(fp, indent=1, sort_keys=True).encode(),
            )
            self._manifest = fp
            return self
        if self._manifest != fp:
            diffs = [
                k
                for k in sorted(set(fp) | set(self._manifest))
                if fp.get(k) != self._manifest.get(k)
            ]
            raise SessionError(
                f"session {self.path} was recorded for a different campaign "
                f"(mismatched: {', '.join(diffs)}); use a fresh --session "
                "directory or rerun with the original parameters"
            )
        return self

    # -- checkpoints -------------------------------------------------------

    def _coeff_path(self, target_index: int) -> Path:
        return self.path / f"coeff_{target_index:05d}.pkl"

    def record(self, target_index: int, recovery, record) -> None:
        """Atomically checkpoint one finished per-coefficient attack."""
        blob = pickle.dumps((recovery, record), protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(self._coeff_path(target_index), blob)
        metrics.inc("session.checkpoints_written", 1)

    def completed(self) -> dict[int, tuple]:
        """All finished targets: {target_index: (recovery, record)}.

        A checkpoint either exists completely (os.replace is atomic) or
        not at all, so everything loadable here is trustworthy; a
        truncated/corrupt file (e.g. torn by a dying filesystem) is
        treated as absent and its target re-attacked.
        """
        out: dict[int, tuple] = {}
        for p in sorted(self.path.glob("coeff_*.pkl")):
            try:
                j = int(p.stem.split("_")[1])
                rec, record = pickle.loads(p.read_bytes())
            except (ValueError, IndexError, pickle.UnpicklingError, EOFError):
                continue
            out[j] = (rec, record)
        return out

    def __repr__(self) -> str:
        n = len(list(self.path.glob("coeff_*.pkl"))) if self.path.exists() else 0
        return f"AttackSession(path={str(self.path)!r}, checkpoints={n})"
