"""Tunable parameters of the attack."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.registry import unknown_name_error

__all__ = ["AttackConfig", "KNOWN_DISTINGUISHERS"]

#: Names the distinguisher registry guarantees (kept here, not in
#: :mod:`repro.attack.distinguisher`, so config validation needs no
#: import of the engine it configures).
KNOWN_DISTINGUISHERS = ("cpa", "template", "mlp", "second-order", "strawman")


@dataclass(frozen=True)
class AttackConfig:
    """Knobs for the extend-and-prune mantissa recovery.

    ``window``/``beam`` control the LSB-to-MSB candidate ladder that
    walks the 25-bit and 27-bit limb guess spaces (the paper enumerates
    them exhaustively on a workstation; the ladder reaches the same
    candidates with beam * 2^window hypotheses per stage). ``prune_keep``
    is how many multiplication-phase survivors enter the addition-phase
    pruning.

    ``exponent_guesses`` defaults to the dynamic range an FFT(f)
    coefficient can actually take: f has small integer coefficients
    (|f_i| <= 127), so |FFT(f)_k| lies within a few dozen octaves of 1.
    Exponent guesses far outside that band are aliases of in-band values
    (their HW-vs-E_y profiles differ only by a constant over the narrow
    observed exponent window) and are excluded as physically impossible.

    ``n_workers`` fans the per-coefficient attacks of
    :func:`repro.attack.key_recovery.recover_full_key` out over a
    process pool (1 = serial in-process; results are bit-identical either
    way because every target derives its own seeds). ``chunk_rows``
    switches every CPA in the attack to the streaming accumulator with
    that batch size; ``None`` keeps the one-shot matrix path.

    ``distinguisher`` selects the statistical engine every recovery step
    scores guesses with (see :mod:`repro.attack.distinguisher`):
    ``"cpa"`` (default, the paper's Pearson correlation),
    ``"template"`` / ``"mlp"`` (the Section V-A profiled extensions —
    these trigger a profiling phase on a fresh adversary key controlled
    by the ``profiling_*`` knobs), ``"second-order"`` (the Section V-B
    centered-product attack; needs share-pair captures) and
    ``"strawman"`` (the Section III-B multiplication-only baseline).
    """

    window: int = 5
    beam: int = 32
    prune_keep: int = 32
    use_both_segments: bool = True
    exponent_guesses: tuple[int, int] = (963, 1084)  # biased-exponent range [lo, hi)
    n_workers: int = 1
    chunk_rows: int | None = None
    distinguisher: str = "cpa"
    profiling_traces: int = 2000       # traces per profiling target
    profiling_targets: int = 4         # how many fresh-key doubles to pool
    profiling_seed: int = 77           # profiling campaign seed (never the victim's)

    def __post_init__(self) -> None:
        if not 1 <= self.window <= 16:
            raise ValueError(f"window must be in 1..16, got {self.window}")
        if self.beam < 1:
            raise ValueError(f"beam must be >= 1, got {self.beam}")
        if self.prune_keep < 1:
            raise ValueError(f"prune_keep must be >= 1, got {self.prune_keep}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {self.chunk_rows}")
        if self.distinguisher not in KNOWN_DISTINGUISHERS:
            raise unknown_name_error(
                "distinguisher", self.distinguisher, dict.fromkeys(KNOWN_DISTINGUISHERS)
            )
        if self.profiling_traces < 1:
            raise ValueError(f"profiling_traces must be >= 1, got {self.profiling_traces}")
        if self.profiling_targets < 1:
            raise ValueError(f"profiling_targets must be >= 1, got {self.profiling_targets}")
