"""The paper's extend-and-prune mantissa recovery (Section III-C).

Extend phase: candidates for the secret 25-bit low limb D are obtained
by attacking the partial products D*B and D*A (via the ladder when the
space is too large to enumerate); this is "expected to generate false
positives" — shift aliases of D correlate identically.

Prune phase: the surviving candidates are re-ranked by attacking the
*intermediate addition* s_lo = (D*B >> 25) + D*A. Addition is not shift
invariant ("the same coefficients 1 vs 2 generate results having
different Hamming weights based on the other input of the addition"),
so the false positives die and the true D wins.

The same two phases then recover the 27 unknown bits of the high limb C
(its MSB is the implicit 1), pruning on s_mid = s_lo + C*B and
s_hi = (s_mid >> 25) + C*A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.config import AttackConfig
from repro.attack.cpa import CpaResult
from repro.attack.hypotheses import hyp_s_hi, hyp_s_lo, hyp_s_mid, known_limbs
from repro.attack.ladder import HIGH_LIMB_STEPS, LOW_LIMB_STEPS, LadderResult, ladder_limb
from repro.attack.strawman import shift_aliases
from repro.fpr.trace import LOW_BITS
from repro.leakage.traceset import TraceSet
from repro.obs import metrics
from repro.obs.spans import span

__all__ = ["MantissaRecovery", "recover_mantissa", "prune_candidates", "refine_limb"]

_HIGH_MSB = 1 << 27  # implicit leading 1 of the 28-bit high limb


def _with_shift_aliases(candidates: np.ndarray, width: int) -> np.ndarray:
    """Union of the candidates and their full shift-alias classes.

    The extend phase ranks on multiplication outputs, whose Hamming
    weights are shift invariant — a surviving candidate may therefore be
    the true limb shifted by a few bits (the paper's false positives).
    Expanding each survivor to its alias class guarantees the prune
    phase (shift-*variant* additions) sees the true value.
    """
    out = set()
    for c in candidates:
        out.update(shift_aliases(int(c), width))
    return np.array(sorted(out), dtype=np.uint64)


@dataclass
class PhaseDiagnostics:
    """Extend + prune evidence for one limb."""

    ladder: LadderResult
    prune_results: list[CpaResult]
    prune_scores: np.ndarray
    candidates: np.ndarray       # candidate limbs entering the prune
    best: int


@dataclass
class MantissaRecovery:
    """Recovered 53-bit significand with per-phase diagnostics."""

    low_limb: int                # D, 25 bits
    high_limb: int               # C, 28 bits (MSB = 1)
    low: PhaseDiagnostics
    high: PhaseDiagnostics

    @property
    def significand(self) -> int:
        return (self.high_limb << LOW_BITS) | self.low_limb

    @property
    def mantissa_field(self) -> int:
        """The 52-bit mantissa field (significand minus the implicit 1)."""
        return self.significand & ((1 << 52) - 1)


def prune_candidates(
    traceset: TraceSet,
    candidates: np.ndarray,
    hyp_builders: list,
    step_labels: list[str],
    use_both: bool,
    chunk_rows: int | None = None,
    distinguisher=None,
) -> tuple[np.ndarray, list[CpaResult]]:
    """Rank limb candidates on the intermediate additions.

    ``hyp_builders[i](y_lo, y_hi, candidates)`` predicts the addition
    value attacked at ``step_labels[i]``. Scores sum over segments and
    addition steps. The additions carry the *full* limb value, so they
    are scored ``exact=True`` — profiled distinguishers use their
    fitted models here. Default distinguisher: classic CPA.
    """
    from repro.attack.distinguisher import CpaDistinguisher

    dist = distinguisher or CpaDistinguisher(chunk_rows=chunk_rows)
    layout = traceset.layout
    segments = traceset.segments if use_both else traceset.segments[:1]
    total = np.zeros(len(candidates), dtype=np.float64)
    results: list[CpaResult] = []
    for seg in segments:
        y_lo, y_hi = known_limbs(seg.known_y)
        for builder, label in zip(hyp_builders, step_labels):
            hyp = builder(y_lo, y_hi, candidates)
            res = dist.score(
                hyp, seg.traces[:, layout.slice_of(label)], candidates,
                label=label, exact=True,
            )
            results.append(res)
            total += res.scores
    return total, results


def refine_limb(
    traceset: TraceSet,
    initial: int,
    total_bits: int,
    hyp_builders: list,
    step_labels: list[str],
    use_both: bool,
    fixed: int = 0,
    window: int = 6,
    stride: int = 3,
    max_rounds: int = 16,
    chunk_rows: int | None = None,
    distinguisher=None,
) -> tuple[int, float]:
    """Hill-climb a limb candidate on the addition-step correlations.

    The intermediate additions carry the full limb value (no masking),
    so their CPA scores have the highest SNR of the attack; sliding a
    ``window``-bit substitution across the limb and keeping the best
    variant repairs any window the extend phase mis-ranked. ``fixed``
    marks bits that must not be touched (the high limb's implicit MSB).
    """
    best = int(initial) | fixed
    best_score = -np.inf
    for _ in range(max_rounds):
        variants = {best}
        for start in range(0, total_bits, stride):
            wbits = min(window, total_bits - start)
            mask = ((1 << wbits) - 1) << start
            base = best & ~mask
            for v in range(1 << wbits):
                variants.add((base | (v << start)) | fixed)
        cands = np.array(sorted(variants), dtype=np.uint64)
        scores, _ = prune_candidates(
            traceset, cands, hyp_builders, step_labels, use_both,
            chunk_rows=chunk_rows, distinguisher=distinguisher,
        )
        top_idx = int(np.argmax(scores))
        top, top_score = int(cands[top_idx]), float(scores[top_idx])
        if top == best or top_score <= best_score + 1e-12:
            best_score = max(best_score, top_score)
            break
        best, best_score = top, top_score
    return best, best_score


def recover_mantissa(
    traceset: TraceSet,
    config: AttackConfig | None = None,
    distinguisher=None,
) -> MantissaRecovery:
    """Full extend-and-prune recovery of one coefficient's significand.

    ``distinguisher`` is an optional fitted
    :class:`repro.attack.distinguisher.Distinguisher`; ``None`` selects
    classic CPA with the config's ``chunk_rows``.
    """
    cfg = config or AttackConfig()

    # ---- low limb: extend on D*B / D*A ---------------------------------
    with span("extend", limb="low"):
        low_ladder = ladder_limb(
            traceset,
            LOW_LIMB_STEPS,
            total_bits=LOW_BITS,
            window=cfg.window,
            beam=cfg.beam,
            keep=cfg.prune_keep,
            use_both_segments=cfg.use_both_segments,
            chunk_rows=cfg.chunk_rows,
            distinguisher=distinguisher,
        )
    low_cands = _with_shift_aliases(low_ladder.candidates, LOW_BITS)
    metrics.inc("extend_prune.candidates", int(len(low_cands)))
    # ---- low limb: prune on s_lo ----------------------------------------
    with span("prune", limb="low"):
        low_scores, low_results = prune_candidates(
            traceset,
            low_cands,
            [hyp_s_lo],
            ["s_lo"],
            cfg.use_both_segments,
            chunk_rows=cfg.chunk_rows,
            distinguisher=distinguisher,
        )
        low_best = int(low_cands[int(np.argmax(low_scores))])
        low_best, _ = refine_limb(
            traceset,
            low_best,
            LOW_BITS,
            [hyp_s_lo],
            ["s_lo"],
            cfg.use_both_segments,
            chunk_rows=cfg.chunk_rows,
            distinguisher=distinguisher,
        )
    low_diag = PhaseDiagnostics(
        ladder=low_ladder,
        prune_results=low_results,
        prune_scores=low_scores,
        candidates=low_cands,
        best=low_best,
    )

    # ---- high limb: extend on C*B / C*A ---------------------------------
    with span("extend", limb="high"):
        high_ladder = ladder_limb(
            traceset,
            HIGH_LIMB_STEPS,
            total_bits=27,
            window=cfg.window,
            beam=cfg.beam,
            keep=cfg.prune_keep,
            use_both_segments=cfg.use_both_segments,
            chunk_rows=cfg.chunk_rows,
            distinguisher=distinguisher,
        )
    high_cands = _with_shift_aliases(high_ladder.candidates, 27) | np.uint64(_HIGH_MSB)
    high_cands = np.unique(high_cands)
    metrics.inc("extend_prune.candidates", int(len(high_cands)))
    # ---- high limb: prune on s_mid and s_hi ------------------------------
    with span("prune", limb="high"):
        high_scores, high_results = prune_candidates(
            traceset,
            high_cands,
            [
                lambda y_lo, y_hi, c: hyp_s_mid(y_lo, y_hi, low_best, c),
                lambda y_lo, y_hi, c: hyp_s_hi(y_lo, y_hi, low_best, c),
            ],
            ["s_mid", "s_hi"],
            cfg.use_both_segments,
            chunk_rows=cfg.chunk_rows,
            distinguisher=distinguisher,
        )
        high_best = int(high_cands[int(np.argmax(high_scores))])
        high_best, _ = refine_limb(
            traceset,
            high_best,
            27,
            [
                lambda y_lo, y_hi, c: hyp_s_mid(y_lo, y_hi, low_best, c),
                lambda y_lo, y_hi, c: hyp_s_hi(y_lo, y_hi, low_best, c),
            ],
            ["s_mid", "s_hi"],
            cfg.use_both_segments,
            fixed=_HIGH_MSB,
            chunk_rows=cfg.chunk_rows,
            distinguisher=distinguisher,
        )
    high_diag = PhaseDiagnostics(
        ladder=high_ladder,
        prune_results=high_results,
        prune_scores=high_scores,
        candidates=high_cands,
        best=high_best,
    )

    return MantissaRecovery(
        low_limb=low_best,
        high_limb=high_best,
        low=low_diag,
        high=high_diag,
    )
