"""Assembling one full 64-bit coefficient of FFT(f).

"Combined version of the separately recovered mantissa, exponent and
sign bits represents one full coefficient" (Section III-C). The three
component attacks run on the same TraceSet; the result is the exact fpr
bit pattern of the targeted secret double.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attack.config import AttackConfig
from repro.attack.extend_prune import MantissaRecovery, recover_mantissa
from repro.attack.sign_exp import ExponentRecovery, SignRecovery, recover_exponent, recover_sign
from repro.fpr import emu
from repro.leakage.traceset import TraceSet
from repro.obs.spans import span

__all__ = ["CoefficientRecovery", "recover_coefficient"]


@dataclass
class CoefficientRecovery:
    """One recovered secret double, with component diagnostics."""

    target_index: int
    pattern: int                 # assembled 64-bit fpr pattern
    sign: SignRecovery
    exponent: ExponentRecovery
    mantissa: MantissaRecovery
    true_pattern: int | None = None
    #: Rows actually correlated, per trace segment — after the capture
    #: layer dropped non-normal known operands (may be < the requested
    #: campaign size).
    n_traces_per_segment: tuple[int, ...] = field(default=())

    @property
    def value(self) -> float:
        return emu.fpr_to_float(self.pattern)

    @property
    def correct(self) -> bool | None:
        if self.true_pattern is None:
            return None
        return self.pattern == self.true_pattern

    @property
    def n_traces_used(self) -> int:
        """Total rows that entered the CPA across all segments."""
        return sum(self.n_traces_per_segment)

    @property
    def mantissa_margin(self) -> float:
        """Prune-score gap between the two best high-limb candidates."""
        scores = self.mantissa.high.prune_scores
        if len(scores) < 2:
            return float("inf")
        top2 = np.sort(np.asarray(scores, dtype=np.float64))[-2:]
        return float(top2[1] - top2[0])

    def candidate_patterns(self, k_exponents: int = 8) -> list[int]:
        """Plausible full patterns: best sign/mantissa x top-k exponents."""
        return [
            emu.compose(self.sign.bit, e, self.mantissa.mantissa_field)
            for e in self.exponent.top_candidates(k_exponents)
        ]


def recover_coefficient(
    traceset: TraceSet, config: AttackConfig | None = None, distinguisher=None
) -> CoefficientRecovery:
    """Run the extend-and-prune mantissa, exponent, and sign attacks.

    Mantissa first: its recovered significand lets the exponent attack
    predict the output exponent (normalization carry included) exactly.

    ``distinguisher`` is a (fitted, if profiled) instance from
    :mod:`repro.attack.distinguisher`; when ``None`` it is built from
    ``config.distinguisher``. Profiled distinguishers must arrive
    already fitted — this function does not run a profiling campaign
    (see :func:`repro.attack.distinguisher.profile_distinguisher`).
    """
    cfg = config or AttackConfig()
    if distinguisher is None:
        from repro.attack.distinguisher import distinguisher_from_config

        distinguisher = distinguisher_from_config(cfg)
    with span("mantissa"):
        mantissa = recover_mantissa(traceset, cfg, distinguisher=distinguisher)
    with span("exponent"):
        exponent = recover_exponent(
            traceset,
            cfg.use_both_segments,
            cfg.exponent_guesses,
            significand=mantissa.significand,
            chunk_rows=cfg.chunk_rows,
            distinguisher=distinguisher,
        )
    with span("sign"):
        sign = recover_sign(
            traceset, cfg.use_both_segments, chunk_rows=cfg.chunk_rows,
            distinguisher=distinguisher,
        )
    pattern = emu.compose(sign.bit, exponent.biased_exponent, mantissa.mantissa_field)
    return CoefficientRecovery(
        target_index=traceset.target_index,
        pattern=pattern,
        sign=sign,
        exponent=exponent,
        mantissa=mantissa,
        true_pattern=traceset.true_secret,
        n_traces_per_segment=tuple(seg.n_traces for seg in traceset.segments),
    )
