"""The straightforward attack of Section III-B — and why it fails.

Attacking the mantissa *multiplication* alone ranks guesses by CPA with
HW(guess * known) hypotheses. Multiplication output Hamming weights are
shift invariant: HW((2D) * B) = HW(D * B) for every B (the product merely
shifts left), so the guesses D, 2D, 4D, ... D/2 ... produce *identical*
hypothesis vectors and therefore exactly equal correlations — the "top-5
guesses are actually exactly the same" of the paper's Figure 4(c).

:func:`shift_aliases` enumerates that alias class; the tests and the
FIG4c bench assert the tie is exact and that the addition step breaks it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.cpa import CpaResult
from repro.attack.hypotheses import hyp_product, known_limbs
from repro.leakage.traceset import TraceSet

__all__ = ["shift_aliases", "straightforward_mantissa_attack", "StrawmanResult"]


def shift_aliases(value: int, width: int) -> list[int]:  # sast: declassify(reason=attacker-side alias enumeration over candidate values)
    """All left/right shifts of ``value`` representable in ``width`` bits.

    These are the false-positive companions of a multiplication-only
    attack (plus ``value`` itself, first).
    """
    if value <= 0:
        return [value]
    out = [value]
    v = value
    while v & 1 == 0:
        v >>= 1
        out.append(v)
    v = value
    while (v << 1) < (1 << width):
        v <<= 1
        out.append(v)
    return out


@dataclass
class StrawmanResult:
    """Outcome of the multiplication-only attack."""

    cpa: CpaResult
    tied_top: np.ndarray       # guesses whose score ties the best (exact FP set)
    correct_in_tie: bool

    @property
    def has_false_positives(self) -> bool:
        return len(self.tied_top) > 1


def straightforward_mantissa_attack(  # sast: declassify(reason=baseline attack scores attacker hypotheses against captured traces)
    traceset: TraceSet,
    guesses: np.ndarray,
    true_limb: int | None = None,
    step: str = "p_ll",
    which_known: str = "lo",
    segment: int = 0,
    tie_tolerance: float = 1e-9,
    chunk_rows: int | None = None,
) -> StrawmanResult:
    """CPA on one mantissa partial product over an explicit guess space.

    ``guesses`` is the enumerated candidate set (the paper uses the full
    2^25 space; benches use a subspace containing the true value and its
    shift aliases — the tie structure is identical). Scoring goes
    through :class:`repro.attack.distinguisher.StrawmanDistinguisher` —
    the engine's multiplication-only citizen — so the benches exercising
    the Figure 4(c) tie share the streaming machinery.
    """
    from repro.attack.distinguisher import StrawmanDistinguisher

    seg = traceset.segments[segment]
    y_lo, y_hi = known_limbs(seg.known_y)
    known = y_lo if which_known == "lo" else y_hi
    hyp = hyp_product(known, guesses, mask_bits=None)
    window = seg.traces[:, traceset.layout.slice_of(step)]
    dist = StrawmanDistinguisher(chunk_rows=chunk_rows)
    cpa = dist.score(hyp, window, guesses, label=step, exact=False)
    best = cpa.scores.max()
    tied = cpa.guesses[np.abs(cpa.scores - best) <= tie_tolerance]
    correct = bool(true_limb is not None and true_limb in set(int(g) for g in tied))
    return StrawmanResult(cpa=cpa, tied_top=tied, correct_in_tie=correct)
