"""Sign-bit and exponent DEMA (the remaining fields of Figure 2).

* Exponent: the softfloat adds the two 11-bit biased exponents; with
  E_y known, CPA over the 2^11 guesses of E_x on HW(E_x + E_y) at the
  exponent-addition sample recovers E_x. Because the known exponents of
  FFT(c) concentrate in a narrow band, the raw-sum hypotheses of nearby
  guesses are strongly collinear; when the mantissa has already been
  recovered (the attack order of :mod:`repro.attack.coefficient`), the
  *output* exponent E_out = E_x + E_y - 1023 + carry is predicted
  exactly per trace — the normalization/rounding carry follows from the
  recovered significand and the known operand — and correlating that
  second intermediate breaks the collinearity.

* Sign: the result sign is s_x XOR s_y with s_y known. The two
  hypotheses are exact complements, so their correlations are mirror
  images ("the sign-bit leakage is symmetric"); per the paper, the
  correct guess is the one with *positive* correlation at the leakage
  point, hence the signed ranking.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

import numpy as np

from repro.attack.cpa import CpaResult
from repro.attack.hypotheses import hyp_exp_biased, hyp_exp_out, hyp_exp_sum, hyp_sign
from repro.leakage.traceset import TraceSet

__all__ = ["SignRecovery", "ExponentRecovery", "recover_sign", "recover_exponent"]


@dataclass
class SignRecovery:
    bit: int
    results: list[CpaResult]

    @property
    def score(self) -> float:
        return float(sum(r.scores[r.guesses == self.bit][0] for r in self.results))

    @property
    def margin(self) -> float:
        """Combined-score gap between the chosen bit and its complement."""
        other = float(sum(r.scores[r.guesses == (1 - self.bit)][0] for r in self.results))
        return self.score - other


@dataclass
class ExponentRecovery:
    biased_exponent: int
    results: list[CpaResult]
    combined_scores: np.ndarray
    guesses: np.ndarray

    def top_candidates(self, k: int) -> list[int]:
        """The k best exponent guesses, best first.

        Residual aliasing among exponent hypotheses (narrow known-operand
        exponent support) occasionally demotes the true value below rank
        1; key recovery resolves those cases algebraically from the
        candidate lists (see repro.attack.key_recovery.repair_exponents).
        """
        order = np.argsort(-self.combined_scores, kind="stable")[:k]
        return [int(self.guesses[i]) for i in order]

    @property
    def margin(self) -> float:
        """Combined-score gap between the best and second-best guess."""
        if len(self.combined_scores) < 2:
            return float("inf")
        top2 = np.sort(self.combined_scores)[-2:]
        return float(top2[1] - top2[0])


def recover_sign(
    traceset: TraceSet,
    use_both_segments: bool = True,
    chunk_rows: int | None = None,
    distinguisher=None,
) -> SignRecovery:
    """Recover s_x from the sign_out leakage.

    The sign hypotheses of the two guesses are exact complements, so
    correlation-style distinguishers must rank on *signed* correlation
    (the paper's symmetric-leakage rule); likelihood-based
    distinguishers are asymmetric by construction and need no special
    casing — both go through ``score(..., signed=True)``.
    """
    from repro.attack.distinguisher import CpaDistinguisher

    dist = distinguisher or CpaDistinguisher(chunk_rows=chunk_rows)
    layout = traceset.layout
    segments = traceset.segments if use_both_segments else traceset.segments[:1]
    total = np.zeros(2, dtype=np.float64)
    results = []
    for seg in segments:
        hyp = hyp_sign(seg.known_y)
        res = dist.score(
            hyp,
            seg.traces[:, layout.slice_of("sign_out")],
            np.array([0, 1]),
            label="sign_out",
            signed=True,
            exact=True,
        )
        results.append(res)
        total += res.scores
    return SignRecovery(bit=int(np.argmax(total)), results=results)


def recover_exponent(  # sast: declassify(reason=attacker-side exponent recovery from observed leakage)
    traceset: TraceSet,
    use_both_segments: bool = True,
    guess_range: tuple[int, int] = (1, 2047),
    significand: int | None = None,
    chunk_rows: int | None = None,
    distinguisher=None,
) -> ExponentRecovery:
    """Recover the biased exponent E_x.

    Always correlates the raw exponent sum (``exp_sum``). When the
    53-bit ``significand`` recovered by the mantissa attack is supplied,
    additionally correlates the exactly-predicted output exponent
    (``exp_out``), which carries far more guess-separating variation.
    """
    from repro.attack.distinguisher import CpaDistinguisher

    dist = distinguisher or CpaDistinguisher(chunk_rows=chunk_rows)
    layout = traceset.layout
    guesses = np.arange(guess_range[0], guess_range[1], dtype=np.uint64)
    segments = traceset.segments if use_both_segments else traceset.segments[:1]
    total = np.zeros(len(guesses), dtype=np.float64)
    results = []
    for seg in segments:
        hyp = hyp_exp_sum(seg.known_y, guesses)
        res = dist.score(
            hyp, seg.traces[:, layout.slice_of("exp_sum")], guesses,
            label="exp_sum", exact=True,
        )
        results.append(res)
        total += res.scores
        hyp_b = hyp_exp_biased(seg.known_y, guesses)
        res_b = dist.score(
            hyp_b, seg.traces[:, layout.slice_of("exp_biased")], guesses,
            label="exp_biased", exact=True,
        )
        results.append(res_b)
        total += res_b.scores
        if significand is not None:
            hyp_out = hyp_exp_out(seg.known_y, guesses, significand)
            res_out = dist.score(
                hyp_out, seg.traces[:, layout.slice_of("exp_out")], guesses,
                label="exp_out", exact=True,
            )
            results.append(res_out)
            total += res_out.scores
    # Guesses whose exponent offsets are multiples of 16/32/64 can tie
    # *exactly* (their HW-vs-E_y profiles differ by a constant over the
    # narrow observed window). Break exact ties toward the physically
    # expected coefficient scale — the adversary knows sigma_fg and n, so
    # the plausible |FFT(f)| magnitude (and hence exponent) is public.
    center = _expected_exponent_center(traceset)
    tied = np.flatnonzero(total >= total.max() - 1e-9)
    best_idx = tied[int(np.argmin(np.abs(guesses[tied].astype(np.int64) - center)))]
    best = int(guesses[best_idx])
    return ExponentRecovery(
        biased_exponent=best,
        results=results,
        combined_scores=total,
        guesses=guesses,
    )


def _expected_exponent_center(traceset: TraceSet) -> int:
    """Biased exponent of the RMS FFT(f) double for this parameter set.

    Re/Im parts of an FFT slot of f have variance n * sigma_fg^2 / 2;
    both n and sigma_fg are public parameters.
    """
    n = traceset.meta.get("n") if traceset.meta else None
    if not n:
        return 1023 + 5
    from repro.falcon.params import FalconParams

    try:
        sigma_fg = FalconParams.get(int(n)).sigma_fg
    except ValueError:
        return 1023 + 5
    rms = math.sqrt(n / 2.0) * sigma_fg
    return 1023 + int(round(math.log2(rms)))
