"""The paper's contribution: differential EM analysis of FALCON.

Layered as in Section III of the paper:

* :mod:`repro.attack.cpa` — the Pearson-correlation distinguisher with
  Hamming-weight leakage estimates and 99.99% significance bounds.
* :mod:`repro.attack.hypotheses` — vectorized predictors of the softfloat
  intermediates for key guesses.
* :mod:`repro.attack.strawman` — the straightforward attack on the
  mantissa *multiplication* only; exhibits the false positives of
  Section III-B (shift-aliased guesses tie exactly).
* :mod:`repro.attack.ladder` — windowed LSB-to-MSB candidate extension
  (how the 2^25 / 2^27 guess spaces are walked on a laptop).
* :mod:`repro.attack.extend_prune` — the paper's extend-and-prune:
  candidates from the multiplications, re-ranked on the intermediate
  additions, which are not shift invariant.
* :mod:`repro.attack.sign_exp` — sign-bit and exponent DEMA.
* :mod:`repro.attack.coefficient` — assembling one 64-bit coefficient.
* :mod:`repro.attack.key_recovery` — FFT inversion, NTRU completion,
  and signature forgery.
* :mod:`repro.attack.pipeline` — the end-to-end campaign driver.
* :mod:`repro.attack.distinguisher` — the unified scoring protocol all
  five statistical engines (CPA, templates, MLP, second-order,
  strawman) implement; selected via ``AttackConfig.distinguisher``.
* :mod:`repro.attack.session` — resumable attack sessions with atomic
  per-coefficient checkpoints.
"""

from repro.attack.cpa import CpaResult, run_cpa, significance_threshold
from repro.attack.config import AttackConfig
from repro.attack.extend_prune import recover_mantissa, MantissaRecovery
from repro.attack.sign_exp import recover_sign, recover_exponent
from repro.attack.coefficient import recover_coefficient, CoefficientRecovery
from repro.attack.key_recovery import (
    CoefficientRecord,
    KeyRecoveryResult,
    ProgressEvent,
    default_progress_printer,
    recover_coefficients,
    recover_f,
    recover_full_key,
    rebuild_signing_key,
)
from repro.attack.pipeline import full_attack, FullAttackReport
from repro.attack.template import build_templates, template_scores, HwTemplates
from repro.attack.second_order import second_order_cpa, centered_product
from repro.attack.alignment import align_traces, align_traceset
from repro.attack.incremental import IncrementalCpa
from repro.attack.ml_profiled import MlpClassifier, ml_profile_step, ml_scores
from repro.attack.distinguisher import (
    DISTINGUISHERS,
    CpaDistinguisher,
    Distinguisher,
    MlDistinguisher,
    SecondOrderDistinguisher,
    StrawmanDistinguisher,
    TemplateDistinguisher,
    make_distinguisher,
    profile_distinguisher,
)
from repro.attack.session import AttackSession, SessionError

__all__ = [
    "CpaResult",
    "run_cpa",
    "significance_threshold",
    "AttackConfig",
    "recover_mantissa",
    "MantissaRecovery",
    "recover_sign",
    "recover_exponent",
    "recover_coefficient",
    "CoefficientRecovery",
    "recover_f",
    "recover_full_key",
    "rebuild_signing_key",
    "recover_coefficients",
    "KeyRecoveryResult",
    "CoefficientRecord",
    "ProgressEvent",
    "default_progress_printer",
    "full_attack",
    "FullAttackReport",
    "build_templates",
    "template_scores",
    "HwTemplates",
    "second_order_cpa",
    "centered_product",
    "align_traces",
    "align_traceset",
    "IncrementalCpa",
    "MlpClassifier",
    "ml_profile_step",
    "ml_scores",
    "Distinguisher",
    "CpaDistinguisher",
    "TemplateDistinguisher",
    "MlDistinguisher",
    "SecondOrderDistinguisher",
    "StrawmanDistinguisher",
    "DISTINGUISHERS",
    "make_distinguisher",
    "profile_distinguisher",
    "AttackSession",
    "SessionError",
]
