"""LSB-to-MSB candidate ladder over a secret mantissa limb.

The paper enumerates all 2^25 (low limb) and 2^27 (high limb) guesses on
a workstation. The ladder reaches the same candidates with laptop-sized
work by exploiting a carry property of multiplication: the low m bits of
``secret * known`` depend only on the low m bits of the secret. Guesses
are therefore extended ``window`` bits at a time, scored by CPA with
HW((guess * known) mod 2^m) hypotheses against the partial-product
samples, and only the ``beam`` best survivors are carried forward.

This is itself an extend-and-prune in the template-attack sense; the
paper's *novel* extend-and-prune (multiplication -> addition re-ranking,
:mod:`repro.attack.extend_prune`) is applied after the ladder to kill
the shift-aliased false positives that survive it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.hypotheses import hyp_product, known_limbs
from repro.leakage.traceset import TraceSet

__all__ = ["LadderStage", "LadderResult", "ladder_limb"]

#: (step label, which known limb multiplies the secret limb there)
LOW_LIMB_STEPS = (("p_ll", "lo"), ("p_lh", "hi"))
HIGH_LIMB_STEPS = (("p_hl", "lo"), ("p_hh", "hi"))


@dataclass
class LadderStage:
    """Diagnostics for one extension stage."""

    covered_bits: int
    candidates: np.ndarray       # (C,) candidate limb values (low covered_bits)
    scores: np.ndarray           # (C,) combined CPA scores
    survivors: np.ndarray        # (<=beam,) best candidates carried forward


@dataclass
class LadderResult:
    """Final candidates (best-first) plus per-stage diagnostics."""

    candidates: np.ndarray
    scores: np.ndarray
    stages: list[LadderStage]

    @property
    def best(self) -> int:
        return int(self.candidates[0])


def _segment_knowns(traceset: TraceSet, use_both: bool):
    segs = traceset.segments if use_both else traceset.segments[:1]
    out = []
    for seg in segs:
        y_lo, y_hi = known_limbs(seg.known_y)
        out.append((seg, {"lo": y_lo, "hi": y_hi}))
    return out


def _score_candidates(
    traceset: TraceSet,
    steps: tuple[tuple[str, str], ...],
    candidates: np.ndarray,
    mask_bits: int | None,
    use_both: bool,
    chunk_rows: int | None = None,
    distinguisher=None,
) -> np.ndarray:
    """Summed distinguisher scores over segments and extend steps.

    Extend-phase hypotheses predict *masked* partial products (only the
    low ``mask_bits`` of the intermediate), so they are scored with
    ``exact=False`` — profiled distinguishers fall back to correlation
    here, because a masked prediction cannot be aligned with full-value
    HW classes.
    """
    from repro.attack.distinguisher import CpaDistinguisher

    dist = distinguisher or CpaDistinguisher(chunk_rows=chunk_rows)
    layout = traceset.layout
    total = np.zeros(len(candidates), dtype=np.float64)
    for seg, knowns in _segment_knowns(traceset, use_both):
        for label, which in steps:
            hyp = hyp_product(knowns[which], candidates, mask_bits=mask_bits)
            window = seg.traces[:, layout.slice_of(label)]
            res = dist.score(hyp, window, candidates, label=label, exact=False)
            total += res.scores
    return total


def ladder_limb(  # sast: declassify(reason=extend-and-prune ladder ranks attacker hypotheses; timing of this code is not part of the threat model)
    traceset: TraceSet,
    steps: tuple[tuple[str, str], ...],
    total_bits: int,
    window: int = 5,
    beam: int = 32,
    keep: int = 32,
    use_both_segments: bool = True,
    chunk_rows: int | None = None,
    distinguisher=None,
) -> LadderResult:
    """Recover candidates for one secret limb of ``total_bits`` bits."""
    if total_bits < 1:
        raise ValueError(f"total_bits must be >= 1, got {total_bits}")
    survivors = np.array([0], dtype=np.uint64)
    stages: list[LadderStage] = []
    covered = 0
    while covered < total_bits:
        step_bits = min(window, total_bits - covered)
        ext = np.arange(1 << step_bits, dtype=np.uint64) << np.uint64(covered)
        cands = np.unique((survivors[:, None] | ext[None, :]).ravel())
        covered += step_bits
        scores = _score_candidates(
            traceset, steps, cands, covered, use_both_segments,
            chunk_rows=chunk_rows, distinguisher=distinguisher,
        )
        order = np.argsort(-scores, kind="stable")
        n_keep = keep if covered >= total_bits else beam
        kept = cands[order[:n_keep]]
        # A secret limb whose low bits are zero produces a constant (all
        # zero) masked-product hypothesis at the early stages — zero
        # correlation by construction, not evidence against it. The
        # zero-extension of every previous survivor is therefore
        # unfalsified at this stage and must stay alive until the first
        # nonzero secret bit gives it a real score.
        kept = np.unique(np.concatenate([kept, survivors]))
        stage = LadderStage(
            covered_bits=covered,
            candidates=cands,
            scores=scores,
            survivors=kept,
        )
        stages.append(stage)
        survivors = stage.survivors
    final_scores = stages[-1].scores[np.argsort(-stages[-1].scores, kind="stable")][: len(survivors)]
    return LadderResult(candidates=survivors, scores=final_scores, stages=stages)
