"""Single-trace SASCA against a (toy-modulus) negacyclic NTT.

Mirrors the iterative butterfly schedule of :mod:`repro.math.ntt`:

1. inputs are weighted, w_i = f_i * psi^i mod q;
2. bit-reversal permutation;
3. log2(n) stages of butterflies u' = u + w t, t' = u - w t.

Every multiplication/butterfly output is an architectural intermediate
whose Hamming weight leaks once in a single execution. The attack
builds one factor-graph variable per intermediate, one linear factor
per arithmetic relation, sets HW-likelihood priors from the single
trace, and runs belief propagation; the marginals at the input
variables recover the secret coefficients exactly when the noise is
moderate — the paper's V-C comparator.

A small prime modulus (default q = 257) keeps BP exact-and-fast; the
*structure* (narrow mod-q intermediates + low-degree linear relations)
is what separates NTT from FALCON's FFT, not the particular q.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.math.ntt import psi_table
from repro.sasca.factor_graph import FactorGraph, hw_prior
from repro.utils.bits import hamming_weight

__all__ = ["NttSasca", "single_trace_attack", "SingleTraceResult"]

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]


@dataclass
class NttSasca:
    """Factor-graph model of one n-point negacyclic NTT mod q."""

    n: int
    q: int = 257
    _psi: tuple[int, ...] = field(init=False, repr=False)
    _factors: list[tuple[int, int, int, int]] = field(init=False, repr=False)
    _f_vars: list[int] = field(init=False, repr=False)
    _leak_vars: list[int] = field(init=False, repr=False)
    _zero: int = field(init=False, repr=False)
    _butterflies: list[tuple[int, int, int, int, int]] = field(init=False, repr=False)
    _output_vars: list[int] = field(init=False, repr=False)
    n_variables: int = field(init=False)

    def __post_init__(self) -> None:
        if self.n < 2 or self.n & (self.n - 1):
            raise ValueError(f"n must be a power of two >= 2, got {self.n}")
        fwd, _ = psi_table(self.n, self.q)
        self._psi = fwd
        self._build()

    # -- graph structure -----------------------------------------------------

    def _build(self) -> None:
        n, q = self.n, self.q
        next_var = 0

        def new_var() -> int:
            nonlocal next_var
            next_var += 1
            return next_var - 1

        self._zero = new_var()
        self._f_vars = [new_var() for _ in range(n)]
        w_vars = [new_var() for _ in range(n)]
        self._factors = []
        # the loads of the input coefficients leak too (as in the
        # single-trace NTT attacks this models: every load/store of a
        # coefficient is an observable intermediate)
        self._leak_vars = list(self._f_vars)
        # weighting: w_i = 0 + psi^i * f_i
        for i in range(n):
            self._factors.append((self._zero, self._f_vars[i], w_vars[i], self._psi[i]))
            self._leak_vars.append(w_vars[i])
        # bit-reversal permutation of positions
        pos = list(w_vars)
        j = 0
        for i in range(1, n):
            bit = n >> 1
            while j & bit:
                j ^= bit
                bit >>= 1
            j |= bit
            if i < j:
                pos[i], pos[j] = pos[j], pos[i]
        # butterfly stages (omega = psi^2); each butterfly becomes one
        # merged four-variable factor (avoids loopy short cycles)
        self._butterflies = []
        omega = self._psi[2 % n]
        length = 2
        while length <= n:
            w_len = pow(omega, n // length, q)
            for start in range(0, n, length):
                w = 1
                half = length // 2
                for k in range(start, start + half):
                    u, v = pos[k], pos[k + half]
                    up = new_var()
                    vp = new_var()
                    self._butterflies.append((u, v, up, vp, w))
                    self._leak_vars.append(up)
                    self._leak_vars.append(vp)
                    pos[k], pos[k + half] = up, vp
                    w = w * w_len % q
            length <<= 1
        self._output_vars = list(pos)
        self.n_variables = next_var

    # -- simulation ------------------------------------------------------------

    def execute(self, f: list[int]) -> IntArray:
        """Values of every variable for input f (ground truth)."""
        n, q = self.n, self.q
        if len(f) != n:
            raise ValueError(f"expected {n} coefficients, got {len(f)}")
        values = np.zeros(self.n_variables, dtype=np.int64)
        values[self._zero] = 0
        for i, var in enumerate(self._f_vars):
            values[var] = f[i] % q
        for a, b, c, w in self._factors:
            values[c] = (values[a] + w * values[b]) % q
        for u, v, up, vp, w in self._butterflies:
            values[up] = (values[u] + w * values[v]) % q
            values[vp] = (values[u] - w * values[v]) % q
        return values

    def output(self, f: list[int]) -> list[int]:
        """The NTT of f computed through the graph (for validation)."""
        values = self.execute(f)
        return [int(values[v]) for v in self._output_vars]

    def leak(
        self, f: list[int], noise_sigma: float, rng: np.random.Generator,
        gain: float = 1.0, offset: float = 0.0,
    ) -> FloatArray:
        """One trace: a noisy HW sample per leaking intermediate."""
        values = self.execute(f)
        hw = np.array(
            [hamming_weight(int(values[v])) for v in self._leak_vars], dtype=np.float64
        )
        noise = rng.normal(0.0, noise_sigma, len(hw))
        return (gain * hw + offset + noise).astype(np.float64)

    # -- attack -----------------------------------------------------------------

    def attack(
        self, trace: NDArray[Any], noise_sigma: float,
        gain: float = 1.0, offset: float = 0.0,
        iterations: int = 12,
    ) -> tuple[IntArray, FloatArray]:
        """BP on one or more traces; returns (recovered f mod q, marginals).

        ``trace`` may be a single (L,) trace or a (T, L) stack from
        repeated executions of the *same* inputs; the per-variable
        likelihoods of independent traces multiply, extending the
        attack's noise tolerance gracefully.
        """
        stack = np.atleast_2d(np.asarray(trace, dtype=np.float64))
        if stack.shape[1] != len(self._leak_vars):
            raise ValueError(
                f"expected {len(self._leak_vars)} samples per trace, got {stack.shape[1]}"
            )
        graph = FactorGraph(q=self.q, n_variables=self.n_variables)
        delta = np.zeros(self.q)
        delta[0] = 1.0
        graph.set_prior(self._zero, delta)
        for col, var in enumerate(self._leak_vars):
            log_p = np.zeros(self.q)
            for t in range(stack.shape[0]):
                p = hw_prior(float(stack[t, col]), self.q, noise_sigma, gain, offset)
                log_p += np.log(p + 1e-300)
            log_p -= log_p.max()
            graph.set_prior(var, np.exp(log_p))
        for a, b, c, w in self._factors:
            graph.add_linear_factor(a, b, c, w)
        for u, v, up, vp, w in self._butterflies:
            graph.add_butterfly_factor(u, v, up, vp, w)
        marginals = graph.run(iterations=iterations)
        est = graph.map_estimate(marginals)
        return est[np.asarray(self._f_vars)], marginals

    def leak_many(
        self, f: list[int], n_traces: int, noise_sigma: float,
        rng: np.random.Generator, gain: float = 1.0, offset: float = 0.0,
    ) -> FloatArray:
        """(T, L) stack of independent noisy executions of the same f."""
        stack: FloatArray = np.vstack([
            self.leak(f, noise_sigma, rng, gain, offset) for _ in range(n_traces)
        ])
        return stack


@dataclass
class SingleTraceResult:
    recovered: IntArray
    truth: IntArray
    noise_sigma: float

    @property
    def n_correct(self) -> int:
        return int(np.sum(self.recovered == self.truth))

    @property
    def success(self) -> bool:
        return bool(np.all(self.recovered == self.truth))


def single_trace_attack(
    f: list[int], q: int = 257, noise_sigma: float = 1.0, seed: int = 0,
    iterations: int = 12,
) -> SingleTraceResult:
    """Simulate one leaky NTT execution and recover f from that trace."""
    model = NttSasca(n=len(f), q=q)
    rng = np.random.default_rng(seed)
    trace = model.leak(f, noise_sigma, rng)
    recovered, _ = model.attack(trace, noise_sigma, iterations=iterations)
    truth = np.array([v % q for v in f], dtype=np.int64)
    return SingleTraceResult(recovered=recovered, truth=truth, noise_sigma=noise_sigma)
