"""Soft-analytical side-channel attack (SASCA) on an NTT — the paper's
V-C comparator.

Discussion V-C contrasts FALCON's ~10k-trace FFT attack with NTT-based
schemes that "have shown to be vulnerable even with a single trace"
(Pessl-Primas). The mechanism is implemented here from scratch: the
NTT's butterfly network is a factor graph of modular linear constraints
(u' = u + w*v, v' = u - w*v mod q); Hamming-weight leakage of *every*
intermediate of one execution gives a prior on each variable; loopy
belief propagation fuses the priors through the constraints until the
input coefficients are pinned down exactly — from a single trace.

The same approach is information-theoretically hopeless against
FALCON's FFT: its 53-bit floating-point mantissas give HW priors of
~5.7 bits over a 2^53 domain and the carries of IEEE arithmetic do not
form low-degree modular constraints. That asymmetry is the quantitative
content of V-C.

* :mod:`repro.sasca.factor_graph` — generic BP over Z_q variables with
  ternary linear factors (messages via cyclic (cross-)correlations).
* :mod:`repro.sasca.ntt_attack` — the NTT instantiation: graph builder
  mirroring the butterfly schedule, HW priors from one trace, recovery.
"""

from repro.sasca.factor_graph import FactorGraph, hw_prior
from repro.sasca.ntt_attack import NttSasca, single_trace_attack

__all__ = ["FactorGraph", "hw_prior", "NttSasca", "single_trace_attack"]
