"""Loopy belief propagation over Z_q variables with linear factors.

Variables take values in Z_q. Two node types:

* **priors** — per-variable likelihood vectors (from leakage);
* **ternary linear factors** — the constraint c = a + w*b (mod q) with
  a public twiddle w, which covers every NTT butterfly output.

Messages through a linear factor are cyclic convolutions/correlations
of the incoming beliefs (the distribution of a sum of independent Z_q
variables), computed in O(q log q) with the FFT:

    to c:  conv(mu_a, scale_w(mu_b))
    to a:  corr(mu_c, scale_w(mu_b))
    to b:  unscale_w(corr(mu_c, mu_a))

where scale_w permutes a pmf by t = w*b mod q.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np
from numpy.typing import NDArray

__all__ = ["FactorGraph", "hw_prior"]

from repro.utils.bits import hamming_weight

FloatArray = NDArray[np.float64]
IntGrid = NDArray[np.int64]


def hw_prior(
    sample: float, q: int, noise_sigma: float, gain: float = 1.0, offset: float = 0.0
) -> FloatArray:
    """P(value | one leakage sample) for a Z_q variable under HW leakage."""
    values_hw = np.array([hamming_weight(v) for v in range(q)], dtype=np.float64)
    ll: FloatArray = -((sample - (gain * values_hw + offset)) ** 2) / (
        2.0 * noise_sigma * noise_sigma
    )
    ll -= ll.max()
    p: FloatArray = np.exp(ll)
    return (p / p.sum()).astype(np.float64)


def _scale_pmf(pmf: FloatArray, w: int, q: int) -> FloatArray:
    """pmf of t = w*b given pmf of b (a permutation for gcd(w, q) = 1)."""
    idx = (np.arange(q) * w) % q
    out = np.zeros(q)
    out[idx] = pmf
    return out


def _unscale_pmf(pmf_t: FloatArray, w: int, q: int) -> FloatArray:
    """pmf of b given pmf of t = w*b."""
    idx = (np.arange(q) * w) % q
    return pmf_t[idx].astype(np.float64)


def _cyclic_conv(a: FloatArray, b: FloatArray) -> FloatArray:
    fa = np.fft.rfft(a)
    fb = np.fft.rfft(b)
    return np.maximum(np.fft.irfft(fa * fb, n=len(a)), 0.0).astype(np.float64)


def _cyclic_corr(a: FloatArray, b: FloatArray) -> FloatArray:
    """out[d] = sum_t a[d + t] b[t]  (distribution of a - b mod q)."""
    fa = np.fft.rfft(a)
    fb = np.fft.rfft(b)
    return np.maximum(np.fft.irfft(fa * np.conj(fb), n=len(a)), 0.0).astype(np.float64)


@dataclass
class _Factor:
    a: int
    b: int
    c: int
    w: int


@dataclass
class _Butterfly:
    """Merged butterfly constraint: up = u + w*v, vp = u - w*v (mod q).

    Merging both outputs into one factor removes the length-4 cycles
    that make the two-ternary-factor formulation oscillate under loopy
    BP — this is the standard SASCA treatment of NTT butterflies.
    """

    u: int
    v: int
    up: int
    vp: int
    w: int


@dataclass
class FactorGraph:
    """BP over Z_q with c = a + w*b factors and per-variable priors."""

    q: int
    n_variables: int
    priors: FloatArray = field(init=False)      # (V, q)
    factors: list[_Factor] = field(default_factory=list)
    butterflies: list[_Butterfly] = field(default_factory=list)
    _grid_sum: IntGrid | None = field(default=None, init=False, repr=False)
    _grid_diff: IntGrid | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.q < 2:
            raise ValueError(f"q must be >= 2, got {self.q}")
        self.priors = np.full((self.n_variables, self.q), 1.0 / self.q)

    # -- construction ------------------------------------------------------

    def set_prior(self, var: int, pmf: NDArray[Any]) -> None:
        pmf = np.asarray(pmf, dtype=np.float64)
        if pmf.shape != (self.q,):
            raise ValueError(f"prior must have length {self.q}")
        total = float(pmf.sum())
        if total <= 0:
            raise ValueError("prior must have positive mass")
        self.priors[var] = pmf / total

    def add_linear_factor(self, a: int, b: int, c: int, w: int) -> None:
        """Add the constraint c = a + w*b (mod q)."""
        for v in (a, b, c):
            if not 0 <= v < self.n_variables:
                raise ValueError(f"variable index {v} out of range")
        self.factors.append(_Factor(a=a, b=b, c=c, w=w % self.q))

    def add_butterfly_factor(self, u: int, v: int, up: int, vp: int, w: int) -> None:
        """Add the merged constraint up = u + w*v, vp = u - w*v (mod q)."""
        for var in (u, v, up, vp):
            if not 0 <= var < self.n_variables:
                raise ValueError(f"variable index {var} out of range")
        self.butterflies.append(_Butterfly(u=u, v=v, up=up, vp=vp, w=w % self.q))

    def _grids(self) -> tuple[IntGrid, IntGrid]:
        """(i+j) % q and (i-j) % q index matrices (cached)."""
        if self._grid_sum is None or self._grid_diff is None:
            idx = np.arange(self.q)
            self._grid_sum = ((idx[:, None] + idx[None, :]) % self.q).astype(np.int64)
            self._grid_diff = ((idx[:, None] - idx[None, :]) % self.q).astype(np.int64)
        return self._grid_sum, self._grid_diff

    # -- inference ----------------------------------------------------------

    def _roles(self) -> Iterator[tuple[str, int, str, int]]:
        for fi, f in enumerate(self.factors):
            for role in ("a", "b", "c"):
                yield ("f", fi, role, getattr(f, role))
        for bi, bf in enumerate(self.butterflies):
            for role in ("u", "v", "up", "vp"):
                yield ("b", bi, role, getattr(bf, role))

    def run(self, iterations: int = 12, damping: float = 0.3) -> FloatArray:
        """Loopy sum-product; returns (V, q) marginals."""
        q = self.q
        eps = 1e-30
        uniform = np.full(q, 1.0 / q)
        msgs: dict[tuple[str, int, str], FloatArray] = {
            (kind, i, role): uniform.copy() for kind, i, role, _ in self._roles()
        }
        grid_sum, grid_diff = self._grids()

        def beliefs_from(
            msg_dict: dict[tuple[str, int, str], FloatArray]
        ) -> FloatArray:
            beliefs = self.priors.copy()
            for (kind, i, role), msg in msg_dict.items():
                f: _Factor | _Butterfly = (
                    self.factors[i] if kind == "f" else self.butterflies[i]
                )
                beliefs[getattr(f, role)] *= msg + eps
            beliefs /= beliefs.sum(axis=1, keepdims=True)
            return beliefs

        def normalized(m: NDArray[Any]) -> FloatArray:
            arr = np.asarray(m, dtype=np.float64)
            s = float(arr.sum())
            return arr / s if s > 0 else uniform.copy()

        for _ in range(iterations):
            beliefs = beliefs_from(msgs)
            new_msgs: dict[tuple[str, int, str], FloatArray] = {}

            for fi, f in enumerate(self.factors):
                mu = {
                    role: normalized(beliefs[getattr(f, role)] / (msgs[("f", fi, role)] + eps))
                    for role in ("a", "b", "c")
                }
                scaled_b = _scale_pmf(mu["b"], f.w, q)
                outs = {
                    "c": _cyclic_conv(mu["a"], scaled_b),
                    "a": _cyclic_corr(mu["c"], scaled_b),
                    "b": _unscale_pmf(_cyclic_corr(mu["c"], mu["a"]), f.w, q),
                }
                for role, msg in outs.items():
                    new_msgs[("f", fi, role)] = (
                        damping * msgs[("f", fi, role)] + (1 - damping) * normalized(msg)
                    )

            for bi, bf in enumerate(self.butterflies):
                mu = {
                    role: normalized(beliefs[getattr(bf, role)] / (msgs[("b", bi, role)] + eps))
                    for role in ("u", "v", "up", "vp")
                }
                # t = w * v; grids indexed [u, t]
                b_t = _scale_pmf(mu["v"], bf.w, q)
                up_grid = mu["up"][grid_sum]      # mu_up(u + t)
                vp_grid = mu["vp"][grid_diff]     # mu_vp(u - t)
                core = up_grid * vp_grid
                m_u = (core * b_t[None, :]).sum(axis=1)
                m_t = (core * mu["u"][:, None]).sum(axis=0)
                m_v = _unscale_pmf(np.asarray(m_t, dtype=np.float64), bf.w, q)
                w_ub = mu["u"][:, None] * b_t[None, :]
                m_up = np.bincount(
                    grid_sum.ravel(), weights=(w_ub * vp_grid).ravel(), minlength=q
                )
                m_vp = np.bincount(
                    grid_diff.ravel(), weights=(w_ub * up_grid).ravel(), minlength=q
                )
                for role, msg in (("u", m_u), ("v", m_v), ("up", m_up), ("vp", m_vp)):
                    new_msgs[("b", bi, role)] = (
                        damping * msgs[("b", bi, role)] + (1 - damping) * normalized(msg)
                    )
            msgs = new_msgs

        return beliefs_from(msgs)

    def map_estimate(self, marginals: NDArray[Any]) -> NDArray[np.int64]:
        """Per-variable argmax."""
        return marginals.argmax(axis=1).astype(np.int64)
