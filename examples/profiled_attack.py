#!/usr/bin/env python3
"""Profiled attacks (paper Section V-A): templates and a numpy MLP.

The paper notes its non-profiled DEMA is not the lower bound on
measurement cost: "it is possible to extend our attack by template or
machine-learning based profiling techniques". This example profiles a
clone device (known key) and compares three distinguishers on starved
trace budgets from the victim:

* plain CPA (the paper's attack),
* Gaussian templates (Chari et al.),
* an MLP classifier trained on the profiling traces (Maghrebi-style).

    python examples/profiled_attack.py [--noise 20] [--budget 150]
"""

import argparse

import numpy as np

from repro.attack.cpa import run_cpa
from repro.attack.hypotheses import hyp_s_lo, known_limbs
from repro.attack.ml_profiled import ml_profile_step, ml_scores
from repro.attack.template import profile_step, template_scores
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--noise", type=float, default=20.0)
    parser.add_argument("--budget", type=int, default=150, help="victim traces")
    parser.add_argument("--profiling", type=int, default=5000, help="profiling traces")
    args = parser.parse_args()

    sk, _ = keygen(FalconParams.get(8), seed=b"profiled-example")
    dev_prof = DeviceModel(noise_sigma=args.noise, samples_per_step=3, seed=41)
    dev_atk = DeviceModel(noise_sigma=args.noise, samples_per_step=3, seed=43)

    print(f"profiling a clone device: {args.profiling} traces, known key ...")
    prof = CaptureCampaign(sk=sk, n_traces=args.profiling, device=dev_prof, seed=42).capture(0)
    tpl = profile_step(prof, "s_lo")
    print(f"  Gaussian templates: {len(tpl.classes)} HW classes")
    mlp = ml_profile_step(prof, "s_lo", epochs=40, seed=3)
    print("  MLP classifier trained (hidden=32, Adam, 40 epochs)")

    print(f"\nattacking the victim with only {args.budget} traces ...")
    atk = CaptureCampaign(sk=sk, n_traces=args.budget, device=dev_atk, seed=44).capture(0)
    sig = (atk.true_secret & ((1 << 52) - 1)) | (1 << 52)
    true_lo = sig & ((1 << 25) - 1)
    rng = np.random.default_rng(5)
    cands = np.unique(
        np.concatenate([[true_lo], rng.integers(1, 1 << 25, 200)]).astype(np.uint64)
    )
    seg = atk.segments[0]
    y_lo, y_hi = known_limbs(seg.known_y)
    hyp = hyp_s_lo(y_lo, y_hi, cands)
    window = seg.traces[:, atk.layout.slice_of("s_lo")]

    def rank(scores):
        order = np.argsort(-scores)
        return int(np.where(cands[order] == true_lo)[0][0])

    c_rank = rank(run_cpa(hyp, window, cands).scores)
    t_rank = rank(template_scores(tpl, window, hyp, cands).scores)
    m_rank = rank(ml_scores(mlp, window, hyp, cands).scores)

    print(f"\nrank of the true mantissa limb among {len(cands)} candidates "
          f"(0 = recovered):")
    print(f"  plain CPA (paper's attack): {c_rank}")
    print(f"  Gaussian templates:         {t_rank}")
    print(f"  MLP classifier:             {m_rank}")
    print("\nprofiling squeezes more out of each trace — the paper's 10k-trace")
    print("figure is an upper bound on the real measurement cost.")


if __name__ == "__main__":
    main()
