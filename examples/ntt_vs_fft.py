#!/usr/bin/env python3
"""Discussion V-C: does FALCON's FFT leak less than an NTT would?

The paper argues FFT-based FALCON needs ~10k traces while NTT-based
schemes have fallen to single-trace attacks, attributing the difference
to the modular reduction's non-linearity. This experiment puts both
transforms on the same simulated device and measures the traces needed
for a 99.99%-significant CPA on (a) one FALCON fpr multiplication limb
product and (b) one NTT butterfly with a secret operand.

    python examples/ntt_vs_fft.py [--noise 12.0]
"""

import argparse

import numpy as np

from repro.analysis import correlation_evolution, traces_to_significance
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel
from repro.math import ntt
from repro.utils.bits import hamming_weight_array


def fft_side(noise: float, n_traces: int) -> int | None:
    """Traces-to-significance for the p_ll product of the fpr multiply."""
    sk, _ = keygen(FalconParams.get(8), seed=b"ntt-vs-fft")
    camp = CaptureCampaign(sk=sk, n_traces=n_traces, device=DeviceModel(noise_sigma=noise))
    ts = camp.capture(0)
    from repro.attack.hypotheses import hyp_product, known_limbs

    seg = ts.segments[0]
    y_lo, _ = known_limbs(seg.known_y)
    sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
    true_lo = sig & ((1 << 25) - 1)
    guesses = np.array([true_lo], dtype=np.uint64)
    hyp = hyp_product(y_lo, guesses)
    sample = seg.traces[:, ts.layout.sample_of("p_ll")]
    evo = correlation_evolution(hyp, sample, guesses)
    return traces_to_significance(evo, int(true_lo))


def ntt_side(noise: float, n_traces: int) -> int | None:
    """Traces-to-significance for a secret-weighted NTT load.

    Models the classic attacked intermediate of NTT-based schemes: the
    product (secret * psi^i mod q) at the transform input, with the
    attacker knowing the twiddle and guessing the secret.
    """
    rng = np.random.default_rng(99)
    q = ntt.Q
    secret = 1234
    # per-trace known rotation (message-dependent twiddle, 14-bit values)
    known = rng.integers(1, q, n_traces).astype(np.uint64)
    inter = (np.uint64(secret) * known) % np.uint64(q)
    leak = hamming_weight_array(inter).astype(np.float64)
    samples = leak + rng.normal(0, noise, n_traces)
    hyp = hamming_weight_array(
        (np.uint64(secret) * known) % np.uint64(q)
    ).astype(np.int8).reshape(-1, 1)
    evo = correlation_evolution(hyp, samples, np.array([secret]))
    return traces_to_significance(evo, secret)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--noise", type=float, default=12.0)
    parser.add_argument("--traces", type=int, default=10_000)
    args = parser.parse_args()

    fft_cost = fft_side(args.noise, args.traces)
    ntt_cost = ntt_side(args.noise, args.traces)
    print(f"noise sigma = {args.noise}")
    print(f"  FFT (fpr limb product, 50-bit intermediate): "
          f"significant after {fft_cost} traces")
    print(f"  NTT (mod-q product, 14-bit intermediate):    "
          f"significant after {ntt_cost} traces")
    print()
    print("Both transforms leak; the mod-q reduction keeps NTT intermediates")
    print("narrow (14 bits vs 50), so each trace carries proportionally more")
    print("usable signal per hypothesis bit and wrong guesses decorrelate")
    print("faster — consistent with the paper's observation that NTT-based")
    print("schemes have fallen to far fewer traces.")


if __name__ == "__main__":
    main()
