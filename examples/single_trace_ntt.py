#!/usr/bin/env python3
"""Discussion V-C's comparator: single-trace NTT key recovery (SASCA).

The paper contrasts its ~10k-trace FFT attack with NTT-based schemes
that fall to a *single* trace. This example runs that attack: one noisy
Hamming-weight observation of every intermediate of one NTT execution,
fused by belief propagation over the butterfly factor graph, recovers
all input coefficients exactly.

    python examples/single_trace_ntt.py [--noise 0.5] [--traces 1]
"""

import argparse

import numpy as np

from repro.sasca import NttSasca


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=16, help="NTT size")
    parser.add_argument("--q", type=int, default=257, help="toy modulus")
    parser.add_argument("--noise", type=float, default=0.5)
    parser.add_argument("--traces", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    secret = list(rng.integers(0, args.q, args.n))
    model = NttSasca(n=args.n, q=args.q)
    print(f"secret NTT input: {secret}")
    print(f"device: HW leakage of every intermediate, noise sigma {args.noise}")
    print(f"capturing {args.traces} execution(s) ...")

    traces = model.leak_many(secret, args.traces, args.noise, rng)
    recovered, marginals = model.attack(traces, args.noise, iterations=25)
    truth = np.array(secret) % args.q
    n_ok = int(np.sum(recovered == truth))

    print(f"recovered       : {list(map(int, recovered))}")
    print(f"correct         : {n_ok}/{args.n}")
    if n_ok == args.n:
        print(f"\nfull key recovered from {args.traces} trace(s).")
        print("FALCON's floating-point FFT admits no such attack: a Hamming")
        print("weight sample carries under 6 bits about a 2^53-point mantissa")
        print("space, and IEEE-754 carries form no modular factor graph —")
        print("hence the paper's multi-thousand-trace DEMA instead.")
    else:
        print("\nnot fully recovered — raise --traces or lower --noise.")


if __name__ == "__main__":
    main()
