#!/usr/bin/env python3
"""Discussion V-B: masking and hiding against the Falcon-Down attack.

The paper notes no masked FALCON implementation existed and recommends
one. This experiment runs the straightforward mantissa CPA against three
devices — unprotected, first-order masked, and shuffle-hidden — and
reports the correct-guess correlation against the 99.99% bound in each
case.

    python examples/countermeasure_masking.py [--traces 6000]
"""

import argparse

import numpy as np

from repro.attack.strawman import straightforward_mantissa_attack
from repro.countermeasures import MaskingTransform, ShufflingTransform
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel


def run_case(sk, transform, n_traces, label):
    camp = CaptureCampaign(
        sk=sk,
        n_traces=n_traces,
        device=DeviceModel(seed=1234),
        value_transform=transform,
    )
    ts = camp.capture(0)
    sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
    true_lo = sig & ((1 << 25) - 1)
    rng = np.random.default_rng(0)
    guesses = np.unique(
        np.concatenate([[true_lo], rng.integers(1, 1 << 25, 400)]).astype(np.uint64)
    )
    res = straightforward_mantissa_attack(ts, guesses, true_limb=true_lo)
    corr = float(res.cpa.scores[res.cpa.guesses == true_lo][0])
    thr = res.cpa.threshold()
    verdict = "LEAKS (significant)" if corr > thr else "protected (below bound)"
    print(f"  {label:<22} corr(correct guess) = {corr:+.4f}  "
          f"99.99% bound = {thr:.4f}  -> {verdict}")
    return corr, thr


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=6000)
    args = parser.parse_args()

    sk, _ = keygen(FalconParams.get(8), seed=b"countermeasures")
    print(f"straightforward mantissa CPA, {args.traces} traces per device:\n")
    plain, _ = run_case(sk, None, args.traces, "unprotected")
    masked, _ = run_case(sk, MaskingTransform(), args.traces, "first-order masked")
    shuffled, _ = run_case(sk, ShufflingTransform(), args.traces, "shuffled (hiding)")

    print()
    print(f"hiding attenuates the leak by ~{plain / max(shuffled, 1e-6):.1f}x "
          f"(more traces still win);")
    print("masking removes the first-order leak entirely — a higher-order")
    print("attack on joint samples would be required.")


if __name__ == "__main__":
    main()
