#!/usr/bin/env python3
"""Quickstart: FALCON key generation, signing and verification.

Runs the complete FALCON implementation in this repository — NTRUGen with
the tower-of-rings NTRUSolve, the ffLDL* tree, fast Fourier sampling and
signature compression — on a laptop-scale ring, then on request at the
standard FALCON-512 size.

    python examples/quickstart.py [--n 64]
"""

import argparse
import time

from repro.falcon import FalconParams, keygen, sign, verify
from repro.falcon.keys import public_key_to_json, secret_key_from_json, secret_key_to_json


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64, help="ring degree (8..1024)")
    parser.add_argument("--seed", type=str, default="quickstart", help="deterministic seed")
    args = parser.parse_args()

    params = FalconParams.get(args.n)
    print(f"FALCON-{params.n}: q={params.q}, sigma={params.sigma:.3f}, "
          f"signature bound beta^2={params.sig_bound}")

    t0 = time.time()
    sk, pk = keygen(params, seed=args.seed.encode())
    print(f"\nkey generation: {time.time() - t0:.2f}s")
    print(f"  f[:8] = {sk.f[:8]}")
    print(f"  g[:8] = {sk.g[:8]}")
    print(f"  NTRU equation f*G - g*F = q holds by construction")
    print(f"  public key h[:8] = {pk.h[:8]}")

    message = b"FALCON quickstart message"
    t0 = time.time()
    sig = sign(sk, message, seed=b"sig-seed")
    print(f"\nsigning: {time.time() - t0:.3f}s")
    print(f"  signature bytes: {len(sig.encoded())} (salt {len(sig.salt)} + "
          f"compressed s2 {len(sig.s2_compressed)} + header)")

    t0 = time.time()
    ok = verify(pk, message, sig)
    print(f"verification: {time.time() - t0:.3f}s -> {'ACCEPT' if ok else 'REJECT'}")
    assert ok

    tampered = verify(pk, message + b"!", sig)
    print(f"tampered message        -> {'ACCEPT' if tampered else 'REJECT'}")
    assert not tampered

    # keys serialize to stable JSON documents
    sk2 = secret_key_from_json(secret_key_to_json(sk))
    sig2 = sign(sk2, b"signed after a round trip", seed=b"rt")
    assert verify(pk, b"signed after a round trip", sig2)
    print(f"\nkey serialization round trip: OK "
          f"(public key doc: {len(public_key_to_json(pk))} bytes)")


if __name__ == "__main__":
    main()
