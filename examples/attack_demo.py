#!/usr/bin/env python3
"""The full Falcon-Down attack, end to end (paper Section IV).

Simulates a victim device signing with a fixed FALCON key, captures EM
traces of the FFT(c) (*) FFT(f) floating-point multiplications, runs the
extend-and-prune differential EM attack on every coefficient, rebuilds
the complete signing key from the public key + recovered f, and forges a
signature that verifies under the victim's genuine public key.

    python examples/attack_demo.py --n 16 --traces 10000

With --store DIR the capture is materialized to a disk-backed campaign
store first and the attack replays the memory-mapped shards — run it
twice to see the capture cost disappear on the second invocation. With
--session DIR every finished coefficient is checkpointed, so an
interrupted run (Ctrl-C) resumes bit-identically.

Scale notes: wall clock is roughly n * 10 s at the defaults (one core).
n=8 finishes in ~2 minutes; the code path is identical for --n 512.
"""

import argparse
import time

from repro.attack import AttackConfig, full_attack
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8, help="ring degree of the victim key")
    parser.add_argument("--traces", type=int, default=10_000, help="EM measurements")
    parser.add_argument("--noise", type=float, default=12.0, help="device noise sigma")
    parser.add_argument("--seed", type=str, default="victim", help="victim key seed")
    parser.add_argument("--progress", action="store_true", help="per-coefficient log")
    parser.add_argument(
        "--distinguisher", type=str, default="cpa",
        choices=("cpa", "template", "mlp", "second-order", "strawman"),
        help="statistical engine for every recovery step",
    )
    parser.add_argument(
        "--store", type=str, default=None,
        help="campaign store directory: capture once to disk, attack from "
        "memory-mapped shards (re-running skips the capture entirely)",
    )
    parser.add_argument(
        "--session", type=str, default=None,
        help="checkpoint directory; an interrupted run resumes bit-identically",
    )
    args = parser.parse_args()

    print(f"generating victim FALCON-{args.n} key ...")
    sk, pk = keygen(FalconParams.get(args.n), seed=args.seed.encode())
    print(f"  secret f[:8] = {sk.f[:8]} (the attack must recover this)")

    device = DeviceModel(noise_sigma=args.noise)
    source = None
    if args.store:
        # Materialize first so the capture cost is visible on its own;
        # complete shards from a previous run are reused, not re-simulated.
        campaign = CaptureCampaign(sk=sk, device=device, n_traces=args.traces)
        t0 = time.perf_counter()
        source = campaign.materialize(args.store)
        print(
            f"campaign store at {args.store}: {len(source.targets())} shards "
            f"ready in {time.perf_counter() - t0:.1f}s (cached shards are free)"
        )

    print(f"capturing {args.traces} traces/coefficient at noise sigma {args.noise} "
          f"and attacking {args.n} coefficients ...")
    report = full_attack(
        sk,
        pk,
        n_traces=args.traces,
        device=device,
        config=AttackConfig(distinguisher=args.distinguisher),
        message=b"the adversary signs whatever it wants",
        progress=args.progress,
        store=source,
        session=args.session,
    )

    print()
    print(report.summary())
    print()
    if report.key_correct:
        print(f"recovered f[:8] = {report.key_recovery.f[:8]}")
        print("the adversary now holds a fully functional signing key.")
    else:
        print("key not recovered — increase --traces or lower --noise.")


if __name__ == "__main__":
    main()
