#!/usr/bin/env python3
"""Reproduce Figure 3: one annotated EM trace of a FALCON float multiply.

Synthesizes a low-noise measurement of a single coefficient-wise
multiplication inside FFT(c) (*) FFT(f) and prints the trace with the
mantissa / exponent / sign regions annotated, as in the paper's Fig. 3.

    python examples/trace_explorer.py [--noise 2.0] [--spp 5]
"""

import argparse

import numpy as np

from repro.analysis import Series, ascii_plot
from repro.falcon import FalconParams, keygen
from repro.fpr.trace import MUL_STEP_LABELS
from repro.leakage import CaptureCampaign, DeviceModel

MANTISSA_STEPS = {"load_x_lo", "load_x_hi", "load_y_lo", "load_y_hi", "p_ll", "p_lh",
                  "s_lo", "p_hl", "s_mid", "p_hh", "s_hi", "sticky", "mant_out"}
EXPONENT_STEPS = {"exp_sum", "exp_biased", "exp_out"}
SIGN_STEPS = {"sign_out", "result"}


def region_of(label: str) -> str:
    if label in MANTISSA_STEPS:
        return "mantissa"
    if label in EXPONENT_STEPS:
        return "exponent"
    return "sign"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--noise", type=float, default=2.0)
    parser.add_argument("--spp", type=int, default=5, help="scope samples per operation")
    args = parser.parse_args()

    sk, _ = keygen(FalconParams.get(16), seed=b"fig3")
    device = DeviceModel(noise_sigma=args.noise, samples_per_step=args.spp)
    camp = CaptureCampaign(sk=sk, n_traces=1, device=device)
    ts = camp.capture(0)
    trace = ts.segments[0].traces[0]
    layout = ts.layout

    print(f"secret coefficient under the probe: {ts.true_secret:#018x}\n")
    print(ascii_plot(
        [Series("EM signal", np.arange(len(trace)), trace)],
        title="Fig. 3 — one fpr multiplication, mantissa/exponent/sign annotated",
        x_label="time sample",
        y_label="probe output",
        height=14,
    ))
    print()

    current = None
    for label in MUL_STEP_LABELS:
        region = region_of(label)
        sl = layout.slice_of(label)
        marker = ""
        if region != current:
            marker = f"  <== {region.upper()} region starts"
            current = region
        seg = trace[sl]
        print(f"  samples {sl.start:3d}-{sl.stop - 1:3d}  {label:<11} "
              f"mean={seg.mean():7.2f}{marker}")


if __name__ == "__main__":
    main()
