#!/usr/bin/env python
"""End-to-end smoke of the campaign orchestration service (repro.farm).

Exercises the moving parts the unit tests isolate, together and for
real: a 2-worker :class:`FarmService` drains two mixed-target n=8 jobs
(fpr-mul key extraction + samplerz transcript recovery), with one job
canceled mid-flight by the control plane and resumed from its
checkpoints. Every farm result must be bit-identical to a direct
``full_attack`` run of the same spec, and the resumed job must replay
its surviving checkpoints instead of recomputing them.

Run via ``make farm-smoke`` (CI runs it in the test matrix)::

    PYTHONPATH=src python scripts/farm_smoke.py
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import tempfile
import time

from repro.farm.control import format_status
from repro.farm.queue import FarmQueue
from repro.farm.service import FarmLimits, FarmService
from repro.farm.spec import CampaignSpec, JobState
from repro.farm.worker import result_payload, run_campaign, worker_loop
from repro.leakage.capture import CaptureConfig

N_TRACES = 450
SEED = 61


def smoke_spec(key_seed: str, target: str) -> CampaignSpec:
    return CampaignSpec(
        key_seed=key_seed,
        n=8,
        capture=CaptureConfig(n_traces=N_TRACES, seed=SEED, target=target),
        noise_sigma=2.0,
        device_seed=17,
    )


def check(ok: bool, what: str) -> None:
    print(f"  {'PASS' if ok else 'FAIL'}  {what}")
    if not ok:
        sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="farm directory (default: temp)")
    args = parser.parse_args()

    workdir = args.root or tempfile.mkdtemp(prefix="farm-smoke-")
    queue = FarmQueue(workdir)
    specs = {
        "fprmul": smoke_spec("farm-smoke-key", "fpr-mul"),
        "samplerz": smoke_spec("farm-smoke-key-sz", "samplerz"),
    }
    jobs = {name: queue.submit(spec) for name, spec in specs.items()}
    victim_id = jobs["fprmul"].job_id
    print(f"farm smoke in {workdir}")
    print(format_status(queue.status()))

    # -- cancel mid-flight, via the same worker body the service spawns --
    print("\n[1/3] cancel one job mid-flight, keep its checkpoints")
    worker = multiprocessing.Process(
        target=worker_loop,
        args=(workdir, "smoke-victim"),
        kwargs={"lease_ttl": 30.0, "drain": True, "max_jobs": 1, "throttle_s": 0.3},
    )
    worker.start()
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if len(list(queue.session_dir(victim_id).glob("coeff_*.pkl"))) >= 1:
            break
        time.sleep(0.05)
    queue.cancel(victim_id)
    worker.join(timeout=120)
    canceled = queue.get(victim_id)
    checkpoints = len(list(queue.session_dir(victim_id).glob("coeff_*.pkl")))
    check(canceled.state is JobState.CANCELED, "job canceled at a coefficient boundary")
    check(checkpoints >= 1, f"{checkpoints} checkpoint(s) survive the cancellation")

    # -- resume + drain with a 2-worker service --------------------------
    print("\n[2/3] resume and drain with a 2-worker FarmService")
    queue.resume(victim_id)
    service = FarmService(workdir, limits=FarmLimits(lease_ttl=30.0), n_workers=2)
    status = service.run_to_completion()
    print(format_status(status))
    check(status["counts"]["done"] == 2, "both jobs completed")
    check(status["counts"]["failed"] == 0, "no job failed")
    check(status["leases"] == {}, "no lease left behind")
    resumed = queue.get(victim_id)
    check(
        int(resumed.result["checkpoints_restored"]) >= checkpoints,
        "resumed job replayed its checkpoints instead of recomputing",
    )

    # -- bit-identity against direct full_attack runs --------------------
    print("\n[3/3] farm results vs direct full_attack runs")
    for name, spec in specs.items():
        farm_result = queue.get(jobs[name].job_id).result
        direct = result_payload(run_campaign(spec))
        check(
            farm_result["fingerprint"] == direct["fingerprint"],
            f"{name}: farm fingerprint bit-identical to direct run",
        )
        check(bool(farm_result["succeeded"]), f"{name}: attack succeeded")

    print("\nfarm smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
