#!/usr/bin/env python3
"""Perf regression gate for the ``BENCH_*.json`` artifacts.

Compares every ``BENCH_<name>.json`` in ``--current`` against the same
file in ``--baseline`` and exits non-zero when any tracked metric
regresses by more than ``--threshold`` (default 25%):

* ``wall_s`` — higher is worse,
* ``traces_per_s`` — lower is worse.

A missing baseline directory, or a bench with no baseline counterpart,
is not a failure — first runs and newly added benches pass and their
artifacts become the next baseline. Malformed JSON (torn file, schema
drift) *is* a failure: a gate that silently skips bad input gates
nothing.

Usage::

    python scripts/check_bench_regression.py --baseline bench-baseline --current .
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

REQUIRED_KEYS = ("name", "params", "wall_s", "per_stage_s", "traces_per_s", "peak_rss_mb")


def load_bench(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    missing = [k for k in REQUIRED_KEYS if k not in payload]
    if missing:
        raise ValueError(f"{path}: missing keys {missing}")
    return payload


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Human-readable regression descriptions (empty = pass)."""
    problems: list[str] = []
    name = current.get("name", "?")
    b_wall, c_wall = baseline.get("wall_s"), current.get("wall_s")
    if b_wall and c_wall and b_wall > 0 and c_wall > b_wall * (1.0 + threshold):
        problems.append(
            f"{name}: wall_s {c_wall:.3f}s vs baseline {b_wall:.3f}s "
            f"(+{(c_wall / b_wall - 1.0) * 100.0:.0f}%, limit +{threshold * 100:.0f}%)"
        )
    b_tps, c_tps = baseline.get("traces_per_s"), current.get("traces_per_s")
    if b_tps and c_tps and b_tps > 0 and c_tps < b_tps * (1.0 - threshold):
        problems.append(
            f"{name}: traces_per_s {c_tps:.0f} vs baseline {b_tps:.0f} "
            f"(-{(1.0 - c_tps / b_tps) * 100.0:.0f}%, limit -{threshold * 100:.0f}%)"
        )
    # per-backend capture throughput (optional block): gate each backend
    # present in BOTH artifacts, so adding or dropping a backend is not a
    # failure but slowing one down is
    b_cb = baseline.get("capture_backends") or {}
    c_cb = current.get("capture_backends") or {}
    for backend in sorted(set(b_cb) & set(c_cb)):
        b_rate = b_cb[backend].get("traces_per_s")
        c_rate = c_cb[backend].get("traces_per_s")
        if b_rate and c_rate and b_rate > 0 and c_rate < b_rate * (1.0 - threshold):
            problems.append(
                f"{name}: capture_backends[{backend}].traces_per_s {c_rate:.0f} "
                f"vs baseline {b_rate:.0f} "
                f"(-{(1.0 - c_rate / b_rate) * 100.0:.0f}%, limit -{threshold * 100:.0f}%)"
            )
    # per-surface attack throughput (optional block): same both-sides
    # rule, so registering a new leakage surface is not a failure but
    # slowing an existing one down is
    b_tg = baseline.get("targets") or {}
    c_tg = current.get("targets") or {}
    for target in sorted(set(b_tg) & set(c_tg)):
        b_rate = b_tg[target].get("traces_per_s")
        c_rate = c_tg[target].get("traces_per_s")
        if b_rate and c_rate and b_rate > 0 and c_rate < b_rate * (1.0 - threshold):
            problems.append(
                f"{name}: targets[{target}].traces_per_s {c_rate:.0f} "
                f"vs baseline {b_rate:.0f} "
                f"(-{(1.0 - c_rate / b_rate) * 100.0:.0f}%, limit -{threshold * 100:.0f}%)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="bench-baseline",
        help="directory holding the reference BENCH_*.json files",
    )
    parser.add_argument(
        "--current", default=".",
        help="directory holding this run's BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="fractional regression allowed before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    current_files = sorted(glob.glob(os.path.join(args.current, "BENCH_*.json")))
    if not current_files:
        print(f"no BENCH_*.json artifacts in {args.current!r}; nothing to gate")
        return 0
    if not os.path.isdir(args.baseline):
        print(f"no baseline directory {args.baseline!r}; recording-only run, pass")
        return 0

    failures: list[str] = []
    for path in current_files:
        try:
            current = load_bench(path)
        except (ValueError, json.JSONDecodeError) as exc:
            failures.append(f"{path}: unreadable artifact ({exc})")
            continue
        base_path = os.path.join(args.baseline, os.path.basename(path))
        if not os.path.exists(base_path):
            print(f"{os.path.basename(path)}: no baseline, skipped")
            continue
        try:
            baseline = load_bench(base_path)
        except (ValueError, json.JSONDecodeError) as exc:
            failures.append(f"{base_path}: unreadable baseline ({exc})")
            continue
        problems = compare(baseline, current, args.threshold)
        if problems:
            failures.extend(problems)
        else:
            print(
                f"{os.path.basename(path)}: ok "
                f"(wall {current['wall_s']:.3f}s vs {baseline['wall_s']:.3f}s)"
            )

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
