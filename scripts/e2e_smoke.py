#!/usr/bin/env python3
"""End-to-end smoke of the moving parts the unit tests mock.

One run exercises the 2-worker fan-out, a materialized campaign store,
and a checkpointed session resume for a single (backend, target) pair —
catching pickling, per-target seeding, shard layout, and fingerprint
regressions in one pass. CI fans this script over the capture-backend
and leakage-surface matrices (``make smoke SMOKE_BACKEND=...
SMOKE_TARGET=...``).

The success criterion is surface-dependent: ``fpr-mul`` must rebuild the
signing key and forge a verifying signature; transcript surfaces like
``samplerz`` succeed on exact recovery of every per-target secret.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile


def _fingerprint(result) -> list:
    """Per-target recovered values, comparable across runs."""
    if result.recovered_values is not None:
        return list(result.recovered_values)
    return [c.pattern for c in result.coefficients]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", default="numpy-batch",
                    help="capture step-value engine")
    ap.add_argument("--target", default="fpr-mul",
                    help="leakage surface to smoke end to end")
    ap.add_argument("--traces", type=int, default=None,
                    help="override the per-surface default trace budget")
    args = ap.parse_args(argv)

    from repro.attack import full_attack
    from repro.falcon import FalconParams, keygen
    from repro.leakage import CampaignStore
    from repro.targets import get_target

    surface = get_target(args.target)
    n_traces = args.traces if args.traces is not None else (
        6000 if surface.has_forgery else 4000
    )
    work = tempfile.mkdtemp(prefix="falcon-verify-")
    try:
        store = os.path.join(work, "store")
        sess = os.path.join(work, "sess")
        sk, pk = keygen(FalconParams.get(8), seed=b"verify")
        kwargs = dict(
            n_traces=n_traces, n_workers=2, message=b"verify smoke",
            backend=args.backend, target=args.target, session=sess,
        )
        r = full_attack(sk, pk, store=store, **kwargs)
        print(r.summary())
        ok = (r.key_correct and r.forgery_verifies) if surface.has_forgery \
            else r.key_correct
        assert ok, "parallel smoke attack failed"
        r2 = full_attack(sk, pk, store=CampaignStore(store), **kwargs)
        assert _fingerprint(r2.key_recovery) == _fingerprint(r.key_recovery), \
            "store-backed resume diverged"
        ok2 = (r2.key_correct and r2.forgery_verifies) if surface.has_forgery \
            else r2.key_correct
        assert ok2, "resumed smoke attack failed"
    finally:
        shutil.rmtree(work, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
