"""Substrate performance: FALCON keygen / sign / verify timings.

Not a paper artifact — sanity timings for the from-scratch FALCON
implementation the experiments run on (pytest-benchmark statistics).
"""

import pytest

from repro.falcon import FalconParams, keygen, sign, verify


@pytest.fixture(scope="module")
def kp64():
    return keygen(FalconParams.get(64), seed=b"bench-prim")


def test_keygen_64(benchmark):
    sk, pk = benchmark.pedantic(
        lambda: keygen(FalconParams.get(64), seed=b"kg-bench"), rounds=3, iterations=1
    )
    assert pk.h


def test_sign_64(kp64, benchmark):
    sk, _ = kp64
    sig = benchmark(lambda: sign(sk, b"bench message"))
    assert sig.s2_compressed


def test_verify_64(kp64, benchmark):
    sk, pk = kp64
    sig = sign(sk, b"bench message", seed=1)
    ok = benchmark(lambda: verify(pk, b"bench message", sig))
    assert ok


def test_fpr_mul_trace_throughput(benchmark):
    """Instrumented multiplies per second (the capture bottleneck)."""
    import numpy as np

    from repro.leakage.synth import mul_step_values

    rng = np.random.default_rng(0)
    y = (rng.standard_normal(10_000) * 50 + 100).view(np.uint64)
    x = int(np.float64(123.456).view(np.uint64))
    vals = benchmark(lambda: mul_step_values(x, y))
    assert vals.shape[0] == 10_000
