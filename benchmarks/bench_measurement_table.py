"""TAB-MEAS — the paper's headline measurement costs.

"The leakage of the correct guesses become statistically significant
with as few as a thousand measurements when attacking the exponent and
mantissa addition ... extracting the sign bit ... takes ... about 9k
measurements ... Overall, the measurement for all coefficients can be
confidently acquired with less than 10k measurements."

This bench regenerates that table across several coefficients. One
structural effect surfaces that the paper's numbers are consistent
with: HashToPoint's c is non-centered, so some FFT(c) slots have
heavily sign-imbalanced known operands, which starves the sign-bit
hypothesis of variance — the sign bit is by far the most expensive
component and, on the most imbalanced slots, may need (slightly) more
than the 10k budget to cross the 99.99% bound even though the *bit
itself is still ranked correctly*. Exponent and mantissa additions are
significant within a few thousand traces on every coefficient.
"""

import numpy as np

from repro.analysis import correlation_evolution, format_table, traces_to_significance
from repro.attack.hypotheses import hyp_exp_sum, hyp_s_lo, hyp_sign, known_limbs
from repro.attack.sign_exp import recover_sign

N_COEFFS = 4


def _component_costs(ts):
    sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
    true = {
        "sign": ts.true_secret >> 63,
        "exp": (ts.true_secret >> 52) & 0x7FF,
        "lo": sig & ((1 << 25) - 1),
    }
    layout = ts.layout
    costs = {}
    # sign: evaluate both multiplication streams, keep the informative one
    sign_crossings = []
    for seg in ts.segments:
        evo = correlation_evolution(
            hyp_sign(seg.known_y),
            seg.traces[:, layout.sample_of("sign_out")],
            np.array([0, 1]),
        )
        sign_crossings.append(traces_to_significance(evo, int(true["sign"])))
    defined = [c for c in sign_crossings if c is not None]
    costs["sign"] = min(defined) if defined else None
    costs["sign_bit_ok"] = recover_sign(ts).bit == true["sign"]

    seg = ts.segments[0]
    y_lo, y_hi = known_limbs(seg.known_y)
    guesses = np.arange(true["exp"] - 8, true["exp"] + 8, dtype=np.uint64)
    evo = correlation_evolution(
        hyp_exp_sum(seg.known_y, guesses), seg.traces[:, layout.sample_of("exp_sum")], guesses
    )
    costs["exponent"] = traces_to_significance(evo, int(true["exp"]))
    cands = np.array([true["lo"]], dtype=np.uint64)
    evo = correlation_evolution(
        hyp_s_lo(y_lo, y_hi, cands), seg.traces[:, layout.sample_of("s_lo")], cands
    )
    costs["mantissa_add"] = traces_to_significance(evo, int(true["lo"]))
    return costs


def test_measurement_table(campaign, benchmark):
    def build_table():
        return [(j, _component_costs(campaign.capture(j))) for j in range(N_COEFFS)]

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = [
        [
            f"coeff {j}",
            c["sign"] if c["sign"] is not None else ">10000",
            "yes" if c["sign_bit_ok"] else "NO",
            c["exponent"],
            c["mantissa_add"],
        ]
        for j, c in rows
    ]
    print("\nTAB-MEAS: traces to 99.99% significance per component")
    print(format_table(
        ["target", "sign cost", "sign bit ok", "exponent", "mantissa add"], table
    ))

    exps = [c["exponent"] for _, c in rows]
    mants = [c["mantissa_add"] for _, c in rows]
    signs = [c["sign"] for _, c in rows]
    # the cheap components converge within a few thousand measurements
    # on every coefficient (paper: "as few as a thousand")
    assert all(v is not None and v <= 3_000 for v in exps + mants)
    # the sign bit is always *recovered* within the 10k budget ...
    assert all(c["sign_bit_ok"] for _, c in rows)
    # ... and is the most expensive component wherever it crosses
    defined = [s for s in signs if s is not None]
    assert defined, "no coefficient's sign crossed at all"
    assert min(defined) >= 1_000
    assert all(s > max(e, m) for s, e, m in zip(signs, exps, mants) if s is not None)
