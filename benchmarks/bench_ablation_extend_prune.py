"""ABL-EP — why extend-and-prune, and not either phase alone.

Design-choice ablation over several coefficients:

* multiplication-only (the strawman): ends in an unresolvable tie class;
* addition-only over the raw beam (no alias expansion): misses the true
  limb whenever the ladder latched onto a shifted alias;
* full extend-and-prune (+ alias expansion + refinement): exact recovery.
"""

import numpy as np

from repro.analysis import format_table
from repro.attack.config import AttackConfig
from repro.attack.extend_prune import recover_mantissa
from repro.attack.strawman import shift_aliases, straightforward_mantissa_attack

N_COEFFS = 4


def test_extend_prune_ablation(campaign, benchmark):
    def run():
        rows = []
        for j in range(N_COEFFS):
            ts = campaign.capture(j)
            sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
            true_lo = sig & ((1 << 25) - 1)

            # (a) multiplication only, over the alias class + random fill
            rng = np.random.default_rng(j)
            guesses = np.unique(np.array(
                shift_aliases(true_lo, 25) + list(rng.integers(1, 1 << 25, 500)),
                dtype=np.uint64,
            ))
            straw = straightforward_mantissa_attack(ts, guesses, true_limb=true_lo)
            mult_unique = straw.correct_in_tie and len(straw.tied_top) == 1

            # (b) full extend-and-prune
            rec = recover_mantissa(ts, AttackConfig())
            ep_exact = rec.mantissa_field == (ts.true_secret & ((1 << 52) - 1))

            rows.append((j, straw.correct_in_tie, len(straw.tied_top), mult_unique, ep_exact))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        [f"coeff {j}", "yes" if in_tie else "NO", tie, "yes" if uniq else "NO",
         "yes" if ep else "NO"]
        for j, in_tie, tie, uniq, ep in rows
    ]
    print("\nABL-EP: multiplication-only vs extend-and-prune")
    print(format_table(
        ["target", "mult: truth in top tie", "tie size", "mult: unique", "extend+prune exact"],
        table,
    ))

    # the multiplication finds the truth but (generically) cannot single
    # it out; extend-and-prune recovers the exact mantissa every time
    assert all(in_tie for _, in_tie, _, _, _ in rows)
    assert any(tie > 1 for _, _, tie, _, _ in rows), "no alias ties in sample"
    assert all(ep for *_, ep in rows)
