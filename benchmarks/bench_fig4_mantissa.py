"""FIG4(c,d) — the heart of the paper.

(c) A straightforward CPA on the mantissa *multiplication* produces
    false positives: the top guesses (shift aliases of the true limb)
    have *exactly the same* correlation.
(d) The extend-and-prune step re-ranks those guesses on the intermediate
    *addition*, which is not shift invariant — every false positive is
    eliminated and the true limb wins outright.
"""

import numpy as np

from repro.analysis import format_ranking
from repro.attack.extend_prune import prune_candidates
from repro.attack.hypotheses import hyp_s_lo
from repro.attack.strawman import shift_aliases, straightforward_mantissa_attack


def _guess_space(true_lo: int, extra: int = 2000, seed: int = 0) -> np.ndarray:
    """The paper enumerates all 2^25 guesses; we use a subspace that
    contains the true limb, all of its shift aliases (the tie class the
    full enumeration would also surface), and random fill."""
    rng = np.random.default_rng(seed)
    pool = shift_aliases(true_lo, 25) + list(rng.integers(1, 1 << 25, extra))
    return np.unique(np.array(pool, dtype=np.uint64))


def test_fig4c_multiplication_false_positives(traceset, true_parts, benchmark):
    true_lo = true_parts["lo"]
    guesses = _guess_space(true_lo)

    res = benchmark.pedantic(
        lambda: straightforward_mantissa_attack(traceset, guesses, true_limb=true_lo),
        rounds=1,
        iterations=1,
    )
    print(f"\nFIG4c: straightforward attack on p_ll = D*B over {len(guesses)} guesses")
    print(format_ranking(
        list(map(int, res.cpa.guesses)), list(res.cpa.scores), correct=true_lo, top=6
    ))
    print(f"  tied top guesses: {[hex(int(g)) for g in res.tied_top]}")
    # the correct guess reaches the top ...
    assert res.correct_in_tie
    # ... but cannot be singled out: its shift aliases tie exactly
    aliases = set(shift_aliases(true_lo, 25))
    assert len(aliases) > 1, "degenerate secret limb (no aliases) — reseed the bench"
    assert res.has_false_positives
    assert set(int(g) for g in res.tied_top) == aliases
    # the ties are significant: these are real false positives, not noise
    assert res.cpa.scores.max() > res.cpa.threshold()


def test_fig4d_addition_prunes_false_positives(traceset, true_parts, benchmark):
    true_lo = true_parts["lo"]
    aliases = np.array(sorted(set(shift_aliases(true_lo, 25))), dtype=np.uint64)

    def prune():
        return prune_candidates(traceset, aliases, [hyp_s_lo], ["s_lo"], True)

    scores, results = benchmark.pedantic(prune, rounds=1, iterations=1)
    print(f"\nFIG4d: prune phase on s_lo = (D*B >> 25) + D*A over the tie class")
    print(format_ranking(list(map(int, aliases)), list(scores), correct=true_lo, top=6))
    # the addition separates the class: the true limb wins strictly
    order = np.argsort(-scores)
    assert int(aliases[order[0]]) == true_lo
    margin = scores[order[0]] - scores[order[1]]
    print(f"  winning margin over best false positive: {margin:.4f}")
    assert margin > 0.005, "addition did not separate the aliases"
    # and the winner is statistically significant
    assert scores[order[0]] / len(results) > results[0].threshold() / 2
