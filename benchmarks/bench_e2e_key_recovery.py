"""E2E — Section IV's headline: full key extraction and forgery.

Runs the complete pipeline against the shared victim: capture 10k traces
per coefficient, recover every FFT(f) double via extend-and-prune DEMA,
invert the FFT, complete the NTRU key from the public key, and forge a
signature that the victim's genuine public key accepts.
"""

from repro.attack import full_attack


def test_e2e_key_recovery_and_forgery(victim, benchmark):
    sk, pk = victim

    def attack():
        return full_attack(
            sk,
            pk,
            n_traces=10_000,
            message=b"forged under the victim's public key",
        )

    report = benchmark.pedantic(attack, rounds=1, iterations=1)
    print("\n" + report.summary())

    # the paper's claim, verbatim: the entire signing key is extracted
    # and arbitrary messages can be signed
    assert report.key_correct
    assert report.key_recovery.f == sk.f
    assert report.key_recovery.g == sk.g
    assert report.forgery_verifies
    # mantissas and signs come straight out of the DEMA (the repair only
    # ever touches exponents): most coefficients are exact at top-1
    assert report.n_correct_coefficients >= report.n_coefficients // 2
