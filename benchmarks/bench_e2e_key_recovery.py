"""E2E — Section IV's headline: full key extraction and forgery.

Runs the complete pipeline against the shared victim: capture 10k traces
per coefficient, recover every FFT(f) double via extend-and-prune DEMA,
invert the FFT, complete the NTRU key from the public key, and forge a
signature that the victim's genuine public key accepts.

Also benchmarks the parallel streaming engine: per-coefficient fan-out
over worker processes must be bit-identical to the serial path (every
target derives its own seeds), and the chunked Pearson accumulator must
reproduce the one-shot correlation matrices.
"""

import os
import time

import numpy as np
from _emit import emit_bench, stage_seconds_from_snapshot

from repro.attack import AttackConfig, full_attack, recover_coefficients
from repro.leakage import CampaignStore, CaptureCampaign, DeviceModel, get_backend
from repro.obs import scoped_registry

#: Signings per coefficient — the paper budget by default; ``make
#: bench-smoke`` shrinks both so CI can afford the run.
E2E_TRACES = int(os.environ.get("FALCON_BENCH_TRACES", "10000"))
THROUGHPUT_TRACES = int(os.environ.get("FALCON_BENCH_THROUGHPUT_TRACES", "1500"))
#: Operand batch for the capture-backend microbench; python-ref runs a
#: 1/50 slice of it (it is the slow path the speedup is measured against).
BACKEND_VALUES = int(os.environ.get("FALCON_BENCH_BACKEND_VALUES", "200000"))
#: Signings per target for the per-surface throughput block; every
#: registered surface runs one campaign of this size.
SURFACE_TRACES = int(os.environ.get("FALCON_BENCH_SURFACE_TRACES", "800"))

_backend_stats: dict[str, dict[str, float]] = {}


def _capture_backend_stats() -> dict[str, dict[str, float]]:
    """traces/s of both step-value engines on one shared operand batch.

    Measured once per process and cached: the numbers feed both the
    speedup assertion and the ``capture_backends`` block of
    ``BENCH_throughput.json``. The python-ref engine only runs a slice
    of the batch — its per-second rate is what matters, not its wall
    clock — and that slice doubles as a bit-exactness check against the
    vectorized results.
    """
    if _backend_stats:
        return _backend_stats
    rng = np.random.default_rng(2021)
    y = (rng.standard_normal(BACKEND_VALUES) * 3.0 + 8.0).view(np.uint64)
    x = int(np.float64(-1.2345).view(np.uint64))

    # steady-state rates: one small warm-up call per engine pays the
    # import/allocator cold start outside the measured window
    get_backend("numpy-batch").step_values(x, y[:512])
    get_backend("python-ref").step_values(x, y[:64])

    # best-of-3 for the vectorized engine: a full-size block costs ~10ms,
    # and the first call's page faults would otherwise dominate the rate
    t_fast = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fast_vals = get_backend("numpy-batch").step_values(x, y)
        t_fast = min(t_fast, time.perf_counter() - t0)

    n_ref = max(1, BACKEND_VALUES // 50)
    t0 = time.perf_counter()
    ref_vals = get_backend("python-ref").step_values(x, y[:n_ref])
    t_ref = time.perf_counter() - t0

    np.testing.assert_array_equal(fast_vals[:n_ref], ref_vals)
    _backend_stats["numpy-batch"] = {
        "n_values": BACKEND_VALUES,
        "wall_s": round(t_fast, 6),
        "traces_per_s": BACKEND_VALUES / max(t_fast, 1e-9),
    }
    _backend_stats["python-ref"] = {
        "n_values": n_ref,
        "wall_s": round(t_ref, 6),
        "traces_per_s": n_ref / max(t_ref, 1e-9),
    }
    return _backend_stats


def _surface_stats(sk) -> dict[str, dict[str, float]]:
    """End-to-end rate of every registered leakage surface.

    One small capture+recover campaign per surface; the per-surface
    trace-row rates land in the ``targets`` block of
    ``BENCH_throughput.json``, which the regression gate checks
    key-by-key (a surface present in both baseline and current run must
    not slow down past the threshold).
    """
    from repro.targets import TARGET_NAMES

    out: dict[str, dict[str, float]] = {}
    for name in TARGET_NAMES:
        campaign = CaptureCampaign(
            sk=sk, n_traces=SURFACE_TRACES, device=DeviceModel(noise_sigma=2.0),
            seed=2021, target=name,
        )
        with scoped_registry() as reg:
            t0 = time.perf_counter()
            recs, _ = recover_coefficients(campaign, AttackConfig())
            wall = time.perf_counter() - t0
        snap = reg.snapshot()
        rows = snap.counters.get("cpa.rows_correlated", 0)
        out[name] = {
            "n_targets": campaign.n_targets,
            "recovered_exact": sum(1 for r in recs if r.correct),
            "wall_s": round(wall, 6),
            "traces_per_s": rows / max(wall, 1e-9),
        }
    return out


def test_e2e_key_recovery_and_forgery(victim, benchmark):
    sk, pk = victim

    def attack():
        return full_attack(
            sk,
            pk,
            n_traces=E2E_TRACES,
            message=b"forged under the victim's public key",
        )

    report = benchmark.pedantic(attack, rounds=1, iterations=1)
    print("\n" + report.summary())

    # the paper's claim, verbatim: the entire signing key is extracted
    # and arbitrary messages can be signed
    assert report.key_correct
    assert report.key_recovery.f == sk.f
    assert report.key_recovery.g == sk.g
    assert report.forgery_verifies
    # mantissas and signs come straight out of the DEMA (the repair only
    # ever touches exponents): most coefficients are exact at top-1
    assert report.n_correct_coefficients >= report.n_coefficients // 2
    # trace accounting: the report counts the rows that actually entered
    # the CPA, which can only be <= requested * segments * coefficients
    assert 0 < report.n_traces_correlated <= E2E_TRACES * 2 * report.n_coefficients
    assert len(report.records) == report.n_coefficients
    assert all(r.elapsed_seconds > 0 for r in report.records)

    telemetry = report.telemetry
    emit_bench(
        "e2e",
        params={"n": report.n, "n_traces": E2E_TRACES, "mode": "direct"},
        wall_s=report.elapsed_seconds,
        per_stage_s=telemetry.per_stage_s,
        traces_per_s=telemetry.rows_correlated / max(report.elapsed_seconds, 1e-9),
    )


def test_parallel_engine_throughput(victim):
    """Serial vs 4-worker fan-out: bit-identical patterns, wall-clock gain.

    The speedup assertion only fires when the host actually has the
    cores; on a single-core container the parallel path still runs (and
    must still be bit-identical) but cannot be faster.
    """
    sk, _ = victim
    campaign = CaptureCampaign(sk=sk, n_traces=1_500, device=DeviceModel(), seed=2021)

    t0 = time.perf_counter()
    serial_recs, serial_records = recover_coefficients(campaign, AttackConfig(n_workers=1))
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    par_recs, par_records = recover_coefficients(campaign, AttackConfig(n_workers=4))
    t_parallel = time.perf_counter() - t0

    speedup = t_serial / t_parallel
    print(
        f"\nper-coefficient engine: serial {t_serial:.2f}s, "
        f"4 workers {t_parallel:.2f}s ({speedup:.2f}x, {os.cpu_count()} cores)"
    )

    assert [r.pattern for r in par_recs] == [r.pattern for r in serial_recs]
    assert [r.target_index for r in par_records] == [r.target_index for r in serial_records]
    assert [r.n_traces_kept for r in par_records] == [r.n_traces_kept for r in serial_records]
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >= 2x at 4 workers, got {speedup:.2f}x"


def test_store_backed_attack_cost_split(victim, tmp_path):
    """Capture-once / attack-many: materializing the campaign to a
    disk-backed store pays the simulation cost exactly once; every
    attack after that replays memory-mapped shards and recovers the
    same patterns bit-identically."""
    sk, _ = victim
    campaign = CaptureCampaign(sk=sk, n_traces=1_500, device=DeviceModel(), seed=2021)

    t0 = time.perf_counter()
    store = campaign.materialize(str(tmp_path / "store"))
    t_capture = time.perf_counter() - t0

    t0 = time.perf_counter()
    disk_recs, disk_records = recover_coefficients(store, AttackConfig())
    t_attack = time.perf_counter() - t0

    # a second materialization reuses every shard: the capture cost is gone
    t0 = time.perf_counter()
    campaign.materialize(str(tmp_path / "store"))
    t_recheck = time.perf_counter() - t0

    print(
        f"\nstore-backed attack: capture {t_capture:.2f}s (once), "
        f"attack {t_attack:.2f}s, shard recheck {t_recheck:.2f}s"
    )
    assert t_recheck < t_capture / 2, "existing shards were re-captured"

    live_recs, live_records = recover_coefficients(campaign, AttackConfig())
    assert [r.pattern for r in disk_recs] == [r.pattern for r in live_recs]
    assert [r.n_traces_kept for r in disk_records] == [
        r.n_traces_kept for r in live_records
    ]
    # the store round-trips through pickle as a path, so the parallel
    # engine can ship it to workers without copying trace data
    assert CampaignStore(store.path).n_targets == campaign.n_targets


def test_capture_backend_throughput():
    """numpy-batch vs python-ref on the same operands: bit-exact results
    (checked inside the measurement helper) and a >= 50x rate gain —
    the whole point of vectorizing the capture side."""
    stats = _capture_backend_stats()
    fast = stats["numpy-batch"]["traces_per_s"]
    ref = stats["python-ref"]["traces_per_s"]
    speedup = fast / ref
    print(
        f"\ncapture backends: numpy-batch {fast:,.0f} traces/s, "
        f"python-ref {ref:,.0f} traces/s ({speedup:.0f}x)"
    )
    assert speedup >= 50.0, f"expected >= 50x over python-ref, got {speedup:.1f}x"


def test_streaming_cpa_matches_one_shot(victim):
    """chunk_rows streams every CPA through the raw-moment accumulator;
    the recovered patterns must not change."""
    sk, _ = victim
    campaign = CaptureCampaign(
        sk=sk, n_traces=THROUGHPUT_TRACES, device=DeviceModel(), seed=2021
    )

    t0 = time.perf_counter()
    one_shot, _ = recover_coefficients(campaign, AttackConfig())
    t_one = time.perf_counter() - t0

    with scoped_registry() as reg:
        t0 = time.perf_counter()
        streamed, _ = recover_coefficients(campaign, AttackConfig(chunk_rows=256))
        t_chunked = time.perf_counter() - t0
    snap = reg.snapshot()

    print(f"\nstreaming CPA: one-shot {t_one:.2f}s, chunked(256) {t_chunked:.2f}s")
    assert [r.pattern for r in streamed] == [r.pattern for r in one_shot]

    rows = snap.counters.get("cpa.rows_correlated", 0)
    assert snap.counters.get("cpa.chunks_streamed", 0) > 0
    emit_bench(
        "throughput",
        params={
            "n": sk.params.n,
            "n_traces": THROUGHPUT_TRACES,
            "chunk_rows": 256,
        },
        wall_s=t_chunked,
        per_stage_s=stage_seconds_from_snapshot(snap),
        traces_per_s=rows / max(t_chunked, 1e-9),
        extra={
            "capture_backends": _capture_backend_stats(),
            "targets": _surface_stats(sk),
        },
    )
