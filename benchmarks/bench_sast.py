"""SAST wall-time: cold analysis vs the incremental summary cache.

``make sast`` runs the verify gate with ``--cache .sast-cache.json``;
this bench quantifies what that buys. Four phases over a private copy
of ``src/repro`` (the real tree is never touched):

* **cold** — empty cache, every module analyzed;
* **warm_noop** — nothing changed, the full-tree fast path replays the
  cached findings without running any pass;
* **warm_leaf_edit** — a self-contained module edited; only that file
  is re-analyzed, everything else replays from the cache;
* **warm_core_edit** — a module inside the big taint component edited;
  the cache correctly cascades through the component (taint is
  interprocedural in both directions, so this is the sound floor, not
  a cache bug);
* **variant_static** — the CT007 countermeasure-variant checks run
  against the real contract's ``variants`` section on top of the cold
  findings (the leak-class lattice and masking taint domain already
  ran inside the analysis phases — this isolates the gate layered on
  top of them);
* **rank** — the exploitability triage made operational: the shipped
  contract is ranked, the top hypothesis-computable NTT/FFT entry is
  compiled into its ``contract:<id>`` traced surface, and the full
  capture/attack stack recovers the entry's live operand stream at
  n=8. The stage times ranking + end-to-end recovery together, so a
  regression in either the triage pass or the settrace capture path
  shows up in the artifact.

The emitted ``BENCH_sast.json`` records exactly which modules each
edit re-analyzed, so the incremental claim is auditable from the
artifact alone, and the regression gate tracks the cold wall time like
any other bench.
"""

import os
import shutil
import time

from _emit import emit_bench

from repro.sast.cache import run_with_cache
from repro.sast.contract import infer_leak_class, load_contract
from repro.sast.exploit import rank_entries
from repro.sast.project import load_project
from repro.sast.variants import check_variants_static, normalize_line

_RANK_TRACES = 512
_RANK_NOISE = 2.0

_LEAF_EDIT = os.path.join("analysis", "key_rank.py")
_CORE_EDIT = os.path.join("fpr", "emu.py")


def _copy_tree(tmp_path):
    src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    dst = os.path.join(str(tmp_path), "repro")
    shutil.copytree(os.path.abspath(src), dst, ignore=shutil.ignore_patterns("__pycache__"))
    return dst


def test_sast_cold_vs_warm_cache(tmp_path, benchmark):
    root = _copy_tree(tmp_path)
    cache = os.path.join(str(tmp_path), "sast-cache.json")
    timings = {}
    results = {}

    def phase(name):
        t0 = time.perf_counter()
        findings, stats = run_with_cache(load_project(root, package="repro"), cache)
        timings[name] = time.perf_counter() - t0
        results[name] = (findings, stats)

    def touch(rel):
        with open(os.path.join(root, rel), "a") as fh:
            fh.write("\n# bench: cache invalidation probe\n")

    contract = load_contract(
        os.path.join(os.path.dirname(__file__), "..", "leakage-contract.json")
    )
    variant_out = {}

    def phase_variants(name):
        findings, _ = results["cold"]

        def classify(f):
            if f.leak_class:
                return f.leak_class
            rel = os.path.relpath(f.path, root).replace(os.sep, "/")
            return infer_leak_class(
                f.rule, rel, f.function or "", normalize_line(f.source_line or "")
            )

        t0 = time.perf_counter()
        variant_out[name] = check_variants_static(
            findings, contract.variants, root, classify
        )
        timings[name] = time.perf_counter() - t0

    rank_out = {}

    def phase_rank(name):
        # heavy imports stay local: every other phase is numpy-free
        from repro.attack import AttackConfig, recover_full_key
        from repro.falcon import FalconParams, keygen
        from repro.leakage import CaptureCampaign, DeviceModel

        contract_path = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "leakage-contract.json")
        )
        os.environ["REPRO_CONTRACT"] = contract_path
        t0 = time.perf_counter()
        ranked = rank_entries(contract)
        entry = next(
            e for e in ranked
            if e.path in ("math/ntt.py", "math/fft.py")
            and e.exploitability.hypothesis_computable
        )
        sk, pk = keygen(FalconParams.get(8), seed=b"bench-rank")
        campaign = CaptureCampaign(
            sk=sk,
            device=DeviceModel(noise_sigma=_RANK_NOISE),
            n_traces=_RANK_TRACES,
            seed=5,
            target=f"contract:{entry.exploitability.entry_id}",
        )
        result = recover_full_key(campaign, pk, config=AttackConfig())
        timings[name] = time.perf_counter() - t0
        rank_out["ranked"] = ranked
        rank_out["entry"] = entry
        rank_out["result"] = result

    def run_all():
        phase("cold")
        phase("warm_noop")
        touch(_LEAF_EDIT)
        phase("warm_leaf_edit")
        touch(_CORE_EDIT)
        phase("warm_core_edit")
        phase_variants("variant_static")
        phase_rank("rank")

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    cold_findings, cold_stats = results["cold"]
    _, noop_stats = results["warm_noop"]
    leaf_findings, leaf_stats = results["warm_leaf_edit"]
    core_findings, core_stats = results["warm_core_edit"]

    # cold run analyzes everything; the no-op rerun takes the fast path
    assert not cold_stats.fast_path and not cold_stats.reused
    assert noop_stats.fast_path
    assert results["warm_noop"][0] == cold_findings

    # a leaf edit re-analyzes only the modified file
    assert leaf_stats.reanalyzed == ["repro.analysis.key_rank"]
    assert len(leaf_stats.reused) == leaf_stats.total_modules - 1
    # a core edit cascades through its taint component but not beyond
    assert "repro.fpr.emu" in core_stats.reanalyzed
    assert core_stats.reused, "hubs and disjoint components must be reused"
    # trailing comments change no findings
    assert leaf_findings == cold_findings
    assert core_findings == cold_findings
    # the shipped variants satisfy their contract claims
    assert variant_out["variant_static"] == []

    # the triage ranking is total over CONFIRMED entries and the top
    # NTT/FFT entry's traced surface recovers its operand stream exactly
    ranked = rank_out["ranked"]
    entry = rank_out["entry"]
    result = rank_out["result"]
    assert all(e.exploitability is not None for e in ranked)
    assert result.records and all(r.correct for r in result.records)
    assert len(result.recovered_values) == len(result.records)

    emit_bench(
        "sast",
        params={
            "modules": cold_stats.total_modules,
            "leaf_edit": _LEAF_EDIT.replace(os.sep, "/"),
            "leaf_reanalyzed": sorted(leaf_stats.reanalyzed),
            "core_edit": _CORE_EDIT.replace(os.sep, "/"),
            "core_reanalyzed": len(core_stats.reanalyzed),
            "core_reused": len(core_stats.reused),
            "variants": sorted(contract.variants),
            "rank_entries": len(ranked),
            "rank_top_score": ranked[0].exploitability.score,
            "rank_attacked": {
                "entry_id": entry.exploitability.entry_id,
                "where": f"{entry.path}:{entry.function}",
                "leak_class": entry.leak_class,
                "score": entry.exploitability.score,
                "n_traces": _RANK_TRACES,
                "noise_sigma": _RANK_NOISE,
                "targets_recovered": len(result.recovered_values),
            },
        },
        wall_s=timings["cold"],
        per_stage_s={
            "cold": timings["cold"],
            "warm_noop": timings["warm_noop"],
            "warm_leaf_edit": timings["warm_leaf_edit"],
            "warm_core_edit": timings["warm_core_edit"],
            "variant_static": timings["variant_static"],
            "rank": timings["rank"],
        },
    )
