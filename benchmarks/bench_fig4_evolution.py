"""FIG4(e-h) — correlation evolution vs number of measurements.

Regenerates the paper's right-hand panels: at the leakiest sample of
each component, the correct guess's correlation is tracked as traces
accumulate against the shrinking 99.99% bound. The paper's shape:
exponent and mantissa addition become significant around one thousand
measurements; the sign bit is the most expensive at several thousand;
everything lands within the 10k budget.
"""

import numpy as np

from repro.analysis import (
    Series,
    ascii_plot,
    correlation_evolution,
    traces_to_significance,
    write_csv,
)
from repro.attack.hypotheses import hyp_exp_sum, hyp_s_lo, hyp_sign, known_limbs


def _component_evolutions(traceset, true_parts):
    seg = traceset.segments[0]
    layout = traceset.layout
    y_lo, y_hi = known_limbs(seg.known_y)
    out = {}

    hyp = hyp_sign(seg.known_y)
    out["sign"] = (
        correlation_evolution(hyp, seg.traces[:, layout.sample_of("sign_out")],
                              np.array([0, 1])),
        int(true_parts["sign"]),
    )
    guesses = np.arange(true_parts["exp"] - 16, true_parts["exp"] + 16, dtype=np.uint64)
    hyp = hyp_exp_sum(seg.known_y, guesses)
    out["exponent"] = (
        correlation_evolution(hyp, seg.traces[:, layout.sample_of("exp_sum")], guesses),
        int(true_parts["exp"]),
    )
    cands = np.array([true_parts["lo"]], dtype=np.uint64)
    hyp = hyp_s_lo(y_lo, y_hi, cands)
    out["mantissa_add"] = (
        correlation_evolution(hyp, seg.traces[:, layout.sample_of("s_lo")], cands),
        int(true_parts["lo"]),
    )
    return out


def test_fig4_evolution(traceset, true_parts, figures_dir, benchmark):
    evolutions = benchmark.pedantic(
        lambda: _component_evolutions(traceset, true_parts), rounds=1, iterations=1
    )
    crossings = {}
    series = []
    for name, (evo, correct) in evolutions.items():
        crossings[name] = traces_to_significance(evo, correct)
        gi = int(np.where(evo.guesses == correct)[0][0])
        series.append(Series(name, list(evo.checkpoints), list(np.abs(evo.corr[:, gi]))))
    series.append(Series("99.99% bound", list(evolutions["sign"][0].checkpoints),
                         list(evolutions["sign"][0].thresholds)))
    write_csv(str(figures_dir / "fig4_evolution.csv"), series)
    print("\n" + ascii_plot(series, title="FIG4e-h: |corr| of the correct guess vs traces",
                            x_label="traces", y_label="|corr|", height=14))
    print(f"  traces to 99.99% significance: {crossings}")

    # Paper shape: every component significant within the 10k budget ...
    assert all(c is not None and c <= 10_000 for c in crossings.values()), crossings
    # ... exponent and mantissa addition are cheap (about a thousand) ...
    assert crossings["exponent"] <= 3_000
    assert crossings["mantissa_add"] <= 3_000
    # ... and the sign bit is the most expensive component.
    assert crossings["sign"] >= crossings["exponent"]
    assert crossings["sign"] >= crossings["mantissa_add"]
    assert crossings["sign"] >= 2_000, "sign should need thousands of traces"
