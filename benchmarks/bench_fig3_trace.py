"""FIG3 — the example EM trace with mantissa/exponent/sign regions.

Regenerates the paper's Figure 3: one measurement of a coefficient-wise
floating-point multiplication, annotated by operation region, plus a
throughput benchmark of the trace synthesizer (the simulated scope).
"""

import numpy as np

from repro.analysis import Series, ascii_plot
from repro.fpr.trace import MUL_STEP_LABELS
from repro.leakage import DeviceModel, synthesize_mul_traces, trace_layout


def _known_operands(n: int, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * 100.0 + 200.0).view(np.uint64)


def test_fig3_annotated_trace(traceset, benchmark):
    """One low-noise trace shows the three regions of the multiply."""
    device = DeviceModel(noise_sigma=2.0, samples_per_step=5)
    layout = trace_layout(device)
    secret = traceset.true_secret

    def synthesize():
        traces, _ = synthesize_mul_traces(secret, _known_operands(1000), device)
        return traces

    traces = benchmark(synthesize)
    assert traces.shape == (1000, layout.n_samples)

    one = traces[0]
    print("\n" + ascii_plot(
        [Series("EM", np.arange(len(one)), one)],
        title=f"FIG3: fpr multiply of secret {secret:#018x}",
        x_label="sample",
        y_label="probe",
        height=12,
    ))
    # The three annotated regions must be present and ordered.
    idx = {lab: MUL_STEP_LABELS.index(lab) for lab in MUL_STEP_LABELS}
    assert idx["p_ll"] < idx["exp_sum"] < idx["sign_out"]
    # Mantissa-region samples (50+ bit intermediates) carry more signal
    # than the sign sample — visible region contrast, as in the figure.
    mant = traces[:, layout.slice_of("p_ll")].mean()
    sign = traces[:, layout.slice_of("sign_out")].mean()
    assert mant > sign + 10
