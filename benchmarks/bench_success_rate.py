"""TAB-SUCCESS — "captured with over 99.99% probability with ~10k".

The paper's abstract claims the targeted floating-point variables can
be captured with over 99.99% probability with around 10k measurements.
This bench estimates the empirical first-order success rate of the
sign / exponent / mantissa component attacks across coefficients as the
trace budget grows, and checks the claim's shape: everything reaches
SR = 1.0 within the 10k budget, with the mantissa extend-and-prune the
earliest and the sign bit the latest.
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.success_rate import success_curve
from repro.attack.config import AttackConfig
from repro.attack.extend_prune import recover_mantissa
from repro.attack.sign_exp import recover_exponent, recover_sign

CHECKPOINTS = (500, 2000, 10_000)
N_COEFFS = 3


def _sign_attack(ts):
    rec = recover_sign(ts)
    return [rec.bit, 1 - rec.bit], int(ts.true_secret >> 63)


def _exponent_attack(ts):
    sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
    rec = recover_exponent(ts, guess_range=(963, 1084), significand=sig)
    order = np.argsort(-rec.combined_scores, kind="stable")
    # keep the magnitude-prior tie-break for rank 0
    ranked = [rec.biased_exponent] + [
        int(rec.guesses[i]) for i in order if int(rec.guesses[i]) != rec.biased_exponent
    ]
    return ranked, int((ts.true_secret >> 52) & 0x7FF)


def _mantissa_attack(ts):
    rec = recover_mantissa(ts, AttackConfig())
    return [rec.mantissa_field], int(ts.true_secret & ((1 << 52) - 1))


def test_success_rates(campaign, benchmark):
    tracesets = [campaign.capture(j) for j in range(N_COEFFS)]

    def run():
        return {
            "sign": success_curve(tracesets, _sign_attack, CHECKPOINTS),
            "exponent": success_curve(tracesets, _exponent_attack, CHECKPOINTS),
            "mantissa": success_curve(tracesets, _mantissa_attack, CHECKPOINTS),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, curve in curves.items():
        sr = curve.success_rate()
        rows.append([name] + [f"{v:.2f}" for v in sr])
    print(f"\nTAB-SUCCESS: first-order success rate over {N_COEFFS} coefficients")
    print(format_table(["component"] + [str(c) for c in CHECKPOINTS], rows))

    # at the paper's 10k budget, every component recovers its value on
    # every tested coefficient (the "over 99.99% probability" claim at
    # laptop sample size)
    assert curves["sign"].success_rate()[-1] == 1.0
    assert curves["mantissa"].success_rate()[-1] == 1.0
    # exponent: exact at top-1 after the magnitude prior, or at worst
    # within the small candidate set the key-recovery repair consumes
    assert curves["exponent"].success_rate(order=8)[-1] == 1.0
    # the mantissa attack already succeeds at mid budgets
    assert curves["mantissa"].success_rate()[-2] == 1.0
