"""FIG4(a,b) — sign-bit and exponent correlation panels.

Regenerates the paper's Figure 4(a) and 4(b): the differential EM attack
on the sign bit and on the exponent addition, with the correct guess
crossing the 99.99% confidence interval and wrong guesses dying out.
"""

import numpy as np

from repro.analysis import format_ranking
from repro.attack.sign_exp import recover_exponent, recover_sign


def test_fig4a_sign_bit(traceset, true_parts, benchmark):
    """Fig 4(a): the sign-bit DEMA finds the correct sign with positive
    correlation; the wrong guess is the exact mirror image."""
    rec = benchmark.pedantic(lambda: recover_sign(traceset), rounds=1, iterations=1)
    assert rec.bit == true_parts["sign"]
    # The hashed message c has non-negative coefficients, so some FFT(c)
    # slots have constant-sign parts: one of the two multiplications may
    # carry no sign information at all. Report the informative segment,
    # as an attacker would.
    best = max(rec.results, key=lambda r: float(r.corr[rec.bit].max()))
    correct_corr = float(best.corr[rec.bit].max())
    wrong_corr = float(best.corr[1 - rec.bit].max())
    print(f"\nFIG4a: correct sign corr {correct_corr:+.4f}, "
          f"mirror guess {wrong_corr:+.4f}, bound {best.threshold():.4f}")
    # symmetric leakage (paper: "the sign-bit leakage is symmetric")
    np.testing.assert_allclose(best.corr[0], -best.corr[1], atol=1e-12)
    # the correct sign is significant at 10k traces
    assert correct_corr > best.threshold()


def test_fig4b_exponent(traceset, true_parts, attack_config, benchmark):
    """Fig 4(b): exponent DEMA — correct guess significant; a handful of
    structured false guesses also cross the bound (the blue traces)."""
    rec = benchmark.pedantic(
        lambda: recover_exponent(
            traceset,
            guess_range=attack_config.exponent_guesses,
            significand=true_parts["sig"],
        ),
        rounds=1,
        iterations=1,
    )
    scores = rec.combined_scores
    guesses = rec.guesses
    print("\nFIG4b top guesses (combined over exponent intermediates):")
    print(format_ranking(list(map(int, guesses)), list(scores), correct=true_parts["exp"], top=8, value_format="d"))
    # the true exponent is at worst within the top handful (ties with
    # structured aliases are resolved by the magnitude prior / repair)
    order = np.argsort(-scores)
    rank = int(np.where(guesses[order] == true_parts["exp"])[0][0])
    assert rank < 8, f"true exponent ranked {rank}"
    # and the per-intermediate CPA is significant for the truth
    res = rec.results[0]
    true_idx = int(np.where(res.guesses == true_parts["exp"])[0][0])
    assert abs(res.corr[true_idx]).max() > res.threshold()
