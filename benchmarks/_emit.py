"""Shared perf-artifact emission for the benchmark suite.

Every headline bench distills its run into one ``BENCH_<name>.json``
conforming to the schema the regression gate consumes::

    {"name", "params", "wall_s", "per_stage_s", "traces_per_s",
     "peak_rss_mb"}

``wall_s`` lower is better; ``traces_per_s`` higher is better; the
per-stage breakdown comes straight from the observability layer's span
telemetry, so the JSON tracks the same stage tree the RunJournal
records. Artifacts land in ``$FALCON_BENCH_DIR`` (default: the current
directory) and are written atomically so a killed bench never leaves a
torn JSON for the gate to choke on.
"""

from __future__ import annotations

import json
import os
import resource
import sys

from repro.utils.io import atomic_write_text

__all__ = ["emit_bench", "peak_rss_mb", "stage_seconds_from_snapshot"]


def peak_rss_mb() -> float:
    """High-water resident set size of this process, in MiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


def stage_seconds_from_snapshot(snapshot) -> dict[str, float]:
    """Per-stage totals from a MetricsSnapshot's span histograms."""
    out: dict[str, float] = {}
    for name, hist in snapshot.histograms.items():
        if name.startswith("stage_seconds."):
            out[name[len("stage_seconds."):]] = float(hist.total)
    return out


def emit_bench(
    name: str,
    params: dict,
    wall_s: float,
    per_stage_s: dict[str, float] | None = None,
    traces_per_s: float | None = None,
    out_dir: str | None = None,
    extra: dict | None = None,
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    ``extra`` merges additional top-level keys into the payload (the
    gate ignores keys it does not track, but knows a few — e.g. the
    per-backend ``capture_backends`` throughput block); it cannot
    override the schema keys.
    """
    payload = {
        "name": name,
        "params": dict(params),
        "wall_s": float(wall_s),
        "per_stage_s": {k: float(v) for k, v in (per_stage_s or {}).items()},
        "traces_per_s": None if traces_per_s is None else float(traces_per_s),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    for key, value in (extra or {}).items():
        if key in payload:
            raise ValueError(f"extra key {key!r} collides with the bench schema")
        payload[key] = value
    out_dir = out_dir or os.environ.get("FALCON_BENCH_DIR") or "."
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\nperf artifact: {path}")
    return path
