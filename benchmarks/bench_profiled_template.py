"""ABL-TPL — the paper's V-A extension: profiled (template) attacks.

"It is possible to extend our attack by template or machine-learning
based profiling techniques" — i.e. the non-profiled DEMA numbers are an
upper bound on the measurement cost. This bench compares the rank of
the true limb under plain CPA vs under Gaussian templates (profiled on
an identical device with a known key) at starved trace budgets, across
several coefficients and a noisy multi-sample acquisition where joint
sample weighting matters.

With exact Hamming-weight leakage CPA is already near-optimal, so the
honest expectation (and assertion) is: templates are never worse on
average and converge at least as fast — profiling can only help.
"""

import numpy as np

from repro.analysis import format_table
from repro.attack.cpa import run_cpa
from repro.attack.hypotheses import hyp_s_lo, known_limbs
from repro.attack.template import profile_step, template_scores
from repro.leakage import CaptureCampaign, DeviceModel

BUDGETS = (100, 250, 1000)
N_COEFFS = 3
NOISE = 20.0
SPP = 3


def test_template_vs_cpa(victim, benchmark):
    sk, _ = victim
    dev_prof = DeviceModel(noise_sigma=NOISE, samples_per_step=SPP, seed=41)
    dev_atk = DeviceModel(noise_sigma=NOISE, samples_per_step=SPP, seed=43)
    prof_camp = CaptureCampaign(sk=sk, n_traces=5000, device=dev_prof, seed=42)
    atk_camp = CaptureCampaign(sk=sk, n_traces=max(BUDGETS), device=dev_atk, seed=44)

    def run():
        rows = []
        rng = np.random.default_rng(5)
        for j in range(N_COEFFS):
            prof = prof_camp.capture(j)
            atk = atk_camp.capture(j)
            tpl = profile_step(prof, "s_lo")
            sig = (atk.true_secret & ((1 << 52) - 1)) | (1 << 52)
            true_lo = sig & ((1 << 25) - 1)
            cands = np.unique(
                np.concatenate([[true_lo], rng.integers(1, 1 << 25, 150)]).astype(np.uint64)
            )
            for budget in BUDGETS:
                sub = atk.head(budget)
                seg = sub.segments[0]
                y_lo, y_hi = known_limbs(seg.known_y)
                hyp = hyp_s_lo(y_lo, y_hi, cands)
                window = seg.traces[:, sub.layout.slice_of("s_lo")]
                t_res = template_scores(tpl, window, hyp, cands)
                c_res = run_cpa(hyp, window, cands)
                t_rank = int(np.where(cands[t_res.ranking] == true_lo)[0][0])
                c_rank = int(np.where(cands[c_res.ranking] == true_lo)[0][0])
                rows.append((j, budget, c_rank, t_rank))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nABL-TPL: rank of the true limb (0 = recovered), noise {NOISE}, "
          f"{SPP} samples/op, 151 candidates")
    print(format_table(
        ["coeff", "traces", "CPA rank", "template rank"],
        [[j, b, c, t] for j, b, c, t in rows],
    ))

    cpa_mean = np.mean([c for *_, c, _ in rows])
    tpl_mean = np.mean([t for *_, t in rows])
    print(f"  mean rank: CPA {cpa_mean:.2f}  template {tpl_mean:.2f}")
    # profiling can only help: templates never worse on average
    assert tpl_mean <= cpa_mean
    # and both recover the limb outright at the largest budget
    assert all(t == 0 and c == 0 for _, b, c, t in rows if b == max(BUDGETS))