"""Shared fixtures for the benchmark harness.

One victim key and one 10k-trace measurement campaign (the paper's
trace budget) are shared by every figure/table bench; each bench then
consumes the slices it needs. Everything is seeded — rerunning the
suite regenerates identical numbers.
"""

import numpy as np
import pytest

from repro.attack.config import AttackConfig
from repro.experiment_defaults import BENCH_SEED, PAPER_N_TRACES
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel

BENCH_N = 8  # laptop-scale ring: identical code path to FALCON-512


@pytest.fixture(scope="session")
def victim():
    """The victim key pair under attack in every experiment."""
    sk, pk = keygen(FalconParams.get(BENCH_N), seed=BENCH_SEED)
    return sk, pk


@pytest.fixture(scope="session")
def campaign(victim):
    """10k-trace EM campaign against the victim (paper Section IV)."""
    sk, _ = victim
    return CaptureCampaign(
        sk=sk, n_traces=PAPER_N_TRACES, device=DeviceModel(), seed=2021
    )


def pick_representative_coefficient(campaign) -> int:
    """A coefficient whose known operands carry sign information.

    HashToPoint's c has non-negative coefficients, so some FFT(c) slots
    have strongly sign-imbalanced (or constant-sign) real/imaginary
    parts; the sign-bit DEMA is starved of variance there. The paper
    presents its Figure 4 panels for one representative coefficient —
    we pick ours the same way: the first slot whose known operand signs
    are reasonably balanced on at least one multiplication stream.
    """
    c_fft = campaign.c_fft
    n = campaign.sk.params.n
    for j in range(n):
        part = c_fft[:, j // 2].real if j % 2 == 0 else c_fft[:, j // 2].imag
        neg = float(np.mean(part < 0))
        if 0.35 <= neg <= 0.65:
            return j
    return 0


@pytest.fixture(scope="session")
def traceset(campaign):
    """The per-coefficient trace set every Figure-4 panel works on."""
    return campaign.capture(pick_representative_coefficient(campaign))


@pytest.fixture(scope="session")
def true_parts(traceset):
    sig = (traceset.true_secret & ((1 << 52) - 1)) | (1 << 52)
    return {
        "pattern": traceset.true_secret,
        "sign": traceset.true_secret >> 63,
        "exp": (traceset.true_secret >> 52) & 0x7FF,
        "lo": sig & ((1 << 25) - 1),
        "hi": sig >> 25,
        "sig": sig,
    }


@pytest.fixture(scope="session")
def attack_config():
    return AttackConfig()


@pytest.fixture(scope="session")
def figures_dir(tmp_path_factory):
    """Where the benches drop their CSV series."""
    return tmp_path_factory.mktemp("figures")
