"""ABL-JIT — robustness: trigger jitter and static realignment.

The paper's scope triggers acquisitions precisely; real benches drift.
This ablation degrades the device with +/-2 samples of trigger jitter
and shows (a) the raw CPA peak collapses, (b) the classic mean-trace
realignment restores it.
"""

import numpy as np

from repro.attack.alignment import align_traceset
from repro.attack.cpa import run_cpa
from repro.attack.hypotheses import hyp_product, known_limbs
from repro.leakage import CaptureCampaign, DeviceModel

N_TRACES = 4000


def _peak_corr(ts, true_lo):
    seg = ts.segments[0]
    y_lo, _ = known_limbs(seg.known_y)
    hyp = hyp_product(y_lo, np.array([true_lo], dtype=np.uint64))
    res = run_cpa(hyp, seg.traces[:, ts.layout.slice_of("p_ll")],
                  np.array([true_lo], dtype=np.uint64))
    return float(res.scores[0])


def test_jitter_and_alignment(victim, benchmark):
    sk, _ = victim

    def run():
        clean_dev = DeviceModel(noise_sigma=4.0, samples_per_step=3, seed=51)
        jitter_dev = DeviceModel(noise_sigma=4.0, samples_per_step=3, jitter=2, seed=51)
        clean = CaptureCampaign(sk=sk, n_traces=N_TRACES, device=clean_dev, seed=52).capture(0)
        jittered = CaptureCampaign(sk=sk, n_traces=N_TRACES, device=jitter_dev, seed=52).capture(0)
        sig = (clean.true_secret & ((1 << 52) - 1)) | (1 << 52)
        true_lo = sig & ((1 << 25) - 1)
        realigned, _ = align_traceset(jittered, max_shift=3)
        return (
            _peak_corr(clean, true_lo),
            _peak_corr(jittered, true_lo),
            _peak_corr(realigned, true_lo),
        )

    clean, jittered, realigned = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nABL-JIT: correct-guess peak correlation at {N_TRACES} traces")
    print(f"  clean device      : {clean:+.4f}")
    print(f"  +/-2 sample jitter: {jittered:+.4f}")
    print(f"  after realignment : {realigned:+.4f}")

    assert jittered < 0.8 * clean          # jitter costs signal
    assert realigned > jittered            # alignment recovers most of it
    assert realigned > 0.75 * clean