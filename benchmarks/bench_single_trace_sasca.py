"""ABL-SASCA — V-C's cited comparator: single-trace NTT key recovery.

"While our attack on FFT requires around 10k traces, NTT has shown to
be vulnerable even with a single trace [19]." This bench implements
that comparator: belief propagation over the NTT butterfly factor graph
with Hamming-weight priors from ONE execution recovers every input
coefficient exactly at moderate noise, and the multi-trace fusion needs
orders of magnitude fewer traces than the FFT DEMA at comparable
relative noise.
"""

import numpy as np

from repro.analysis import format_table
from repro.sasca import NttSasca

Q = 257
N = 16


def test_single_trace_ntt_recovery(benchmark):
    rng0 = np.random.default_rng(0)
    secret = list(rng0.integers(0, Q, N))
    model = NttSasca(n=N, q=Q)

    def run():
        rows = []
        for sigma, budgets in ((0.5, (1,)), (1.0, (1, 8)), (2.0, (1, 30))):
            for t in budgets:
                rng = np.random.default_rng(7)
                traces = model.leak_many(secret, t, sigma, rng)
                rec, _ = model.attack(traces, sigma, iterations=25)
                rows.append((sigma, t, int(np.sum(rec == np.array(secret) % Q))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nABL-SASCA: BP recovery of all {N} NTT inputs (q={Q})")
    print(format_table(
        ["noise sigma", "traces", f"coefficients recovered (of {N})"],
        [[s, t, c] for s, t, c in rows],
    ))

    by_key = {(s, t): c for s, t, c in rows}
    # THE claim: a single trace suffices at moderate noise
    assert by_key[(0.5, 1)] == N
    # fusion keeps the trace count tiny as noise grows
    assert by_key[(1.0, 8)] == N
    assert by_key[(2.0, 30)] == N
    # while a single high-noise trace is not enough (no magic)
    assert by_key[(2.0, 1)] < N
    # Contrast (see bench_fig4_evolution): FALCON's FFT multiplication
    # needs ~10^3-10^4 traces under the HW model at the calibrated
    # device noise, and no single-trace recovery is possible at all —
    # an HW sample carries <6 bits about a 2^53-point mantissa space
    # and IEEE carries admit no low-degree modular factor graph.
