"""ABL-NTT — Discussion V-C: NTT vs FFT from a side-channel perspective.

The paper conjectures that FALCON's FFT leaks *less exploitable*
structure than the NTT of other lattice schemes because the modular
reduction's non-linearity lets an attacker "distinguish and eliminate
wrong guesses easier in NTT". This ablation quantifies exactly that:
the maximum hypothesis collinearity between the true secret and its
best rival, for (a) the fpr mantissa product and (b) an NTT product
mod q, on identical devices.

A rival collinearity of 1.0 means rival guesses are *informationally
indistinguishable* at that intermediate no matter how many traces are
collected — the FFT multiplication's shift aliases — which is why the
paper needs extend-and-prune at all, and why NTT attacks get away with
far fewer traces.
"""

import numpy as np

from repro.attack.hypotheses import hyp_product, known_limbs
from repro.attack.strawman import shift_aliases
from repro.utils.bits import hamming_weight_array


def _max_rival_collinearity(hyps: np.ndarray, true_col: int) -> float:
    """max over rivals of corr(h_rival, h_true)."""
    h = hyps.astype(np.float64)
    h -= h.mean(axis=0, keepdims=True)
    norms = np.sqrt((h * h).sum(axis=0))
    norms[norms == 0] = 1.0
    corr = (h.T @ h[:, true_col]) / (norms * norms[true_col])
    corr[true_col] = -np.inf
    return float(corr.max())


def test_ntt_vs_fft_rival_structure(traceset, true_parts, benchmark):
    rng = np.random.default_rng(17)
    q = 12289

    def measure():
        # --- FFT side: hypotheses on the fpr partial product D*B -------
        seg = traceset.segments[0]
        y_lo, _ = known_limbs(seg.known_y)
        true_lo = true_parts["lo"]
        rivals = np.unique(np.array(
            shift_aliases(true_lo, 25) + list(rng.integers(1, 1 << 25, 256)),
            dtype=np.uint64,
        ))
        true_col = int(np.where(rivals == true_lo)[0][0])
        fft_coll = _max_rival_collinearity(hyp_product(y_lo, rivals), true_col)

        # --- NTT side: hypotheses on (secret * known) mod q -------------
        known = rng.integers(1, q, len(y_lo)).astype(np.uint64)
        secret = int(true_lo) % q or 1
        cands = np.unique(np.concatenate(
            [[secret], rng.integers(1, q, 256)]
        ).astype(np.uint64))
        true_col_ntt = int(np.where(cands == secret)[0][0])
        prods = (known[:, None] * cands[None, :]) % np.uint64(q)
        ntt_coll = _max_rival_collinearity(
            hamming_weight_array(prods).astype(np.int8), true_col_ntt
        )
        return fft_coll, ntt_coll

    fft_coll, ntt_coll = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nABL-NTT: max rival hypothesis collinearity")
    print(f"  FFT fpr product : {fft_coll:.6f}  (1.0 = exact false positives)")
    print(f"  NTT mod-q product: {ntt_coll:.6f}")

    # FFT multiplication has *exact* false positives (shift aliases) ...
    assert fft_coll > 0.999999
    # ... while modular reduction decorrelates every rival substantially.
    assert ntt_coll < 0.9
    # The gap is the quantitative version of the paper's V-C claim.
    assert fft_coll - ntt_coll > 0.1
