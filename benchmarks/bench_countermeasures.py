"""ABL-CM — Discussion V-B: masking and hiding vs the attack.

The paper recommends masking for FALCON (none existed at the time).
This bench runs the straightforward mantissa CPA against an unprotected,
a first-order masked, and a shuffle-hidden device with equal trace
budgets, and checks: masking kills the first-order leak; hiding only
attenuates it.
"""

import numpy as np

from repro.analysis import format_table
from repro.attack.strawman import straightforward_mantissa_attack
from repro.countermeasures import MaskingTransform, ShufflingTransform
from repro.leakage import CaptureCampaign, DeviceModel

N_TRACES = 6000


def _correct_corr(sk, transform, seed=77):
    camp = CaptureCampaign(
        sk=sk,
        n_traces=N_TRACES,
        device=DeviceModel(seed=seed),
        value_transform=transform,
    )
    ts = camp.capture(0)
    sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
    true_lo = sig & ((1 << 25) - 1)
    res = straightforward_mantissa_attack(
        ts, np.array([true_lo], dtype=np.uint64), true_limb=true_lo
    )
    return float(res.cpa.scores[0]), res.cpa.threshold()


def test_countermeasures(victim, benchmark):
    sk, _ = victim

    def run_all():
        return {
            "unprotected": _correct_corr(sk, None),
            "masked": _correct_corr(sk, MaskingTransform()),
            "shuffled": _correct_corr(sk, ShufflingTransform()),
        }

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[k, f"{v[0]:+.4f}", f"{v[1]:.4f}", "leaks" if v[0] > v[1] else "holds"]
            for k, v in out.items()]
    print("\nABL-CM: correct-guess correlation vs 99.99% bound "
          f"({N_TRACES} traces)")
    print(format_table(["device", "corr", "bound", "verdict"], rows))

    plain, bound = out["unprotected"]
    masked, _ = out["masked"]
    shuffled, _ = out["shuffled"]
    # the unprotected device leaks decisively
    assert plain > 3 * bound
    # ideal first-order masking removes the first-order leak
    assert masked < 2 * bound
    # shuffling attenuates (roughly by the permutation factor) but does
    # not eliminate the leak
    assert bound / 2 < shuffled < plain / 2
