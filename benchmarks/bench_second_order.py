"""ABL-2ND — higher-order attack against the masked implementation.

Completes the countermeasure story of Section V-B: first-order masking
stops the paper's attack, but an adversary who sees both shares can run
a second-order CPA on the centered product of the share samples. The
leak returns — at a much higher measurement cost, which is the point of
masking.
"""

import numpy as np

from repro.attack.cpa import run_cpa
from repro.attack.hypotheses import hyp_product, known_limbs
from repro.attack.second_order import second_order_cpa
from repro.countermeasures.masking import capture_masked_shares
from repro.leakage import DeviceModel

N_TRACES = 20_000
NOISE = 3.0


def test_second_order_breaks_masking(victim, benchmark):
    sk, _ = victim

    def run():
        s1, s2, known_y, secret = capture_masked_shares(
            sk, 0, "p_ll", n_traces=N_TRACES,
            device=DeviceModel(noise_sigma=NOISE, seed=9),
        )
        sig = (secret & ((1 << 52) - 1)) | (1 << 52)
        true_lo = sig & ((1 << 25) - 1)
        rng = np.random.default_rng(1)
        cands = np.unique(
            np.concatenate([[true_lo], rng.integers(1, 1 << 25, 60)]).astype(np.uint64)
        )
        hyp = hyp_product(y_lo := known_limbs(known_y)[0], cands)
        first = run_cpa(hyp, s1.reshape(-1, 1), cands)
        second = second_order_cpa(s1, s2, hyp, cands)
        return true_lo, cands, first, second

    true_lo, cands, first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    f_corr = float(first.scores.max())
    s_corr = float(second.scores[cands == true_lo][0])
    print(f"\nABL-2ND at {N_TRACES} traces, noise sigma {NOISE}:")
    print(f"  1st-order CPA on masked share: max corr {f_corr:+.4f} "
          f"(bound {first.threshold():.4f}) -> defeated")
    print(f"  2nd-order CPA (centered product): corr(true) {s_corr:+.4f} "
          f"(bound {second.threshold():.4f}) -> leaks again")

    assert f_corr < 2 * first.threshold()        # masking holds at order 1
    assert second.best_guess == true_lo          # order 2 recovers the limb
    assert s_corr > second.threshold()
