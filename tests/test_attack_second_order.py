"""Tests for the second-order attack against first-order masking."""

import numpy as np
import pytest

from repro.attack.cpa import run_cpa
from repro.attack.hypotheses import hyp_product, known_limbs
from repro.attack.second_order import centered_product, second_order_cpa
from repro.countermeasures.masking import capture_masked_shares
from repro.falcon import FalconParams, keygen
from repro.leakage import DeviceModel


@pytest.fixture(scope="module")
def shares():
    sk, _ = keygen(FalconParams.get(8), seed=b"so")
    return capture_masked_shares(
        sk, 0, "p_ll", n_traces=20_000, device=DeviceModel(noise_sigma=3.0, seed=9)
    )


def _true_low(secret):
    sig = (secret & ((1 << 52) - 1)) | (1 << 52)
    return sig & ((1 << 25) - 1)


class TestCenteredProduct:
    def test_output_shape(self):
        a = np.random.default_rng(0).standard_normal(100)
        b = np.random.default_rng(1).standard_normal(100)
        assert centered_product(a, b).shape == (100, 1)

    def test_zero_mean(self):
        rng = np.random.default_rng(2)
        out = centered_product(rng.standard_normal(5000), rng.standard_normal(5000))
        assert abs(float(out.mean())) < 0.05

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            centered_product(np.zeros(5), np.zeros(6))

    def test_recovers_xor_dependence(self):
        """E[(HW(v^m)-c)(HW(m)-c')] depends on HW(v): synthetic check."""
        from repro.utils.bits import hamming_weight_array

        rng = np.random.default_rng(3)
        width = 16
        m = rng.integers(0, 1 << width, 200_000).astype(np.uint64)
        lo_means = []
        for v in (0x0000, 0xFFFF):
            t1 = hamming_weight_array(np.uint64(v) ^ m).astype(float)
            t2 = hamming_weight_array(m).astype(float)
            lo_means.append(float(centered_product(t1, t2).mean()))
        # HW(v) = 0 gives positive covariance; HW(v) = width gives negative
        assert lo_means[0] > 0.5
        assert lo_means[1] < -0.5


class TestSecondOrderCpa:
    def test_first_order_fails(self, shares):
        s1, _, known_y, secret = shares
        y_lo, _ = known_limbs(known_y)
        true_lo = _true_low(secret)
        rng = np.random.default_rng(1)
        cands = np.unique(
            np.concatenate([[true_lo], rng.integers(1, 1 << 25, 40)]).astype(np.uint64)
        )
        hyp = hyp_product(y_lo, cands)
        res = run_cpa(hyp, s1.reshape(-1, 1), cands)
        assert res.scores.max() < 2 * res.threshold()

    def test_second_order_succeeds(self, shares):
        s1, s2, known_y, secret = shares
        y_lo, _ = known_limbs(known_y)
        true_lo = _true_low(secret)
        rng = np.random.default_rng(1)
        cands = np.unique(
            np.concatenate([[true_lo], rng.integers(1, 1 << 25, 40)]).astype(np.uint64)
        )
        hyp = hyp_product(y_lo, cands)
        res = second_order_cpa(s1, s2, hyp, cands)
        assert res.best_guess == true_lo
        assert float(res.scores[cands == true_lo][0]) > res.threshold()
