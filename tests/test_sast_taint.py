"""Secret-flow taint engine (SF001-SF004) against known fixture flows.

Every test pins exact rule IDs and line numbers, so a propagation
regression shows up as a missing/moved finding rather than a silently
shrinking report.
"""

from __future__ import annotations

import os

from tests.sast_util import by_rule, findings_for, line_of, write_package

from repro.sast.cli import collect_findings
from repro.sast.project import load_project


def test_secret_branch_flagged_with_chain(tmp_path):
    src = """\
    def leak(sk):
        if sk.f[0] > 0:
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"attack.py": src})
    sf = by_rule(findings, "SF001")
    assert len(sf) == 1
    f = sf[0]
    assert f.line == line_of(src, "if sk.f[0] > 0")
    assert f.function == "pkg.attack.leak"
    assert "SecretKey.f" in f.taint_chain[0]
    assert "branch" in f.taint_chain[-1]


def test_secret_indexed_subscript(tmp_path):
    src = """\
    TABLE = [1, 2, 3, 4]

    def select(sk):
        return TABLE[sk.g[0]]
    """
    findings = findings_for(tmp_path, {"lut.py": src})
    sf = by_rule(findings, "SF002")
    assert [f.line for f in sf] == [line_of(src, "TABLE[sk.g[0]]")]
    assert "SecretKey.g" in sf[0].taint_chain[0]


def test_variable_time_operations(tmp_path):
    src = """\
    import math

    def ops(sk):
        a = sk.f[0] % 3
        b = math.exp(sk.f[1])
        c = 1 << sk.f[2]
        d = sk.f[3].bit_length()
        return a, b, c, d
    """
    findings = findings_for(tmp_path, {"vt.py": src})
    lines = sorted(f.line for f in by_rule(findings, "SF003"))
    assert lines == [
        line_of(src, "% 3"),
        line_of(src, "math.exp"),
        line_of(src, "1 <<"),
        line_of(src, "bit_length"),
    ]


def test_interprocedural_taint_reaches_callee_branch(tmp_path):
    helper = """\
    def branchy(x):
        if x > 0:
            return 1
        return 0
    """
    main = """\
    from pkg.helper import branchy

    def drive(sk):
        return branchy(sk.g[0])
    """
    findings = findings_for(tmp_path, {"helper.py": helper, "main.py": main})
    sf = by_rule(findings, "SF001")
    assert len(sf) == 1
    f = sf[0]
    assert f.path.endswith("helper.py")
    assert f.line == line_of(helper, "if x > 0")
    # the chain names the original SecretKey field, not just the parameter
    assert "SecretKey.g" in f.taint_chain[0]
    assert any("branchy" in hop for hop in f.taint_chain)


def test_sampler_output_is_a_source(tmp_path):
    files = {
        "falcon/samplerz.py": """\
        def samplerz(mu, sigma, sigmin, rng):
            return 0
        """,
        "use.py": """\
        from repro.falcon.samplerz import samplerz

        def draw(rng):
            z = samplerz(0.0, 1.0, 0.5, rng)
            if z > 0:
                return 1
            return 0
        """,
    }
    findings = findings_for(tmp_path, files, package="repro")
    sf = by_rule(findings, "SF001")
    assert len(sf) == 1
    assert sf[0].line == line_of(files["use.py"], "if z > 0")
    assert "samplerz" in sf[0].taint_chain[0]


def test_len_sanitizes_taint(tmp_path):
    src = """\
    def shape_only(sk):
        if len(sk.f) > 4:
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"ok.py": src})
    assert by_rule(findings, "SF001") == []


def test_source_and_sink_annotations(tmp_path):
    src = """\
    def emit(out):
        limb = 7  # sast: source
        out.write(limb)  # sast: sink
        return limb
    """
    findings = findings_for(tmp_path, {"ann.py": src})
    sf = by_rule(findings, "SF004")
    assert [f.line for f in sf] == [line_of(src, "out.write")]


def test_declassify_suppresses_and_bounds_taint(tmp_path):
    src = """\
    def report(sk):  # sast: declassify(reason=fixture exercises the boundary)
        if sk.f[0] > 0:
            return helper(sk.f[0])
        return 0

    def helper(x):
        if x > 0:
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"decl.py": src})
    # no findings inside the declassified function, and the taint must
    # not leak through its call sites into helper() either
    assert by_rule(findings, "SF001") == []


def test_planted_branch_in_falcon_sign_copy(tmp_path):
    """Acceptance: a planted secret-dependent branch in a fixture copy of
    repro.falcon.sign is detected, chain naming the SecretKey field."""
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(here, "src", "repro", "falcon", "sign.py")) as fh:
        original = fh.read()
    anchor = "        t0, t1 = sign_target(sk, c)\n"
    assert anchor in original, "sign.py anchor moved; update the fixture"
    planted = original.replace(
        anchor,
        anchor + "        if sk.f[0] > 0:  # planted leak\n            continue\n",
        1,
    )
    pkg_root = os.path.join(str(tmp_path), "repro")
    write_package(pkg_root, {"falcon/sign.py": planted})
    findings = collect_findings(load_project(pkg_root, package="repro"))
    plant_line = planted.splitlines().index(
        "        if sk.f[0] > 0:  # planted leak"
    ) + 1
    hits = [f for f in by_rule(findings, "SF001") if f.line == plant_line]
    assert len(hits) == 1
    assert "SecretKey.f" in hits[0].taint_chain[0]
    assert hits[0].function == "repro.falcon.sign.sign"
