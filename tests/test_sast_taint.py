"""Secret-flow taint engine (SF001-SF004) against known fixture flows.

Every test pins exact rule IDs and line numbers, so a propagation
regression shows up as a missing/moved finding rather than a silently
shrinking report.
"""

from __future__ import annotations

import os

from tests.sast_util import by_rule, findings_for, line_of, write_package

from repro.sast.cli import collect_findings
from repro.sast.project import load_project


def test_secret_branch_flagged_with_chain(tmp_path):
    src = """\
    def leak(sk):
        if sk.f[0] > 0:
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"attack.py": src})
    sf = by_rule(findings, "SF001")
    assert len(sf) == 1
    f = sf[0]
    assert f.line == line_of(src, "if sk.f[0] > 0")
    assert f.function == "pkg.attack.leak"
    assert "SecretKey.f" in f.taint_chain[0]
    assert "branch" in f.taint_chain[-1]


def test_secret_indexed_subscript(tmp_path):
    src = """\
    TABLE = [1, 2, 3, 4]

    def select(sk):
        return TABLE[sk.g[0]]
    """
    findings = findings_for(tmp_path, {"lut.py": src})
    sf = by_rule(findings, "SF002")
    assert [f.line for f in sf] == [line_of(src, "TABLE[sk.g[0]]")]
    assert "SecretKey.g" in sf[0].taint_chain[0]


def test_variable_time_operations(tmp_path):
    src = """\
    import math

    def ops(sk):
        a = sk.f[0] % 3
        b = math.exp(sk.f[1])
        c = 1 << sk.f[2]
        d = sk.f[3].bit_length()
        return a, b, c, d
    """
    findings = findings_for(tmp_path, {"vt.py": src})
    lines = sorted(f.line for f in by_rule(findings, "SF003"))
    assert lines == [
        line_of(src, "% 3"),
        line_of(src, "math.exp"),
        line_of(src, "1 <<"),
        line_of(src, "bit_length"),
    ]


def test_interprocedural_taint_reaches_callee_branch(tmp_path):
    helper = """\
    def branchy(x):
        if x > 0:
            return 1
        return 0
    """
    main = """\
    from pkg.helper import branchy

    def drive(sk):
        return branchy(sk.g[0])
    """
    findings = findings_for(tmp_path, {"helper.py": helper, "main.py": main})
    sf = by_rule(findings, "SF001")
    assert len(sf) == 1
    f = sf[0]
    assert f.path.endswith("helper.py")
    assert f.line == line_of(helper, "if x > 0")
    # the chain names the original SecretKey field, not just the parameter
    assert "SecretKey.g" in f.taint_chain[0]
    assert any("branchy" in hop for hop in f.taint_chain)


def test_sampler_output_is_a_source(tmp_path):
    files = {
        "falcon/samplerz.py": """\
        def samplerz(mu, sigma, sigmin, rng):
            return 0
        """,
        "use.py": """\
        from repro.falcon.samplerz import samplerz

        def draw(rng):
            z = samplerz(0.0, 1.0, 0.5, rng)
            if z > 0:
                return 1
            return 0
        """,
    }
    findings = findings_for(tmp_path, files, package="repro")
    sf = by_rule(findings, "SF001")
    assert len(sf) == 1
    assert sf[0].line == line_of(files["use.py"], "if z > 0")
    assert "samplerz" in sf[0].taint_chain[0]


def test_len_sanitizes_taint(tmp_path):
    src = """\
    def shape_only(sk):
        if len(sk.f) > 4:
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"ok.py": src})
    assert by_rule(findings, "SF001") == []


def test_source_and_sink_annotations(tmp_path):
    src = """\
    def emit(out):
        limb = 7  # sast: source
        out.write(limb)  # sast: sink
        return limb
    """
    findings = findings_for(tmp_path, {"ann.py": src})
    sf = by_rule(findings, "SF004")
    assert [f.line for f in sf] == [line_of(src, "out.write")]


def test_declassify_suppresses_and_bounds_taint(tmp_path):
    src = """\
    def report(sk):  # sast: declassify(reason=fixture exercises the boundary)
        if sk.f[0] > 0:
            return helper(sk.f[0])
        return 0

    def helper(x):
        if x > 0:
            return 1
        return 0
    """
    findings = findings_for(tmp_path, {"decl.py": src})
    # no findings inside the declassified function, and the taint must
    # not leak through its call sites into helper() either
    assert by_rule(findings, "SF001") == []


def test_planted_branch_in_falcon_sign_copy(tmp_path):
    """Acceptance: a planted secret-dependent branch in a fixture copy of
    repro.falcon.sign is detected, chain naming the SecretKey field."""
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(here, "src", "repro", "falcon", "sign.py")) as fh:
        original = fh.read()
    anchor = "        t0, t1 = sign_target(sk, c)\n"
    assert anchor in original, "sign.py anchor moved; update the fixture"
    planted = original.replace(
        anchor,
        anchor + "        if sk.f[0] > 0:  # planted leak\n            continue\n",
        1,
    )
    pkg_root = os.path.join(str(tmp_path), "repro")
    write_package(pkg_root, {"falcon/sign.py": planted})
    findings = collect_findings(load_project(pkg_root, package="repro"))
    plant_line = planted.splitlines().index(
        "        if sk.f[0] > 0:  # planted leak"
    ) + 1
    hits = [f for f in by_rule(findings, "SF001") if f.line == plant_line]
    assert len(hits) == 1
    assert "SecretKey.f" in hits[0].taint_chain[0]
    assert hits[0].function == "repro.falcon.sign.sign"


# -- evaluator blind-spot regressions (one fixture per construct) ----------


def test_comprehension_scope_shadowing_and_propagation(tmp_path):
    """A comprehension target must (a) receive the iterable's taint inside
    the comprehension and (b) not clobber a same-named outer binding."""
    src = """\
    TABLE = [0] * 16

    def leak(sk):
        x = sk.f[0]
        sel = [TABLE[v] for v in sk.f]
        masks = [x & 1 for x in range(4)]
        if x > 0:
            return sel
        return masks
    """
    findings = findings_for(tmp_path, {"comp.py": src})
    sf2 = by_rule(findings, "SF002")
    assert [f.line for f in sf2] == [line_of(src, "TABLE[v]")]
    sf1 = [f for f in by_rule(findings, "SF001") if f.line == line_of(src, "if x > 0")]
    assert len(sf1) == 1, "outer `x` lost its taint across the comprehension scope"
    assert "SecretKey.f" in sf1[0].taint_chain[0]


def test_lambda_body_sinks_and_value_taint(tmp_path):
    """Sinks inside a lambda body report, and a secret-capturing lambda
    taints calls through the bound name."""
    src = """\
    def leak(sk):
        key = sk.g[0]
        conv = lambda v: v % key
        probe = lambda: sk.f[0]
        if probe() > 0:
            return conv(1)
        return 0
    """
    findings = findings_for(tmp_path, {"lam.py": src})
    sf3 = [f for f in by_rule(findings, "SF003") if f.line == line_of(src, "v % key")]
    assert len(sf3) == 1, "variable-time op inside lambda body not reported"
    sf1 = [f for f in by_rule(findings, "SF001") if f.line == line_of(src, "if probe()")]
    assert len(sf1) == 1, "lambda value taint lost across the call"
    assert any("lambda" in hop for hop in sf1[0].taint_chain)


def test_augmented_assignment_target_sinks(tmp_path):
    """``x <<= secret`` / ``x %= secret`` are variable-time sinks even
    though the operator never appears in an ast.BinOp."""
    src = """\
    def leak(sk):
        x = 1
        x <<= sk.f[0]
        y = 100
        y %= sk.g[0]
        return x + y
    """
    findings = findings_for(tmp_path, {"aug.py": src})
    lines = sorted(f.line for f in by_rule(findings, "SF003"))
    assert lines == [line_of(src, "x <<="), line_of(src, "y %=")]


def test_varargs_and_kwargs_propagation(tmp_path):
    """Secrets passed through ``*args`` / ``**kwargs`` reach callee sinks."""
    src = """\
    def star_sink(*args):
        if args[1] > 0:
            return 1
        return 0

    def kw_sink(**opts):
        if opts["level"] > 0:
            return 1
        return 0

    def run(sk):
        a = star_sink(0, sk.f[0])
        b = kw_sink(level=sk.g[0])
        return a, b
    """
    findings = findings_for(tmp_path, {"va.py": src})
    sf1_lines = {f.line for f in by_rule(findings, "SF001")}
    assert line_of(src, "if args[1] > 0") in sf1_lines, "*args taint dropped"
    assert line_of(src, 'if opts["level"] > 0') in sf1_lines, "**kwargs taint dropped"
