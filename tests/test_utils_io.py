"""Tests for the shared durable-write helpers (the durability bugfix).

The store and session layers used to fsync the written file but never
the parent directory after ``os.replace`` — a crash window in which the
rename itself could be lost. The shared helpers fsync the directory
too; these tests pin the observable contract (atomicity, no leftover
temp files, directory fsync attempted) and that both former call sites
actually use the shared path.
"""

import os
from pathlib import Path

import pytest

from repro.utils import io as io_mod
from repro.utils.io import atomic_write_bytes, atomic_write_text, fsync_dir


class TestAtomicWrite:
    def test_round_trip_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01falcon")
        assert target.read_bytes() == b"\x00\x01falcon"

    def test_round_trip_text(self, tmp_path):
        target = tmp_path / "manifest.json"
        atomic_write_text(target, '{"n": 8}')
        assert target.read_text() == '{"n": 8}'

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "f"
        atomic_write_bytes(target, b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "f"
        for _ in range(3):
            atomic_write_bytes(target, b"x")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["f"]

    def test_failed_write_cleans_tmp_and_preserves_old(self, tmp_path, monkeypatch):
        target = tmp_path / "f"
        atomic_write_bytes(target, b"intact")

        def boom(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(io_mod.os, "replace", boom)
        with pytest.raises(OSError, match="simulated"):
            atomic_write_bytes(target, b"torn")
        monkeypatch.undo()
        assert target.read_bytes() == b"intact"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["f"]

    def test_parent_directory_is_fsynced(self, tmp_path, monkeypatch):
        """The bugfix itself: the parent dir must be fsynced post-rename."""
        synced = []
        monkeypatch.setattr(io_mod, "fsync_dir", lambda p: synced.append(os.fspath(p)))
        atomic_write_bytes(tmp_path / "f", b"x")
        assert synced == [str(tmp_path)]

    def test_fsync_dir_tolerates_unsyncable_paths(self, tmp_path):
        fsync_dir(tmp_path)                    # a real directory works
        fsync_dir(tmp_path / "does-not-exist")  # missing path is ignored


class TestCallSitesUseSharedHelper:
    def test_session_checkpoints_go_through_shared_writer(self, tmp_path, monkeypatch):
        from repro.attack import session as session_mod
        from repro.attack.config import AttackConfig
        from repro.falcon import FalconParams, keygen
        from repro.leakage import CaptureCampaign, DeviceModel

        written = []
        real = session_mod.atomic_write_bytes
        monkeypatch.setattr(
            session_mod, "atomic_write_bytes",
            lambda path, blob: (written.append(Path(path).name), real(path, blob))[-1],
        )
        sk, _ = keygen(FalconParams.get(8), seed=b"io-tests")
        campaign = CaptureCampaign(sk=sk, n_traces=40, device=DeviceModel(), seed=7)
        sess = session_mod.AttackSession(tmp_path / "sess")
        sess.bind(campaign, AttackConfig())
        sess.record(3, "recovery", "record")
        assert written == ["session.json", "coeff_00003.pkl"]
        assert sess.completed()[3] == ("recovery", "record")

    def test_store_writes_go_through_shared_writer(self, tmp_path, monkeypatch):
        from repro.falcon import FalconParams, keygen
        from repro.leakage import CaptureCampaign, DeviceModel
        from repro.leakage import store as store_mod

        written = []
        real = store_mod.atomic_write_text
        monkeypatch.setattr(
            store_mod, "atomic_write_text",
            lambda path, text: (written.append(Path(path).name), real(path, text))[-1],
        )
        sk, _ = keygen(FalconParams.get(8), seed=b"io-tests")
        campaign = CaptureCampaign(sk=sk, n_traces=40, device=DeviceModel(), seed=7)
        campaign.materialize(tmp_path / "store")
        assert "manifest.json" in written
        assert written.count("shard.json") == campaign.n_targets
