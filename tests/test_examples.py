"""Smoke tests: the example scripts run and make their claims."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", ["--n", "16"], capsys)
    assert "ACCEPT" in out
    assert "REJECT" in out
    assert "round trip: OK" in out


def test_trace_explorer(capsys):
    out = run_example("trace_explorer.py", ["--spp", "3"], capsys)
    assert "MANTISSA region starts" in out
    assert "EXPONENT region starts" in out
    assert "SIGN region starts" in out


def test_ntt_vs_fft(capsys):
    out = run_example("ntt_vs_fft.py", ["--traces", "4000"], capsys)
    assert "FFT" in out and "NTT" in out
    assert "significant after" in out


@pytest.mark.slow
def test_countermeasure_masking(capsys):
    out = run_example("countermeasure_masking.py", ["--traces", "3000"], capsys)
    assert "unprotected" in out
    assert "LEAKS" in out
    assert "protected (below bound)" in out
