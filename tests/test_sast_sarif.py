"""SARIF 2.1.0 output: structural validation against the spec.

``jsonschema`` is deliberately not a dependency, so the required-shape
rules of the SARIF 2.1.0 schema that the repo relies on are enforced by
a hand-written structural validator: every emitted log must pass
``validate_sarif`` before a viewer or code-scanning upload sees it.
"""

from __future__ import annotations

import json
import os

from tests.sast_util import write_package

from repro.sast.cli import main
from repro.sast.findings import EXIT_CLEAN, EXIT_FINDINGS, RULES

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_LEAKY = """\
def leak(sk):
    if sk.f[0] > 0:
        return sk.f[1] % 3
    return 0
"""

_LEVELS = {"none", "note", "warning", "error"}
_SUPPRESSION_KINDS = {"inSource", "external"}


def validate_sarif(doc: dict) -> None:
    """Assert the SARIF 2.1.0 structural invariants this repo relies on."""
    assert doc["version"] == "2.1.0"
    assert isinstance(doc["$schema"], str) and "sarif-schema-2.1.0" in doc["$schema"]
    assert isinstance(doc["runs"], list) and doc["runs"]
    for run in doc["runs"]:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        rules = driver.get("rules", [])
        rule_ids = [r["id"] for r in rules]
        assert len(set(rule_ids)) == len(rule_ids)
        for rule in rules:
            assert isinstance(rule["id"], str) and rule["id"]
            assert rule["shortDescription"]["text"]
        bases = run.get("originalUriBaseIds", {})
        for base in bases.values():
            assert base["uri"].endswith("/")       # spec: directory URIs
        for result in run.get("results", []):
            assert isinstance(result["message"]["text"], str)
            assert result["message"]["text"]
            assert result.get("level", "warning") in _LEVELS
            if "ruleIndex" in result and result["ruleIndex"] >= 0:
                assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            for loc in result.get("locations", []):
                phys = loc["physicalLocation"]
                art = phys["artifactLocation"]
                assert not art["uri"].startswith("/") and "\\" not in art["uri"]
                if "uriBaseId" in art:
                    assert art["uriBaseId"] in bases
                assert phys["region"]["startLine"] >= 1
                if "startColumn" in phys["region"]:
                    assert phys["region"]["startColumn"] >= 1
            for flow in result.get("codeFlows", []):
                assert flow["threadFlows"]
                for thread in flow["threadFlows"]:
                    assert thread["locations"]
                    for tfl in thread["locations"]:
                        assert tfl["location"]["message"]["text"]
            for sup in result.get("suppressions", []):
                assert sup["kind"] in _SUPPRESSION_KINDS
                assert sup.get("justification", "x")
            props = result.get("properties", {})
            if "security-severity" in props:
                # GitHub code scanning: a string decimal in [0, 10]
                sev = props["security-severity"]
                assert isinstance(sev, str)
                assert 0.0 <= float(sev) <= 10.0


def _pkg(tmp_path, files, name="pkg"):
    root = os.path.join(str(tmp_path), name)
    os.makedirs(root, exist_ok=True)
    write_package(root, files)
    return root


def test_sarif_log_validates_and_carries_code_flows(tmp_path, capsys):
    root = _pkg(tmp_path, {"leak.py": _LEAKY})
    assert main([root, "--format", "sarif"]) == EXIT_FINDINGS
    doc = json.loads(capsys.readouterr().out)
    validate_sarif(doc)
    results = doc["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {"SF001", "SF003"}
    sf001 = next(r for r in results if r["ruleId"] == "SF001")
    # taint chains become threadFlows, source hop first
    flow = sf001["codeFlows"][0]["threadFlows"][0]["locations"]
    assert "source" in flow[0]["kinds"]
    assert "sink" in flow[-1]["kinds"]
    assert "SecretKey" in flow[0]["location"]["message"]["text"]
    # the rule catalog rides along in full
    assert [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]] == sorted(RULES)


def test_sarif_clean_tree_is_valid_and_empty(tmp_path, capsys):
    root = _pkg(tmp_path, {"ok.py": "def f(v):\n    return v\n"})
    assert main([root, "--format", "sarif"]) == EXIT_CLEAN
    doc = json.loads(capsys.readouterr().out)
    validate_sarif(doc)
    assert doc["runs"][0]["results"] == []


def test_sarif_baseline_suppressions(tmp_path, capsys):
    root = _pkg(tmp_path, {"leak.py": _LEAKY})
    baseline = str(tmp_path / "bl.json")
    assert main([root, "--write-baseline", "--baseline", baseline]) == EXIT_CLEAN
    capsys.readouterr()
    assert main([root, "--baseline", baseline, "--format", "sarif"]) == EXIT_CLEAN
    doc = json.loads(capsys.readouterr().out)
    validate_sarif(doc)
    results = doc["runs"][0]["results"]
    assert results, "suppressed findings must still appear in the log"
    assert all(r["suppressions"][0]["kind"] == "external" for r in results)


def test_verify_sarif_on_real_tree_suppresses_contract_entries(capsys):
    """`verify --format sarif` on the committed tree: zero outstanding
    results, every contract-accepted finding present as suppressed."""
    root = os.path.join(_REPO_ROOT, "src", "repro")
    contract = os.path.join(_REPO_ROOT, "leakage-contract.json")
    assert main(["verify", root, "--contract", contract,
                 "--format", "sarif"]) == EXIT_CLEAN
    doc = json.loads(capsys.readouterr().out)
    validate_sarif(doc)
    run = doc["runs"][0]
    outstanding = [r for r in run["results"] if "suppressions" not in r]
    assert outstanding == []
    suppressed = [r for r in run["results"] if "suppressions" in r]
    meta = run["properties"]["leakageContract"]
    assert len(suppressed) == meta["entries"] + meta["refuted"]
    assert meta["coverage_prefixes"] == ["falcon/", "fpr/", "math/"]
    # every contract entry (and only those — refuted chains score
    # nothing) carries the triage score as its security severity
    scored = [r for r in run["results"]
              if "security-severity" in r.get("properties", {})]
    assert len(scored) == meta["entries"]


def test_sarif_security_severity_from_contract(tmp_path, capsys):
    """A schema-v2 contract's exploitability scores become the GitHub
    ``security-severity`` property, formatted as a 2-decimal string."""
    from repro.sast.cli import collect_findings
    from repro.sast.contract import build_contract, render_contract
    from repro.sast.project import load_project

    root = _pkg(tmp_path, {
        "leak.py": "def f(sk):\n    u = sk.f[0] % 12289\n    if u > 0:\n"
                   "        return 1\n    return 0\n",
    })
    project = load_project(root, package="pkg")
    contract = build_contract(
        collect_findings(project), project.root, project=project
    )
    path = tmp_path / "contract.json"
    path.write_text(render_contract(contract))
    assert main(["verify", root, "--contract", str(path),
                 "--format", "sarif"]) == EXIT_CLEAN
    doc = json.loads(capsys.readouterr().out)
    validate_sarif(doc)
    results = doc["runs"][0]["results"]
    severities = {r["ruleId"]: r["properties"]["security-severity"]
                  for r in results}
    # the bounded branch operand scores 6.1773 -> "6.18"; the unbounded
    # assignment keeps the ancillary base score
    assert severities == {"SF001": "6.18", "SF003": "2.20"}
