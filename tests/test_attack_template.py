"""Tests for the profiled (template) attack extension (paper V-A)."""

import numpy as np
import pytest

from repro.attack.cpa import run_cpa
from repro.attack.hypotheses import hyp_s_lo, known_limbs
from repro.attack.template import build_templates, profile_step, template_scores
from repro.falcon import FalconParams, keygen
from repro.leakage import CaptureCampaign, DeviceModel


@pytest.fixture(scope="module")
def setup():
    sk, _ = keygen(FalconParams.get(8), seed=b"tpl")
    profiling = CaptureCampaign(sk=sk, n_traces=4000, device=DeviceModel(seed=7), seed=5).capture(0)
    attack = CaptureCampaign(sk=sk, n_traces=1200, device=DeviceModel(seed=8), seed=9).capture(0)
    return sk, profiling, attack


def true_low(ts):
    sig = (ts.true_secret & ((1 << 52) - 1)) | (1 << 52)
    return sig & ((1 << 25) - 1)


class TestBuildTemplates:
    def test_shapes(self, setup):
        _, profiling, _ = setup
        tpl = profile_step(profiling, "s_lo")
        assert tpl.means.shape[0] == len(tpl.classes)
        assert tpl.pooled_cov.shape == (tpl.n_samples, tpl.n_samples)
        assert len(tpl.classes) > 10  # HW classes of a ~54-bit value

    def test_means_monotone_in_hw(self, setup):
        """With HW leakage, template means must increase with the class."""
        _, profiling, _ = setup
        tpl = profile_step(profiling, "s_lo")
        mids = tpl.means[:, 0]
        # allow noise: correlation of class value vs mean close to 1
        corr = np.corrcoef(tpl.classes.astype(float), mids)[0, 1]
        assert corr > 0.95

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_templates(np.zeros((10, 2)), np.zeros(9))

    def test_min_class_size(self):
        traces = np.random.default_rng(0).standard_normal((20, 1))
        labels = np.array([1] * 19 + [50])
        tpl = build_templates(traces, labels)
        assert 50 not in tpl.classes

    def test_all_classes_too_small_rejected(self):
        with pytest.raises(ValueError):
            build_templates(np.zeros((3, 1)), np.array([1, 2, 3]))


class TestTemplateMatching:
    def _candidates(self, ts, k=50):
        rng = np.random.default_rng(3)
        return np.unique(
            np.concatenate([[true_low(ts)], rng.integers(1, 1 << 25, k)]).astype(np.uint64)
        )

    def test_recovers_secret(self, setup):
        _, profiling, attack = setup
        tpl = profile_step(profiling, "s_lo")
        seg = attack.segments[0]
        y_lo, y_hi = known_limbs(seg.known_y)
        cands = self._candidates(attack)
        hyp = hyp_s_lo(y_lo, y_hi, cands)
        res = template_scores(tpl, seg.traces[:, attack.layout.slice_of("s_lo")], hyp, cands)
        assert res.best_guess == true_low(attack)

    def test_beats_cpa_at_low_trace_count(self, setup):
        """The paper's point: profiling lowers the measurement cost."""
        _, profiling, attack = setup
        small = attack.head(250)
        tpl = profile_step(profiling, "s_lo")
        seg = small.segments[0]
        y_lo, y_hi = known_limbs(seg.known_y)
        cands = self._candidates(small, k=120)
        hyp = hyp_s_lo(y_lo, y_hi, cands)
        window = seg.traces[:, small.layout.slice_of("s_lo")]
        t_res = template_scores(tpl, window, hyp, cands)
        c_res = run_cpa(hyp, window, cands)
        t_rank = int(np.where(cands[t_res.ranking] == true_low(small))[0][0])
        c_rank = int(np.where(cands[c_res.ranking] == true_low(small))[0][0])
        assert t_rank <= c_rank

    def test_hypothesis_shape_validated(self, setup):
        _, profiling, attack = setup
        tpl = profile_step(profiling, "s_lo")
        with pytest.raises(ValueError):
            template_scores(tpl, np.zeros((10, 1)), np.zeros((9, 2)), np.arange(2))

    def test_unseen_class_floor(self, setup):
        _, profiling, _ = setup
        tpl = profile_step(profiling, "s_lo")
        traces = np.zeros((2, tpl.n_samples))
        ll = tpl.log_likelihood(traces, np.array([int(tpl.classes[0]), 999]))
        assert np.isfinite(ll).all()

    def test_profiling_requires_known_secret(self, setup):
        _, profiling, _ = setup
        profiling_blind = type(profiling)(
            layout=profiling.layout,
            segments=profiling.segments,
            target_index=0,
            true_secret=None,
        )
        with pytest.raises(ValueError):
            profile_step(profiling_blind, "s_lo")
