"""Tests for the statistics underlying the CPA distinguisher."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.stats import (
    OnlineMoments,
    PearsonAccumulator,
    batched_pearson,
    fisher_z_threshold,
    normal_quantile,
    pearson_corr,
    streaming_pearson,
)


class TestNormalQuantile:
    def test_median(self):
        assert abs(normal_quantile(0.5)) < 1e-9

    def test_symmetry(self):
        assert normal_quantile(0.975) == pytest.approx(-normal_quantile(0.025), abs=1e-9)

    def test_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.9999) == pytest.approx(3.719016, abs=1e-4)

    def test_against_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        for p in (0.001, 0.01, 0.3, 0.7, 0.99, 0.9999, 0.999999):
            assert normal_quantile(p) == pytest.approx(stats.norm.ppf(p), abs=1e-7)

    def test_domain(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                normal_quantile(bad)


class TestFisherThreshold:
    def test_decreases_with_traces(self):
        t = [fisher_z_threshold(d) for d in (100, 1000, 10000)]
        assert t[0] > t[1] > t[2]

    def test_tiny_sample_below_one(self):
        """Degenerate n must return a bound *strictly* below 1.0.

        Regression: the old code returned exactly 1.0 for n <= 3, so a
        perfect |r| = 1.0 correlation could never clear the strict ``>``
        comparison and was reported as insignificant.
        """
        for n in (0, 1, 2, 3):
            thr = fisher_z_threshold(n)
            assert thr < 1.0
            assert thr > 0.99  # still essentially saturated

    def test_perfect_correlation_significant_at_tiny_n(self):
        """A perfect correlation on 3 traces must count as significant."""
        x = np.array([0.0, 1.0, 2.0])
        r = pearson_corr(x, 2 * x + 5)
        assert abs(r) > fisher_z_threshold(len(x))

    def test_paper_scale(self):
        """At 10k traces the 99.99% bound sits around 0.037 (Fig. 4 dashes)."""
        assert 0.03 < fisher_z_threshold(10_000, 0.9999) < 0.045

    def test_null_false_positive_rate(self):
        """Under no leakage, crossings happen at roughly the nominal rate."""
        rng = np.random.default_rng(7)
        d, trials = 500, 2000
        thr = fisher_z_threshold(d, 0.99)
        hits = 0
        x = rng.standard_normal((trials, d))
        y = rng.standard_normal((trials, d))
        for i in range(trials):
            if abs(pearson_corr(x[i], y[i])) > thr:
                hits += 1
        # two-sided: nominal 2% of 2000 = 40; allow generous slack
        assert hits < 100


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(50, dtype=float)
        assert pearson_corr(x, 3 * x + 1) == pytest.approx(1.0)
        assert pearson_corr(x, -x) == pytest.approx(-1.0)

    def test_degenerate_is_zero(self):
        assert pearson_corr(np.ones(10), np.arange(10.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_corr(np.ones(3), np.ones(4))

    @given(st.integers(5, 60))
    @settings(max_examples=20)
    def test_bounded(self, n):
        rng = np.random.default_rng(n)
        r = pearson_corr(rng.standard_normal(n), rng.standard_normal(n))
        assert -1.0 <= r <= 1.0

    def test_batched_matches_scalar(self):
        rng = np.random.default_rng(1)
        hyps = rng.standard_normal((200, 5))
        traces = rng.standard_normal((200, 7))
        got = batched_pearson(hyps, traces)
        for g in range(5):
            for t in range(7):
                assert got[g, t] == pytest.approx(pearson_corr(hyps[:, g], traces[:, t]))

    def test_batched_degenerate_column(self):
        hyps = np.ones((50, 2))
        hyps[:, 1] = np.arange(50)
        traces = np.random.default_rng(2).standard_normal((50, 3))
        got = batched_pearson(hyps, traces)
        assert np.all(got[0] == 0.0)

    def test_batched_shape_validation(self):
        with pytest.raises(ValueError):
            batched_pearson(np.ones((10, 2)), np.ones((11, 2)))


class TestStreamingPearson:
    """The chunked raw-moment path must agree with the one-shot matrix."""

    @given(
        st.integers(10, 400),
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(1, 64),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_batched(self, d, g, t, chunk, seed):
        rng = np.random.default_rng(seed)
        hyps = rng.standard_normal((d, g))
        traces = rng.standard_normal((d, t))
        got = streaming_pearson(hyps, traces, chunk_rows=chunk)
        want = batched_pearson(hyps, traces)
        np.testing.assert_allclose(got, want, atol=1e-9)

    def test_matches_on_trace_like_data(self):
        """Realistic magnitudes: HW hypotheses vs noisy integer samples."""
        rng = np.random.default_rng(11)
        hw = rng.integers(0, 65, size=(5000, 8)).astype(float)
        traces = hw[:, :1] * 3.0 + rng.normal(0, 10.0, size=(5000, 12))
        got = streaming_pearson(hw, traces, chunk_rows=512)
        np.testing.assert_allclose(got, batched_pearson(hw, traces), atol=1e-9)

    def test_degenerate_column_zero(self):
        hyps = np.ones((64, 2))
        hyps[:, 1] = np.arange(64.0)
        traces = np.random.default_rng(4).standard_normal((64, 3))
        got = streaming_pearson(hyps, traces, chunk_rows=16)
        assert np.all(got[0] == 0.0)

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            streaming_pearson(np.ones((8, 1)), np.ones((8, 1)), chunk_rows=0)


class TestPearsonAccumulator:
    def test_update_matches_batched(self):
        rng = np.random.default_rng(5)
        hyps = rng.standard_normal((300, 4))
        traces = rng.standard_normal((300, 9))
        acc = PearsonAccumulator()
        for lo in range(0, 300, 77):  # deliberately uneven chunks
            acc.update(hyps[lo : lo + 77], traces[lo : lo + 77])
        assert acc.count == 300
        assert acc.n_guesses == 4 and acc.n_samples == 9
        np.testing.assert_allclose(
            acc.correlation(), batched_pearson(hyps, traces), atol=1e-9
        )

    def test_merge_matches_single_stream(self):
        """Two accumulators merged == one accumulator over everything,
        which is what makes the per-worker partial sums composable."""
        rng = np.random.default_rng(6)
        hyps = rng.standard_normal((500, 3))
        traces = rng.standard_normal((500, 5))
        a = PearsonAccumulator().update(hyps[:200], traces[:200])
        b = PearsonAccumulator().update(hyps[200:], traces[200:])
        merged = a.merge(b)
        np.testing.assert_allclose(
            merged.correlation(), batched_pearson(hyps, traces), atol=1e-9
        )
        assert merged.threshold() == fisher_z_threshold(500)

    def test_merge_with_empty(self):
        rng = np.random.default_rng(7)
        hyps = rng.standard_normal((50, 2))
        traces = rng.standard_normal((50, 2))
        a = PearsonAccumulator().update(hyps, traces)
        merged = a.merge(PearsonAccumulator())
        np.testing.assert_allclose(
            merged.correlation(), batched_pearson(hyps, traces), atol=1e-12
        )

    def test_shape_mismatch_rejected(self):
        acc = PearsonAccumulator().update(np.ones((4, 2)), np.ones((4, 3)))
        with pytest.raises(ValueError):
            acc.update(np.ones((4, 5)), np.ones((4, 3)))
        other = PearsonAccumulator().update(np.ones((4, 9)), np.ones((4, 3)))
        with pytest.raises(ValueError):
            acc.merge(other)

    def test_empty_correlation_rejected(self):
        with pytest.raises(ValueError):
            PearsonAccumulator().correlation()


class TestOnlineMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((100, 6))
        om = OnlineMoments()
        om.update(data[:40])
        om.update(data[40:])
        assert om.count == 100
        np.testing.assert_allclose(om.mean, data.mean(axis=0), atol=1e-10)
        np.testing.assert_allclose(om.variance, data.var(axis=0, ddof=1), atol=1e-10)

    def test_many_uneven_batches_match_numpy(self):
        """Chan's batched update across pathological batch sizes (1-row
        batches included) must agree with the two-pass numpy answer."""
        rng = np.random.default_rng(9)
        data = rng.standard_normal((517, 4)) * 50.0 + 1000.0
        om = OnlineMoments()
        lo = 0
        for size in (1, 2, 1, 100, 3, 250, 1, 159):
            om.update(data[lo : lo + size])
            lo += size
        assert lo == 517 and om.count == 517
        np.testing.assert_allclose(om.mean, data.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(
            om.variance, data.var(axis=0, ddof=1), rtol=1e-9
        )

    def test_empty_rejected(self):
        om = OnlineMoments()
        with pytest.raises(ValueError):
            _ = om.mean
        om.update(np.ones((1, 3)))
        with pytest.raises(ValueError):
            _ = om.variance
