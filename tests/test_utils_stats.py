"""Tests for the statistics underlying the CPA distinguisher."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.stats import (
    OnlineMoments,
    batched_pearson,
    fisher_z_threshold,
    normal_quantile,
    pearson_corr,
)


class TestNormalQuantile:
    def test_median(self):
        assert abs(normal_quantile(0.5)) < 1e-9

    def test_symmetry(self):
        assert normal_quantile(0.975) == pytest.approx(-normal_quantile(0.025), abs=1e-9)

    def test_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.9999) == pytest.approx(3.719016, abs=1e-4)

    def test_against_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        for p in (0.001, 0.01, 0.3, 0.7, 0.99, 0.9999, 0.999999):
            assert normal_quantile(p) == pytest.approx(stats.norm.ppf(p), abs=1e-7)

    def test_domain(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                normal_quantile(bad)


class TestFisherThreshold:
    def test_decreases_with_traces(self):
        t = [fisher_z_threshold(d) for d in (100, 1000, 10000)]
        assert t[0] > t[1] > t[2]

    def test_tiny_sample_saturates(self):
        assert fisher_z_threshold(3) == 1.0

    def test_paper_scale(self):
        """At 10k traces the 99.99% bound sits around 0.037 (Fig. 4 dashes)."""
        assert 0.03 < fisher_z_threshold(10_000, 0.9999) < 0.045

    def test_null_false_positive_rate(self):
        """Under no leakage, crossings happen at roughly the nominal rate."""
        rng = np.random.default_rng(7)
        d, trials = 500, 2000
        thr = fisher_z_threshold(d, 0.99)
        hits = 0
        x = rng.standard_normal((trials, d))
        y = rng.standard_normal((trials, d))
        for i in range(trials):
            if abs(pearson_corr(x[i], y[i])) > thr:
                hits += 1
        # two-sided: nominal 2% of 2000 = 40; allow generous slack
        assert hits < 100


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(50, dtype=float)
        assert pearson_corr(x, 3 * x + 1) == pytest.approx(1.0)
        assert pearson_corr(x, -x) == pytest.approx(-1.0)

    def test_degenerate_is_zero(self):
        assert pearson_corr(np.ones(10), np.arange(10.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_corr(np.ones(3), np.ones(4))

    @given(st.integers(5, 60))
    @settings(max_examples=20)
    def test_bounded(self, n):
        rng = np.random.default_rng(n)
        r = pearson_corr(rng.standard_normal(n), rng.standard_normal(n))
        assert -1.0 <= r <= 1.0

    def test_batched_matches_scalar(self):
        rng = np.random.default_rng(1)
        hyps = rng.standard_normal((200, 5))
        traces = rng.standard_normal((200, 7))
        got = batched_pearson(hyps, traces)
        for g in range(5):
            for t in range(7):
                assert got[g, t] == pytest.approx(pearson_corr(hyps[:, g], traces[:, t]))

    def test_batched_degenerate_column(self):
        hyps = np.ones((50, 2))
        hyps[:, 1] = np.arange(50)
        traces = np.random.default_rng(2).standard_normal((50, 3))
        got = batched_pearson(hyps, traces)
        assert np.all(got[0] == 0.0)

    def test_batched_shape_validation(self):
        with pytest.raises(ValueError):
            batched_pearson(np.ones((10, 2)), np.ones((11, 2)))


class TestOnlineMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((100, 6))
        om = OnlineMoments()
        om.update(data[:40])
        om.update(data[40:])
        assert om.count == 100
        np.testing.assert_allclose(om.mean, data.mean(axis=0), atol=1e-10)
        np.testing.assert_allclose(om.variance, data.var(axis=0, ddof=1), atol=1e-10)

    def test_empty_rejected(self):
        om = OnlineMoments()
        with pytest.raises(ValueError):
            _ = om.mean
        om.update(np.ones((1, 3)))
        with pytest.raises(ValueError):
            _ = om.variance
